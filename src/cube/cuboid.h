#ifndef SPCUBE_CUBE_CUBOID_H_
#define SPCUBE_CUBE_CUBOID_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace spcube {

/// A cuboid is identified by the set of dimensions it groups by, encoded as
/// a bitmask: bit i set means dimension Ai is a group-by attribute (paper
/// §2.1 overloads cuboid = attribute subset). Mask 0 is the apex cuboid
/// (*, ..., *); the full mask is the base cuboid (A1, ..., Ad).
using CuboidMask = uint32_t;

/// The maximum number of dimensions supported by the mask representation.
inline constexpr int kMaxDims = 20;

/// Number of group-by attributes of a cuboid.
inline int MaskPopCount(CuboidMask mask) { return std::popcount(mask); }

/// Number of cuboids in a d-dimensional cube (2^d).
inline int64_t NumCuboids(int num_dims) { return int64_t{1} << num_dims; }

/// True iff `descendant` is a (non-strict) descendant of `ancestor` in the
/// cube lattice, i.e. its attribute set is a subset (paper Def. 2.3 calls
/// one-attribute-removed cuboids "descendants"; we use subset closure).
inline bool IsSubsetMask(CuboidMask descendant, CuboidMask ancestor) {
  return (descendant & ancestor) == descendant;
}

/// The immediate descendants of a cuboid: each obtained by removing one
/// group-by attribute (paper Def. 2.3).
std::vector<CuboidMask> ImmediateDescendants(CuboidMask mask);

/// The immediate ancestors of a cuboid within a d-dim cube: each obtained by
/// adding one attribute.
std::vector<CuboidMask> ImmediateAncestors(CuboidMask mask, int num_dims);

/// All 2^d cuboid masks in canonical BFS order: ascending attribute count,
/// ties broken by ascending mask value. This is the bottom-up BFS order in
/// which the SP-Cube mapper walks a tuple's lattice (paper §5.1); mappers
/// and reducers must agree on it for the ownership rule to be consistent.
std::vector<CuboidMask> MasksInBfsOrder(int num_dims);

/// Comparator defining the canonical BFS order on masks.
inline bool BfsLess(CuboidMask a, CuboidMask b) {
  const int pa = MaskPopCount(a);
  const int pb = MaskPopCount(b);
  if (pa != pb) return pa < pb;
  return a < b;
}

/// Renders a mask against dimension names, e.g. "(name, *, year)".
std::string MaskToString(CuboidMask mask, int num_dims);

}  // namespace spcube

#endif  // SPCUBE_CUBE_CUBOID_H_
