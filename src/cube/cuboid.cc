#include "cube/cuboid.h"

#include <algorithm>

namespace spcube {

std::vector<CuboidMask> ImmediateDescendants(CuboidMask mask) {
  std::vector<CuboidMask> out;
  out.reserve(static_cast<size_t>(MaskPopCount(mask)));
  CuboidMask remaining = mask;
  while (remaining != 0) {
    const CuboidMask low_bit = remaining & (~remaining + 1);
    out.push_back(mask ^ low_bit);
    remaining ^= low_bit;
  }
  return out;
}

std::vector<CuboidMask> ImmediateAncestors(CuboidMask mask, int num_dims) {
  std::vector<CuboidMask> out;
  for (int d = 0; d < num_dims; ++d) {
    const CuboidMask bit = CuboidMask{1} << d;
    if ((mask & bit) == 0) out.push_back(mask | bit);
  }
  return out;
}

std::vector<CuboidMask> MasksInBfsOrder(int num_dims) {
  std::vector<CuboidMask> out;
  out.reserve(static_cast<size_t>(NumCuboids(num_dims)));
  for (CuboidMask mask = 0;
       mask < (CuboidMask{1} << num_dims); ++mask) {
    out.push_back(mask);
  }
  std::sort(out.begin(), out.end(), BfsLess);
  return out;
}

std::string MaskToString(CuboidMask mask, int num_dims) {
  std::string out = "(";
  for (int d = 0; d < num_dims; ++d) {
    if (d > 0) out += ", ";
    out += ((mask >> d) & 1) ? ("A" + std::to_string(d)) : "*";
  }
  out += ")";
  return out;
}

}  // namespace spcube
