#ifndef SPCUBE_CUBE_AGGREGATE_H_
#define SPCUBE_CUBE_AGGREGATE_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace spcube {

/// Aggregate functions supported by every cube algorithm in this library.
/// Per the paper's classification (§7 / Gray et al.): count, sum, min, max
/// are distributive; avg is algebraic (partial sums + counts are combined).
/// All of them admit mapper-side partial aggregation with reducer-side
/// merging, which is exactly what SP-Cube requires for skewed c-groups.
enum class AggregateKind : int8_t {
  kCount = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAvg = 4,
};

/// A mergeable partial-aggregate state. The meaning of the two lanes depends
/// on the aggregate kind: count uses v0; sum uses v0; min/max use v0 with v1
/// as a has-value flag; avg uses (v0 = sum, v1 = count).
struct AggState {
  int64_t v0 = 0;
  int64_t v1 = 0;

  friend bool operator==(const AggState& a, const AggState& b) {
    return a.v0 == b.v0 && a.v1 == b.v1;
  }

  void EncodeTo(ByteWriter& writer) const {
    writer.PutVarintSigned(v0);
    writer.PutVarintSigned(v1);
  }
  static Status DecodeFrom(ByteReader& reader, AggState* out) {
    SPCUBE_RETURN_IF_ERROR(reader.GetVarintSigned(&out->v0));
    return reader.GetVarintSigned(&out->v1);
  }
};

/// Stateless strategy for one aggregate function. Implementations are
/// singletons returned by GetAggregator(); they hold no mutable state and
/// are safe to share across workers.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  virtual AggregateKind kind() const = 0;
  virtual const char* name() const = 0;

  /// The identity state (aggregate of an empty set).
  virtual AggState Empty() const { return AggState{}; }

  /// Folds one tuple's measure value into a partial state.
  virtual void Add(AggState& state, int64_t measure) const = 0;

  /// Merges two partial states (used to combine mapper-side partial
  /// aggregates of skewed c-groups at the skew reducer, paper §5.1).
  virtual void Merge(AggState& into, const AggState& from) const = 0;

  /// Produces the final aggregate value.
  virtual double Finalize(const AggState& state) const = 0;

  /// True for algebraic (vs distributive) functions.
  virtual bool is_algebraic() const { return false; }
};

/// Returns the shared singleton for a kind.
const Aggregator& GetAggregator(AggregateKind kind);

/// Parses "count" / "sum" / "min" / "max" / "avg".
Result<AggregateKind> AggregateKindFromName(const std::string& name);

}  // namespace spcube

#endif  // SPCUBE_CUBE_AGGREGATE_H_
