#ifndef SPCUBE_CUBE_GROUP_KEY_H_
#define SPCUBE_CUBE_GROUP_KEY_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/inline_vec.h"
#include "common/status.h"
#include "cube/cuboid.h"
#include "relation/relation.h"

namespace spcube {

/// A cuboid's attribute values with fully inline storage: projecting a tuple
/// never touches the heap (the Round-2 mapper projects every tuple onto up to
/// 2^d lattice nodes — this is the hottest allocation site in the system).
/// kMaxDims bounds the arity, mirroring CuboidMask's width.
using GroupValues = InlineVec<int64_t, kMaxDims>;

/// Identifies one cube group (c-group, paper §2.1): the cuboid it lives in
/// plus the values of that cuboid's group-by attributes, in dimension order.
/// `values.size() == MaskPopCount(mask)`; dimensions outside the mask are
/// conceptually '*'.
struct GroupKey {
  CuboidMask mask = 0;
  GroupValues values;

  GroupKey() = default;
  GroupKey(CuboidMask m, GroupValues v) : mask(m), values(v) {}

  /// Projects a full tuple onto a cuboid, e.g. the node of the tuple's
  /// lattice for that cuboid (paper Def. 2.4). Accepts spans, vectors and
  /// Relation::RowRef; performs zero heap allocations.
  template <TupleLike Tuple>
  static GroupKey Project(CuboidMask mask, const Tuple& tuple) {
    GroupKey key;
    key.mask = mask;
    const size_t n = tuple.size();
    for (size_t d = 0; d < n; ++d) {
      if ((mask >> d) & 1) key.values.push_back(tuple[d]);
    }
    return key;
  }

  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    return a.mask == b.mask && a.values == b.values;
  }

  /// Total order: by cuboid (BFS order), then lexicographic on values.
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    if (a.mask != b.mask) return BfsLess(a.mask, b.mask);
    return a.values < b.values;
  }

  uint64_t Hash() const {
    uint64_t h = Mix64(mask);
    return HashCombine(h, HashSpan(values.data(), values.size()));
  }

  /// Binary encoding (mask varint + value vector); appended to `writer`.
  /// Bit-identical to the former std::vector-backed encoding.
  void EncodeTo(ByteWriter& writer) const;
  static Status DecodeFrom(ByteReader& reader, GroupKey* out);

  /// "(laptop, *, 2012)"-style rendering with raw codes.
  std::string ToString(int num_dims) const;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    return static_cast<size_t>(key.Hash());
  }
};

/// Compares two full tuples restricted to a cuboid's dimensions,
/// lexicographically in dimension order — the <_C order of paper §4.1 that
/// partition elements are defined over. Returns <0, 0, >0.
template <TupleLike TupleA, TupleLike TupleB>
int CompareOnCuboid(CuboidMask mask, const TupleA& a, const TupleB& b) {
  const size_t n = a.size();
  for (size_t d = 0; d < n; ++d) {
    if (((mask >> d) & 1) == 0) continue;
    if (a[d] < b[d]) return -1;
    if (a[d] > b[d]) return 1;
  }
  return 0;
}

/// Compares a full tuple against a projected key of the same cuboid.
template <TupleLike Tuple>
int CompareTupleToKey(CuboidMask mask, const Tuple& tuple,
                      const GroupKey& key) {
  size_t vi = 0;
  const size_t n = tuple.size();
  for (size_t d = 0; d < n; ++d) {
    if (((mask >> d) & 1) == 0) continue;
    const int64_t kv = key.values[vi++];
    if (tuple[d] < kv) return -1;
    if (tuple[d] > kv) return 1;
  }
  return 0;
}

}  // namespace spcube

#endif  // SPCUBE_CUBE_GROUP_KEY_H_
