#ifndef SPCUBE_CUBE_GROUP_KEY_H_
#define SPCUBE_CUBE_GROUP_KEY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"
#include "cube/cuboid.h"

namespace spcube {

/// Identifies one cube group (c-group, paper §2.1): the cuboid it lives in
/// plus the values of that cuboid's group-by attributes, in dimension order.
/// `values.size() == MaskPopCount(mask)`; dimensions outside the mask are
/// conceptually '*'.
struct GroupKey {
  CuboidMask mask = 0;
  std::vector<int64_t> values;

  GroupKey() = default;
  GroupKey(CuboidMask m, std::vector<int64_t> v)
      : mask(m), values(std::move(v)) {}

  /// Projects a full tuple onto a cuboid, e.g. the node of the tuple's
  /// lattice for that cuboid (paper Def. 2.4).
  static GroupKey Project(CuboidMask mask, std::span<const int64_t> tuple);

  friend bool operator==(const GroupKey& a, const GroupKey& b) {
    return a.mask == b.mask && a.values == b.values;
  }

  /// Total order: by cuboid (BFS order), then lexicographic on values.
  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    if (a.mask != b.mask) return BfsLess(a.mask, b.mask);
    return a.values < b.values;
  }

  uint64_t Hash() const {
    uint64_t h = Mix64(mask);
    return HashCombine(h, HashSpan(values.data(), values.size()));
  }

  /// Binary encoding (mask varint + value vector); appended to `writer`.
  void EncodeTo(ByteWriter& writer) const;
  static Status DecodeFrom(ByteReader& reader, GroupKey* out);

  /// "(laptop, *, 2012)"-style rendering with raw codes.
  std::string ToString(int num_dims) const;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    return static_cast<size_t>(key.Hash());
  }
};

/// Compares two full tuples restricted to a cuboid's dimensions,
/// lexicographically in dimension order — the <_C order of paper §4.1 that
/// partition elements are defined over. Returns <0, 0, >0.
int CompareOnCuboid(CuboidMask mask, std::span<const int64_t> a,
                    std::span<const int64_t> b);

/// Compares a full tuple against a projected key of the same cuboid.
int CompareTupleToKey(CuboidMask mask, std::span<const int64_t> tuple,
                      const GroupKey& key);

}  // namespace spcube

#endif  // SPCUBE_CUBE_GROUP_KEY_H_
