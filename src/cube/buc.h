#ifndef SPCUBE_CUBE_BUC_H_
#define SPCUBE_CUBE_BUC_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cube/aggregate.h"
#include "cube/group_key.h"
#include "relation/relation.h"
#include "relation/relation_view.h"

namespace spcube {

/// Options for the Bottom-Up Cube algorithm (Beyer & Ramakrishnan).
struct BucOptions {
  /// Iceberg threshold: groups whose tuple sets are smaller are neither
  /// reported nor expanded. 1 computes the full cube.
  int64_t min_support = 1;

  /// Classic BUC heuristic: process dimensions in decreasing-cardinality
  /// order so partitions shrink fastest. Output is order-independent.
  /// Cardinalities are estimated from a bounded seeded-Rng row sample, so
  /// the ordering pass costs O(sample) regardless of the partition size.
  bool order_dims_by_cardinality = true;

  /// Rows sampled for the cardinality estimate (deterministic; the seed is
  /// fixed so identical inputs order identically across runs and machines).
  int cardinality_sample_size = 256;
};

/// Receives one aggregated c-group. `key.mask` always contains `base_mask`.
using GroupCallback =
    std::function<void(const GroupKey& key, const AggState& state)>;

/// Runs BUC over the rows of `view`, extending `base_mask` with every subset
/// of the remaining dimensions, and reports one aggregated c-group per
/// (extension, value-combination) — including the base group itself (the
/// projection of the rows onto `base_mask`).
///
/// Preconditions: every row agrees with the others on the dimensions in
/// `base_mask` (vacuous for base_mask == 0). This is exactly the situation
/// of an SP-Cube reducer, which receives set(g) for a c-group g and must
/// compute g and its ancestors locally (paper §5.1, Observation 2.6); with
/// base_mask == 0 and a whole-relation view it is the classic full-cube BUC
/// used as a single-machine reference and inside sketch building.
///
/// Recursion state is a mutable index array seeded from the view; each
/// recursion level partitions by scanning the single dimension column of the
/// columnar base relation (contiguous reads) instead of comparator sorts
/// over strided row-major rows. Per-group emission performs no heap
/// allocation (GroupKey has inline storage).
void BucCompute(const RelationView& view, CuboidMask base_mask,
                const Aggregator& agg, const BucOptions& options,
                const GroupCallback& callback);

/// Convenience overload over all rows of `rel` with base_mask 0.
void BucComputeFull(const Relation& rel, const Aggregator& agg,
                    const BucOptions& options, const GroupCallback& callback);

}  // namespace spcube

#endif  // SPCUBE_CUBE_BUC_H_
