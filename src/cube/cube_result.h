#ifndef SPCUBE_CUBE_CUBE_RESULT_H_
#define SPCUBE_CUBE_CUBE_RESULT_H_

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "cube/aggregate.h"
#include "cube/group_key.h"
#include "relation/relation.h"

namespace spcube {

/// A materialized data cube: every c-group of every cuboid mapped to its
/// final aggregate value. Used as the common output type of all four cube
/// algorithms so results can be compared group-for-group in tests.
class CubeResult {
 public:
  explicit CubeResult(int num_dims) : num_dims_(num_dims) {}

  int num_dims() const { return num_dims_; }

  /// Inserts a finalized group value. Fails if the group already exists
  /// (each algorithm must produce every group exactly once).
  Status AddGroup(GroupKey key, double value);

  /// Inserts or overwrites without the uniqueness check.
  void UpsertGroup(GroupKey key, double value);

  Result<double> Lookup(const GroupKey& key) const;

  int64_t num_groups() const { return static_cast<int64_t>(groups_.size()); }

  /// Number of groups belonging to one cuboid.
  int64_t CuboidGroupCount(CuboidMask mask) const;

  const std::unordered_map<GroupKey, double, GroupKeyHash>& groups() const {
    return groups_;
  }

  /// Structural + numeric comparison. On mismatch returns false and, if
  /// `diff` is non-null, a human-readable description of the first few
  /// differences.
  static bool ApproxEqual(const CubeResult& a, const CubeResult& b,
                          double tolerance, std::string* diff);

 private:
  int num_dims_;
  std::unordered_map<GroupKey, double, GroupKeyHash> groups_;
};

/// Ground-truth cube computation by direct enumeration: for every tuple and
/// every one of the 2^d projections, fold the measure into a hash table
/// (the in-memory analogue of the paper's naive Algorithm 1). Exponential
/// in d and memory-hungry, but trivially correct — tests use it as the
/// oracle for every other algorithm.
CubeResult ComputeCubeReference(const Relation& rel, AggregateKind kind);

}  // namespace spcube

#endif  // SPCUBE_CUBE_CUBE_RESULT_H_
