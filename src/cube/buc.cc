#include "cube/buc.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/logging.h"

namespace spcube {
namespace {

/// Shared recursion state: the relation, the mutable row-index array, the
/// dimension processing order and the user callback.
struct BucContext {
  const Relation& rel;
  const Aggregator& agg;
  const BucOptions& options;
  const GroupCallback& callback;
  std::vector<int64_t>& rows;
  std::vector<int> dim_order;  // dims not in base_mask, in processing order
};

AggState AggregateRange(const BucContext& ctx, size_t begin, size_t end) {
  AggState state = ctx.agg.Empty();
  for (size_t i = begin; i < end; ++i) {
    ctx.agg.Add(state, ctx.rel.measure(ctx.rows[i]));
  }
  return state;
}

/// Reports the group covering rows [begin, end) for `mask`, then partitions
/// on each remaining dimension and recurses (classic BUC, paper [15]).
void BucRecurse(BucContext& ctx, size_t begin, size_t end, CuboidMask mask,
                size_t next_order_pos) {
  const AggState state = AggregateRange(ctx, begin, end);
  ctx.callback(GroupKey::Project(mask, ctx.rel.row(ctx.rows[begin])), state);

  for (size_t pos = next_order_pos; pos < ctx.dim_order.size(); ++pos) {
    const int dim = ctx.dim_order[pos];
    std::sort(ctx.rows.begin() + static_cast<ptrdiff_t>(begin),
              ctx.rows.begin() + static_cast<ptrdiff_t>(end),
              [&ctx, dim](int64_t a, int64_t b) {
                return ctx.rel.dim(a, dim) < ctx.rel.dim(b, dim);
              });
    size_t run_begin = begin;
    while (run_begin < end) {
      const int64_t value = ctx.rel.dim(ctx.rows[run_begin], dim);
      size_t run_end = run_begin + 1;
      while (run_end < end && ctx.rel.dim(ctx.rows[run_end], dim) == value) {
        ++run_end;
      }
      if (static_cast<int64_t>(run_end - run_begin) >=
          ctx.options.min_support) {
        BucRecurse(ctx, run_begin, run_end,
                   mask | (CuboidMask{1} << dim), pos + 1);
      }
      run_begin = run_end;
    }
  }
}

}  // namespace

void BucCompute(const Relation& rel, std::vector<int64_t> rows,
                CuboidMask base_mask, const Aggregator& agg,
                const BucOptions& options, const GroupCallback& callback) {
  if (rows.empty()) return;
  SPCUBE_DCHECK(rel.num_dims() <= kMaxDims);

  std::vector<int> dim_order;
  for (int d = 0; d < rel.num_dims(); ++d) {
    if (((base_mask >> d) & 1) == 0) dim_order.push_back(d);
  }
  if (options.order_dims_by_cardinality && dim_order.size() > 1) {
    // Estimate cardinalities from the actual rows so the heuristic adapts to
    // the reducer's local partition, not the global relation.
    std::vector<int64_t> cardinality(static_cast<size_t>(rel.num_dims()), 0);
    for (int d : dim_order) {
      std::unordered_set<int64_t> distinct;
      for (int64_t row : rows) distinct.insert(rel.dim(row, d));
      cardinality[static_cast<size_t>(d)] =
          static_cast<int64_t>(distinct.size());
    }
    std::stable_sort(dim_order.begin(), dim_order.end(),
                     [&cardinality](int a, int b) {
                       return cardinality[static_cast<size_t>(a)] >
                              cardinality[static_cast<size_t>(b)];
                     });
  }

  BucContext ctx{rel, agg, options, callback, rows, std::move(dim_order)};
  BucRecurse(ctx, 0, rows.size(), base_mask, 0);
}

void BucComputeFull(const Relation& rel, const Aggregator& agg,
                    const BucOptions& options, const GroupCallback& callback) {
  std::vector<int64_t> rows(static_cast<size_t>(rel.num_rows()));
  std::iota(rows.begin(), rows.end(), int64_t{0});
  BucCompute(rel, std::move(rows), /*base_mask=*/0, agg, options, callback);
}

}  // namespace spcube
