#include "cube/buc.h"

#include <algorithm>
#include <span>

#include "common/logging.h"
#include "common/random.h"

namespace spcube {
namespace {

/// Fixed seed for the cardinality-ordering sample: the heuristic must be
/// deterministic per input (reducers across a job — and reruns of a job —
/// must order dimensions identically).
constexpr uint64_t kCardinalitySeed = 0x5bc0ffee0e57a75eULL;

/// Shared recursion state: the columnar base relation, the mutable
/// row-index array, the dimension processing order and the user callback.
struct BucContext {
  const Relation& rel;
  const Aggregator& agg;
  const BucOptions& options;
  const GroupCallback& callback;
  std::vector<int64_t>& rows;
  std::vector<int> dim_order;  // dims not in base_mask, in processing order
};

AggState AggregateRange(const BucContext& ctx, size_t begin, size_t end) {
  AggState state = ctx.agg.Empty();
  const std::span<const int64_t> measures = ctx.rel.measures();
  for (size_t i = begin; i < end; ++i) {
    ctx.agg.Add(state, measures[static_cast<size_t>(ctx.rows[i])]);
  }
  return state;
}

/// Reports the group covering rows [begin, end) for `mask`, then partitions
/// on each remaining dimension and recurses (classic BUC, paper [15]).
/// Partitioning reads one contiguous dimension column — dictionary codes
/// when the relation is encoded (order-preserving, so runs and sort order
/// are identical to the decoded values): a first scan detects already-
/// uniform ranges (common deep in the recursion) and skips the sort;
/// otherwise the sort comparator gathers from the same column, not from
/// strided row-major tuples. Values decode only at group-key emission,
/// through rel.row().
void BucRecurse(BucContext& ctx, size_t begin, size_t end, CuboidMask mask,
                size_t next_order_pos) {
  const AggState state = AggregateRange(ctx, begin, end);
  ctx.callback(GroupKey::Project(mask, ctx.rel.row(ctx.rows[begin])), state);

  for (size_t pos = next_order_pos; pos < ctx.dim_order.size(); ++pos) {
    const int dim = ctx.dim_order[pos];
    const Relation::ColumnScan col = ctx.rel.scan(dim);

    // Column pre-scan: if every row in the range shares one value, the
    // range is a single run — no sort, and the recursion reuses the range.
    bool uniform = true;
    const int64_t first = col[static_cast<size_t>(ctx.rows[begin])];
    for (size_t i = begin + 1; i < end; ++i) {
      if (col[static_cast<size_t>(ctx.rows[i])] != first) {
        uniform = false;
        break;
      }
    }
    if (!uniform) {
      std::sort(ctx.rows.begin() + static_cast<ptrdiff_t>(begin),
                ctx.rows.begin() + static_cast<ptrdiff_t>(end),
                [col](int64_t a, int64_t b) {
                  return col[static_cast<size_t>(a)] <
                         col[static_cast<size_t>(b)];
                });
    }
    size_t run_begin = begin;
    while (run_begin < end) {
      const int64_t value = col[static_cast<size_t>(ctx.rows[run_begin])];
      size_t run_end = run_begin + 1;
      while (run_end < end &&
             col[static_cast<size_t>(ctx.rows[run_end])] == value) {
        ++run_end;
      }
      if (static_cast<int64_t>(run_end - run_begin) >=
          ctx.options.min_support) {
        BucRecurse(ctx, run_begin, run_end,
                   mask | (CuboidMask{1} << dim), pos + 1);
      }
      run_begin = run_end;
    }
  }
}

/// Decreasing-cardinality dimension order, estimated from a bounded seeded
/// sample of the rows (the seed is fixed, so the order — and therefore the
/// recursion shape — is reproducible). The former implementation built one
/// unordered_set per dimension over every row of the partition, which cost
/// more than the sort it was meant to speed up on large reducer groups.
void OrderDimsByCardinality(const Relation& rel,
                            const std::vector<int64_t>& rows,
                            const BucOptions& options,
                            std::vector<int>* dim_order) {
  const size_t sample_size = std::min(
      rows.size(),
      static_cast<size_t>(std::max(1, options.cardinality_sample_size)));
  std::vector<int64_t> sample_rows(sample_size);
  if (sample_size == rows.size()) {
    std::copy(rows.begin(), rows.end(), sample_rows.begin());
  } else {
    Rng rng(kCardinalitySeed ^ static_cast<uint64_t>(rows.size()));
    for (size_t i = 0; i < sample_size; ++i) {
      sample_rows[i] = rows[rng.NextBounded(rows.size())];
    }
  }

  std::vector<int64_t> cardinality(static_cast<size_t>(rel.num_dims()), 0);
  std::vector<int64_t> scratch(sample_size);
  for (int d : *dim_order) {
    const Relation::ColumnScan col = rel.scan(d);
    for (size_t i = 0; i < sample_size; ++i) {
      scratch[i] = col[static_cast<size_t>(sample_rows[i])];
    }
    std::sort(scratch.begin(), scratch.end());
    cardinality[static_cast<size_t>(d)] = static_cast<int64_t>(
        std::unique(scratch.begin(), scratch.end()) - scratch.begin());
  }
  std::stable_sort(dim_order->begin(), dim_order->end(),
                   [&cardinality](int a, int b) {
                     return cardinality[static_cast<size_t>(a)] >
                            cardinality[static_cast<size_t>(b)];
                   });
}

}  // namespace

void BucCompute(const RelationView& view, CuboidMask base_mask,
                const Aggregator& agg, const BucOptions& options,
                const GroupCallback& callback) {
  if (view.num_rows() == 0) return;
  const Relation& rel = view.base();
  SPCUBE_DCHECK(rel.num_dims() <= kMaxDims);

  std::vector<int64_t> rows(static_cast<size_t>(view.num_rows()));
  for (int64_t i = 0; i < view.num_rows(); ++i) {
    rows[static_cast<size_t>(i)] = view.base_row(i);
  }

  std::vector<int> dim_order;
  for (int d = 0; d < rel.num_dims(); ++d) {
    if (((base_mask >> d) & 1) == 0) dim_order.push_back(d);
  }
  if (options.order_dims_by_cardinality && dim_order.size() > 1) {
    // Estimate cardinalities from the actual rows so the heuristic adapts to
    // the reducer's local partition, not the global relation.
    OrderDimsByCardinality(rel, rows, options, &dim_order);
  }

  BucContext ctx{rel, agg, options, callback, rows, std::move(dim_order)};
  BucRecurse(ctx, 0, rows.size(), base_mask, 0);
}

void BucComputeFull(const Relation& rel, const Aggregator& agg,
                    const BucOptions& options, const GroupCallback& callback) {
  BucCompute(RelationView(rel), /*base_mask=*/0, agg, options, callback);
}

}  // namespace spcube
