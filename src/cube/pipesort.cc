#include "cube/pipesort.h"

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "common/logging.h"

namespace spcube {

std::vector<Pipeline> PlanPipelines(int num_dims) {
  SPCUBE_CHECK(num_dims >= 1 && num_dims <= kMaxDims);
  const CuboidMask num_masks =
      static_cast<CuboidMask>(NumCuboids(num_dims));
  std::vector<bool> covered(num_masks, false);
  std::vector<Pipeline> pipelines;

  // Seed masks from the top of the lattice down: the first pipeline claims
  // a full chain of d+1 cuboids; later ones claim whatever prefixes of
  // their order are still free.
  std::vector<CuboidMask> seeds(num_masks);
  std::iota(seeds.begin(), seeds.end(), CuboidMask{0});
  std::sort(seeds.begin(), seeds.end(), [](CuboidMask a, CuboidMask b) {
    return MaskPopCount(a) > MaskPopCount(b) ||
           (MaskPopCount(a) == MaskPopCount(b) && a < b);
  });

  for (const CuboidMask seed : seeds) {
    if (covered[seed]) continue;
    Pipeline pipeline;
    // Order: the seed's dimensions first, remaining dimensions after, so
    // the seed itself is a prefix of the order.
    for (int d = 0; d < num_dims; ++d) {
      if ((seed >> d) & 1) pipeline.order.push_back(d);
    }
    for (int d = 0; d < num_dims; ++d) {
      if (((seed >> d) & 1) == 0) pipeline.order.push_back(d);
    }
    // Claim every still-uncovered prefix of the order.
    CuboidMask prefix = 0;
    if (!covered[prefix]) {
      covered[prefix] = true;
      pipeline.covered.push_back(prefix);
    }
    for (int length = 1; length <= num_dims; ++length) {
      prefix |= CuboidMask{1}
                << pipeline.order[static_cast<size_t>(length - 1)];
      if (!covered[prefix]) {
        covered[prefix] = true;
        pipeline.covered.push_back(prefix);
      }
    }
    pipelines.push_back(std::move(pipeline));
  }
  return pipelines;
}

namespace {

/// Length (number of leading attributes of `order`) whose OR equals `mask`.
int PrefixLength(const Pipeline& pipeline, CuboidMask mask) {
  CuboidMask prefix = 0;
  if (mask == 0) return 0;
  for (size_t i = 0; i < pipeline.order.size(); ++i) {
    prefix |= CuboidMask{1} << pipeline.order[i];
    if (prefix == mask) return static_cast<int>(i) + 1;
  }
  SPCUBE_CHECK(false) << "mask is not a prefix of its pipeline";
  return -1;
}

}  // namespace

void PipeSortComputeFull(const Relation& rel, const Aggregator& agg,
                         const GroupCallback& callback) {
  const int64_t n = rel.num_rows();
  if (n == 0) return;
  const int d = rel.num_dims();

  // One scan per dimension column, hoisted so the sort comparator and the
  // run-boundary scan read contiguous columns directly — dictionary codes
  // when the relation is encoded (order-preserving, so sort order and run
  // boundaries match the decoded values; decode happens at emission via
  // rel.row()).
  std::vector<Relation::ColumnScan> cols;
  cols.reserve(static_cast<size_t>(d));
  for (int dim = 0; dim < d; ++dim) cols.push_back(rel.scan(dim));

  std::vector<int64_t> rows(static_cast<size_t>(n));
  for (const Pipeline& pipeline : PlanPipelines(d)) {
    std::iota(rows.begin(), rows.end(), int64_t{0});
    std::sort(rows.begin(), rows.end(),
              [&cols, &pipeline](int64_t a, int64_t b) {
                for (int dim : pipeline.order) {
                  const int64_t va = cols[static_cast<size_t>(dim)]
                                         [static_cast<size_t>(a)];
                  const int64_t vb = cols[static_cast<size_t>(dim)]
                                         [static_cast<size_t>(b)];
                  if (va != vb) return va < vb;
                }
                return false;
              });

    // One scan, aggregating every claimed prefix simultaneously. Claimed
    // prefixes sorted by length so flushes cascade from fine to coarse.
    struct Open {
      int length;           // prefix length in the order
      CuboidMask mask;      // its cuboid
      AggState state;       // running aggregate
      int64_t start_row;    // representative row of the open group
    };
    std::vector<Open> open;
    for (const CuboidMask mask : pipeline.covered) {
      open.push_back(
          Open{PrefixLength(pipeline, mask), mask, agg.Empty(), rows[0]});
    }
    std::sort(open.begin(), open.end(),
              [](const Open& a, const Open& b) { return a.length < b.length; });

    for (int64_t i = 0; i < n; ++i) {
      const int64_t row = rows[static_cast<size_t>(i)];
      if (i > 0) {
        // First position (in pipeline order) where this row differs from
        // the previous one; every open prefix longer than that closes.
        const int64_t prev = rows[static_cast<size_t>(i - 1)];
        int differs_at = d;  // no difference
        for (int pos = 0; pos < d; ++pos) {
          const int dim = pipeline.order[static_cast<size_t>(pos)];
          const Relation::ColumnScan col = cols[static_cast<size_t>(dim)];
          if (col[static_cast<size_t>(prev)] !=
              col[static_cast<size_t>(row)]) {
            differs_at = pos;
            break;
          }
        }
        for (Open& group : open) {
          if (group.length > differs_at) {
            callback(GroupKey::Project(group.mask, rel.row(group.start_row)),
                     group.state);
            group.state = agg.Empty();
            group.start_row = row;
          }
        }
      }
      for (Open& group : open) {
        agg.Add(group.state, rel.measure(row));
      }
    }
    for (const Open& group : open) {
      callback(GroupKey::Project(group.mask, rel.row(group.start_row)),
               group.state);
    }
  }
}

}  // namespace spcube
