#include "cube/cube_result.h"

#include <cmath>

namespace spcube {

Status CubeResult::AddGroup(GroupKey key, double value) {
  auto [it, inserted] = groups_.emplace(std::move(key), value);
  if (!inserted) {
    return Status::AlreadyExists("duplicate cube group: " +
                                 it->first.ToString(num_dims_));
  }
  return Status::OK();
}

void CubeResult::UpsertGroup(GroupKey key, double value) {
  groups_[std::move(key)] = value;
}

Result<double> CubeResult::Lookup(const GroupKey& key) const {
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    return Status::NotFound("group not in cube: " + key.ToString(num_dims_));
  }
  return it->second;
}

int64_t CubeResult::CuboidGroupCount(CuboidMask mask) const {
  int64_t count = 0;
  for (const auto& [key, value] : groups_) {
    (void)value;
    if (key.mask == mask) ++count;
  }
  return count;
}

bool CubeResult::ApproxEqual(const CubeResult& a, const CubeResult& b,
                             double tolerance, std::string* diff) {
  bool equal = true;
  int reported = 0;
  auto report = [&](const std::string& line) {
    equal = false;
    if (diff != nullptr && reported < 10) {
      *diff += line + "\n";
      ++reported;
    }
  };
  if (a.num_groups() != b.num_groups()) {
    report("group counts differ: " + std::to_string(a.num_groups()) +
           " vs " + std::to_string(b.num_groups()));
  }
  for (const auto& [key, value] : a.groups_) {
    auto it = b.groups_.find(key);
    if (it == b.groups_.end()) {
      report("missing in b: " + key.ToString(a.num_dims_));
    } else if (std::fabs(it->second - value) > tolerance) {
      report("value mismatch at " + key.ToString(a.num_dims_) + ": " +
             std::to_string(value) + " vs " + std::to_string(it->second));
    }
  }
  for (const auto& [key, value] : b.groups_) {
    (void)value;
    if (a.groups_.find(key) == a.groups_.end()) {
      report("missing in a: " + key.ToString(b.num_dims_));
    }
  }
  return equal;
}

CubeResult ComputeCubeReference(const Relation& rel, AggregateKind kind) {
  const Aggregator& agg = GetAggregator(kind);
  std::unordered_map<GroupKey, AggState, GroupKeyHash> states;
  const CuboidMask num_masks =
      static_cast<CuboidMask>(NumCuboids(rel.num_dims()));
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    const auto tuple = rel.row(r);
    const int64_t measure = rel.measure(r);
    for (CuboidMask mask = 0; mask < num_masks; ++mask) {
      agg.Add(states[GroupKey::Project(mask, tuple)], measure);
    }
  }
  CubeResult out(rel.num_dims());
  for (const auto& [key, state] : states) {
    out.UpsertGroup(key, agg.Finalize(state));
  }
  return out;
}

}  // namespace spcube
