#include "cube/aggregate.h"

#include <algorithm>

namespace spcube {
namespace {

class CountAggregator : public Aggregator {
 public:
  AggregateKind kind() const override { return AggregateKind::kCount; }
  const char* name() const override { return "count"; }
  void Add(AggState& state, int64_t) const override { ++state.v0; }
  void Merge(AggState& into, const AggState& from) const override {
    into.v0 += from.v0;
  }
  double Finalize(const AggState& state) const override {
    return static_cast<double>(state.v0);
  }
};

class SumAggregator : public Aggregator {
 public:
  AggregateKind kind() const override { return AggregateKind::kSum; }
  const char* name() const override { return "sum"; }
  void Add(AggState& state, int64_t measure) const override {
    state.v0 += measure;
  }
  void Merge(AggState& into, const AggState& from) const override {
    into.v0 += from.v0;
  }
  double Finalize(const AggState& state) const override {
    return static_cast<double>(state.v0);
  }
};

class MinAggregator : public Aggregator {
 public:
  AggregateKind kind() const override { return AggregateKind::kMin; }
  const char* name() const override { return "min"; }
  void Add(AggState& state, int64_t measure) const override {
    if (state.v1 == 0 || measure < state.v0) state.v0 = measure;
    state.v1 = 1;
  }
  void Merge(AggState& into, const AggState& from) const override {
    if (from.v1 == 0) return;
    if (into.v1 == 0 || from.v0 < into.v0) into.v0 = from.v0;
    into.v1 = 1;
  }
  double Finalize(const AggState& state) const override {
    return static_cast<double>(state.v0);
  }
};

class MaxAggregator : public Aggregator {
 public:
  AggregateKind kind() const override { return AggregateKind::kMax; }
  const char* name() const override { return "max"; }
  void Add(AggState& state, int64_t measure) const override {
    if (state.v1 == 0 || measure > state.v0) state.v0 = measure;
    state.v1 = 1;
  }
  void Merge(AggState& into, const AggState& from) const override {
    if (from.v1 == 0) return;
    if (into.v1 == 0 || from.v0 > into.v0) into.v0 = from.v0;
    into.v1 = 1;
  }
  double Finalize(const AggState& state) const override {
    return static_cast<double>(state.v0);
  }
};

class AvgAggregator : public Aggregator {
 public:
  AggregateKind kind() const override { return AggregateKind::kAvg; }
  const char* name() const override { return "avg"; }
  void Add(AggState& state, int64_t measure) const override {
    state.v0 += measure;
    ++state.v1;
  }
  void Merge(AggState& into, const AggState& from) const override {
    into.v0 += from.v0;
    into.v1 += from.v1;
  }
  double Finalize(const AggState& state) const override {
    if (state.v1 == 0) return 0.0;
    return static_cast<double>(state.v0) / static_cast<double>(state.v1);
  }
  bool is_algebraic() const override { return true; }
};

}  // namespace

const Aggregator& GetAggregator(AggregateKind kind) {
  static const CountAggregator count;
  static const SumAggregator sum;
  static const MinAggregator min;
  static const MaxAggregator max;
  static const AvgAggregator avg;
  switch (kind) {
    case AggregateKind::kCount:
      return count;
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kMin:
      return min;
    case AggregateKind::kMax:
      return max;
    case AggregateKind::kAvg:
      return avg;
  }
  return count;
}

Result<AggregateKind> AggregateKindFromName(const std::string& name) {
  if (name == "count") return AggregateKind::kCount;
  if (name == "sum") return AggregateKind::kSum;
  if (name == "min") return AggregateKind::kMin;
  if (name == "max") return AggregateKind::kMax;
  if (name == "avg") return AggregateKind::kAvg;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

}  // namespace spcube
