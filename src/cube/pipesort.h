#ifndef SPCUBE_CUBE_PIPESORT_H_
#define SPCUBE_CUBE_PIPESORT_H_

#include <vector>

#include "cube/buc.h"

namespace spcube {

/// A PipeSort pipeline: one attribute ordering whose prefixes are the
/// cuboids this pipeline produces. Sorting the relation once in this order
/// lets a single scan aggregate every listed cuboid simultaneously.
struct Pipeline {
  /// Attribute order to sort by (a permutation of a subset of dims, padded
  /// to full length; only the first `covered.size() - 1` positions matter).
  std::vector<int> order;
  /// The cuboid masks this pipeline produces: covered[i] is the mask of the
  /// first i attributes of `order` (covered[0] == 0, the apex) — but only
  /// the masks this pipeline is responsible for are listed.
  std::vector<CuboidMask> covered;
};

/// Plans a prefix-closed chain cover of the cube lattice: every one of the
/// 2^d cuboids appears in exactly one pipeline, and within a pipeline each
/// cuboid is a prefix of the pipeline's attribute order. Greedy variant of
/// Agarwal et al.'s PipeSort plan (which minimizes sort cost via matching);
/// the pipeline count stays within a small factor of the optimal
/// C(d, d/2).
std::vector<Pipeline> PlanPipelines(int num_dims);

/// Computes the full cube with PipeSort: one sort + one scan per pipeline,
/// reporting each c-group exactly once through `callback` (same contract
/// as BucComputeFull). The paper's related work (§7) contrasts this
/// top-down style with the bottom-up BUC SP-Cube builds on; having both
/// locally lets bench_micro quantify the difference.
void PipeSortComputeFull(const Relation& rel, const Aggregator& agg,
                         const GroupCallback& callback);

}  // namespace spcube

#endif  // SPCUBE_CUBE_PIPESORT_H_
