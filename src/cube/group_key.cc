#include "cube/group_key.h"

namespace spcube {

void GroupKey::EncodeTo(ByteWriter& writer) const {
  writer.PutVarint(mask);
  writer.PutI64Span(values.data(), values.size());
}

Status GroupKey::DecodeFrom(ByteReader& reader, GroupKey* out) {
  uint64_t mask = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&mask));
  out->mask = static_cast<CuboidMask>(mask);
  uint64_t count = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&count));
  if (count > static_cast<uint64_t>(GroupValues::capacity())) {
    return Status::Corruption("group key arity exceeds kMaxDims");
  }
  out->values.clear();
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarintSigned(&v));
    out->values.push_back(v);
  }
  if (static_cast<int>(out->values.size()) != MaskPopCount(out->mask)) {
    return Status::Corruption("group key arity does not match mask");
  }
  return Status::OK();
}

std::string GroupKey::ToString(int num_dims) const {
  std::string out = "(";
  size_t vi = 0;
  for (int d = 0; d < num_dims; ++d) {
    if (d > 0) out += ", ";
    if ((mask >> d) & 1) {
      out += std::to_string(values[vi++]);
    } else {
      out += "*";
    }
  }
  out += ")";
  return out;
}

}  // namespace spcube
