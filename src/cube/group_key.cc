#include "cube/group_key.h"

namespace spcube {

GroupKey GroupKey::Project(CuboidMask mask, std::span<const int64_t> tuple) {
  GroupKey key;
  key.mask = mask;
  key.values.reserve(static_cast<size_t>(MaskPopCount(mask)));
  for (size_t d = 0; d < tuple.size(); ++d) {
    if ((mask >> d) & 1) key.values.push_back(tuple[d]);
  }
  return key;
}

void GroupKey::EncodeTo(ByteWriter& writer) const {
  writer.PutVarint(mask);
  writer.PutI64Vector(values);
}

Status GroupKey::DecodeFrom(ByteReader& reader, GroupKey* out) {
  uint64_t mask = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&mask));
  out->mask = static_cast<CuboidMask>(mask);
  SPCUBE_RETURN_IF_ERROR(reader.GetI64Vector(&out->values));
  if (static_cast<int>(out->values.size()) != MaskPopCount(out->mask)) {
    return Status::Corruption("group key arity does not match mask");
  }
  return Status::OK();
}

std::string GroupKey::ToString(int num_dims) const {
  std::string out = "(";
  size_t vi = 0;
  for (int d = 0; d < num_dims; ++d) {
    if (d > 0) out += ", ";
    if ((mask >> d) & 1) {
      out += std::to_string(values[vi++]);
    } else {
      out += "*";
    }
  }
  out += ")";
  return out;
}

int CompareOnCuboid(CuboidMask mask, std::span<const int64_t> a,
                    std::span<const int64_t> b) {
  for (size_t d = 0; d < a.size(); ++d) {
    if (((mask >> d) & 1) == 0) continue;
    if (a[d] < b[d]) return -1;
    if (a[d] > b[d]) return 1;
  }
  return 0;
}

int CompareTupleToKey(CuboidMask mask, std::span<const int64_t> tuple,
                      const GroupKey& key) {
  size_t vi = 0;
  for (size_t d = 0; d < tuple.size(); ++d) {
    if (((mask >> d) & 1) == 0) continue;
    const int64_t kv = key.values[vi++];
    if (tuple[d] < kv) return -1;
    if (tuple[d] > kv) return 1;
  }
  return 0;
}

}  // namespace spcube
