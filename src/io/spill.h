#ifndef SPCUBE_IO_SPILL_H_
#define SPCUBE_IO_SPILL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/io_fault.h"

namespace spcube {

/// Creates uniquely-named files under a private temporary directory and
/// removes the directory on destruction. Each simulated worker gets one for
/// its shuffle spills, mirroring a Hadoop task's local scratch space.
class TempFileManager {
 public:
  /// `tag` appears in the directory name for debuggability.
  explicit TempFileManager(const std::string& tag);
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh path inside the managed directory (file not created).
  std::string NextPath();

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::atomic<int64_t> counter_{0};
};

/// Writes records to a local file as [varint length][u32 crc32c][payload]
/// (docs/INTERNALS.md §13: the length is a LEB128 varint, so small payloads
/// pay 1 frame length byte instead of 8). Spill runs hand this writer one
/// *block* of delta-encoded records per Append (SpillBlockEncoder), so the
/// frame + checksum amortize across the block; the per-payload checksum
/// lets readers detect corruption of the run both at rest and in
/// (simulated) transfer.
class SpillWriter {
 public:
  explicit SpillWriter(std::string path);
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  Status Open();
  Status Append(std::string_view record);
  /// Flushes and closes; further Appends are invalid.
  Status Close();

  const std::string& path() const { return path_; }
  int64_t bytes_written() const { return bytes_written_; }
  int64_t record_count() const { return record_count_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  int64_t bytes_written_ = 0;
  int64_t record_count_ = 0;
};

/// Streams the records of a spill file back in write order, verifying each
/// record's checksum. With a fault injector installed, a mismatch caused by
/// an injected in-flight corruption is recovered by re-fetching the pristine
/// on-disk bytes (a reducer re-requesting the map output segment); a
/// mismatch in the bytes actually on disk is unrecoverable and surfaces as
/// Corruption.
class SpillReader {
 public:
  explicit SpillReader(std::string path);
  ~SpillReader();

  SpillReader(const SpillReader&) = delete;
  SpillReader& operator=(const SpillReader&) = delete;

  Status Open();

  /// Installs the corruption model for subsequent reads. `mismatch_counter`
  /// (may be null) is incremented once per detected-and-recovered mismatch;
  /// it is owned by the caller and must outlive the reader. `resource` is
  /// the identity fed to the injector's decision hash; pass a stable logical
  /// name (job/task/attempt/run) so injection is reproducible — host temp
  /// paths embed the pid and a process-global counter. Empty falls back to
  /// the file path.
  void SetFaultInjection(IoFaultInjector* injector, int64_t* mismatch_counter,
                         std::string resource = "");

  /// Reads the next record into `*record`. Returns true and OK status on
  /// success; false with OK status at end of file; false with error status
  /// on I/O failure or corruption.
  Result<bool> Next(std::string* record);

  Status Close();

 private:
  std::string path_;
  std::string resource_;
  std::FILE* file_ = nullptr;
  IoFaultInjector* injector_ = nullptr;
  int64_t* mismatch_counter_ = nullptr;
  uint64_t next_record_index_ = 0;
};

/// Deletes a file from the local filesystem, ignoring missing files.
void RemoveFileIfExists(const std::string& path);

}  // namespace spcube

#endif  // SPCUBE_IO_SPILL_H_
