#ifndef SPCUBE_IO_DFS_H_
#define SPCUBE_IO_DFS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/io_fault.h"

namespace spcube {

/// A process-local stand-in for the distributed file system the paper's
/// cluster shares (HDFS). It stores named immutable byte blobs and is safe
/// for concurrent access by the simulated workers. The MapReduce engine uses
/// it for job inputs/outputs; the SP-Cube driver uses it to broadcast the
/// serialized SP-Sketch to every worker, exactly as the paper describes
/// ("the sketch is stored in the distributed file system to be later cached
/// by all machines").
///
/// Every blob carries a CRC32C computed at write time. Reads verify the
/// checksum against the delivered bytes and re-fetch on mismatch (HDFS's
/// per-block checksum protocol); with a fault injector installed this is
/// what turns in-flight corruption into a counted, recovered event rather
/// than silent data loss. Corruption that survives every re-fetch surfaces
/// as a Corruption status.
///
/// With SetCompression(true), writes store BlockCodec-compressed blobs.
/// Compression sits *under* the CRC layer and *above* fault injection
/// (docs/INTERNALS.md §13): the checksum covers the stored (compressed)
/// bytes, injected corruption strikes those same bytes in flight, and
/// decoding happens only after a fetch passes the checksum. TotalBytes
/// reports stored bytes — the modeled transfer/storage cost — while
/// TotalLogicalBytes reports the pre-compression payload.
class DistributedFileSystem {
 public:
  DistributedFileSystem() = default;

  DistributedFileSystem(const DistributedFileSystem&) = delete;
  DistributedFileSystem& operator=(const DistributedFileSystem&) = delete;

  /// Creates a file. Fails with AlreadyExists if the path is taken.
  Status Write(const std::string& path, std::string contents);

  /// Replaces a file, creating it if absent.
  Status Overwrite(const std::string& path, std::string contents);

  /// Appends to a file, creating it if absent.
  Status Append(const std::string& path, std::string_view contents);

  /// Reads a whole file, verifying its checksum (re-fetching on mismatch).
  Result<std::string> Read(const std::string& path) const;

  /// Read with bounded retry of *transient* I/O errors (an injected fault
  /// or a flaky replica). Other verdicts — NotFound, unrecoverable
  /// Corruption — propagate immediately; retrying cannot change them. Use
  /// this for driver-side reads that are not covered by task-attempt retry.
  Result<std::string> ReadWithRetry(const std::string& path,
                                    int max_attempts = 3) const;

  bool Exists(const std::string& path) const;

  Status Delete(const std::string& path);

  /// Removes every file whose path starts with `prefix`; returns the number
  /// of files removed.
  int64_t DeletePrefix(const std::string& prefix);

  /// Lists paths with the given prefix, in lexicographic order.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Sum of stored file sizes under a prefix (pass "" for the whole FS).
  /// Compressed blobs count at their compressed size — this is the modeled
  /// storage/transfer cost.
  int64_t TotalBytes(const std::string& prefix) const;

  /// Sum of logical (pre-compression) payload sizes under a prefix. Equal to
  /// TotalBytes when compression is off.
  int64_t TotalLogicalBytes(const std::string& prefix) const;

  int64_t file_count() const;

  /// Enables/disables BlockCodec compression for subsequent writes (Write,
  /// Overwrite, Append). Already-stored blobs are unaffected; Append
  /// re-encodes the blob it touches under the current setting.
  void SetCompression(bool enabled);

  /// Verifies a blob's stored bytes against its checksum in place, without
  /// the whole-blob copy (and decode) a Read pays. For checksum-only
  /// verification probes; does not model a transfer, so the fault injector
  /// is not consulted.
  Status VerifyChecksum(const std::string& path) const;

  /// Installs (or clears, with nullptr) the fault model consulted on reads.
  /// The injector must outlive the file system or be cleared first.
  void SetFaultInjector(IoFaultInjector* injector);

  /// Checksum mismatches observed on reads (each re-fetch that still
  /// mismatches counts once).
  int64_t checksum_mismatches() const;

  /// Reads that returned OK only after at least one mismatched fetch.
  int64_t reads_recovered() const;

 private:
  struct Blob {
    std::string data;            // stored bytes (compressed when `compressed`)
    int64_t logical_size = 0;    // pre-compression payload bytes
    uint32_t crc = 0;            // CRC32C of `data` (the stored bytes)
    bool compressed = false;
  };

  /// Encodes logical contents into a blob under the current compression
  /// setting and stamps its checksum.
  Blob MakeBlob(std::string contents) const SPCUBE_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Blob> files_ SPCUBE_GUARDED_BY(mu_);
  bool compress_writes_ SPCUBE_GUARDED_BY(mu_) = false;
  IoFaultInjector* injector_ SPCUBE_GUARDED_BY(mu_) = nullptr;
  mutable int64_t checksum_mismatches_ SPCUBE_GUARDED_BY(mu_) = 0;
  mutable int64_t reads_recovered_ SPCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace spcube

#endif  // SPCUBE_IO_DFS_H_
