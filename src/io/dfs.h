#ifndef SPCUBE_IO_DFS_H_
#define SPCUBE_IO_DFS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spcube {

/// A process-local stand-in for the distributed file system the paper's
/// cluster shares (HDFS). It stores named immutable byte blobs and is safe
/// for concurrent access by the simulated workers. The MapReduce engine uses
/// it for job inputs/outputs; the SP-Cube driver uses it to broadcast the
/// serialized SP-Sketch to every worker, exactly as the paper describes
/// ("the sketch is stored in the distributed file system to be later cached
/// by all machines").
class DistributedFileSystem {
 public:
  DistributedFileSystem() = default;

  DistributedFileSystem(const DistributedFileSystem&) = delete;
  DistributedFileSystem& operator=(const DistributedFileSystem&) = delete;

  /// Creates a file. Fails with AlreadyExists if the path is taken.
  Status Write(const std::string& path, std::string contents);

  /// Replaces a file, creating it if absent.
  Status Overwrite(const std::string& path, std::string contents);

  /// Appends to a file, creating it if absent.
  Status Append(const std::string& path, std::string_view contents);

  /// Reads a whole file.
  Result<std::string> Read(const std::string& path) const;

  bool Exists(const std::string& path) const;

  Status Delete(const std::string& path);

  /// Removes every file whose path starts with `prefix`; returns the number
  /// of files removed.
  int64_t DeletePrefix(const std::string& prefix);

  /// Lists paths with the given prefix, in lexicographic order.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Sum of file sizes under a prefix (pass "" for the whole FS).
  int64_t TotalBytes(const std::string& prefix) const;

  int64_t file_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
};

}  // namespace spcube

#endif  // SPCUBE_IO_DFS_H_
