#include "io/spill.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/hash.h"
#include "common/logging.h"

namespace spcube {
namespace {

std::atomic<int64_t> g_temp_dir_counter{0};

/// Re-fetches of one spill record a reader attempts before giving up on a
/// checksum mismatch (mirrors the DFS fetch-retry bound).
constexpr int kMaxFetchAttempts = 6;

}  // namespace

TempFileManager::TempFileManager(const std::string& tag) {
  // Relaxed: a pure uniqueness counter — no memory is published through it,
  // the distinct id is all that matters (docs/INTERNALS.md §12).
  const int64_t id = g_temp_dir_counter.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
  dir_ = (base / ("spcube_" + tag + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(id)))
             .string();
  std::filesystem::create_directories(dir_, ec);
  SPCUBE_CHECK(!ec) << "failed to create temp dir " << dir_;
}

TempFileManager::~TempFileManager() {
  std::error_code ec;
  std::filesystem::remove_all(dir_, ec);
}

std::string TempFileManager::NextPath() {
  // Relaxed, same contract as g_temp_dir_counter: uniqueness only.
  const int64_t id = counter_.fetch_add(1, std::memory_order_relaxed);
  return dir_ + "/spill_" + std::to_string(id) + ".bin";
}

SpillWriter::SpillWriter(std::string path) : path_(std::move(path)) {}

SpillWriter::~SpillWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillWriter::Open() {
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open spill file for write: " + path_);
  }
  return Status::OK();
}

Status SpillWriter::Append(std::string_view record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill writer not open");
  }
  uint64_t len = record.size();
  uint8_t frame[10];
  size_t frame_len = 0;
  while (len >= 0x80) {
    frame[frame_len++] = static_cast<uint8_t>(len) | 0x80;
    len >>= 7;
  }
  frame[frame_len++] = static_cast<uint8_t>(len);
  const uint32_t crc = Crc32c(record);
  if (std::fwrite(frame, 1, frame_len, file_) != frame_len ||
      std::fwrite(&crc, sizeof(crc), 1, file_) != 1 ||
      (!record.empty() &&
       std::fwrite(record.data(), 1, record.size(), file_) !=
           record.size())) {
    return Status::IoError("short write to spill file: " + path_);
  }
  bytes_written_ +=
      static_cast<int64_t>(frame_len + sizeof(crc) + record.size());
  ++record_count_;
  return Status::OK();
}

Status SpillWriter::Close() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill writer not open");
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed for " + path_);
  return Status::OK();
}

SpillReader::SpillReader(std::string path) : path_(std::move(path)) {}

SpillReader::~SpillReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillReader::Open() {
  file_ = std::fopen(path_.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IoError("cannot open spill file for read: " + path_);
  }
  return Status::OK();
}

void SpillReader::SetFaultInjection(IoFaultInjector* injector,
                                    int64_t* mismatch_counter,
                                    std::string resource) {
  injector_ = injector;
  mismatch_counter_ = mismatch_counter;
  resource_ = resource.empty() ? path_ : std::move(resource);
}

Result<bool> SpillReader::Next(std::string* record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("spill reader not open");
  }
  // Frame length is a LEB128 varint, read byte-wise: EOF before the first
  // byte is a clean end of run; EOF mid-varint is a truncated record.
  int c = std::fgetc(file_);
  if (c == EOF) {
    if (std::feof(file_)) return false;
    return Status::IoError("read failed for " + path_);
  }
  uint64_t len = 0;
  int shift = 0;
  for (int i = 0;; ++i) {
    const auto byte = static_cast<uint8_t>(c);
    len |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    if (i >= 9) {
      return Status::Corruption("spill record length varint too long in " +
                                path_);
    }
    shift += 7;
    c = std::fgetc(file_);
    if (c == EOF) {
      return Status::Corruption("truncated spill record header in " + path_);
    }
  }
  uint32_t crc = 0;
  if (std::fread(&crc, sizeof(crc), 1, file_) != 1) {
    return Status::Corruption("truncated spill record header in " + path_);
  }
  record->resize(len);
  if (len > 0 && std::fread(record->data(), 1, len, file_) != len) {
    return Status::Corruption("truncated spill record in " + path_);
  }
  const uint64_t item = next_record_index_++;
  if (injector_ == nullptr) {
    if (Crc32c(*record) != crc) {
      return Status::Corruption("spill record failed checksum in " + path_);
    }
    return true;
  }
  // Model the shuffle fetch: the bytes on disk are the mapper's committed
  // output; each fetch delivers a copy the injector may corrupt in flight,
  // and a mismatch re-fetches the same segment.
  for (int fetch = 0; fetch < kMaxFetchAttempts; ++fetch) {
    std::string delivered = *record;
    injector_->MaybeCorrupt(resource_, item, fetch, &delivered);
    if (Crc32c(delivered) == crc) {
      *record = std::move(delivered);
      return true;
    }
    if (mismatch_counter_ != nullptr) ++*mismatch_counter_;
  }
  return Status::Corruption("spill record failed checksum after " +
                            std::to_string(kMaxFetchAttempts) +
                            " fetch attempts in " + path_);
}

Status SpillReader::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed for " + path_);
  return Status::OK();
}

void RemoveFileIfExists(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace spcube
