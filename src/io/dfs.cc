#include "io/dfs.h"

#include <algorithm>

#include "common/block_codec.h"
#include "common/hash.h"

namespace spcube {
namespace {

/// Re-fetches of the same blob a reader is willing to attempt before
/// declaring the corruption persistent.
constexpr int kMaxFetchAttempts = 6;

}  // namespace

DistributedFileSystem::Blob DistributedFileSystem::MakeBlob(
    std::string contents) const SPCUBE_REQUIRES(mu_) {
  Blob blob;
  blob.logical_size = static_cast<int64_t>(contents.size());
  if (compress_writes_) {
    BlockCodec::Compress(contents, &blob.data);
    blob.compressed = true;
  } else {
    blob.data = std::move(contents);
  }
  blob.crc = Crc32c(blob.data);
  return blob;
}

Status DistributedFileSystem::Write(const std::string& path,
                                    std::string contents) {
  MutexLock lock(&mu_);
  auto [it, inserted] =
      files_.try_emplace(path, MakeBlob(std::move(contents)));
  (void)it;
  if (!inserted) return Status::AlreadyExists("dfs file exists: " + path);
  return Status::OK();
}

Status DistributedFileSystem::Overwrite(const std::string& path,
                                        std::string contents) {
  MutexLock lock(&mu_);
  files_[path] = MakeBlob(std::move(contents));
  return Status::OK();
}

Status DistributedFileSystem::Append(const std::string& path,
                                     std::string_view contents) {
  MutexLock lock(&mu_);
  Blob& blob = files_[path];
  if (!blob.compressed && !compress_writes_) {
    blob.data.append(contents);
    blob.logical_size = static_cast<int64_t>(blob.data.size());
    blob.crc = Crc32c(blob.data);
    return Status::OK();
  }
  // Append is a write, so the result is re-encoded under the current
  // compression setting: decode the existing payload (stored bytes are
  // trusted at rest — corruption is modeled in flight), extend, re-encode.
  std::string payload;
  if (blob.compressed) {
    SPCUBE_RETURN_IF_ERROR(BlockCodec::Decompress(blob.data, &payload));
  } else {
    payload = std::move(blob.data);
  }
  payload.append(contents);
  blob = MakeBlob(std::move(payload));
  return Status::OK();
}

Result<std::string> DistributedFileSystem::Read(const std::string& path)
    const {
  MutexLock lock(&mu_);
  if (injector_ != nullptr) {
    SPCUBE_RETURN_IF_ERROR(injector_->OnDfsRead(path));
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  const Blob& blob = it->second;
  if (injector_ == nullptr) {
    if (!blob.compressed) return blob.data;
    std::string decoded;
    SPCUBE_RETURN_IF_ERROR(BlockCodec::Decompress(blob.data, &decoded));
    return decoded;
  }

  // Model the transfer: each fetch delivers a copy of the *stored* bytes the
  // injector may corrupt in flight; a checksum mismatch triggers a re-fetch
  // of the same blob. Decoding happens only after a fetch passes the
  // checksum — compression sits under CRC, above fault injection (§13).
  bool mismatched = false;
  for (int fetch = 0; fetch < kMaxFetchAttempts; ++fetch) {
    std::string delivered = blob.data;
    injector_->MaybeCorrupt("dfs:" + path, /*item=*/0, fetch, &delivered);
    if (Crc32c(delivered) == blob.crc) {
      if (mismatched) ++reads_recovered_;
      if (!blob.compressed) return delivered;
      std::string decoded;
      SPCUBE_RETURN_IF_ERROR(BlockCodec::Decompress(delivered, &decoded));
      return decoded;
    }
    ++checksum_mismatches_;
    mismatched = true;
  }
  return Status::Corruption("dfs blob failed checksum after " +
                            std::to_string(kMaxFetchAttempts) +
                            " fetch attempts: " + path);
}

Result<std::string> DistributedFileSystem::ReadWithRetry(
    const std::string& path, int max_attempts) const {
  Status last_error = Status::OK();
  for (int attempt = 0; attempt < std::max(1, max_attempts); ++attempt) {
    auto read = Read(path);
    if (read.ok()) return read;
    last_error = read.status();
    if (!last_error.IsIoError()) break;
  }
  return last_error;
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Status DistributedFileSystem::Delete(const std::string& path) {
  MutexLock lock(&mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return Status::OK();
}

int64_t DistributedFileSystem::DeletePrefix(const std::string& prefix) {
  MutexLock lock(&mu_);
  auto it = files_.lower_bound(prefix);
  int64_t removed = 0;
  while (it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
    ++removed;
  }
  return removed;
}

std::vector<std::string> DistributedFileSystem::List(
    const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

int64_t DistributedFileSystem::TotalBytes(const std::string& prefix) const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += static_cast<int64_t>(it->second.data.size());
  }
  return total;
}

int64_t DistributedFileSystem::TotalLogicalBytes(
    const std::string& prefix) const {
  MutexLock lock(&mu_);
  int64_t total = 0;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second.logical_size;
  }
  return total;
}

int64_t DistributedFileSystem::file_count() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(files_.size());
}

void DistributedFileSystem::SetCompression(bool enabled) {
  MutexLock lock(&mu_);
  compress_writes_ = enabled;
}

Status DistributedFileSystem::VerifyChecksum(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  if (Crc32c(it->second.data) != it->second.crc) {
    return Status::Corruption("dfs blob at rest fails checksum: " + path);
  }
  return Status::OK();
}

void DistributedFileSystem::SetFaultInjector(IoFaultInjector* injector) {
  MutexLock lock(&mu_);
  injector_ = injector;
}

int64_t DistributedFileSystem::checksum_mismatches() const {
  MutexLock lock(&mu_);
  return checksum_mismatches_;
}

int64_t DistributedFileSystem::reads_recovered() const {
  MutexLock lock(&mu_);
  return reads_recovered_;
}

}  // namespace spcube
