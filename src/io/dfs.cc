#include "io/dfs.h"

namespace spcube {

Status DistributedFileSystem::Write(const std::string& path,
                                    std::string contents) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = files_.try_emplace(path, std::move(contents));
  (void)it;
  if (!inserted) return Status::AlreadyExists("dfs file exists: " + path);
  return Status::OK();
}

Status DistributedFileSystem::Overwrite(const std::string& path,
                                        std::string contents) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = std::move(contents);
  return Status::OK();
}

Status DistributedFileSystem::Append(const std::string& path,
                                     std::string_view contents) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path].append(contents);
  return Status::OK();
}

Result<std::string> DistributedFileSystem::Read(const std::string& path)
    const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return it->second;
}

bool DistributedFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status DistributedFileSystem::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("dfs file not found: " + path);
  }
  return Status::OK();
}

int64_t DistributedFileSystem::DeletePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.lower_bound(prefix);
  int64_t removed = 0;
  while (it != files_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = files_.erase(it);
    ++removed;
  }
  return removed;
}

std::vector<std::string> DistributedFileSystem::List(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

int64_t DistributedFileSystem::TotalBytes(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += static_cast<int64_t>(it->second.size());
  }
  return total;
}

int64_t DistributedFileSystem::file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(files_.size());
}

}  // namespace spcube
