#ifndef SPCUBE_IO_IO_FAULT_H_
#define SPCUBE_IO_IO_FAULT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace spcube {

/// Injection points the I/O layer exposes to a fault model. The concrete
/// deterministic plan lives in mapreduce/fault.h; io/ only depends on this
/// interface so the dependency direction stays io <- mapreduce. All methods
/// must be thread-safe and — for reproducibility — pure functions of the
/// call's coordinates, not of call order across threads.
class IoFaultInjector {
 public:
  virtual ~IoFaultInjector() = default;

  /// Consulted once per DFS read. A non-OK status models a transient block
  /// fetch failure (dead DataNode, network timeout); the caller surfaces it
  /// to the running task, whose attempt-level retry covers it.
  virtual Status OnDfsRead(const std::string& path) = 0;

  /// May corrupt `payload` in flight, modeling a bad transfer or a bad
  /// replica. `resource` names the blob or spill file, `item` the record
  /// index within it (0 for whole-blob reads) and `fetch_attempt` counts
  /// re-fetches of the same bytes after a checksum mismatch. Returns true
  /// iff the payload was mutated.
  virtual bool MaybeCorrupt(std::string_view resource, uint64_t item,
                            int fetch_attempt, std::string* payload) = 0;
};

}  // namespace spcube

#endif  // SPCUBE_IO_IO_FAULT_H_
