#include "core/sp_cube_tasks.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/cube_algorithm.h"
#include "cube/buc.h"
#include "relation/tuple_codec.h"

namespace spcube {
namespace {

Result<GroupKey> DecodeGroupKey(std::string_view bytes) {
  ByteReader reader(bytes);
  GroupKey key;
  SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
  return key;
}

/// Encodes into a caller-owned writer (cleared first); the returned view is
/// valid until the writer's next Clear. Emit copies the bytes into the
/// shuffle arena before returning, so one reusable writer per task suffices
/// — no per-emit string.
std::string_view EncodeGroupKey(const GroupKey& key, ByteWriter& writer) {
  writer.Clear();
  key.EncodeTo(writer);
  return writer.data();
}

}  // namespace

Result<std::unique_ptr<const SpSketch>> LoadSketch(
    DistributedFileSystem* dfs, const std::string& path) {
  if (dfs == nullptr) {
    return Status::FailedPrecondition("task has no DFS to load sketch from");
  }
  SPCUBE_ASSIGN_OR_RETURN(std::string bytes, dfs->Read(path));
  SPCUBE_ASSIGN_OR_RETURN(SpSketch sketch, SpSketch::Deserialize(bytes));
  return {std::make_unique<const SpSketch>(std::move(sketch))};
}

Result<std::unique_ptr<const SpSketch>> LoadSketchOrDegrade(
    DistributedFileSystem* dfs, const std::string& path, int num_dims,
    int num_partitions, bool* degraded) {
  *degraded = false;
  constexpr int kMaxLoadAttempts = 3;
  Status last_error = Status::OK();
  for (int attempt = 0; attempt < kMaxLoadAttempts; ++attempt) {
    auto loaded = LoadSketch(dfs, path);
    if (loaded.ok()) return loaded;
    last_error = loaded.status();
    if (last_error.code() == StatusCode::kCorruption) {
      // The stored bytes themselves are bad (or persistently corrupted in
      // flight): every participant sees the same verdict. Fall back to an
      // empty sketch — no skews, no partition elements — which computes the
      // cube exactly, only without skew handling or range balancing.
      SPCUBE_LOG(Warning) << "sketch at '" << path
                          << "' failed validation (" << last_error.message()
                          << "); degrading to hash partitioning";
      *degraded = true;
      return {std::make_unique<const SpSketch>(num_dims,
                                               std::max(1, num_partitions))};
    }
    if (!last_error.IsIoError()) break;  // NotFound etc.: not retryable.
  }
  return last_error;
}

int SketchRangePartitioner::Partition(std::string_view key,
                                      int num_reducers) const {
  auto decoded = DecodeGroupKey(key);
  if (!decoded.ok()) return 0;  // Corrupt keys cannot occur within the job.
  if (sketch_->IsSkewedKey(*decoded)) return 0;
  const int partition = sketch_->PartitionOfKey(*decoded);
  // Partitions are 0..k-1; reducers 1..k (0 is the skew reducer).
  return 1 + (partition % (num_reducers - 1));
}

int SkewAwareHashPartitioner::Partition(std::string_view key,
                                        int num_reducers) const {
  auto decoded = DecodeGroupKey(key);
  if (!decoded.ok()) return 0;
  if (sketch_->IsSkewedKey(*decoded)) return 0;
  return 1 + static_cast<int>(decoded->Hash() %
                              static_cast<uint64_t>(num_reducers - 1));
}

Status SpCubeMapper::Setup(const TaskContext& task) {
  SPCUBE_ASSIGN_OR_RETURN(
      sketch_, LoadSketchOrDegrade(task.dfs, sketch_path_, num_dims_,
                                   std::max(1, task.num_reducers - 1),
                                   &degraded_));
  return Status::OK();
}

Status SpCubeMapper::Map(const RelationView& input, int64_t row,
                         MapContext& context) {
  const Relation::RowRef tuple = input.row(row);
  const int64_t measure = input.measure(row);
  const Aggregator& agg = GetAggregator(aggregate_);

  emitted_masks_.clear();
  for (const CuboidMask mask : sketch_->MasksBfs()) {
    // Marking rule (Algorithm 3 lines 5/12): skip any group with an
    // already-emitted descendant — its reducer will derive it locally.
    bool marked = false;
    for (const CuboidMask emitted : emitted_masks_) {
      if (IsSubsetMask(emitted, mask)) {
        marked = true;
        break;
      }
    }
    if (marked) {
      ++nodes_marked_;
      continue;
    }
    ++nodes_visited_;

    if (sketch_->IsSkewedTuple(mask, tuple)) {
      // Skewed c-group: aggregate locally (lines 6-8). Skews are closed
      // downward, so no emitted descendant can exist and none is marked.
      GroupKey key = GroupKey::Project(mask, tuple);
      ++skew_adds_;
      if (tuning_.aggregate_skews_in_mapper) {
        agg.Add(skew_partials_[std::move(key)], measure);
      } else {
        // Ablation: ship one singleton partial per occurrence.
        AggState single = agg.Empty();
        agg.Add(single, measure);
        value_writer_.Clear();
        single.EncodeTo(value_writer_);
        SPCUBE_RETURN_IF_ERROR(context.Emit(EncodeGroupKey(key, key_writer_),
                                            value_writer_.data()));
      }
      continue;
    }

    // Minimal non-skewed group: ship the tuple to its range reducer
    // (lines 9-12) and mark all ancestors.
    const GroupKey key = GroupKey::Project(mask, tuple);
    ++minimal_emits_;
    value_writer_.Clear();
    EncodeTupleTo(value_writer_, tuple, measure);
    SPCUBE_RETURN_IF_ERROR(context.Emit(EncodeGroupKey(key, key_writer_),
                                        value_writer_.data()));
    if (tuning_.emit_minimal_groups_only) {
      emitted_masks_.push_back(mask);
    }
    // else: ablation — no marking, every non-skewed group is emitted.
  }
  return Status::OK();
}

Status SpCubeMapper::Finish(MapContext& context) {
  // Ship the per-mapper partial aggregates of skewed groups (lines 16-20);
  // the partitioner routes them to the skew reducer. Emitted in key order,
  // not hash-table order: the emitted sequence reaches spill runs and the
  // shuffle wire, and modeled bytes must not depend on the hash function
  // or insertion history (docs/INTERNALS.md §14).
  std::vector<std::pair<const GroupKey*, const AggState*>> ordered;
  ordered.reserve(skew_partials_.size());
  for (const auto& entry : skew_partials_) {
    ordered.emplace_back(&entry.first, &entry.second);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (const auto& [key, state] : ordered) {
    value_writer_.Clear();
    state->EncodeTo(value_writer_);
    SPCUBE_RETURN_IF_ERROR(context.Emit(EncodeGroupKey(*key, key_writer_),
                                        value_writer_.data()));
  }
  skew_partials_.clear();
  context.IncrementCounter("spcube.lattice_nodes_visited", nodes_visited_);
  context.IncrementCounter("spcube.lattice_nodes_marked", nodes_marked_);
  context.IncrementCounter("spcube.skew_tuple_aggregations", skew_adds_);
  context.IncrementCounter("spcube.minimal_group_emits", minimal_emits_);
  if (degraded_) {
    context.IncrementCounter("spcube.sketch_degraded_fallbacks", 1);
  }
  nodes_visited_ = nodes_marked_ = skew_adds_ = minimal_emits_ = 0;
  return Status::OK();
}

Status SpCubeReducer::Setup(const TaskContext& task) {
  SPCUBE_ASSIGN_OR_RETURN(
      sketch_, LoadSketchOrDegrade(task.dfs, sketch_path_, num_dims_,
                                   std::max(1, task.num_reducers - 1),
                                   &degraded_));
  is_skew_reducer_ = task.reduce_partition == 0;
  return Status::OK();
}

Status SpCubeReducer::Finish(ReduceContext& context) {
  if (degraded_) {
    context.IncrementCounter("spcube.sketch_degraded_fallbacks", 1);
  }
  return Status::OK();
}

Status SpCubeReducer::Reduce(const std::string& key, ValueStream& values,
                             ReduceContext& context) {
  SPCUBE_ASSIGN_OR_RETURN(GroupKey group, DecodeGroupKey(key));
  if (is_skew_reducer_) {
    return ReduceSkewedGroup(group, values, context);
  }
  return ReduceRangeGroup(group, values, context);
}

Status SpCubeReducer::ReduceSkewedGroup(const GroupKey& group,
                                        ValueStream& values,
                                        ReduceContext& context) {
  // Merge at most k partial states (one per mapper; more under the
  // no-mapper-aggregation ablation).
  const Aggregator& agg = GetAggregator(aggregate_);
  AggState total = agg.Empty();
  std::string value;
  for (;;) {
    SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
    if (!more) break;
    ByteReader reader(value);
    AggState partial;
    SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(reader, &partial));
    agg.Merge(total, partial);
  }
  if (min_count_ > 1 && aggregate_ == AggregateKind::kCount &&
      total.v0 < min_count_) {
    return Status::OK();
  }
  return context.Output(EncodeGroupKey(group, key_writer_),
                        EncodeCubeValueTo(agg.Finalize(total), value_writer_));
}

Status SpCubeReducer::ReduceRangeGroup(const GroupKey& group,
                                       ValueStream& values,
                                       ReduceContext& context) {
  const Aggregator& agg = GetAggregator(aggregate_);

  if (!tuning_.emit_minimal_groups_only) {
    // Ablation mode: every non-skewed group was shipped explicitly, so just
    // aggregate this group's tuples, streaming.
    AggState state = agg.Empty();
    std::string value;
    std::vector<int64_t> dims;
    int64_t measure = 0;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      SPCUBE_RETURN_IF_ERROR(DecodeTuple(value, &dims, &measure));
      agg.Add(state, measure);
    }
    if (min_count_ > 1 && aggregate_ == AggregateKind::kCount &&
        state.v0 < min_count_) {
      return Status::OK();
    }
    return context.Output(
        EncodeGroupKey(group, key_writer_),
        EncodeCubeValueTo(agg.Finalize(state), value_writer_));
  }

  // Materialize set(group) — O(m) w.h.p. by Prop. 4.6 — then compute the
  // group and every ancestor it owns with local BUC (Observation 2.6).
  Relation local(MakeAnonymousSchema(num_dims_));
  std::string value;
  std::vector<int64_t> dims;
  int64_t measure = 0;
  for (;;) {
    SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
    if (!more) break;
    SPCUBE_RETURN_IF_ERROR(DecodeTuple(value, &dims, &measure));
    if (static_cast<int>(dims.size()) != num_dims_) {
      return Status::Corruption("tuple arity mismatch in range reducer");
    }
    local.AppendRow(dims, measure);
  }
  if (tuning_.dictionary_encode_partitions) {
    local.DictionaryEncode();
  }

  int64_t owned = 0;
  int64_t rejected = 0;
  Status status = Status::OK();
  BucOptions buc_options;
  // Iceberg pruning composes with BUC natively: partitions below the
  // threshold are neither reported nor expanded.
  if (min_count_ > 1 && aggregate_ == AggregateKind::kCount) {
    buc_options.min_support = min_count_;
  }
  BucCompute(RelationView(local), group.mask, agg, buc_options,
             [&](const GroupKey& ancestor, const AggState& state) {
               if (!status.ok()) return;
               if (min_count_ > 1 &&
                   aggregate_ == AggregateKind::kCount &&
                   state.v0 < min_count_) {
                 return;
               }
               // Ownership rule (§5.1): compute an ancestor here only if
               // this group is its BFS-smallest non-skewed descendant;
               // otherwise another reducer (or the skew path) produces it.
               if (sketch_->OwnerMask(ancestor) != group.mask) {
                 ++rejected;
                 return;
               }
               ++owned;
               status = context.Output(
                   EncodeGroupKey(ancestor, key_writer_),
                   EncodeCubeValueTo(agg.Finalize(state), value_writer_));
             });
  context.IncrementCounter("spcube.owned_groups_output", owned);
  context.IncrementCounter("spcube.ownership_rejections", rejected);
  return status;
}

}  // namespace spcube
