#ifndef SPCUBE_CORE_SP_CUBE_H_
#define SPCUBE_CORE_SP_CUBE_H_

#include <string>
#include <vector>

#include "core/cube_algorithm.h"
#include "core/sp_cube_tasks.h"
#include "sketch/builder.h"

namespace spcube {

/// Configuration of the SP-Cube driver.
struct SpCubeOptions {
  /// Sketch construction parameters; num_partitions and memory_tuples_m are
  /// derived from the engine (k = num_workers, m = n/k) when left at their
  /// defaults of 0.
  SketchBuildConfig sketch;

  /// Algorithm ablation switches (defaults reproduce the paper).
  SpCubeTuning tuning;

  /// Use the sketch's range partitioner (paper) vs hash partitioning of
  /// non-skewed keys (ablation).
  bool use_range_partitioner = true;

  /// Run the cube round's reducers under MemoryPolicy::kStrict, modeling
  /// fully in-memory reduce-side processing: with an accurate sketch the
  /// range partitions fit the budget by construction, but a stale sketch
  /// (distribution drift, see RunWithSketchFrom) or injected memory
  /// pressure can overflow one. Paired with the engine's adaptive split
  /// recovery (MakeCubeRecoverySpec) so an overflow degrades instead of
  /// failing, for the distributive aggregates.
  bool strict_reducer_memory = false;
};

/// The paper's algorithm (§5): round 1 builds the SP-Sketch from a Bernoulli
/// sample; round 2 computes the cube — mappers partially aggregate skewed
/// c-groups and route each tuple to the reducers of its minimal non-skewed
/// groups; reducers run BUC locally over each received group's tuple set and
/// a dedicated reducer merges the skew partials.
class SpCubeAlgorithm : public CubeAlgorithm {
 public:
  explicit SpCubeAlgorithm(SpCubeOptions options = {})
      : options_(options) {}

  std::string name() const override { return "sp-cube"; }

  Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                            const CubeRunOptions& options) override;

  /// Sketch reuse (paper §4: "once constructed, the same SP-Sketch can be
  /// used to efficiently compute multiple aggregate functions"): builds
  /// the sketch once, then runs one cube round per entry of `options` —
  /// e.g. count, sum and avg over the same relation for the price of a
  /// single sampling round. Returns one output per entry; the sketch
  /// round's metrics are attached to the first.
  Result<std::vector<CubeRunOutput>> RunManyAggregates(
      Engine& engine, const Relation& input,
      const std::vector<CubeRunOptions>& options);

  /// Distribution-drift scenario (ROADMAP item 5): builds the sketch from
  /// `sketch_input` (an earlier batch of the stream) but cubes `input` (the
  /// current, drifted batch). A stale sketch misclassifies the new heavy
  /// hitters, so range partitions can be badly imbalanced — exactly the
  /// regime the reducer-imbalance alert and strict-memory split recovery
  /// exist for. The cube stays exact for `input` regardless of sketch
  /// quality (the sketch only steers partitioning). Both relations must
  /// have the same dimensionality.
  Result<CubeRunOutput> RunWithSketchFrom(Engine& engine,
                                          const Relation& sketch_input,
                                          const Relation& input,
                                          const CubeRunOptions& options);

  /// Size in bytes of the sketch built by the last Run (Figures 5c, 6c).
  int64_t last_sketch_bytes() const { return last_sketch_bytes_; }
  /// Number of skewed c-groups the last sketch recorded.
  int64_t last_sketch_skews() const { return last_sketch_skews_; }

 private:
  /// Round 1; publishes the sketch at the returned DFS path.
  Result<JobMetrics> RunSketchRound(Engine& engine, const Relation& input,
                                    const SketchBuildConfig& config,
                                    const std::string& sketch_path);
  /// Round 2 for one aggregate, against an already-published sketch.
  Result<CubeRunOutput> RunCubeRound(Engine& engine, const Relation& input,
                                     const CubeRunOptions& options,
                                     const std::string& sketch_path);

  SpCubeOptions options_;
  int64_t last_sketch_bytes_ = 0;
  int64_t last_sketch_skews_ = 0;
  int64_t run_counter_ = 0;
};

}  // namespace spcube

#endif  // SPCUBE_CORE_SP_CUBE_H_
