#include "core/cube_algorithm.h"

#include <algorithm>
#include <memory>

#include "common/bytes.h"
#include "cube/group_key.h"

namespace spcube {
namespace {

/// Merge round of adaptive split recovery: re-aggregates one output cell's
/// partial final doubles (one per sub-partition that saw the cell) back
/// into the exact unsplit value. Only constructed for distributive kinds —
/// MakeCubeRecoverySpec rejects the rest.
class MergeFinalCellsReducer : public Reducer {
 public:
  explicit MergeFinalCellsReducer(AggregateKind kind) : kind_(kind) {}

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    double merged = 0.0;
    bool first = true;
    std::string raw;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&raw));
      if (!more) break;
      SPCUBE_ASSIGN_OR_RETURN(double value, DecodeCubeValue(raw));
      if (first) {
        merged = value;
        first = false;
        continue;
      }
      switch (kind_) {
        case AggregateKind::kCount:
        case AggregateKind::kSum:
          merged += value;
          break;
        case AggregateKind::kMin:
          merged = std::min(merged, value);
          break;
        case AggregateKind::kMax:
          merged = std::max(merged, value);
          break;
        case AggregateKind::kAvg:
          return Status::Internal(
              "avg partials reached the merge reducer; "
              "MakeCubeRecoverySpec must reject avg");
      }
    }
    if (first) return Status::OK();  // empty group cannot occur, but be safe
    return context.Output(key, EncodeCubeValueTo(merged, encode_));
  }

 private:
  AggregateKind kind_;
  ByteWriter encode_;
};

}  // namespace

Status ValidateCubeRunOptions(const CubeRunOptions& options) {
  if (options.iceberg_min_count < 1) {
    return Status::InvalidArgument("iceberg_min_count must be >= 1");
  }
  if (options.iceberg_min_count > 1 &&
      options.aggregate != AggregateKind::kCount) {
    return Status::InvalidArgument(
        "iceberg cubes are defined on group cardinality; use the count "
        "aggregate");
  }
  return Status::OK();
}

std::string EncodeCubeValue(double value) {
  ByteWriter writer;
  writer.PutDouble(value);
  return writer.TakeData();
}

std::string_view EncodeCubeValueTo(double value, ByteWriter& writer) {
  writer.Clear();
  writer.PutDouble(value);
  return writer.data();
}

Result<double> DecodeCubeValue(std::string_view bytes) {
  ByteReader reader(bytes);
  double value = 0.0;
  SPCUBE_RETURN_IF_ERROR(reader.GetDouble(&value));
  return value;
}

Result<CubeResult> CollectCube(const VectorOutputCollector& collector,
                               int num_dims) {
  CubeResult cube(num_dims);
  for (const VectorOutputCollector::Entry& entry : collector.entries()) {
    ByteReader reader(entry.key);
    GroupKey key;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
    SPCUBE_ASSIGN_OR_RETURN(double value, DecodeCubeValue(entry.value));
    SPCUBE_RETURN_IF_ERROR(cube.AddGroup(std::move(key), value));
  }
  return cube;
}

RecoverySpec MakeCubeRecoverySpec(AggregateKind kind,
                                  int64_t iceberg_min_count) {
  RecoverySpec recovery;
  if (kind == AggregateKind::kAvg) {
    recovery.reject_reason =
        "the avg aggregate finalizes to a non-mergeable quotient, so "
        "sub-partition partial outputs cannot be recombined exactly";
    return recovery;
  }
  if (iceberg_min_count > 1) {
    recovery.reject_reason =
        "iceberg thresholds are defined on whole-group cardinality; "
        "filtering sub-partition partial counts would drop cells that "
        "globally pass the threshold";
    return recovery;
  }
  recovery.allow_partition_split = true;
  recovery.merge_reducer_factory = [kind]() -> std::unique_ptr<Reducer> {
    return std::make_unique<MergeFinalCellsReducer>(kind);
  };
  return recovery;
}

}  // namespace spcube
