#include "core/cube_algorithm.h"

#include "common/bytes.h"
#include "cube/group_key.h"

namespace spcube {

Status ValidateCubeRunOptions(const CubeRunOptions& options) {
  if (options.iceberg_min_count < 1) {
    return Status::InvalidArgument("iceberg_min_count must be >= 1");
  }
  if (options.iceberg_min_count > 1 &&
      options.aggregate != AggregateKind::kCount) {
    return Status::InvalidArgument(
        "iceberg cubes are defined on group cardinality; use the count "
        "aggregate");
  }
  return Status::OK();
}

std::string EncodeCubeValue(double value) {
  ByteWriter writer;
  writer.PutDouble(value);
  return writer.TakeData();
}

std::string_view EncodeCubeValueTo(double value, ByteWriter& writer) {
  writer.Clear();
  writer.PutDouble(value);
  return writer.data();
}

Result<double> DecodeCubeValue(std::string_view bytes) {
  ByteReader reader(bytes);
  double value = 0.0;
  SPCUBE_RETURN_IF_ERROR(reader.GetDouble(&value));
  return value;
}

Result<CubeResult> CollectCube(const VectorOutputCollector& collector,
                               int num_dims) {
  CubeResult cube(num_dims);
  for (const VectorOutputCollector::Entry& entry : collector.entries()) {
    ByteReader reader(entry.key);
    GroupKey key;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
    SPCUBE_ASSIGN_OR_RETURN(double value, DecodeCubeValue(entry.value));
    SPCUBE_RETURN_IF_ERROR(cube.AddGroup(std::move(key), value));
  }
  return cube;
}

}  // namespace spcube
