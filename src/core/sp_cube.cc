#include "core/sp_cube.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "core/cube_output.h"

namespace spcube {
namespace {

SketchBuildConfig ResolveSketchConfig(const SpCubeOptions& options,
                                      const Engine& engine, int64_t n) {
  SketchBuildConfig config = options.sketch;
  if (config.num_partitions <= 0) {
    config.num_partitions = engine.config().num_workers;
  }
  if (config.memory_tuples_m <= 0) {
    config.memory_tuples_m =
        std::max<int64_t>(1, n / engine.config().num_workers);
  }
  return config;
}

}  // namespace

Result<JobMetrics> SpCubeAlgorithm::RunSketchRound(
    Engine& engine, const Relation& input, const SketchBuildConfig& config,
    const std::string& sketch_path) {
  const double alpha = config.SampleAlpha(input.num_rows());
  JobSpec spec;
  spec.name = "spcube-sketch";
  spec.num_reducers = 1;
  spec.mapper_factory = [alpha, seed = config.seed]() {
    return std::make_unique<SketchSampleMapper>(alpha, seed);
  };
  spec.reducer_factory = [&input, n = input.num_rows(), config,
                          sketch_path]() {
    return std::make_unique<SketchBuildReducer>(input.num_dims(), n, config,
                                                sketch_path);
  };
  NullOutputCollector stats_sink;
  SPCUBE_ASSIGN_OR_RETURN(JobMetrics round,
                          engine.Run(spec, input, &stats_sink));

  // Stats only: a corrupted broadcast must not fail the run here — the cube
  // round degrades gracefully — so record zeros and move on.
  bool degraded = false;
  SPCUBE_ASSIGN_OR_RETURN(
      auto sketch,
      LoadSketchOrDegrade(engine.dfs(), sketch_path, input.num_dims(),
                          engine.config().num_workers, &degraded));
  last_sketch_bytes_ = degraded ? 0 : sketch->SerializedByteSize();
  last_sketch_skews_ = degraded ? 0 : sketch->TotalSkewedGroups();
  return round;
}

Result<CubeRunOutput> SpCubeAlgorithm::RunCubeRound(
    Engine& engine, const Relation& input, const CubeRunOptions& options,
    const std::string& sketch_path) {
  const int k = engine.config().num_workers;

  // The driver needs the sketch too, for the partitioner. Corruption is a
  // property of the stored bytes, so when the driver degrades, the tasks'
  // own loads degrade identically — partitioner and mapper/reducer keep a
  // consistent (empty-sketch) view and the cube stays exact.
  bool degraded = false;
  SPCUBE_ASSIGN_OR_RETURN(
      auto sketch_owned,
      LoadSketchOrDegrade(engine.dfs(), sketch_path, input.num_dims(), k,
                          &degraded));
  std::shared_ptr<const SpSketch> sketch(std::move(sketch_owned));

  CubeRunOutput out;
  out.metrics.algorithm = name();

  VectorOutputCollector cube_collector;
  NullOutputCollector null_collector;
  std::unique_ptr<DfsCubeWriter> dfs_writer;
  std::unique_ptr<TeeOutputCollector> tee;
  {
    JobSpec spec;
    spec.name = "spcube-cube";
    spec.num_reducers = k + 1;  // reducer 0 handles skewed groups
    if (options_.use_range_partitioner && !degraded) {
      spec.partitioner = std::make_shared<SketchRangePartitioner>(sketch);
    } else {
      // Degraded: the empty sketch has no partition elements, so range
      // partitioning would funnel everything into one reducer; spread the
      // load by hashing instead (the skew set is empty either way).
      spec.partitioner = std::make_shared<SkewAwareHashPartitioner>(sketch);
    }
    spec.mapper_factory = [this, sketch_path, &options, &input]() {
      return std::make_unique<SpCubeMapper>(sketch_path, input.num_dims(),
                                            options.aggregate,
                                            options_.tuning);
    };
    spec.reducer_factory = [this, sketch_path, &options, &input]() {
      return std::make_unique<SpCubeReducer>(sketch_path, input.num_dims(),
                                             options.aggregate,
                                             options_.tuning,
                                             options.iceberg_min_count);
    };
    if (options_.strict_reducer_memory) {
      // In-memory reduce processing; a partition that outgrows the budget
      // (stale sketch under drift, injected pressure) degrades through the
      // engine's split recovery instead of failing — except for holistic
      // aggregates, which the spec rejects with an explanation.
      spec.memory_policy = MemoryPolicy::kStrict;
      spec.recovery =
          MakeCubeRecoverySpec(options.aggregate, options.iceberg_min_count);
    }
    OutputCollector* sink =
        options.collect_output
            ? static_cast<OutputCollector*>(&cube_collector)
            : static_cast<OutputCollector*>(&null_collector);
    if (!options.dfs_output_root.empty()) {
      dfs_writer = std::make_unique<DfsCubeWriter>(engine.dfs(),
                                                   options.dfs_output_root);
      tee = std::make_unique<TeeOutputCollector>(sink, dfs_writer.get());
      sink = tee.get();
    }
    SPCUBE_ASSIGN_OR_RETURN(JobMetrics round, engine.Run(spec, input, sink));
    out.metrics.Add(std::move(round));
  }

  if (options.collect_output) {
    SPCUBE_ASSIGN_OR_RETURN(CubeResult cube,
                            CollectCube(cube_collector, input.num_dims()));
    out.cube = std::make_unique<CubeResult>(std::move(cube));
  }
  return out;
}

Result<CubeRunOutput> SpCubeAlgorithm::Run(Engine& engine,
                                           const Relation& input,
                                           const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  const SketchBuildConfig sketch_config =
      ResolveSketchConfig(options_, engine, input.num_rows());
  const std::string sketch_path =
      "spcube/sketch/run_" + std::to_string(run_counter_++);

  SPCUBE_ASSIGN_OR_RETURN(
      JobMetrics sketch_round,
      RunSketchRound(engine, input, sketch_config, sketch_path));
  SPCUBE_ASSIGN_OR_RETURN(
      CubeRunOutput out, RunCubeRound(engine, input, options, sketch_path));
  out.metrics.rounds.insert(out.metrics.rounds.begin(),
                            std::move(sketch_round));
  return out;
}

Result<CubeRunOutput> SpCubeAlgorithm::RunWithSketchFrom(
    Engine& engine, const Relation& sketch_input, const Relation& input,
    const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  if (sketch_input.num_dims() != input.num_dims()) {
    return Status::InvalidArgument(
        "sketch batch has " + std::to_string(sketch_input.num_dims()) +
        " dims but the cube batch has " + std::to_string(input.num_dims()));
  }
  // The sketch models the *old* batch: sample rate and memory bound are
  // resolved against sketch_input, as they were when it was built.
  const SketchBuildConfig sketch_config =
      ResolveSketchConfig(options_, engine, sketch_input.num_rows());
  const std::string sketch_path =
      "spcube/sketch/run_" + std::to_string(run_counter_++);

  SPCUBE_ASSIGN_OR_RETURN(
      JobMetrics sketch_round,
      RunSketchRound(engine, sketch_input, sketch_config, sketch_path));
  SPCUBE_ASSIGN_OR_RETURN(
      CubeRunOutput out, RunCubeRound(engine, input, options, sketch_path));
  out.metrics.rounds.insert(out.metrics.rounds.begin(),
                            std::move(sketch_round));
  return out;
}

Result<std::vector<CubeRunOutput>> SpCubeAlgorithm::RunManyAggregates(
    Engine& engine, const Relation& input,
    const std::vector<CubeRunOptions>& options) {
  if (options.empty()) {
    return Status::InvalidArgument("need at least one aggregate to run");
  }
  for (const CubeRunOptions& entry : options) {
    SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(entry));
  }
  const SketchBuildConfig sketch_config =
      ResolveSketchConfig(options_, engine, input.num_rows());
  const std::string sketch_path =
      "spcube/sketch/run_" + std::to_string(run_counter_++);

  SPCUBE_ASSIGN_OR_RETURN(
      JobMetrics sketch_round,
      RunSketchRound(engine, input, sketch_config, sketch_path));

  std::vector<CubeRunOutput> outputs;
  outputs.reserve(options.size());
  for (const CubeRunOptions& entry : options) {
    SPCUBE_ASSIGN_OR_RETURN(
        CubeRunOutput out, RunCubeRound(engine, input, entry, sketch_path));
    outputs.push_back(std::move(out));
  }
  outputs.front().metrics.rounds.insert(
      outputs.front().metrics.rounds.begin(), std::move(sketch_round));
  return outputs;
}

}  // namespace spcube
