#ifndef SPCUBE_CORE_SP_CUBE_TASKS_H_
#define SPCUBE_CORE_SP_CUBE_TASKS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "cube/aggregate.h"
#include "cube/group_key.h"
#include "mapreduce/api.h"
#include "sketch/sp_sketch.h"

namespace spcube {

/// Tunable behaviour of the cube round; the defaults are the paper's
/// algorithm, the flags exist for the ablation benchmarks (DESIGN.md §5).
struct SpCubeTuning {
  /// Partially aggregate skewed c-groups in the mapper (paper §3.2). When
  /// off, each occurrence ships one singleton partial state instead.
  bool aggregate_skews_in_mapper = true;

  /// Emit a tuple only for its BFS-minimal non-skewed groups and let the
  /// reducer derive owned ancestors via BUC (Observation 2.6). When off,
  /// every non-skewed group is emitted and reducers aggregate only the
  /// received group itself.
  bool emit_minimal_groups_only = true;

  /// Dictionary-encode the reducer's materialized range partition before
  /// running local BUC over it (docs/INTERNALS.md §13): BUC's partition
  /// sorts and uniform-run scans then read narrow order-preserving code
  /// arrays instead of int64 columns, and values decode only at group-key
  /// emission. Exact and wire-identical either way (the differential grid
  /// covers both settings); modeled metrics never see the difference —
  /// Relation::ByteSize is deliberately logical.
  bool dictionary_encode_partitions = false;
};

/// Round-2 partitioner (paper §3.3): skewed-group keys go to the dedicated
/// skew reducer (partition 0); other keys go to 1 + their cuboid's range
/// partition, derived from the sketch's partition elements. Reduce
/// partitions therefore number k+1.
class SketchRangePartitioner : public Partitioner {
 public:
  explicit SketchRangePartitioner(std::shared_ptr<const SpSketch> sketch)
      : sketch_(std::move(sketch)) {}

  int Partition(std::string_view key, int num_reducers) const override;

 private:
  std::shared_ptr<const SpSketch> sketch_;
};

/// Ablation variant: skewed keys still meet at partition 0, but non-skewed
/// keys are hash-partitioned (ignoring the sketch's partition elements).
class SkewAwareHashPartitioner : public Partitioner {
 public:
  explicit SkewAwareHashPartitioner(std::shared_ptr<const SpSketch> sketch)
      : sketch_(std::move(sketch)) {}

  int Partition(std::string_view key, int num_reducers) const override;

 private:
  std::shared_ptr<const SpSketch> sketch_;
};

/// Round-2 map task (paper Algorithm 3, map side). Walks each tuple's
/// lattice bottom-up in BFS order: skewed groups are folded into a local
/// partial-aggregate table; the first (minimal) non-skewed groups are
/// emitted with the full tuple as payload, and their ancestors are skipped
/// via the marking rule. Finish() flushes the skew partials.
class SpCubeMapper : public Mapper {
 public:
  /// Reads the serialized sketch from the DFS at `sketch_path` during
  /// Setup, mirroring the paper's broadcast-and-cache. `num_dims` lets the
  /// task build an empty fallback sketch if the broadcast is corrupted.
  SpCubeMapper(std::string sketch_path, int num_dims, AggregateKind aggregate,
               SpCubeTuning tuning)
      : sketch_path_(std::move(sketch_path)),
        num_dims_(num_dims),
        aggregate_(aggregate),
        tuning_(tuning) {}

  Status Setup(const TaskContext& task) override;
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override;
  Status Finish(MapContext& context) override;

 private:
  std::string sketch_path_;
  int num_dims_;
  AggregateKind aggregate_;
  SpCubeTuning tuning_;

  std::unique_ptr<const SpSketch> sketch_;
  bool degraded_ = false;
  std::unordered_map<GroupKey, AggState, GroupKeyHash> skew_partials_;
  std::vector<CuboidMask> emitted_masks_;  // per-tuple scratch
  ByteWriter key_writer_;                  // reusable emit encode buffers
  ByteWriter value_writer_;

  // Batched user counters, published in Finish (see JobMetrics).
  int64_t nodes_visited_ = 0;
  int64_t nodes_marked_ = 0;
  int64_t skew_adds_ = 0;
  int64_t minimal_emits_ = 0;
};

/// Round-2 reduce task (paper Algorithm 3, reduce side). Partition 0 merges
/// the mappers' partial aggregates of skewed groups; partitions 1..k receive
/// (group, tuple-set) pairs and run BUC locally to produce the group and
/// every ancestor group it owns under the sketch's ownership rule.
class SpCubeReducer : public Reducer {
 public:
  /// `min_count` > 1 applies the iceberg filter (count aggregate only).
  SpCubeReducer(std::string sketch_path, int num_dims,
                AggregateKind aggregate, SpCubeTuning tuning,
                int64_t min_count = 1)
      : sketch_path_(std::move(sketch_path)),
        num_dims_(num_dims),
        aggregate_(aggregate),
        tuning_(tuning),
        min_count_(min_count) {}

  Status Setup(const TaskContext& task) override;
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override;
  Status Finish(ReduceContext& context) override;

 private:
  Status ReduceSkewedGroup(const GroupKey& group, ValueStream& values,
                           ReduceContext& context);
  Status ReduceRangeGroup(const GroupKey& group, ValueStream& values,
                          ReduceContext& context);

  std::string sketch_path_;
  int num_dims_;
  AggregateKind aggregate_;
  SpCubeTuning tuning_;
  int64_t min_count_ = 1;

  std::unique_ptr<const SpSketch> sketch_;
  bool is_skew_reducer_ = false;
  bool degraded_ = false;
  ByteWriter key_writer_;  // reusable output encode buffers
  ByteWriter value_writer_;
};

/// Loads and deserializes a sketch previously published to the DFS.
Result<std::unique_ptr<const SpSketch>> LoadSketch(
    DistributedFileSystem* dfs, const std::string& path);

/// Fault-tolerant sketch load used by every round-2 participant (driver,
/// mappers, reducers). Transient DFS read errors are retried; a sketch that
/// fails validation (Status::Corruption) degrades to an *empty* sketch of
/// the given shape and sets `*degraded`. Corruption is a deterministic
/// property of the stored bytes, so every participant degrades (or none
/// does) and they keep a consistent view: with no skews and no partition
/// elements the cube is still computed exactly, just without the paper's
/// balancing (see docs/INTERNALS.md "Failure semantics"). Other errors
/// (e.g. NotFound) propagate.
Result<std::unique_ptr<const SpSketch>> LoadSketchOrDegrade(
    DistributedFileSystem* dfs, const std::string& path, int num_dims,
    int num_partitions, bool* degraded);

}  // namespace spcube

#endif  // SPCUBE_CORE_SP_CUBE_TASKS_H_
