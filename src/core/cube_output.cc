#include "core/cube_output.h"

#include "common/bytes.h"
#include "cube/group_key.h"

namespace spcube {
namespace {

std::string PartPath(const std::string& root, CuboidMask mask,
                     int reducer_id) {
  return root + "/cuboid_" + std::to_string(mask) + "/part-" +
         std::to_string(reducer_id);
}

}  // namespace

DfsCubeWriter::DfsCubeWriter(DistributedFileSystem* dfs, std::string root)
    : dfs_(dfs), root_(std::move(root)) {}

Status DfsCubeWriter::Collect(int reducer_id, std::string_view key,
                              std::string_view value) {
  // Peek the cuboid mask to pick the directory; re-encode the whole record
  // (key + value, both length-prefixed) into the part file.
  ByteReader reader(key);
  GroupKey group;
  SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &group));

  ByteWriter record;
  record.PutBytes(key);
  record.PutBytes(value);

  MutexLock lock(&mu_);
  return dfs_->Append(PartPath(root_, group.mask, reducer_id),
                      record.data());
}

Result<CubeResult> ReadCubeFromDfs(const DistributedFileSystem& dfs,
                                   const std::string& root, int num_dims) {
  CubeResult cube(num_dims);
  for (const std::string& path : dfs.List(root + "/")) {
    SPCUBE_ASSIGN_OR_RETURN(std::string contents, dfs.ReadWithRetry(path));
    ByteReader reader(contents);
    while (!reader.AtEnd()) {
      std::string_view key_bytes;
      std::string_view value_bytes;
      SPCUBE_RETURN_IF_ERROR(reader.GetBytes(&key_bytes));
      SPCUBE_RETURN_IF_ERROR(reader.GetBytes(&value_bytes));
      ByteReader key_reader(key_bytes);
      GroupKey key;
      SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(key_reader, &key));
      ByteReader value_reader(value_bytes);
      double value = 0.0;
      SPCUBE_RETURN_IF_ERROR(value_reader.GetDouble(&value));
      SPCUBE_RETURN_IF_ERROR(cube.AddGroup(std::move(key), value));
    }
  }
  return cube;
}

int64_t CuboidPartCount(const DistributedFileSystem& dfs,
                        const std::string& root, CuboidMask mask) {
  return static_cast<int64_t>(
      dfs.List(root + "/cuboid_" + std::to_string(mask) + "/").size());
}

}  // namespace spcube
