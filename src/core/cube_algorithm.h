#ifndef SPCUBE_CORE_CUBE_ALGORITHM_H_
#define SPCUBE_CORE_CUBE_ALGORITHM_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "cube/cube_result.h"
#include "mapreduce/engine.h"
#include "mapreduce/metrics.h"
#include "relation/relation.h"

namespace spcube {

/// Output of one cube computation: the metrics of every MapReduce round and,
/// when collection was requested, the materialized cube.
struct CubeRunOutput {
  RunMetrics metrics;
  /// Present iff CubeRunOptions::collect_output; benchmark runs skip
  /// materialization to keep host memory flat while counters still flow.
  std::unique_ptr<CubeResult> cube;
};

struct CubeRunOptions {
  AggregateKind aggregate = AggregateKind::kCount;
  bool collect_output = true;

  /// Iceberg-cube extension: when > 1, only c-groups whose tuple-set
  /// cardinality reaches this threshold are output (Beyer & Ramakrishnan's
  /// iceberg setting; the paper computes full cubes but builds on BUC,
  /// which exists for exactly this pruning). Requires the count aggregate:
  /// the threshold is defined on group cardinality.
  int64_t iceberg_min_count = 1;

  /// When non-empty, the final cube is also written to the engine's DFS
  /// under this root in the paper's layout (one directory per cuboid, one
  /// part file per reducer); read it back with ReadCubeFromDfs.
  std::string dfs_output_root;
};

/// Validates an options combination (e.g. iceberg requires count).
Status ValidateCubeRunOptions(const CubeRunOptions& options);

/// Common driver interface of the four algorithms under study: SP-Cube
/// (core/), and the Naive / MR-Cube (Pig) / Hive baselines (baselines/).
class CubeAlgorithm {
 public:
  virtual ~CubeAlgorithm() = default;

  virtual std::string name() const = 0;

  /// Runs the algorithm's MapReduce round(s) on `engine` over `input`.
  virtual Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                                    const CubeRunOptions& options) = 0;
};

/// The wire format shared by all algorithms' reduce outputs: key is an
/// encoded GroupKey, value a little-endian double. These helpers parse a
/// collector's contents back into a CubeResult.
std::string EncodeCubeValue(double value);
/// Encodes into a caller-owned writer (cleared first) and returns a view of
/// the encoding — the allocation-free variant for reducer emit loops.
std::string_view EncodeCubeValueTo(double value, ByteWriter& writer);
Result<double> DecodeCubeValue(std::string_view bytes);
Result<CubeResult> CollectCube(const VectorOutputCollector& collector,
                               int num_dims);

/// The RecoverySpec shared by every cube job whose reduce output follows
/// the wire format above (encoded GroupKey -> encoded double, one record
/// per cell per partition). Splitting is enabled for the distributive
/// aggregates — count/sum merge by addition, min/max by min/max over the
/// partial final doubles — and rejected with an explanatory reason for avg
/// (the finalized quotient is not mergeable) and for iceberg thresholds
/// above 1 (a threshold on sub-partition partial counts would mis-filter).
/// See docs/INTERNALS.md §11 for the legality argument.
RecoverySpec MakeCubeRecoverySpec(AggregateKind kind,
                                  int64_t iceberg_min_count);

}  // namespace spcube

#endif  // SPCUBE_CORE_CUBE_ALGORITHM_H_
