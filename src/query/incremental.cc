#include "query/incremental.h"

#include <algorithm>

namespace spcube {

Result<CubeResult> MergeCubes(const CubeResult& base, const CubeResult& delta,
                              AggregateKind kind) {
  if (base.num_dims() != delta.num_dims()) {
    return Status::InvalidArgument(
        "cannot merge cubes of different dimensionality");
  }
  double (*merge)(double, double) = nullptr;
  switch (kind) {
    case AggregateKind::kCount:
    case AggregateKind::kSum:
      merge = [](double a, double b) { return a + b; };
      break;
    case AggregateKind::kMin:
      merge = [](double a, double b) { return std::min(a, b); };
      break;
    case AggregateKind::kMax:
      merge = [](double a, double b) { return std::max(a, b); };
      break;
    case AggregateKind::kAvg:
      return Status::InvalidArgument(
          "avg is algebraic: finalized values cannot be merged — keep "
          "partial states or recompute");
  }

  CubeResult merged(base.num_dims());
  for (const auto& [key, value] : base.groups()) {
    merged.UpsertGroup(key, value);
  }
  for (const auto& [key, value] : delta.groups()) {
    auto existing = merged.Lookup(key);
    if (existing.ok()) {
      merged.UpsertGroup(key, merge(existing.value(), value));
    } else {
      merged.UpsertGroup(key, value);
    }
  }
  return merged;
}

}  // namespace spcube
