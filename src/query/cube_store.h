#ifndef SPCUBE_QUERY_CUBE_STORE_H_
#define SPCUBE_QUERY_CUBE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "cube/cube_result.h"
#include "cube/group_key.h"

namespace spcube {

/// One materialized cube cell.
struct CubeCell {
  GroupKey key;
  double value = 0.0;

  friend bool operator==(const CubeCell& a, const CubeCell& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Immutable, indexed view over a materialized cube for OLAP navigation —
/// the layer an analyst (the paper's §1 scenario) actually touches once
/// SP-Cube has produced the cube. Cells are bucketed per cuboid and sorted
/// lexicographically, so point lookups and prefix slices are logarithmic.
///
/// Terminology follows Gray et al.: *slice* fixes some dimensions and
/// groups by others; *roll-up* moves to a coarser cuboid (dropping a
/// dimension); *drill-down* refines a cell along an added dimension.
class CubeStore {
 public:
  /// Indexes a materialized cube (copies its cells; the source may die).
  explicit CubeStore(const CubeResult& cube);

  int num_dims() const { return num_dims_; }
  int64_t num_cells() const;

  /// All cells of one cuboid, sorted lexicographically by value vector.
  const std::vector<CubeCell>& Cuboid(CuboidMask mask) const;

  /// Point lookup of one group's aggregate.
  Result<double> Value(const GroupKey& key) const;

  /// Dice: the cells of cuboid (fixed.mask | group_by) whose coordinates on
  /// `fixed.mask` equal `fixed.values` — i.e. "fix city=Rome, group by
  /// year". `group_by` must be disjoint from `fixed.mask`. When the fixed
  /// dimensions precede every group-by dimension, the scan is a binary-
  /// searched contiguous range; otherwise it filters the cuboid.
  Result<std::vector<CubeCell>> Slice(const GroupKey& fixed,
                                      CuboidMask group_by) const;

  /// The `k` largest (or smallest) cells of a cuboid by aggregate value.
  std::vector<CubeCell> TopK(CuboidMask mask, size_t k,
                             bool largest = true) const;

  /// Roll-up: the coarser cells obtained by dropping one dimension of
  /// `key` at a time (its immediate descendants in the paper's lattice
  /// orientation), in dimension order.
  Result<std::vector<CubeCell>> RollUp(const GroupKey& key) const;

  /// Drill-down: all refinements of `key` along dimension `dim` (which
  /// must not be set in key.mask), sorted by the added value.
  Result<std::vector<CubeCell>> DrillDown(const GroupKey& key,
                                          int dim) const;

  /// Sum over a cuboid of cell values — for count/sum cubes of a full
  /// relation this equals the apex value, a handy consistency probe.
  double CuboidTotal(CuboidMask mask) const;

 private:
  /// Expands key.values onto dimension positions (unset dims are 0).
  std::vector<int64_t> Expand(const GroupKey& key) const;

  int num_dims_;
  std::vector<std::vector<CubeCell>> cuboids_;  // indexed by mask
};

}  // namespace spcube

#endif  // SPCUBE_QUERY_CUBE_STORE_H_
