#include "query/cube_store.h"

#include <algorithm>

#include "common/logging.h"

namespace spcube {
namespace {

bool CellKeyLess(const CubeCell& a, const CubeCell& b) {
  return a.key.values < b.key.values;
}

}  // namespace

CubeStore::CubeStore(const CubeResult& cube)
    : num_dims_(cube.num_dims()),
      cuboids_(static_cast<size_t>(NumCuboids(cube.num_dims()))) {
  for (const auto& [key, value] : cube.groups()) {
    cuboids_[key.mask].push_back(CubeCell{key, value});
  }
  for (std::vector<CubeCell>& cells : cuboids_) {
    std::sort(cells.begin(), cells.end(), CellKeyLess);
  }
}

int64_t CubeStore::num_cells() const {
  int64_t total = 0;
  for (const std::vector<CubeCell>& cells : cuboids_) {
    total += static_cast<int64_t>(cells.size());
  }
  return total;
}

const std::vector<CubeCell>& CubeStore::Cuboid(CuboidMask mask) const {
  SPCUBE_CHECK(mask < cuboids_.size()) << "cuboid mask out of range";
  return cuboids_[mask];
}

Result<double> CubeStore::Value(const GroupKey& key) const {
  if (key.mask >= cuboids_.size()) {
    return Status::InvalidArgument("cuboid mask out of range");
  }
  const std::vector<CubeCell>& cells = cuboids_[key.mask];
  const CubeCell probe{key, 0.0};
  const auto it =
      std::lower_bound(cells.begin(), cells.end(), probe, CellKeyLess);
  if (it == cells.end() || !(it->key == key)) {
    return Status::NotFound("no such cell: " + key.ToString(num_dims_));
  }
  return it->value;
}

std::vector<int64_t> CubeStore::Expand(const GroupKey& key) const {
  std::vector<int64_t> expanded(static_cast<size_t>(num_dims_), 0);
  size_t vi = 0;
  for (int d = 0; d < num_dims_; ++d) {
    if ((key.mask >> d) & 1) {
      expanded[static_cast<size_t>(d)] = key.values[vi++];
    }
  }
  return expanded;
}

Result<std::vector<CubeCell>> CubeStore::Slice(const GroupKey& fixed,
                                               CuboidMask group_by) const {
  if ((fixed.mask & group_by) != 0) {
    return Status::InvalidArgument(
        "group-by dimensions must be disjoint from the fixed ones");
  }
  const CuboidMask target = fixed.mask | group_by;
  if (target >= cuboids_.size()) {
    return Status::InvalidArgument("dimensions out of range");
  }
  const std::vector<CubeCell>& cells = cuboids_[target];
  std::vector<CubeCell> out;

  // Fast path: every fixed dimension precedes every group-by dimension, so
  // the fixed values are a prefix of the sorted value vectors and the
  // matching cells form one contiguous range.
  const bool prefix =
      group_by == 0 ||
      fixed.mask < (group_by & (~group_by + 1));  // all fixed bits lower
  if (prefix && fixed.mask != 0) {
    const auto lower = std::lower_bound(
        cells.begin(), cells.end(), fixed.values,
        [](const CubeCell& cell, const GroupValues& probe) {
          return std::lexicographical_compare(
              cell.key.values.begin(),
              cell.key.values.begin() +
                  static_cast<ptrdiff_t>(probe.size()),
              probe.begin(), probe.end());
        });
    for (auto it = lower; it != cells.end(); ++it) {
      if (!std::equal(fixed.values.begin(), fixed.values.end(),
                      it->key.values.begin())) {
        break;
      }
      out.push_back(*it);
    }
    return out;
  }

  // General path: filter the cuboid on the fixed coordinates.
  for (const CubeCell& cell : cells) {
    if (CompareTupleToKey(fixed.mask, Expand(cell.key), fixed) == 0) {
      out.push_back(cell);
    }
  }
  return out;
}

std::vector<CubeCell> CubeStore::TopK(CuboidMask mask, size_t k,
                                      bool largest) const {
  std::vector<CubeCell> cells = Cuboid(mask);
  const auto by_value = [largest](const CubeCell& a, const CubeCell& b) {
    if (a.value != b.value) {
      return largest ? a.value > b.value : a.value < b.value;
    }
    return a.key.values < b.key.values;  // deterministic ties
  };
  if (k < cells.size()) {
    std::partial_sort(cells.begin(),
                      cells.begin() + static_cast<ptrdiff_t>(k),
                      cells.end(), by_value);
    cells.resize(k);
  } else {
    std::sort(cells.begin(), cells.end(), by_value);
  }
  return cells;
}

Result<std::vector<CubeCell>> CubeStore::RollUp(const GroupKey& key) const {
  if (key.mask == 0) {
    return Status::InvalidArgument("the apex cell cannot be rolled up");
  }
  const std::vector<int64_t> expanded = Expand(key);
  std::vector<CubeCell> out;
  for (CuboidMask coarser : ImmediateDescendants(key.mask)) {
    GroupKey coarser_key = GroupKey::Project(coarser, expanded);
    SPCUBE_ASSIGN_OR_RETURN(double value, Value(coarser_key));
    out.push_back(CubeCell{std::move(coarser_key), value});
  }
  return out;
}

Result<std::vector<CubeCell>> CubeStore::DrillDown(const GroupKey& key,
                                                   int dim) const {
  if (dim < 0 || dim >= num_dims_) {
    return Status::InvalidArgument("dimension out of range");
  }
  const CuboidMask bit = CuboidMask{1} << dim;
  if ((key.mask & bit) != 0) {
    return Status::InvalidArgument(
        "cell already fixes the drill-down dimension");
  }
  SPCUBE_ASSIGN_OR_RETURN(std::vector<CubeCell> refined,
                          Slice(key, /*group_by=*/bit));
  std::sort(refined.begin(), refined.end(),
            [this, dim](const CubeCell& a, const CubeCell& b) {
              return Expand(a.key)[static_cast<size_t>(dim)] <
                     Expand(b.key)[static_cast<size_t>(dim)];
            });
  return refined;
}

double CubeStore::CuboidTotal(CuboidMask mask) const {
  double total = 0.0;
  for (const CubeCell& cell : Cuboid(mask)) total += cell.value;
  return total;
}

}  // namespace spcube
