#ifndef SPCUBE_QUERY_INCREMENTAL_H_
#define SPCUBE_QUERY_INCREMENTAL_H_

#include "common/status.h"
#include "cube/cube_result.h"

namespace spcube {

/// Incremental cube maintenance for append-only relations: given the
/// materialized cube of R and the cube of a batch of new tuples ΔR, returns
/// the cube of R ∪ ΔR without recomputing over R.
///
/// Valid exactly for the distributive aggregates (Gray et al.'s
/// classification, discussed in the paper's §7): count and sum merge by
/// addition, min/max by min/max. Algebraic functions (avg) cannot be merged
/// from finalized values — recompute, or keep partial states — so avg is
/// rejected with InvalidArgument. Deletions are likewise out of scope
/// (min/max are not subtractable).
Result<CubeResult> MergeCubes(const CubeResult& base, const CubeResult& delta,
                              AggregateKind kind);

}  // namespace spcube

#endif  // SPCUBE_QUERY_INCREMENTAL_H_
