#ifndef SPCUBE_SKETCH_CARDINALITY_H_
#define SPCUBE_SKETCH_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "cube/cuboid.h"
#include "relation/relation.h"

namespace spcube {

/// Per-cuboid distinct-group-count estimates derived from a uniform
/// Bernoulli sample — the quantity behind the paper's dataset fingerprints
/// ("approximately 180 million c-groups in the data") and a planning input
/// for engines that size reducers by expected output.
struct CubeCardinalityEstimate {
  /// Estimated distinct c-groups per cuboid, indexed by mask.
  std::vector<int64_t> per_cuboid;

  /// Sum over all cuboids: the estimated number of tuples in the whole
  /// cube.
  int64_t TotalGroups() const;
};

/// Estimates distinct c-group counts per cuboid with the Guaranteed-Error
/// Estimator (GEE, Charikar et al.): with sampling rate alpha and fj = the
/// number of sample groups seen exactly j times,
///
///   Ê = sqrt(1/alpha) * f1 + sum_{j >= 2} fj.
///
/// Groups missed entirely by the sample are covered by the f1 upscaling;
/// with alpha = 1 the estimate is exact. `sample` must be a Bernoulli
/// sample drawn with rate `alpha` from the full relation.
Result<CubeCardinalityEstimate> EstimateCubeCardinality(
    const Relation& sample, double alpha);

/// Exact distinct-group counts per cuboid (reference / small relations).
CubeCardinalityEstimate ExactCubeCardinality(const Relation& rel);

}  // namespace spcube

#endif  // SPCUBE_SKETCH_CARDINALITY_H_
