#ifndef SPCUBE_SKETCH_BUILDER_H_
#define SPCUBE_SKETCH_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "mapreduce/api.h"
#include "relation/relation.h"
#include "sketch/sp_sketch.h"

namespace spcube {

/// Parameters of the SP-Sketch construction (paper §4.2).
struct SketchBuildConfig {
  /// k — the number of machines / range partitions per cuboid. 0 lets the
  /// driver derive it from the engine's worker count.
  int num_partitions = 0;

  /// m — a machine's memory capacity in tuples; a c-group is skewed when
  /// |set(g)| > m (Def. 2.7). 0 derives m = n/k at build time.
  int64_t memory_tuples_m = 0;

  /// Scales the paper's sampling probability alpha = ln(nk)/m. 1.0 is the
  /// paper's choice; the ablation bench sweeps it.
  double sample_rate_multiplier = 1.0;

  /// Seed of the Bernoulli sampler.
  uint64_t seed = 42;

  /// Effective m for a relation of n tuples.
  int64_t EffectiveM(int64_t total_rows) const;

  /// alpha = min(1, multiplier * ln(n*k) / m). With alpha = 1 (tiny inputs)
  /// the "sample" is exact and the sketch is the utopian one of §4.
  double SampleAlpha(int64_t total_rows) const;

  /// beta = alpha * m: a group is declared skewed when its sample count
  /// exceeds beta, the unbiased image of the true threshold m (§4.2 chooses
  /// beta = ln(nk), which equals alpha * m exactly).
  double SkewBeta(int64_t total_rows) const;
};

/// Builds the SP-Sketch from an already-drawn Bernoulli sample of the
/// relation. `total_rows` is n, the full relation's size. Skew detection
/// runs BUC over the sample as an iceberg cube with threshold beta; partition
/// elements are the k-1 sample quantiles of every cuboid's sort order.
Result<SpSketch> BuildSketchFromSample(const Relation& sample,
                                       int64_t total_rows,
                                       const SketchBuildConfig& config);

/// Samples `input` locally and builds the sketch without MapReduce — the
/// single-machine path used by tests, examples and the sketch explorer.
Result<SpSketch> BuildSketchLocal(const Relation& input,
                                  const SketchBuildConfig& config);

/// Round-1 map task (paper Algorithm 2): Bernoulli-samples its input split
/// with probability alpha and ships sampled tuples to the single reducer.
class SketchSampleMapper : public Mapper {
 public:
  SketchSampleMapper(double alpha, uint64_t seed)
      : alpha_(alpha), seed_(seed), rng_(0) {}

  Status Setup(const TaskContext& task) override;
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override;

 private:
  double alpha_;
  uint64_t seed_;
  Rng rng_;
};

/// Round-1 reduce task: rebuilds the sample relation, builds the sketch
/// in memory, and publishes its serialization to the DFS under
/// `dfs_output_path` for every round-2 task to cache.
class SketchBuildReducer : public Reducer {
 public:
  SketchBuildReducer(int num_dims, int64_t total_rows,
                     SketchBuildConfig config, std::string dfs_output_path)
      : num_dims_(num_dims),
        total_rows_(total_rows),
        config_(config),
        dfs_output_path_(std::move(dfs_output_path)),
        sample_(MakeAnonymousSchema(num_dims)) {}

  Status Setup(const TaskContext& task) override;
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override;
  Status Finish(ReduceContext& context) override;

 private:
  int num_dims_;
  int64_t total_rows_;
  SketchBuildConfig config_;
  std::string dfs_output_path_;
  Relation sample_;
  DistributedFileSystem* dfs_ = nullptr;
};

/// The single shuffle key used by the sampling round (all samples meet at
/// one reducer, paper Algorithm 2 line 5 emits key 0).
inline constexpr char kSampleKey[] = "sample";

}  // namespace spcube

#endif  // SPCUBE_SKETCH_BUILDER_H_
