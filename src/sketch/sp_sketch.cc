#include "sketch/sp_sketch.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"

namespace spcube {
namespace {

/// Header of the serialized sketch: a magic tag plus a CRC32C over the body.
/// A broadcast sketch is read by every round-2 task, so structural validation
/// must be strong enough that a corrupted payload is detected (triggering the
/// hash-partitioning fallback) instead of silently mis-partitioning.
constexpr uint32_t kSketchMagic = 0x53504B31;  // "SPK1"

}  // namespace

SpSketch::SpSketch(int num_dims, int num_partitions)
    : num_dims_(num_dims),
      num_partitions_(num_partitions),
      masks_bfs_(MasksInBfsOrder(num_dims)),
      partition_elements_(static_cast<size_t>(NumCuboids(num_dims))) {
  SPCUBE_CHECK(num_dims >= 1 && num_dims <= kMaxDims);
  SPCUBE_CHECK(num_partitions >= 1);
}

void SpSketch::AddSkew(const GroupKey& key, int64_t estimated_count) {
  SPCUBE_DCHECK(static_cast<int>(key.values.size()) ==
                MaskPopCount(key.mask));
  std::vector<SkewEntry>& bucket = skew_index_[key.Hash()];
  for (SkewEntry& entry : bucket) {
    if (entry.key == key) {
      entry.estimated_count = std::max(entry.estimated_count,
                                       estimated_count);
      return;
    }
  }
  bucket.push_back(SkewEntry{key, estimated_count});
}

Status SpSketch::SetPartitionElements(CuboidMask mask,
                                      std::vector<GroupKey> elements) {
  if (mask >= static_cast<CuboidMask>(NumCuboids(num_dims_))) {
    return Status::InvalidArgument("mask out of range");
  }
  if (static_cast<int>(elements.size()) > num_partitions_ - 1) {
    return Status::InvalidArgument(
        "too many partition elements for k partitions");
  }
  for (const GroupKey& e : elements) {
    if (e.mask != mask) {
      return Status::InvalidArgument(
          "partition element cuboid does not match");
    }
  }
  if (!std::is_sorted(elements.begin(), elements.end(),
                      [](const GroupKey& a, const GroupKey& b) {
                        return a.values < b.values;
                      })) {
    return Status::InvalidArgument("partition elements must be sorted");
  }
  partition_elements_[mask] = std::move(elements);
  return Status::OK();
}

bool SpSketch::IsSkewedKey(const GroupKey& key) const {
  const auto it = skew_index_.find(key.Hash());
  if (it == skew_index_.end()) return false;
  for (const SkewEntry& entry : it->second) {
    if (entry.key == key) return true;
  }
  return false;
}

int SpSketch::PartitionOfKey(const GroupKey& key) const {
  const std::vector<GroupKey>& elements = partition_elements_[key.mask];
  const auto it = std::lower_bound(
      elements.begin(), elements.end(), key,
      [](const GroupKey& element, const GroupKey& probe) {
        return element.values < probe.values;
      });
  return static_cast<int>(it - elements.begin());
}

CuboidMask SpSketch::OwnerMask(const GroupKey& key) const {
  // Expand the projected values back onto dimension positions so subset
  // projections can be tested in place.
  std::array<int64_t, kMaxDims> expanded{};
  size_t vi = 0;
  for (int d = 0; d < num_dims_; ++d) {
    if ((key.mask >> d) & 1) expanded[static_cast<size_t>(d)] = key.values[vi++];
  }
  const std::span<const int64_t> span(expanded.data(),
                                      static_cast<size_t>(num_dims_));
  for (const CuboidMask mask : masks_bfs_) {
    if (!IsSubsetMask(mask, key.mask)) continue;
    if (!IsSkewedTuple(mask, span)) return mask;
  }
  return kNoOwner;
}

int64_t SpSketch::TotalSkewedGroups() const {
  int64_t total = 0;
  for (const auto& [hash, bucket] : skew_index_) {
    (void)hash;
    total += static_cast<int64_t>(bucket.size());
  }
  return total;
}

int64_t SpSketch::SkewedGroupsInCuboid(CuboidMask mask) const {
  int64_t total = 0;
  for (const auto& [hash, bucket] : skew_index_) {
    (void)hash;
    for (const SkewEntry& entry : bucket) {
      if (entry.key.mask == mask) ++total;
    }
  }
  return total;
}

const std::vector<GroupKey>& SpSketch::PartitionElements(
    CuboidMask mask) const {
  return partition_elements_[mask];
}

std::vector<GroupKey> SpSketch::AllSkewedGroups() const {
  std::vector<GroupKey> out;
  for (const auto& [hash, bucket] : skew_index_) {
    (void)hash;
    for (const SkewEntry& entry : bucket) out.push_back(entry.key);
  }
  return out;
}

std::string SpSketch::Serialize() const {
  ByteWriter body;
  body.PutVarint(static_cast<uint64_t>(num_dims_));
  body.PutVarint(static_cast<uint64_t>(num_partitions_));
  body.PutVarint(static_cast<uint64_t>(TotalSkewedGroups()));
  // Key order, not bucket order: the serialized sketch is a broadcast DFS
  // blob, and its bytes must not depend on the hash function or insertion
  // history (docs/INTERNALS.md §14). Deserialize rebuilds the index by
  // re-hashing keys, so the flat entry order is free to be canonical.
  std::vector<const SkewEntry*> ordered;
  for (const auto& [hash, bucket] : skew_index_) {
    (void)hash;
    for (const SkewEntry& entry : bucket) ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const SkewEntry* a, const SkewEntry* b) {
              return a->key < b->key;
            });
  for (const SkewEntry* entry : ordered) {
    entry->key.EncodeTo(body);
    body.PutVarintSigned(entry->estimated_count);
  }
  for (const std::vector<GroupKey>& elements : partition_elements_) {
    body.PutVarint(elements.size());
    for (const GroupKey& e : elements) e.EncodeTo(body);
  }
  ByteWriter framed;
  framed.PutU32(kSketchMagic);
  framed.PutU32(Crc32c(body.data()));
  std::string out = framed.TakeData();
  out += body.data();
  return out;
}

Result<SpSketch> SpSketch::Deserialize(std::string_view bytes) {
  // Validate the frame before touching the body: a bit-flipped broadcast
  // must surface as Corruption (recoverable by degradation), never as an
  // SPCUBE_CHECK abort or a structurally-valid-but-wrong sketch.
  ByteReader frame(bytes);
  uint32_t magic = 0;
  uint32_t crc = 0;
  if (!frame.GetU32(&magic).ok() || !frame.GetU32(&crc).ok()) {
    return Status::Corruption("sketch shorter than its header");
  }
  if (magic != kSketchMagic) {
    return Status::Corruption("sketch magic mismatch");
  }
  const std::string_view payload = bytes.substr(frame.position());
  if (Crc32c(payload) != crc) {
    return Status::Corruption("sketch payload failed checksum");
  }

  ByteReader reader(payload);
  uint64_t num_dims = 0;
  uint64_t num_partitions = 0;
  uint64_t num_skews = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&num_dims));
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&num_partitions));
  if (num_dims < 1 || num_dims > static_cast<uint64_t>(kMaxDims)) {
    return Status::Corruption("sketch has invalid dimension count");
  }
  if (num_partitions < 1 ||
      num_partitions > static_cast<uint64_t>(1) << 20) {
    return Status::Corruption("sketch has invalid partition count");
  }
  SpSketch sketch(static_cast<int>(num_dims), static_cast<int>(num_partitions));
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&num_skews));
  for (uint64_t i = 0; i < num_skews; ++i) {
    GroupKey key;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
    int64_t count = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarintSigned(&count));
    sketch.AddSkew(key, count);
  }
  const int64_t num_cuboids = NumCuboids(static_cast<int>(num_dims));
  for (int64_t mask = 0; mask < num_cuboids; ++mask) {
    uint64_t count = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&count));
    std::vector<GroupKey> elements;
    elements.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      GroupKey key;
      SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
      elements.push_back(std::move(key));
    }
    SPCUBE_RETURN_IF_ERROR(sketch.SetPartitionElements(
        static_cast<CuboidMask>(mask), std::move(elements)));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after sketch");
  }
  return sketch;
}

int64_t SpSketch::SerializedByteSize() const {
  return static_cast<int64_t>(Serialize().size());
}

}  // namespace spcube
