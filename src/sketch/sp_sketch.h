#ifndef SPCUBE_SKETCH_SP_SKETCH_H_
#define SPCUBE_SKETCH_SP_SKETCH_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "cube/cuboid.h"
#include "cube/group_key.h"
#include "relation/relation.h"

namespace spcube {

/// Sentinel returned by OwnerMask when every subset cuboid holds a skewed
/// group for the tuple (the group is handled by the skew path instead).
inline constexpr CuboidMask kNoOwner = ~CuboidMask{0};

/// The Skews-and-Partitions Sketch (paper §4): for every cuboid C it records
///   * skews(C)              — the skewed c-groups of C (groups whose tuple
///                             set exceeds a machine's memory m), and
///   * partition-elements(C) — k-1 tuples that split sorted(R, C) into k
///                             balanced ranges.
/// The sketch is small (O(2^d k) entries = O(m), Prop. 4.7), serializable,
/// and independent of the aggregate function, so one sketch serves any
/// number of cube computations over the same relation.
///
/// Lookups never allocate: skewed-group membership tests hash the projection
/// of a tuple in place, which keeps the mapper's per-tuple lattice walk
/// cheap.
class SpSketch {
 public:
  /// `num_partitions` is k, the number of range partitions per cuboid.
  SpSketch(int num_dims, int num_partitions);

  int num_dims() const { return num_dims_; }
  int num_partitions() const { return num_partitions_; }

  // -- Construction ---------------------------------------------------------

  /// Registers a skewed c-group with its estimated tuple count. Idempotent
  /// per key (keeps the larger estimate).
  void AddSkew(const GroupKey& key, int64_t estimated_count);

  /// Installs the sorted partition-element keys of one cuboid (at most k-1;
  /// all keys must have `mask` as their cuboid).
  Status SetPartitionElements(CuboidMask mask, std::vector<GroupKey> elements);

  // -- Queries --------------------------------------------------------------

  /// True iff the projection of `tuple` onto `mask` is a recorded skewed
  /// c-group. `tuple` holds all num_dims dimension values; it may be a span,
  /// vector or borrowed Relation::RowRef — the probe never materializes the
  /// projection.
  template <TupleLike Tuple>
  bool IsSkewedTuple(CuboidMask mask, const Tuple& tuple) const {
    const auto it = skew_index_.find(ProjectedHash(mask, tuple));
    if (it == skew_index_.end()) return false;
    for (const SkewEntry& entry : it->second) {
      if (entry.key.mask == mask &&
          CompareTupleToKey(mask, tuple, entry.key) == 0) {
        return true;
      }
    }
    return false;
  }

  /// True iff `key` (a projected group) is recorded as skewed.
  bool IsSkewedKey(const GroupKey& key) const;

  /// Range-partition index in [0, k) of `tuple` within cuboid `mask`
  /// (Def. 4.1: the number of partition elements lexicographically smaller
  /// than the tuple's projection).
  template <TupleLike Tuple>
  int PartitionOfTuple(CuboidMask mask, const Tuple& tuple) const {
    const std::vector<GroupKey>& elements = partition_elements_[mask];
    // Number of elements strictly smaller than the tuple's projection.
    int lo = 0;
    int hi = static_cast<int>(elements.size());
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      // element < tuple  <=>  tuple > element
      if (CompareTupleToKey(mask, tuple,
                            elements[static_cast<size_t>(mid)]) > 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Same, for an already-projected key of cuboid `key.mask`.
  int PartitionOfKey(const GroupKey& key) const;

  /// The owner of the c-group `key`: the BFS-first mask M ⊆ key.mask whose
  /// induced sub-group is non-skewed (paper §5.1's "smallest non-skewed
  /// descendant" assignment rule). Returns kNoOwner when the group and all
  /// its sub-groups are skewed. Both the round-2 mapper and reducers derive
  /// routing/ownership from this, so they agree without communication.
  CuboidMask OwnerMask(const GroupKey& key) const;

  // -- Introspection --------------------------------------------------------

  int64_t TotalSkewedGroups() const;
  int64_t SkewedGroupsInCuboid(CuboidMask mask) const;
  const std::vector<GroupKey>& PartitionElements(CuboidMask mask) const;

  /// All recorded skewed groups (unordered).
  std::vector<GroupKey> AllSkewedGroups() const;

  /// Masks in canonical BFS order, cached (shared with mapper walks).
  const std::vector<CuboidMask>& MasksBfs() const { return masks_bfs_; }

  // -- Serialization --------------------------------------------------------

  std::string Serialize() const;
  static Result<SpSketch> Deserialize(std::string_view bytes);

  /// Size of the serialized form, the quantity Figures 5c/6c report.
  int64_t SerializedByteSize() const;

 private:
  /// Hash of the projection of `tuple` onto `mask`; must equal
  /// GroupKey::Project(mask, tuple).Hash().
  template <TupleLike Tuple>
  static uint64_t ProjectedHash(CuboidMask mask, const Tuple& tuple) {
    // Must match GroupKey::Hash() on the projected key.
    uint64_t values_hash = 0x9ae16a3b2f90404fULL;
    const size_t n = tuple.size();
    for (size_t d = 0; d < n; ++d) {
      if ((mask >> d) & 1) {
        values_hash =
            HashCombine(values_hash, static_cast<uint64_t>(tuple[d]));
      }
    }
    return HashCombine(Mix64(mask), values_hash);
  }

  struct SkewEntry {
    GroupKey key;
    int64_t estimated_count;
  };

  int num_dims_;
  int num_partitions_;
  std::vector<CuboidMask> masks_bfs_;
  /// Skew table: projection hash -> colliding entries. Values compared
  /// in place against tuples, so lookups are allocation-free.
  std::unordered_map<uint64_t, std::vector<SkewEntry>> skew_index_;
  /// Per-cuboid sorted partition elements, indexed by mask.
  std::vector<std::vector<GroupKey>> partition_elements_;
};

}  // namespace spcube

#endif  // SPCUBE_SKETCH_SP_SKETCH_H_
