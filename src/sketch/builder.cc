#include "sketch/builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "cube/buc.h"
#include "relation/tuple_codec.h"

namespace spcube {

int64_t SketchBuildConfig::EffectiveM(int64_t total_rows) const {
  if (memory_tuples_m > 0) return memory_tuples_m;
  return std::max<int64_t>(1, total_rows / num_partitions);
}

double SketchBuildConfig::SampleAlpha(int64_t total_rows) const {
  const double m = static_cast<double>(EffectiveM(total_rows));
  const double nk =
      static_cast<double>(total_rows) * static_cast<double>(num_partitions);
  if (nk <= 1.0) return 1.0;
  const double alpha = sample_rate_multiplier * std::log(nk) / m;
  return std::min(1.0, std::max(alpha, 0.0));
}

double SketchBuildConfig::SkewBeta(int64_t total_rows) const {
  // beta = alpha * m: with alpha < 1 this is multiplier * ln(nk), the
  // paper's threshold; with alpha = 1 it degrades gracefully to the exact
  // definition (sample count > m).
  return SampleAlpha(total_rows) *
         static_cast<double>(EffectiveM(total_rows));
}

Result<SpSketch> BuildSketchFromSample(const Relation& sample,
                                       int64_t total_rows,
                                       const SketchBuildConfig& config) {
  if (config.num_partitions < 1) {
    return Status::InvalidArgument("sketch needs at least one partition");
  }
  const int num_dims = sample.num_dims();
  SpSketch sketch(num_dims, config.num_partitions);

  const double alpha = config.SampleAlpha(total_rows);
  const double beta = config.SkewBeta(total_rows);

  // --- Skews: iceberg cube over the sample with threshold beta ------------
  // Count is anti-monotone, so BUC's support pruning loses nothing: every
  // group with sample count > beta survives. Estimated true size is the
  // sample count scaled back by 1/alpha.
  const Aggregator& count_agg = GetAggregator(AggregateKind::kCount);
  BucOptions buc_options;
  buc_options.min_support =
      static_cast<int64_t>(std::floor(beta)) + 1;  // strictly greater
  BucComputeFull(sample, count_agg, buc_options,
                 [&](const GroupKey& key, const AggState& state) {
                   if (static_cast<double>(state.v0) > beta) {
                     const int64_t estimate = static_cast<int64_t>(
                         static_cast<double>(state.v0) / alpha);
                     sketch.AddSkew(key, estimate);
                   }
                 });

  // --- Partition elements: per-cuboid sample quantiles --------------------
  // Members of skewed c-groups never reach the range reducers (mappers
  // aggregate them locally), so the quantiles are taken over the cuboid's
  // non-skewed members only — exactly the population Prop. 4.6 bounds
  // ("the partitioning elements divide the cuboid (its non-skewed groups)
  // into partitions of size O(m)").
  const int64_t sample_rows = sample.num_rows();
  const int k = config.num_partitions;
  std::vector<int64_t> order;
  order.reserve(static_cast<size_t>(sample_rows));
  for (CuboidMask mask = 0;
       mask < static_cast<CuboidMask>(NumCuboids(num_dims)); ++mask) {
    order.clear();
    for (int64_t r = 0; r < sample_rows; ++r) {
      if (!sketch.IsSkewedTuple(mask, sample.row(r))) order.push_back(r);
    }
    std::sort(order.begin(), order.end(),
              [&sample, mask](int64_t a, int64_t b) {
                return CompareOnCuboid(mask, sample.row(a), sample.row(b)) <
                       0;
              });
    const int64_t filtered = static_cast<int64_t>(order.size());
    std::vector<GroupKey> elements;
    elements.reserve(static_cast<size_t>(k - 1));
    for (int i = 1; i < k; ++i) {
      const int64_t pos = filtered * i / k;
      if (pos >= filtered) break;
      GroupKey element = GroupKey::Project(
          mask, sample.row(order[static_cast<size_t>(pos)]));
      // Quantiles of a low-cardinality cuboid may repeat; duplicates add
      // nothing (they produce empty ranges), so keep elements distinct.
      if (!elements.empty() && elements.back().values == element.values) {
        continue;
      }
      elements.push_back(std::move(element));
    }
    SPCUBE_RETURN_IF_ERROR(
        sketch.SetPartitionElements(mask, std::move(elements)));
  }
  return sketch;
}

Result<SpSketch> BuildSketchLocal(const Relation& input,
                                  const SketchBuildConfig& config) {
  const double alpha = config.SampleAlpha(input.num_rows());
  Rng rng(config.seed);
  Relation sample(MakeAnonymousSchema(input.num_dims()));
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    if (rng.NextBernoulli(alpha)) {
      // spcube-lint: allow(no-owning-copy-in-hot-path): Bernoulli sampling
      sample.AppendRow(input.row(r), input.measure(r));
    }
  }
  return BuildSketchFromSample(sample, input.num_rows(), config);
}

Status SketchSampleMapper::Setup(const TaskContext& task) {
  // Independent stream per mapper, deterministic in (seed, worker).
  rng_ = Rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                      static_cast<uint64_t>(task.worker_id + 1)));
  return Status::OK();
}

Status SketchSampleMapper::Map(const RelationView& input, int64_t row,
                               MapContext& context) {
  if (!rng_.NextBernoulli(alpha_)) return Status::OK();
  return context.Emit(kSampleKey,
                      EncodeTuple(input.row(row), input.measure(row)));
}

Status SketchBuildReducer::Setup(const TaskContext& task) {
  dfs_ = task.dfs;
  return Status::OK();
}

Status SketchBuildReducer::Reduce(const std::string& key,
                                  ValueStream& values,
                                  ReduceContext& /*context*/) {
  if (key != kSampleKey) {
    return Status::Internal("unexpected key in sketch round: " + key);
  }
  std::string value;
  std::vector<int64_t> dims;
  int64_t measure = 0;
  for (;;) {
    SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
    if (!more) break;
    SPCUBE_RETURN_IF_ERROR(DecodeTuple(value, &dims, &measure));
    if (static_cast<int>(dims.size()) != num_dims_) {
      return Status::Corruption("sampled tuple arity mismatch");
    }
    sample_.AppendRow(dims, measure);
  }
  return Status::OK();
}

Status SketchBuildReducer::Finish(ReduceContext& context) {
  SPCUBE_ASSIGN_OR_RETURN(
      SpSketch sketch,
      BuildSketchFromSample(sample_, total_rows_, config_));
  const std::string serialized = sketch.Serialize();
  if (dfs_ == nullptr) {
    return Status::FailedPrecondition("sketch reducer has no DFS");
  }
  SPCUBE_RETURN_IF_ERROR(dfs_->Overwrite(dfs_output_path_, serialized));
  // Publish size + skew count as the round's visible output (for metrics
  // and the sketch-size figures).
  return context.Output(
      "sketch-stats",
      std::to_string(serialized.size()) + "," +
          std::to_string(sketch.TotalSkewedGroups()));
}

}  // namespace spcube
