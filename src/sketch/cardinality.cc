#include "sketch/cardinality.h"

#include <cmath>
#include <unordered_map>

#include "cube/group_key.h"

namespace spcube {

int64_t CubeCardinalityEstimate::TotalGroups() const {
  int64_t total = 0;
  for (int64_t count : per_cuboid) total += count;
  return total;
}

namespace {

/// Per-cuboid multiplicity histogram of the sample: for each cuboid, how
/// many sample groups occur exactly once (f1) and how many occur more.
struct Frequencies {
  int64_t singletons = 0;  // f1
  int64_t repeated = 0;    // sum_{j >= 2} fj
};

std::vector<Frequencies> SampleFrequencies(const Relation& sample) {
  const int d = sample.num_dims();
  std::vector<Frequencies> out(static_cast<size_t>(NumCuboids(d)));
  for (CuboidMask mask = 0;
       mask < static_cast<CuboidMask>(NumCuboids(d)); ++mask) {
    std::unordered_map<GroupKey, int64_t, GroupKeyHash> counts;
    for (int64_t r = 0; r < sample.num_rows(); ++r) {
      ++counts[GroupKey::Project(mask, sample.row(r))];
    }
    for (const auto& [key, count] : counts) {
      (void)key;
      if (count == 1) {
        ++out[mask].singletons;
      } else {
        ++out[mask].repeated;
      }
    }
  }
  return out;
}

}  // namespace

Result<CubeCardinalityEstimate> EstimateCubeCardinality(
    const Relation& sample, double alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    return Status::InvalidArgument("sampling rate must be in (0, 1]");
  }
  CubeCardinalityEstimate estimate;
  const double scale = std::sqrt(1.0 / alpha);
  for (const Frequencies& f : SampleFrequencies(sample)) {
    estimate.per_cuboid.push_back(static_cast<int64_t>(
        std::llround(scale * static_cast<double>(f.singletons)) +
        f.repeated));
  }
  return estimate;
}

CubeCardinalityEstimate ExactCubeCardinality(const Relation& rel) {
  CubeCardinalityEstimate exact;
  for (const Frequencies& f : SampleFrequencies(rel)) {
    exact.per_cuboid.push_back(f.singletons + f.repeated);
  }
  return exact;
}

}  // namespace spcube
