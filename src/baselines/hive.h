#ifndef SPCUBE_BASELINES_HIVE_H_
#define SPCUBE_BASELINES_HIVE_H_

#include <cstdint>
#include <string>

#include "core/cube_algorithm.h"

namespace spcube {

/// Knobs mirroring Hive's group-by configuration.
struct HiveCubeOptions {
  /// Fraction of the machine memory the map-side aggregation hash may use
  /// (hive.map.aggr.hash.percentmemory). When the hash fills, all entries
  /// are flushed as partial states, so heavily-distinct inputs churn the
  /// hash and gain little from map-side aggregation — the long map times
  /// the paper observes for Hive (Fig. 5b).
  double map_hash_memory_fraction = 0.3;

  /// When true, the reduce side runs under MemoryPolicy::kStrict: a reduce
  /// task whose input exceeds the machine memory fails the job with
  /// ResourceExhausted, modeling the reducer OOMs the paper reports for
  /// Hive under heavy skew (gen-binomial p >= 0.4).
  bool strict_reducer_memory = false;

  /// Opt-in: pair strict_reducer_memory with the engine's adaptive split
  /// recovery (MakeCubeRecoverySpec). Off by default — real Hive has no
  /// such mechanism, and the paper's reducer-OOM failure mode is part of
  /// what this baseline reproduces. Chaos tests flip this on to check the
  /// recovery path generalizes beyond SP-Cube's reducers.
  bool allow_split_recovery = false;
};

/// Hive-style cube baseline: the query plan Hive compiles for
/// `GROUP BY ... WITH CUBE` — grouping-set expansion of every row into its
/// 2^d projections inside the mapper, bounded map-side hash aggregation,
/// hash-partitioned shuffle, and merge aggregation in the reducers. One
/// MapReduce round.
class HiveCubeAlgorithm : public CubeAlgorithm {
 public:
  explicit HiveCubeAlgorithm(HiveCubeOptions options = {})
      : options_(options) {}

  std::string name() const override { return "hive"; }

  Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                            const CubeRunOptions& options) override;

 private:
  HiveCubeOptions options_;
};

}  // namespace spcube

#endif  // SPCUBE_BASELINES_HIVE_H_
