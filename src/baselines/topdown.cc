#include "baselines/topdown.h"

#include <memory>

#include "baselines/combiners.h"
#include "core/cube_output.h"
#include "common/bytes.h"
#include "common/logging.h"
#include "cube/group_key.h"

namespace spcube {
namespace {

/// Encodes into a caller-owned writer (cleared first); Emit/Output copy the
/// bytes before returning, so one task-lifetime writer serves every emit.
std::string_view EncodeGroupKey(const GroupKey& key, ByteWriter& writer) {
  writer.Clear();
  key.EncodeTo(writer);
  return writer.data();
}

/// Round-1 map: project every tuple onto the base cuboid (all dimensions)
/// and ship a singleton state; combiners collapse duplicates.
class BaseCuboidMapper : public Mapper {
 public:
  explicit BaseCuboidMapper(AggregateKind kind) : kind_(kind) {}

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    const Aggregator& agg = GetAggregator(kind_);
    AggState single = agg.Empty();
    agg.Add(single, input.measure(row));
    value_writer_.Clear();
    single.EncodeTo(value_writer_);
    const CuboidMask base =
        static_cast<CuboidMask>(NumCuboids(input.num_dims()) - 1);
    return context.Emit(
        EncodeGroupKey(GroupKey::Project(base, input.row(row)), key_writer_),
        value_writer_.data());
  }

 private:
  AggregateKind kind_;
  ByteWriter key_writer_;  // reused across emits; Emit copies the bytes
  ByteWriter value_writer_;
};

/// Level round map: each parent cell is projected onto the children this
/// parent is responsible for (those whose lowest missing bit the parent
/// supplies), shipping the parent's partial state.
class LevelMapper : public Mapper {
 public:
  explicit LevelMapper(int num_dims) : num_dims_(num_dims) {}

  Status MapRecord(const Record& record, MapContext& context) override {
    ByteReader reader(record.key);
    GroupKey parent;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &parent));

    // Expand values onto dimension positions once.
    std::vector<int64_t> expanded(static_cast<size_t>(num_dims_), 0);
    size_t vi = 0;
    for (int d = 0; d < num_dims_; ++d) {
      if ((parent.mask >> d) & 1) {
        expanded[static_cast<size_t>(d)] = parent.values[vi++];
      }
    }
    for (CuboidMask child : ImmediateDescendants(parent.mask)) {
      if (TopDownParent(child, num_dims_) != parent.mask) continue;
      SPCUBE_RETURN_IF_ERROR(context.Emit(
          EncodeGroupKey(GroupKey::Project(child, expanded), key_writer_),
          record.value));
    }
    return Status::OK();
  }

 private:
  int num_dims_;
  ByteWriter key_writer_;  // reused across emits; Emit copies the bytes
};

/// Merges partial states per group and re-emits (group, state) records —
/// the next round's input. Finalization happens in the driver.
class MergeToStateReducer : public Reducer {
 public:
  explicit MergeToStateReducer(AggregateKind kind) : kind_(kind) {}

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    const Aggregator& agg = GetAggregator(kind_);
    AggState total = agg.Empty();
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      ByteReader reader(value);
      AggState partial;
      SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(reader, &partial));
      agg.Merge(total, partial);
    }
    writer_.Clear();
    total.EncodeTo(writer_);
    return context.Output(key, writer_.data());
  }

 private:
  AggregateKind kind_;
  ByteWriter writer_;  // reused across Reduce calls; Output copies the bytes
};

}  // namespace

CuboidMask TopDownParent(CuboidMask mask, int num_dims) {
  for (int d = 0; d < num_dims; ++d) {
    const CuboidMask bit = CuboidMask{1} << d;
    if ((mask & bit) == 0) return mask | bit;
  }
  return mask;  // the base cuboid has no parent
}

Result<CubeRunOutput> TopDownCubeAlgorithm::Run(
    Engine& engine, const Relation& input, const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  const int d = input.num_dims();
  const AggregateKind kind = options.aggregate;

  CubeRunOutput out;
  out.metrics.algorithm = name();
  CubeResult cube(d);
  const Aggregator& agg = GetAggregator(kind);
  std::unique_ptr<DfsCubeWriter> dfs_writer;
  if (!options.dfs_output_root.empty()) {
    dfs_writer = std::make_unique<DfsCubeWriter>(engine.dfs(),
                                                 options.dfs_output_root);
  }

  auto absorb = [&](const std::vector<VectorOutputCollector::Entry>& entries)
      -> Result<std::vector<Record>> {
    std::vector<Record> next_level;
    for (const VectorOutputCollector::Entry& entry : entries) {
      if (options.collect_output || dfs_writer != nullptr) {
        ByteReader reader(entry.key);
        GroupKey key;
        SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &key));
        ByteReader value_reader(entry.value);
        AggState state;
        SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(value_reader, &state));
        if (options.iceberg_min_count <= 1 ||
            kind != AggregateKind::kCount ||
            state.v0 >= options.iceberg_min_count) {
          const double value = agg.Finalize(state);
          if (dfs_writer != nullptr) {
            SPCUBE_RETURN_IF_ERROR(dfs_writer->Collect(
                entry.reducer_id, entry.key, EncodeCubeValue(value)));
          }
          if (options.collect_output) {
            SPCUBE_RETURN_IF_ERROR(cube.AddGroup(std::move(key), value));
          }
        }
      }
      next_level.push_back(Record{entry.key, entry.value});
    }
    return next_level;
  };

  // ---- Round 1: the base cuboid from the relation -------------------------
  std::vector<Record> level;
  {
    JobSpec spec;
    spec.name = "topdown-base";
    spec.mapper_factory = [kind]() {
      return std::make_unique<BaseCuboidMapper>(kind);
    };
    spec.reducer_factory = [kind]() {
      return std::make_unique<MergeToStateReducer>(kind);
    };
    spec.combiner = std::make_shared<AggStateCombiner>(kind);
    VectorOutputCollector collector;
    SPCUBE_ASSIGN_OR_RETURN(JobMetrics round,
                            engine.Run(spec, input, &collector));
    out.metrics.Add(std::move(round));
    SPCUBE_ASSIGN_OR_RETURN(level, absorb(collector.entries()));
  }

  // ---- Rounds 2..d+1: one lattice level per round --------------------------
  for (int round_level = d - 1; round_level >= 0; --round_level) {
    if (level.empty()) break;
    JobSpec spec;
    spec.name = "topdown-level" + std::to_string(round_level);
    spec.mapper_factory = [d]() {
      return std::make_unique<LevelMapper>(d);
    };
    spec.reducer_factory = [kind]() {
      return std::make_unique<MergeToStateReducer>(kind);
    };
    spec.combiner = std::make_shared<AggStateCombiner>(kind);
    VectorOutputCollector collector;
    SPCUBE_ASSIGN_OR_RETURN(JobMetrics round,
                            engine.RunRecords(spec, level, &collector));
    out.metrics.Add(std::move(round));
    SPCUBE_ASSIGN_OR_RETURN(level, absorb(collector.entries()));
  }

  if (options.collect_output) {
    out.cube = std::make_unique<CubeResult>(std::move(cube));
  }
  return out;
}

}  // namespace spcube
