#ifndef SPCUBE_BASELINES_NAIVE_H_
#define SPCUBE_BASELINES_NAIVE_H_

#include <string>

#include "core/cube_algorithm.h"
#include "cube/cuboid.h"

namespace spcube {

/// The paper's naive MapReduce cube (§3, Algorithm 1): every tuple is
/// projected onto all 2^d nodes of its lattice and each projection is sent
/// to a hash-partitioned reducer with the measure as payload; reducers
/// aggregate per group. No skew handling, no factorization — the paper uses
/// it to expose the challenges (skews, load balance, 2^d·n network traffic);
/// we use it additionally as the correctness oracle under MapReduce and as
/// the traffic upper bound in the §5.2 experiments.
struct NaiveCubeOptions {
  /// When true, a combiner merges map-side duplicates (a common first-aid
  /// fix; still distribution-sensitive). Off by default per Algorithm 1.
  bool use_combiner = false;
};

class NaiveCubeAlgorithm : public CubeAlgorithm {
 public:
  explicit NaiveCubeAlgorithm(NaiveCubeOptions options = {})
      : options_(options) {}

  std::string name() const override {
    return options_.use_combiner ? "naive+combiner" : "naive";
  }

  Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                            const CubeRunOptions& options) override;

 private:
  NaiveCubeOptions options_;
};

}  // namespace spcube

#endif  // SPCUBE_BASELINES_NAIVE_H_
