#ifndef SPCUBE_BASELINES_TOPDOWN_H_
#define SPCUBE_BASELINES_TOPDOWN_H_

#include <string>

#include "core/cube_algorithm.h"
#include "cube/cuboid.h"

namespace spcube {

/// Top-down multi-round MapReduce cube in the style of Lee et al.
/// (DaWaK'12, the paper's reference [25]), which parallelizes PipeSort:
/// the base cuboid is computed first, then each level-(l-1) cuboid is
/// derived from one designated level-l parent, one MapReduce round per
/// lattice level — d+1 rounds in total.
///
/// Parent assignment: cuboid C is computed from C | lowest-missing-bit,
/// which covers every cuboid exactly once (each parent feeds the children
/// whose missing low bit it supplies).
///
/// The paper discusses (§7) why this loses to bottom-up two-round designs:
/// every extra round pays job latency and RAM-to-disk round trips, and a
/// skewed group at any level lands un-split on a single reducer. This
/// implementation exists to demonstrate those effects measurably
/// (bench_topdown); it supports distributive and algebraic aggregates
/// (partial states flow between rounds).
class TopDownCubeAlgorithm : public CubeAlgorithm {
 public:
  std::string name() const override { return "top-down(lee)"; }

  Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                            const CubeRunOptions& options) override;
};

/// The parent cuboid that computes `mask` in the top-down plan (adds the
/// lowest dimension missing from `mask`). Exposed for tests.
CuboidMask TopDownParent(CuboidMask mask, int num_dims);

}  // namespace spcube

#endif  // SPCUBE_BASELINES_TOPDOWN_H_
