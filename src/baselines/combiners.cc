#include "baselines/combiners.h"

#include "common/bytes.h"

namespace spcube {

Status AggStateCombiner::Combine(const std::string& /*key*/,
                                 const std::vector<std::string>& values,
                                 std::vector<std::string>* combined) const {
  const Aggregator& agg = GetAggregator(kind_);
  AggState total = agg.Empty();
  for (const std::string& value : values) {
    ByteReader reader(value);
    AggState partial;
    SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(reader, &partial));
    agg.Merge(total, partial);
  }
  ByteWriter writer;
  total.EncodeTo(writer);
  combined->clear();
  combined->push_back(writer.TakeData());
  return Status::OK();
}

Status MergeStatesReducer::Reduce(const std::string& key,
                                  ValueStream& values,
                                  ReduceContext& context) {
  const Aggregator& agg = GetAggregator(kind_);
  AggState total = agg.Empty();
  std::string value;
  for (;;) {
    SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
    if (!more) break;
    ByteReader reader(value);
    AggState partial;
    SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(reader, &partial));
    agg.Merge(total, partial);
  }
  if (min_count_ > 1 && kind_ == AggregateKind::kCount &&
      total.v0 < min_count_) {
    return Status::OK();
  }
  ByteWriter writer;
  writer.PutDouble(agg.Finalize(total));
  return context.Output(key, writer.data());
}

}  // namespace spcube
