#include "baselines/naive.h"

#include <memory>

#include "baselines/combiners.h"
#include "core/cube_output.h"
#include "common/bytes.h"
#include "cube/group_key.h"

namespace spcube {
namespace {

/// Map side of Algorithm 1: emit (projection, singleton AggState) for every
/// lattice node of the tuple. Shipping a partial state rather than the raw
/// measure keeps one wire format for the combiner-on and combiner-off
/// variants; its size is equivalent (O(1) per pair).
class NaiveMapper : public Mapper {
 public:
  explicit NaiveMapper(AggregateKind kind) : kind_(kind) {}

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    const Aggregator& agg = GetAggregator(kind_);
    const auto tuple = input.row(row);
    const int64_t measure = input.measure(row);
    const CuboidMask num_masks =
        static_cast<CuboidMask>(NumCuboids(input.num_dims()));
    for (CuboidMask mask = 0; mask < num_masks; ++mask) {
      key_writer_.Clear();
      GroupKey::Project(mask, tuple).EncodeTo(key_writer_);
      value_writer_.Clear();
      AggState single = agg.Empty();
      agg.Add(single, measure);
      single.EncodeTo(value_writer_);
      SPCUBE_RETURN_IF_ERROR(
          context.Emit(key_writer_.data(), value_writer_.data()));
    }
    return Status::OK();
  }

 private:
  AggregateKind kind_;
  // Task-lifetime encode buffers: Emit copies into the shuffle arena, so
  // reusing these across emits is safe and allocation-free.
  ByteWriter key_writer_;
  ByteWriter value_writer_;
};

}  // namespace

Result<CubeRunOutput> NaiveCubeAlgorithm::Run(Engine& engine,
                                              const Relation& input,
                                              const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  JobSpec spec;
  spec.name = name();
  spec.mapper_factory = [kind = options.aggregate]() {
    return std::make_unique<NaiveMapper>(kind);
  };
  spec.reducer_factory = [kind = options.aggregate,
                          min_count = options.iceberg_min_count]() {
    return std::make_unique<MergeStatesReducer>(kind, min_count);
  };
  if (options_.use_combiner) {
    spec.combiner = std::make_shared<AggStateCombiner>(options.aggregate);
  }

  CubeRunOutput out;
  out.metrics.algorithm = name();
  VectorOutputCollector cube_collector;
  NullOutputCollector null_collector;
  OutputCollector* sink =
      options.collect_output
          ? static_cast<OutputCollector*>(&cube_collector)
          : static_cast<OutputCollector*>(&null_collector);
  std::unique_ptr<DfsCubeWriter> dfs_writer;
  std::unique_ptr<TeeOutputCollector> tee;
  if (!options.dfs_output_root.empty()) {
    dfs_writer = std::make_unique<DfsCubeWriter>(engine.dfs(),
                                                 options.dfs_output_root);
    tee = std::make_unique<TeeOutputCollector>(sink, dfs_writer.get());
    sink = tee.get();
  }
  SPCUBE_ASSIGN_OR_RETURN(JobMetrics round, engine.Run(spec, input, sink));
  out.metrics.Add(std::move(round));

  if (options.collect_output) {
    SPCUBE_ASSIGN_OR_RETURN(CubeResult cube,
                            CollectCube(cube_collector, input.num_dims()));
    out.cube = std::make_unique<CubeResult>(std::move(cube));
  }
  return out;
}

}  // namespace spcube
