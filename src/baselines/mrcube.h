#ifndef SPCUBE_BASELINES_MRCUBE_H_
#define SPCUBE_BASELINES_MRCUBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/cube_algorithm.h"
#include "cube/cuboid.h"
#include "sketch/builder.h"

namespace spcube {

/// The annotated cube lattice MR-Cube's sampling round produces: for every
/// cuboid, the value-partition factor to apply. 1 means the cuboid is
/// "reducer-friendly" (its largest group fits in one machine); p > 1 means
/// each of its groups is split across p sub-partitions whose partial
/// aggregates a post-aggregation round recombines.
struct MrCubeAnnotations {
  int num_dims = 0;
  std::vector<int32_t> partition_factor;  // indexed by CuboidMask

  std::string Serialize() const;
  static Result<MrCubeAnnotations> Deserialize(std::string_view bytes);
};

struct MrCubeOptions {
  /// Sampling parameters; shares the SP-Cube defaults so the sampling round
  /// costs the two algorithms the same (conservative toward the baseline).
  SketchBuildConfig sampling;
};

/// Reimplementation of the MR-Cube algorithm of Nandi et al. (TKDE'12,
/// reference [26]) — the algorithm Apache Pig ships as its CUBE operator and
/// the paper's primary baseline. Three MapReduce rounds:
///   1. sample the relation and detect skew at *cuboid* granularity,
///      annotating unfriendly cuboids with a value-partition factor;
///   2. materialize: each tuple emits one pair per cuboid (with a
///      sub-partition tag in unfriendly cuboids); Hadoop combiners perform
///      map-side partial aggregation; reducers aggregate, emitting final
///      values for friendly cuboids and partial states for partitioned ones;
///   3. post-aggregate the value-partitioned partial states into finals.
///
/// Faithfulness notes (also in DESIGN.md): skew decisions happen per cuboid,
/// not per group — exactly the granularity the paper criticizes; the
/// value-partition factor is computed in one shot rather than by recursive
/// re-splitting, and the batch-area optimization is omitted (both
/// simplifications favor this baseline).
class MrCubeAlgorithm : public CubeAlgorithm {
 public:
  explicit MrCubeAlgorithm(MrCubeOptions options = {}) : options_(options) {}

  std::string name() const override { return "mr-cube(pig)"; }

  Result<CubeRunOutput> Run(Engine& engine, const Relation& input,
                            const CubeRunOptions& options) override;

  /// Number of unfriendly cuboids detected in the last run.
  int64_t last_unfriendly_cuboids() const { return last_unfriendly_; }

 private:
  MrCubeOptions options_;
  int64_t last_unfriendly_ = 0;
  int64_t run_counter_ = 0;
};

}  // namespace spcube

#endif  // SPCUBE_BASELINES_MRCUBE_H_
