#include "baselines/mrcube.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/combiners.h"
#include "core/cube_output.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "cube/buc.h"
#include "cube/group_key.h"
#include "relation/tuple_codec.h"

namespace spcube {
namespace {

/// Round-2 shuffle key: encoded GroupKey followed by a varint sub-partition
/// id (always present; 0 in friendly cuboids).
std::string_view EncodeMrKeyTo(const GroupKey& key, uint64_t subpartition,
                               ByteWriter& writer) {
  writer.Clear();
  key.EncodeTo(writer);
  writer.PutVarint(subpartition);
  return writer.data();
}

Status DecodeMrKey(std::string_view bytes, GroupKey* key,
                   uint64_t* subpartition) {
  ByteReader reader(bytes);
  SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, key));
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(subpartition));
  if (!reader.AtEnd()) return Status::Corruption("trailing bytes in MR key");
  return Status::OK();
}

/// Round-1 reduce task: rebuilds the sample, finds each cuboid's largest
/// group, and derives the per-cuboid value-partition factor.
class AnnotateReducer : public Reducer {
 public:
  AnnotateReducer(int num_dims, int64_t total_rows, SketchBuildConfig config,
                  std::string dfs_path)
      : num_dims_(num_dims),
        total_rows_(total_rows),
        config_(config),
        dfs_path_(std::move(dfs_path)),
        sample_(MakeAnonymousSchema(num_dims)) {}

  Status Setup(const TaskContext& task) override {
    dfs_ = task.dfs;
    return Status::OK();
  }

  Status Reduce(const std::string& /*key*/, ValueStream& values,
                ReduceContext& /*context*/) override {
    std::string value;
    std::vector<int64_t> dims;
    int64_t measure = 0;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      SPCUBE_RETURN_IF_ERROR(DecodeTuple(value, &dims, &measure));
      sample_.AppendRow(dims, measure);
    }
    return Status::OK();
  }

  Status Finish(ReduceContext& context) override {
    const double alpha = config_.SampleAlpha(total_rows_);
    const double beta = config_.SkewBeta(total_rows_);
    const int64_t m = config_.EffectiveM(total_rows_);

    // Largest estimated group per cuboid, via an iceberg BUC over the
    // sample (groups below the skew threshold never force partitioning).
    std::vector<int64_t> largest(
        static_cast<size_t>(NumCuboids(num_dims_)), 0);
    BucOptions options;
    options.min_support = static_cast<int64_t>(std::floor(beta)) + 1;
    BucComputeFull(sample_, GetAggregator(AggregateKind::kCount), options,
                   [&](const GroupKey& key, const AggState& state) {
                     const int64_t estimate = static_cast<int64_t>(
                         static_cast<double>(state.v0) / alpha);
                     largest[key.mask] = std::max(largest[key.mask],
                                                  estimate);
                   });

    MrCubeAnnotations annotations;
    annotations.num_dims = num_dims_;
    annotations.partition_factor.resize(largest.size(), 1);
    for (size_t mask = 0; mask < largest.size(); ++mask) {
      if (largest[mask] > m) {
        annotations.partition_factor[mask] = static_cast<int32_t>(
            std::min<int64_t>(1 + (largest[mask] - 1) / m, 1 << 16));
      }
    }
    if (dfs_ == nullptr) {
      return Status::FailedPrecondition("annotate reducer has no DFS");
    }
    SPCUBE_RETURN_IF_ERROR(
        dfs_->Overwrite(dfs_path_, annotations.Serialize()));
    return context.Output("annotations", std::to_string(largest.size()));
  }

 private:
  int num_dims_;
  int64_t total_rows_;
  SketchBuildConfig config_;
  std::string dfs_path_;
  Relation sample_;
  DistributedFileSystem* dfs_ = nullptr;
};

/// Round-2 map task: one (cuboid projection [+ sub-partition], singleton
/// state) pair per lattice node of every tuple — n * 2^d pre-combine pairs,
/// the behaviour whose cost the paper's Figures 4c/6b/7c expose.
class MrCubeMapper : public Mapper {
 public:
  MrCubeMapper(std::string annotations_path, AggregateKind kind)
      : annotations_path_(std::move(annotations_path)), kind_(kind) {}

  Status Setup(const TaskContext& task) override {
    if (task.dfs == nullptr) {
      return Status::FailedPrecondition("mapper has no DFS");
    }
    SPCUBE_ASSIGN_OR_RETURN(std::string bytes,
                            task.dfs->Read(annotations_path_));
    SPCUBE_ASSIGN_OR_RETURN(annotations_,
                            MrCubeAnnotations::Deserialize(bytes));
    worker_id_ = task.worker_id;
    return Status::OK();
  }

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    const Aggregator& agg = GetAggregator(kind_);
    const auto tuple = input.row(row);
    AggState single = agg.Empty();
    agg.Add(single, input.measure(row));
    value_writer_.Clear();
    single.EncodeTo(value_writer_);

    const CuboidMask num_masks =
        static_cast<CuboidMask>(NumCuboids(input.num_dims()));
    ++local_row_;
    for (CuboidMask mask = 0; mask < num_masks; ++mask) {
      const int32_t factor = annotations_.partition_factor[mask];
      // Value partitioning: identical tuples must scatter, so the
      // sub-partition comes from the mapper-local row counter, never from
      // the tuple's content.
      const uint64_t sub =
          factor <= 1
              ? 0
              : Mix64((static_cast<uint64_t>(worker_id_) << 40) ^
                      static_cast<uint64_t>(local_row_)) %
                    static_cast<uint64_t>(factor);
      SPCUBE_RETURN_IF_ERROR(context.Emit(
          EncodeMrKeyTo(GroupKey::Project(mask, tuple), sub, key_writer_),
          value_writer_.data()));
    }
    return Status::OK();
  }

 private:
  std::string annotations_path_;
  AggregateKind kind_;
  MrCubeAnnotations annotations_;
  int worker_id_ = 0;
  int64_t local_row_ = 0;
  // Task-lifetime encode buffers: Emit copies into the shuffle arena.
  ByteWriter key_writer_;
  ByteWriter value_writer_;
};

/// Round-2 reduce task: merge the (combined) partial states per key. For a
/// friendly cuboid the result is final; for a partitioned cuboid it is a
/// partial state the post-aggregation round recombines.
class MrCubeReducer : public Reducer {
 public:
  MrCubeReducer(std::string annotations_path, AggregateKind kind,
                int64_t min_count)
      : annotations_path_(std::move(annotations_path)),
        kind_(kind),
        min_count_(min_count) {}

  Status Setup(const TaskContext& task) override {
    if (task.dfs == nullptr) {
      return Status::FailedPrecondition("reducer has no DFS");
    }
    SPCUBE_ASSIGN_OR_RETURN(std::string bytes,
                            task.dfs->Read(annotations_path_));
    SPCUBE_ASSIGN_OR_RETURN(annotations_,
                            MrCubeAnnotations::Deserialize(bytes));
    return Status::OK();
  }

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    GroupKey group;
    uint64_t sub = 0;
    SPCUBE_RETURN_IF_ERROR(DecodeMrKey(key, &group, &sub));
    const Aggregator& agg = GetAggregator(kind_);
    AggState total = agg.Empty();
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      ByteReader reader(value);
      AggState partial;
      SPCUBE_RETURN_IF_ERROR(AggState::DecodeFrom(reader, &partial));
      agg.Merge(total, partial);
    }
    key_writer_.Clear();
    group.EncodeTo(key_writer_);
    value_writer_.Clear();
    if (annotations_.partition_factor[group.mask] <= 1) {
      // Final value for a friendly cuboid; apply the iceberg filter here.
      // Partitioned cuboids carry partial states onward unfiltered — the
      // post-aggregation round filters after the full merge.
      if (min_count_ > 1 && kind_ == AggregateKind::kCount &&
          total.v0 < min_count_) {
        return Status::OK();
      }
      value_writer_.PutDouble(agg.Finalize(total));
      return context.Output(key_writer_.data(), value_writer_.data());
    }
    total.EncodeTo(value_writer_);
    return context.Output(key_writer_.data(), value_writer_.data());
  }

 private:
  std::string annotations_path_;
  AggregateKind kind_;
  int64_t min_count_;
  MrCubeAnnotations annotations_;
  // Task-lifetime encode buffers (Output copies before returning).
  ByteWriter key_writer_;
  ByteWriter value_writer_;
};

/// Round-3 map task: identity over the partial records of partitioned
/// cuboids.
class IdentityRecordMapper : public Mapper {
 public:
  Status MapRecord(const Record& record, MapContext& context) override {
    return context.Emit(record.key, record.value);
  }
};

}  // namespace

std::string MrCubeAnnotations::Serialize() const {
  ByteWriter writer;
  writer.PutVarint(static_cast<uint64_t>(num_dims));
  writer.PutVarint(partition_factor.size());
  for (int32_t f : partition_factor) writer.PutVarint(static_cast<uint64_t>(f));
  return writer.TakeData();
}

Result<MrCubeAnnotations> MrCubeAnnotations::Deserialize(
    std::string_view bytes) {
  ByteReader reader(bytes);
  MrCubeAnnotations out;
  uint64_t num_dims = 0;
  uint64_t count = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&num_dims));
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&count));
  if (num_dims < 1 || num_dims > static_cast<uint64_t>(kMaxDims)) {
    return Status::Corruption("annotation num_dims out of range");
  }
  out.num_dims = static_cast<int>(num_dims);
  if (count != static_cast<uint64_t>(NumCuboids(out.num_dims))) {
    return Status::Corruption("annotation count does not match 2^d");
  }
  out.partition_factor.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t f = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&f));
    out.partition_factor.push_back(static_cast<int32_t>(f));
  }
  return out;
}

Result<CubeRunOutput> MrCubeAlgorithm::Run(Engine& engine,
                                           const Relation& input,
                                           const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  const int k = engine.config().num_workers;
  const int64_t n = input.num_rows();

  SketchBuildConfig sampling = options_.sampling;
  if (sampling.num_partitions <= 0) sampling.num_partitions = k;
  if (sampling.memory_tuples_m <= 0) {
    sampling.memory_tuples_m = std::max<int64_t>(1, n / k);
  }

  const std::string annotations_path =
      "mrcube/annotations/run_" + std::to_string(run_counter_++);

  CubeRunOutput out;
  out.metrics.algorithm = name();

  // ---- Round 1: sample & annotate the lattice -----------------------------
  {
    const double alpha = sampling.SampleAlpha(n);
    JobSpec spec;
    spec.name = "mrcube-sample";
    spec.num_reducers = 1;
    spec.mapper_factory = [alpha, seed = sampling.seed]() {
      return std::make_unique<SketchSampleMapper>(alpha, seed);
    };
    spec.reducer_factory = [num_dims = input.num_dims(), n, sampling,
                            annotations_path]() {
      return std::make_unique<AnnotateReducer>(num_dims, n, sampling,
                                               annotations_path);
    };
    NullOutputCollector sink;
    SPCUBE_ASSIGN_OR_RETURN(JobMetrics round, engine.Run(spec, input, &sink));
    out.metrics.Add(std::move(round));
  }

  SPCUBE_ASSIGN_OR_RETURN(std::string annotation_bytes,
                          engine.dfs()->ReadWithRetry(annotations_path));
  SPCUBE_ASSIGN_OR_RETURN(MrCubeAnnotations annotations,
                          MrCubeAnnotations::Deserialize(annotation_bytes));
  last_unfriendly_ = 0;
  for (int32_t f : annotations.partition_factor) {
    if (f > 1) ++last_unfriendly_;
  }

  // ---- Round 2: materialize the cube --------------------------------------
  VectorOutputCollector round2_output;
  {
    JobSpec spec;
    spec.name = "mrcube-materialize";
    spec.mapper_factory = [annotations_path, kind = options.aggregate]() {
      return std::make_unique<MrCubeMapper>(annotations_path, kind);
    };
    spec.reducer_factory = [annotations_path, kind = options.aggregate,
                            min_count = options.iceberg_min_count]() {
      return std::make_unique<MrCubeReducer>(annotations_path, kind,
                                             min_count);
    };
    spec.combiner = std::make_shared<AggStateCombiner>(options.aggregate);
    SPCUBE_ASSIGN_OR_RETURN(JobMetrics round,
                            engine.Run(spec, input, &round2_output));
    out.metrics.Add(std::move(round));
  }

  // Split round-2 output into final values (friendly cuboids) and partial
  // states that still need the post-aggregation round.
  std::vector<Record> partials;
  std::vector<VectorOutputCollector::Entry> finals;
  for (const VectorOutputCollector::Entry& entry : round2_output.entries()) {
    ByteReader reader(entry.key);
    GroupKey group;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &group));
    if (annotations.partition_factor[group.mask] <= 1) {
      finals.push_back(entry);
    } else {
      partials.push_back(Record{entry.key, entry.value});
    }
  }

  // ---- Round 3: post-aggregate value-partitioned groups -------------------
  VectorOutputCollector round3_output;
  if (!partials.empty()) {
    JobSpec spec;
    spec.name = "mrcube-postagg";
    spec.mapper_factory = []() {
      return std::make_unique<IdentityRecordMapper>();
    };
    spec.reducer_factory = [kind = options.aggregate,
                            min_count = options.iceberg_min_count]() {
      return std::make_unique<MergeStatesReducer>(kind, min_count);
    };
    spec.combiner = std::make_shared<AggStateCombiner>(options.aggregate);
    SPCUBE_ASSIGN_OR_RETURN(
        JobMetrics round, engine.RunRecords(spec, partials, &round3_output));
    out.metrics.Add(std::move(round));
  }

  std::unique_ptr<DfsCubeWriter> dfs_writer;
  if (!options.dfs_output_root.empty()) {
    dfs_writer = std::make_unique<DfsCubeWriter>(engine.dfs(),
                                                 options.dfs_output_root);
    for (const VectorOutputCollector::Entry& entry : finals) {
      SPCUBE_RETURN_IF_ERROR(
          dfs_writer->Collect(entry.reducer_id, entry.key, entry.value));
    }
    for (const VectorOutputCollector::Entry& entry :
         round3_output.entries()) {
      SPCUBE_RETURN_IF_ERROR(
          dfs_writer->Collect(entry.reducer_id, entry.key, entry.value));
    }
  }

  if (options.collect_output) {
    CubeResult cube(input.num_dims());
    auto add_entries =
        [&cube](const std::vector<VectorOutputCollector::Entry>& entries)
        -> Status {
      for (const VectorOutputCollector::Entry& entry : entries) {
        ByteReader reader(entry.key);
        GroupKey group;
        SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &group));
        SPCUBE_ASSIGN_OR_RETURN(double value, DecodeCubeValue(entry.value));
        SPCUBE_RETURN_IF_ERROR(cube.AddGroup(std::move(group), value));
      }
      return Status::OK();
    };
    SPCUBE_RETURN_IF_ERROR(add_entries(finals));
    SPCUBE_RETURN_IF_ERROR(add_entries(round3_output.entries()));
    out.cube = std::make_unique<CubeResult>(std::move(cube));
  }
  return out;
}

}  // namespace spcube
