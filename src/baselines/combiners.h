#ifndef SPCUBE_BASELINES_COMBINERS_H_
#define SPCUBE_BASELINES_COMBINERS_H_

#include "cube/aggregate.h"
#include "mapreduce/api.h"

namespace spcube {

/// Hadoop-style combiner that merges buffered AggState values of one key
/// into a single partial state. Pig's cube operator leans on exactly this
/// mechanism for map-side pre-aggregation (paper §7: "the Pig framework adds
/// to the original algorithm the use of combiners").
class AggStateCombiner : public Combiner {
 public:
  explicit AggStateCombiner(AggregateKind kind) : kind_(kind) {}

  Status Combine(const std::string& key,
                 const std::vector<std::string>& values,
                 std::vector<std::string>* combined) const override;

 private:
  AggregateKind kind_;
};

/// Reducer that stream-merges AggState values per key and outputs the
/// finalized double — the reduce side shared by the naive algorithm, the
/// Hive baseline and MR-Cube's post-aggregation round.
class MergeStatesReducer : public Reducer {
 public:
  /// `min_count` > 1 enables iceberg filtering: groups whose merged count
  /// falls below it are dropped (only meaningful for the count aggregate,
  /// which drivers validate).
  explicit MergeStatesReducer(AggregateKind kind, int64_t min_count = 1)
      : kind_(kind), min_count_(min_count) {}

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override;

 private:
  AggregateKind kind_;
  int64_t min_count_;
};

}  // namespace spcube

#endif  // SPCUBE_BASELINES_COMBINERS_H_
