#include "baselines/hive.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/combiners.h"
#include "core/cube_output.h"
#include "common/bytes.h"
#include "cube/group_key.h"

namespace spcube {
namespace {

/// Approximate heap cost of one hash-aggregation entry (key vector + state
/// + table overhead), used against the configured hash budget.
int64_t EntryBytes(const GroupKey& key) {
  return static_cast<int64_t>(key.values.size() * sizeof(int64_t)) + 64;
}

/// Hive's map side: expand each row into its 2^d grouping-set projections
/// and aggregate them into a bounded hash; when the hash exceeds its budget,
/// flush every entry as a partial state and start over (Hive's flush-on-full
/// GroupByOperator behaviour).
class HiveMapper : public Mapper {
 public:
  HiveMapper(AggregateKind kind, double hash_fraction)
      : kind_(kind), hash_fraction_(hash_fraction) {}

  Status Setup(const TaskContext& task) override {
    hash_budget_bytes_ = static_cast<int64_t>(
        static_cast<double>(task.memory_budget_bytes) * hash_fraction_);
    return Status::OK();
  }

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    const Aggregator& agg = GetAggregator(kind_);
    const auto tuple = input.row(row);
    const int64_t measure = input.measure(row);
    const CuboidMask num_masks =
        static_cast<CuboidMask>(NumCuboids(input.num_dims()));
    for (CuboidMask mask = 0; mask < num_masks; ++mask) {
      GroupKey key = GroupKey::Project(mask, tuple);
      auto [it, inserted] = hash_.try_emplace(std::move(key), agg.Empty());
      if (inserted) hash_bytes_ += EntryBytes(it->first);
      agg.Add(it->second, measure);
      if (hash_bytes_ > hash_budget_bytes_) {
        SPCUBE_RETURN_IF_ERROR(Flush(context));
      }
    }
    return Status::OK();
  }

  Status Finish(MapContext& context) override { return Flush(context); }

 private:
  Status Flush(MapContext& context) {
    // Key order, not hash-table order: flushed records reach spill runs
    // and the shuffle wire, and modeled bytes must not depend on the hash
    // function or insertion history (docs/INTERNALS.md §14).
    std::vector<std::pair<const GroupKey*, const AggState*>> ordered;
    ordered.reserve(hash_.size());
    for (const auto& entry : hash_) {
      ordered.emplace_back(&entry.first, &entry.second);
    }
    std::sort(ordered.begin(), ordered.end(), [](const auto& a,
                                                 const auto& b) {
      return *a.first < *b.first;
    });
    for (const auto& [key, state] : ordered) {
      key_writer_.Clear();
      key->EncodeTo(key_writer_);
      value_writer_.Clear();
      state->EncodeTo(value_writer_);
      SPCUBE_RETURN_IF_ERROR(
          context.Emit(key_writer_.data(), value_writer_.data()));
    }
    hash_.clear();
    hash_bytes_ = 0;
    return Status::OK();
  }

  AggregateKind kind_;
  double hash_fraction_;
  int64_t hash_budget_bytes_ = 0;
  int64_t hash_bytes_ = 0;
  std::unordered_map<GroupKey, AggState, GroupKeyHash> hash_;
  // Task-lifetime encode buffers reused across flushes (Emit copies the
  // bytes into the shuffle arena before returning).
  ByteWriter key_writer_;
  ByteWriter value_writer_;
};

}  // namespace

Result<CubeRunOutput> HiveCubeAlgorithm::Run(Engine& engine,
                                             const Relation& input,
                                             const CubeRunOptions& options) {
  SPCUBE_RETURN_IF_ERROR(ValidateCubeRunOptions(options));
  JobSpec spec;
  spec.name = "hive-cube";
  spec.mapper_factory = [kind = options.aggregate,
                         fraction = options_.map_hash_memory_fraction]() {
    return std::make_unique<HiveMapper>(kind, fraction);
  };
  spec.reducer_factory = [kind = options.aggregate,
                          min_count = options.iceberg_min_count]() {
    return std::make_unique<MergeStatesReducer>(kind, min_count);
  };
  spec.memory_policy = options_.strict_reducer_memory
                           ? MemoryPolicy::kStrict
                           : MemoryPolicy::kSpill;
  if (options_.strict_reducer_memory && options_.allow_split_recovery) {
    // Hive's reduce output follows the shared cube wire format (GroupKey ->
    // final double), so the generic split-recovery merge applies; avg and
    // iceberg thresholds are rejected with a reason, preserving the paper's
    // reducer-OOM failure mode for the non-distributive cases.
    spec.recovery =
        MakeCubeRecoverySpec(options.aggregate, options.iceberg_min_count);
  }

  CubeRunOutput out;
  out.metrics.algorithm = name();
  VectorOutputCollector cube_collector;
  NullOutputCollector null_collector;
  OutputCollector* sink =
      options.collect_output
          ? static_cast<OutputCollector*>(&cube_collector)
          : static_cast<OutputCollector*>(&null_collector);
  std::unique_ptr<DfsCubeWriter> dfs_writer;
  std::unique_ptr<TeeOutputCollector> tee;
  if (!options.dfs_output_root.empty()) {
    dfs_writer = std::make_unique<DfsCubeWriter>(engine.dfs(),
                                                 options.dfs_output_root);
    tee = std::make_unique<TeeOutputCollector>(sink, dfs_writer.get());
    sink = tee.get();
  }
  SPCUBE_ASSIGN_OR_RETURN(JobMetrics round, engine.Run(spec, input, sink));
  out.metrics.Add(std::move(round));

  if (options.collect_output) {
    SPCUBE_ASSIGN_OR_RETURN(CubeResult cube,
                            CollectCube(cube_collector, input.num_dims()));
    out.cube = std::make_unique<CubeResult>(std::move(cube));
  }
  return out;
}

}  // namespace spcube
