#ifndef SPCUBE_MAPREDUCE_BACKOFF_H_
#define SPCUBE_MAPREDUCE_BACKOFF_H_

#include <cstdint>

#include "mapreduce/fault.h"

namespace spcube {

/// Simulated re-scheduling delay of the `attempt`-th retry of a task:
/// capped exponential with optional seeded jitter,
///
///   delay = min(cap_seconds, base_seconds * 2^attempt) * jitter_factor
///
/// where jitter_factor is drawn uniformly from
/// [1 - jitter_fraction, 1 + jitter_fraction) by a `spcube::Rng` seeded
/// purely from (jitter_seed, job, kind, task, attempt) — never from call
/// order or host state — so threaded and sequential runs charge identical
/// backoff and same-seed reruns are bit-reproducible. `jitter_fraction`
/// must be in [0, 1] (0 disables jitter); `cap_seconds` <= 0 disables the
/// cap. The first two retries (attempts 0 and 1) cost base and 2*base, the
/// same as the old linear schedule, so defaults are drop-in; later retries
/// grow exponentially instead of linearly.
double RetryBackoffSeconds(double base_seconds, double cap_seconds,
                           double jitter_fraction, uint64_t jitter_seed,
                           int64_t job, TaskKind kind, int task, int attempt);

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_BACKOFF_H_
