#include "mapreduce/shuffle.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"

namespace spcube {

namespace {

/// Bytes of a LEB128 varint for `v`.
int64_t VarintLen(uint64_t v) {
  int64_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace

int64_t LegacySpillRecordFileBytes(size_t key_len, size_t value_len) {
  return static_cast<int64_t>(sizeof(uint64_t) + sizeof(uint32_t)) +
         VarintLen(key_len) + static_cast<int64_t>(key_len) +
         VarintLen(value_len) + static_cast<int64_t>(value_len);
}

void SpillRecordEncoder::Append(std::string_view key, std::string_view value,
                                ByteWriter* out) {
  size_t shared = 0;
  const size_t limit = std::min(prev_key_.size(), key.size());
  while (shared < limit && prev_key_[shared] == key[shared]) ++shared;
  out->PutVarint(shared);
  out->PutVarint(key.size() - shared);
  out->PutRawBytes(key.substr(shared));
  out->PutBytes(value);
  prev_key_.assign(key);
}

Status SpillRecordDecoder::Parse(std::string_view raw, std::string_view* key,
                                 std::string_view* value) {
  ByteReader reader(raw);
  SPCUBE_RETURN_IF_ERROR(ParseFrom(&reader, key, value));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after spill record");
  }
  return Status::OK();
}

Status SpillRecordDecoder::ParseFrom(ByteReader* reader, std::string_view* key,
                                     std::string_view* value) {
  uint64_t shared = 0;
  uint64_t suffix_len = 0;
  SPCUBE_RETURN_IF_ERROR(reader->GetVarint(&shared));
  SPCUBE_RETURN_IF_ERROR(reader->GetVarint(&suffix_len));
  if (shared > key_.size()) {
    return Status::Corruption(
        "spill record shares more key bytes than the previous key has");
  }
  if (suffix_len > reader->remaining()) {
    return Status::Corruption("truncated spill record key suffix");
  }
  std::string_view suffix;
  SPCUBE_RETURN_IF_ERROR(reader->GetRawBytes(suffix_len, &suffix));
  key_.resize(shared);
  key_.append(suffix);
  *key = key_;
  SPCUBE_RETURN_IF_ERROR(reader->GetBytes(value));
  return Status::OK();
}

namespace {

/// First 8 key bytes, big-endian, zero-padded: prefixes compare like the
/// keys themselves until the first 8 bytes tie.
uint64_t KeyPrefix(std::string_view key) {
  uint64_t prefix = 0;
  const size_t n = key.size() < 8 ? key.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    prefix |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
              << (56 - 8 * static_cast<int>(i));
  }
  return prefix;
}

/// Fills `items` with one entry per ref and sorts by (prefix, full key,
/// emission index) — the same total order as a stable sort by key.
void SortRefs(const std::vector<ShuffleRecordRef>& refs,
              std::vector<ShuffleSortItem>* items) {
  items->resize(refs.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    (*items)[i] =
        ShuffleSortItem{KeyPrefix(refs[i].key()), static_cast<uint32_t>(i)};
  }
  std::sort(items->begin(), items->end(),
            [&refs](const ShuffleSortItem& a, const ShuffleSortItem& b) {
              if (a.key_prefix != b.key_prefix) {
                return a.key_prefix < b.key_prefix;
              }
              const int cmp =
                  refs[a.index].key().compare(refs[b.index].key());
              if (cmp != 0) return cmp < 0;
              return a.index < b.index;
            });
}

/// Streams refs in `order` as one spill run, delta-encoding records into
/// §13 blocks through the caller's reusable encoder. The uncompressed twin
/// (what the run would have cost in the legacy format) is accounted
/// alongside the real file bytes so the compression win is measured, not
/// assumed.
Result<RunInfo> WriteSortedRun(const std::vector<ShuffleRecordRef>& refs,
                               const std::vector<ShuffleSortItem>& order,
                               TempFileManager* temp_files,
                               ShuffleCounters* counters,
                               SpillBlockEncoder* encoder) {
  SpillWriter writer(temp_files->NextPath());
  SPCUBE_RETURN_IF_ERROR(writer.Open());
  RunInfo info;
  encoder->Reset();
  for (const ShuffleSortItem& item : order) {
    const ShuffleRecordRef& ref = refs[item.index];
    encoder->Add(ref.key(), ref.value());
    if (encoder->BlockFull()) {
      SPCUBE_RETURN_IF_ERROR(writer.Append(encoder->block()));
      encoder->NextBlock();
    }
    info.payload_bytes += RecordBytes(ref.key(), ref.value());
    info.uncompressed_file_bytes +=
        LegacySpillRecordFileBytes(ref.key().size(), ref.value().size());
  }
  if (!encoder->BlockEmpty()) {
    SPCUBE_RETURN_IF_ERROR(writer.Append(encoder->block()));
    encoder->NextBlock();
  }
  SPCUBE_RETURN_IF_ERROR(writer.Close());
  if (counters != nullptr) {
    counters->spill_bytes += writer.bytes_written();
    counters->spill_bytes_uncompressed += info.uncompressed_file_bytes;
  }
  info.path = writer.path();
  info.file_bytes = writer.bytes_written();
  info.records = static_cast<int64_t>(order.size());
  return info;
}

void AppendRecordEntries(const std::vector<Record>& records,
                         const std::vector<ShuffleSegment>& segments,
                         std::vector<ShuffleRecordRef>* entries) {
  for (const Record& record : records) {
    entries->push_back(ShuffleRecordRef{
        record.key.data(), record.value.data(),
        static_cast<uint32_t>(record.key.size()),
        static_cast<uint32_t>(record.value.size())});
  }
  for (const ShuffleSegment& segment : segments) {
    for (const ShuffleRecordRef& ref : segment.refs()) {
      entries->push_back(ref);
    }
  }
}

}  // namespace

ShuffleBuffer::ShuffleBuffer(int num_partitions,
                             int64_t memory_budget_bytes,
                             const Combiner* combiner,
                             TempFileManager* temp_files,
                             ShuffleCounters* counters,
                             double combine_headroom_fraction)
    : num_partitions_(num_partitions),
      memory_budget_bytes_(memory_budget_bytes),
      combine_headroom_bytes_(static_cast<int64_t>(
          static_cast<double>(memory_budget_bytes) *
          combine_headroom_fraction)),
      combiner_(combiner),
      temp_files_(temp_files),
      counters_(counters),
      partitions_(static_cast<size_t>(num_partitions)),
      spill_runs_(static_cast<size_t>(num_partitions)) {
  SPCUBE_DCHECK(combine_headroom_fraction > 0.0 &&
                combine_headroom_fraction <= 1.0)
      << "combine_headroom_fraction must be in (0, 1], got "
      << combine_headroom_fraction;
}

ShuffleBuffer::~ShuffleBuffer() {
  // Any run still here belongs to an attempt whose output was never
  // published (failed or superseded); reclaim the disk now rather than at
  // TempFileManager teardown.
  for (const std::vector<RunInfo>& runs : spill_runs_) {
    for (const RunInfo& run : runs) RemoveFileIfExists(run.path);
  }
}

Status ShuffleBuffer::Add(int partition, std::string_view key,
                          std::string_view value) {
  SPCUBE_DCHECK(partition >= 0 && partition < num_partitions_)
      << "bad partition " << partition;
  counters_->map_output_records += 1;
  counters_->map_output_bytes += RecordBytes(key, value);
  buffered_bytes_ += RecordBytes(key, value);
  PartitionState& part = partitions_[static_cast<size_t>(partition)];
  if (combiner_ == nullptr) {
    const char* data = part.arena.AppendPair(key, value);
    part.records.push_back(RecordSlot{data, static_cast<uint32_t>(key.size()),
                                      static_cast<uint32_t>(value.size())});
  } else {
    // Combine-eligible records hit the key index before any buffering: a
    // repeated key stores only its value, never a second key copy.
    if ((part.keys.size() + 1) * 2 > part.buckets.size()) {
      RehashBuckets(&part, (part.keys.size() + 1) * 2);
    }
    const uint32_t key_index = FindOrInsertKey(&part, key);
    const char* data = part.arena.Append(value);
    const int32_t value_index = static_cast<int32_t>(part.values.size());
    part.values.push_back(ValueSlot{data, static_cast<uint32_t>(value.size()),
                                    static_cast<int32_t>(key_index), -1});
    KeySlot& kslot = part.keys[key_index];
    if (kslot.tail < 0) {
      kslot.head = value_index;
    } else {
      part.values[static_cast<size_t>(kslot.tail)].next = value_index;
    }
    kslot.tail = value_index;
  }
  if (buffered_bytes_ > memory_budget_bytes_) {
    SPCUBE_RETURN_IF_ERROR(Overflow());
  }
  return Status::OK();
}

Status ShuffleBuffer::FinalizeMapOutput() { return CombineInMemory(); }

void ShuffleBuffer::AppendRecordRefs(
    const PartitionState& part, std::vector<ShuffleRecordRef>* refs) const {
  if (combiner_ == nullptr) {
    for (const RecordSlot& slot : part.records) {
      refs->push_back(ShuffleRecordRef{slot.data, slot.data + slot.key_len,
                                       slot.key_len, slot.value_len});
    }
  } else {
    // `values` is emission order (after a combine: key-insertion order with
    // each key's merged values contiguous) — the canonical record order.
    for (const ValueSlot& value : part.values) {
      const KeySlot& key = part.keys[static_cast<size_t>(value.key_index)];
      refs->push_back(
          ShuffleRecordRef{key.data, value.data, key.len, value.len});
    }
  }
}

void ShuffleBuffer::ResetPartition(PartitionState* part) {
  // Capacity (arena chunks, slot vectors, buckets) is retained for the next
  // fill cycle; only the logical contents are dropped.
  part->arena.Reset();
  part->records.clear();
  part->keys.clear();
  part->values.clear();
  if (!part->buckets.empty()) {
    std::fill(part->buckets.begin(), part->buckets.end(), 0u);
  }
}

void ShuffleBuffer::RehashBuckets(PartitionState* part, size_t min_slots) {
  size_t want = 16;
  while (want < min_slots) want <<= 1;
  if (want < part->buckets.size()) want = part->buckets.size();
  part->buckets.assign(want, 0u);
  const size_t mask = want - 1;
  for (size_t k = 0; k < part->keys.size(); ++k) {
    size_t slot = static_cast<size_t>(part->keys[k].hash) & mask;
    while (part->buckets[slot] != 0) slot = (slot + 1) & mask;
    part->buckets[slot] = static_cast<uint32_t>(k + 1);
  }
}

uint32_t ShuffleBuffer::FindOrInsertKey(PartitionState* part,
                                        std::string_view key) {
  const uint64_t hash = HashBytes(key);
  const size_t mask = part->buckets.size() - 1;
  size_t slot = static_cast<size_t>(hash) & mask;
  for (;;) {
    const uint32_t stored = part->buckets[slot];
    if (stored == 0) {
      const char* data = part->arena.Append(key);
      part->keys.push_back(KeySlot{data, static_cast<uint32_t>(key.size()),
                                   hash, -1, -1});
      part->buckets[slot] = static_cast<uint32_t>(part->keys.size());
      return static_cast<uint32_t>(part->keys.size() - 1);
    }
    const KeySlot& existing = part->keys[stored - 1];
    if (existing.hash == hash && existing.len == key.size() &&
        (key.empty() ||
         std::memcmp(existing.data, key.data(), key.size()) == 0)) {
      return stored - 1;
    }
    slot = (slot + 1) & mask;
  }
}

ShuffleSegment ShuffleBuffer::TakeMemorySegment(int partition) {
  PartitionState& part = partitions_[static_cast<size_t>(partition)];
  ShuffleSegment segment;
  auto rep = std::make_shared<ShuffleSegment::Rep>();
  AppendRecordRefs(part, &rep->refs);
  for (const ShuffleRecordRef& ref : rep->refs) {
    rep->payload_bytes += RecordBytes(ref.key(), ref.value());
  }
  rep->arena = std::move(part.arena);  // the refs keep pointing into it
  rep->generation = rep->arena.generation();
  segment.rep_ = std::move(rep);
  ResetPartition(&part);
  return segment;
}

namespace internal {

void DebugExpireSegment(ShuffleSegment* segment) {
  if (segment->rep_ == nullptr) return;
  // The rep is shared as const because segments are immutable hand-offs;
  // this seam deliberately breaks that to manufacture a stale borrow for
  // lifetime death tests (see the declaration in shuffle.h).
  auto* rep = const_cast<ShuffleSegment::Rep*>(segment->rep_.get());
  rep->arena.Reset();
}

}  // namespace internal

std::vector<Record> ShuffleBuffer::TakeMemoryRecords(int partition) {
  PartitionState& part = partitions_[static_cast<size_t>(partition)];
  scratch_refs_.clear();
  AppendRecordRefs(part, &scratch_refs_);
  std::vector<Record> out;
  out.reserve(scratch_refs_.size());
  for (const ShuffleRecordRef& ref : scratch_refs_) {
    // spcube-lint: allow(no-owning-copy-in-hot-path): compatibility accessor whose contract is to materialize owned Records
    out.push_back(Record{std::string(ref.key()), std::string(ref.value())});
  }
  ResetPartition(&part);
  return out;
}

std::vector<RunInfo> ShuffleBuffer::TakeSpillRuns(int partition) {
  // Explicitly leave the slot empty so the destructor does not delete runs
  // whose ownership moved to the shuffle.
  std::vector<RunInfo> runs;
  runs.swap(spill_runs_[static_cast<size_t>(partition)]);
  return runs;
}

Status ShuffleBuffer::Overflow() {
  if (combiner_ != nullptr) {
    SPCUBE_RETURN_IF_ERROR(CombineInMemory());
    // Keep the buffer only if combining freed real headroom; a buffer that
    // hovers near the budget would otherwise re-combine after every few
    // records (quadratic). Hadoop applies the same spill-anyway rule. The
    // threshold is EngineConfig::combine_headroom_fraction of the budget.
    if (buffered_bytes_ <= combine_headroom_bytes_) {
      return Status::OK();
    }
  }
  return SpillAll();
}

Status ShuffleBuffer::CombineInMemory() {
  if (combiner_ == nullptr) return Status::OK();
  int64_t live_bytes = 0;
  for (PartitionState& part : partitions_) {
    if (part.keys.empty()) continue;
    // Compact into the spare arena/slot vectors, then swap. The spare side
    // retains its capacity across passes, so the steady-state cycle of
    // fill → combine → fill performs no heap allocations.
    for (size_t k = 0; k < part.keys.size(); ++k) {
      const KeySlot& kslot = part.keys[k];
      size_t count = 0;
      for (int32_t v = kslot.head; v >= 0;
           v = part.values[static_cast<size_t>(v)].next) {
        ++count;
      }
      combine_values_.resize(count);
      size_t i = 0;
      for (int32_t v = kslot.head; v >= 0;
           v = part.values[static_cast<size_t>(v)].next) {
        const ValueSlot& vslot = part.values[static_cast<size_t>(v)];
        combine_values_[i++].assign(vslot.data, vslot.len);
      }
      counters_->combine_input_records += static_cast<int64_t>(count);
      combine_key_.assign(kslot.data, kslot.len);
      combine_merged_.clear();
      SPCUBE_RETURN_IF_ERROR(
          combiner_->Combine(combine_key_, combine_values_, &combine_merged_));
      counters_->combine_output_records +=
          static_cast<int64_t>(combine_merged_.size());
      if (combine_merged_.empty()) continue;  // combiner dropped the key
      const char* key_data =
          part.spare_arena.Append(std::string_view(kslot.data, kslot.len));
      const int32_t new_key_index =
          static_cast<int32_t>(part.spare_keys.size());
      part.spare_keys.push_back(KeySlot{key_data, kslot.len, kslot.hash,
                                        -1, -1});
      KeySlot& new_key = part.spare_keys.back();
      for (const std::string& merged : combine_merged_) {
        const char* value_data = part.spare_arena.Append(merged);
        const int32_t value_index =
            static_cast<int32_t>(part.spare_values.size());
        part.spare_values.push_back(
            ValueSlot{value_data, static_cast<uint32_t>(merged.size()),
                      new_key_index, -1});
        if (new_key.tail < 0) {
          new_key.head = value_index;
        } else {
          part.spare_values[static_cast<size_t>(new_key.tail)].next =
              value_index;
        }
        new_key.tail = value_index;
        live_bytes += RecordBytes(combine_key_, merged);
      }
    }
    std::swap(part.arena, part.spare_arena);
    part.keys.swap(part.spare_keys);
    part.values.swap(part.spare_values);
    part.spare_keys.clear();
    part.spare_values.clear();
    part.spare_arena.Reset();
    RehashBuckets(&part, (part.keys.size() + 1) * 2);
  }
  buffered_bytes_ = live_bytes;
  return Status::OK();
}

Status ShuffleBuffer::SpillAll() {
  for (int p = 0; p < num_partitions_; ++p) {
    PartitionState& part = partitions_[static_cast<size_t>(p)];
    scratch_refs_.clear();
    AppendRecordRefs(part, &scratch_refs_);
    if (scratch_refs_.empty()) continue;
    SortRefs(scratch_refs_, &sort_items_);
    SPCUBE_ASSIGN_OR_RETURN(
        RunInfo run, WriteSortedRun(scratch_refs_, sort_items_, temp_files_,
                                    counters_, &block_scratch_));
    if (!resource_prefix_.empty()) {
      run.resource =
          resource_prefix_ + "/p" + std::to_string(p) + "/r" +
          std::to_string(spill_runs_[static_cast<size_t>(p)].size());
    }
    spill_runs_[static_cast<size_t>(p)].push_back(std::move(run));
    ResetPartition(&part);
  }
  buffered_bytes_ = 0;
  return Status::OK();
}

namespace {

/// Fully in-memory grouped stream: iterates record refs (owned Records,
/// arena-backed segments, and absorbed runs parsed into a private arena)
/// through a sorted index — no per-record Record materialization.
class InMemoryGroupedStream : public GroupedRecordStream {
 public:
  InMemoryGroupedStream(std::vector<Record> records,
                        std::vector<ShuffleSegment> segments)
      : records_(std::move(records)), segments_(std::move(segments)) {
    AppendRecordEntries(records_, segments_, &entries_);
  }

  /// Reads one sorted run into the stream-private arena, decoding each
  /// fetched block's key deltas incrementally (one decoder per run). Call
  /// before Seal.
  Status AbsorbRun(const RunInfo& run, IoFaultInjector* injector,
                   int64_t* mismatch_counter) {
    SpillReader reader(run.path);
    SPCUBE_RETURN_IF_ERROR(reader.Open());
    reader.SetFaultInjection(injector, mismatch_counter, run.resource);
    SpillBlockDecoder decoder;
    std::string raw;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, reader.Next(&raw));
      if (!more) break;
      decoder.SetBlock(raw);
      for (;;) {
        std::string_view key;
        std::string_view value;
        SPCUBE_ASSIGN_OR_RETURN(bool record, decoder.Next(&key, &value));
        if (!record) break;
        const char* data = absorbed_.AppendPair(key, value);
        entries_.push_back(ShuffleRecordRef{
            data, data + key.size(), static_cast<uint32_t>(key.size()),
            static_cast<uint32_t>(value.size())});
      }
    }
    return Status::OK();
  }

  /// Builds the sorted iteration order; call once after the last AbsorbRun.
  void Seal() { SortRefs(entries_, &order_); }

  Result<bool> NextGroup(std::string* key) override {
    pos_ = group_end_;
    if (pos_ >= order_.size()) return false;
    const std::string_view group = KeyAt(pos_);
    key->assign(group);
    group_end_ = pos_;
    while (group_end_ < order_.size() && KeyAt(group_end_) == group) {
      ++group_end_;
    }
    value_pos_ = pos_;
    return true;
  }

  Result<bool> NextValue(std::string* value) override {
    if (value_pos_ >= group_end_) return false;
    const ShuffleRecordRef& ref = entries_[order_[value_pos_].index];
    value->assign(ref.value());
    ++value_pos_;
    return true;
  }

 private:
  std::string_view KeyAt(size_t sorted_pos) const {
    return entries_[order_[sorted_pos].index].key();
  }

  std::vector<Record> records_;          // owns bytes for direct inputs
  std::vector<ShuffleSegment> segments_; // owns bytes for map-side segments
  Arena absorbed_;                       // owns bytes for absorbed runs
  // spcube-analyzer: allow(view-escape): entries_ point into records_/segments_/absorbed_, all owned by this same stream
  std::vector<ShuffleRecordRef> entries_;
  std::vector<ShuffleSortItem> order_;
  size_t pos_ = 0;
  size_t group_end_ = 0;
  size_t value_pos_ = 0;
};

/// K-way merge over sorted run files; streams groups without materializing
/// them. Heads are ordered by (key, run index) for determinism. Paths in
/// `owned_paths` (the attempt-private run MakeGroupedStream sorts out of the
/// in-memory records) are deleted on destruction, whether or not the attempt
/// succeeded.
class MergingGroupedStream : public GroupedRecordStream {
 public:
  /// `run_resources` parallels `run_paths` (empty string = use the path).
  MergingGroupedStream(std::vector<std::string> run_paths,
                       std::vector<std::string> run_resources,
                       std::vector<std::string> owned_paths,
                       IoFaultInjector* injector, int64_t* mismatch_counter)
      : run_paths_(std::move(run_paths)),
        run_resources_(std::move(run_resources)),
        owned_paths_(std::move(owned_paths)),
        injector_(injector),
        mismatch_counter_(mismatch_counter) {}

  ~MergingGroupedStream() override {
    readers_.clear();  // close files before unlinking
    for (const std::string& path : owned_paths_) RemoveFileIfExists(path);
  }

  Status Init() {
    readers_.reserve(run_paths_.size());
    for (size_t i = 0; i < run_paths_.size(); ++i) {
      auto reader = std::make_unique<SpillReader>(run_paths_[i]);
      SPCUBE_RETURN_IF_ERROR(reader->Open());
      reader->SetFaultInjection(injector_, mismatch_counter_,
                                run_resources_[i]);
      readers_.push_back(std::move(reader));
    }
    heads_.resize(readers_.size());
    // One block decoder and fetch buffer per run: a decoder's views point
    // into its run's current block until the next fetch replaces it.
    decoders_.resize(readers_.size());
    blocks_.resize(readers_.size());
    for (size_t i = 0; i < readers_.size(); ++i) {
      SPCUBE_RETURN_IF_ERROR(Advance(i));
    }
    return Status::OK();
  }

  Result<bool> NextGroup(std::string* key) override {
    // Drain any unread values of the previous group.
    if (in_group_) {
      std::string scratch;
      for (;;) {
        SPCUBE_ASSIGN_OR_RETURN(bool more, NextValue(&scratch));
        if (!more) break;
      }
    }
    const int run = MinRun();
    if (run < 0) return false;
    current_key_ = heads_[static_cast<size_t>(run)].record.key;
    *key = current_key_;
    in_group_ = true;
    return true;
  }

  Result<bool> NextValue(std::string* value) override {
    if (!in_group_) return false;
    const int run = MinRun();
    if (run < 0 ||
        heads_[static_cast<size_t>(run)].record.key != current_key_) {
      in_group_ = false;
      return false;
    }
    // Assign (not move) so the head string keeps its capacity for the next
    // record parsed into it.
    *value = heads_[static_cast<size_t>(run)].record.value;
    SPCUBE_RETURN_IF_ERROR(Advance(static_cast<size_t>(run)));
    return true;
  }

 private:
  struct Head {
    Record record;
    bool valid = false;
  };

  Status Advance(size_t run) {
    for (;;) {
      std::string_view key;
      std::string_view value;
      SPCUBE_ASSIGN_OR_RETURN(bool record, decoders_[run].Next(&key, &value));
      if (record) {
        heads_[run].record.key.assign(key);
        heads_[run].record.value.assign(value);
        heads_[run].valid = true;
        return Status::OK();
      }
      // Current block exhausted (or first call): fetch the run's next block.
      SPCUBE_ASSIGN_OR_RETURN(bool more, readers_[run]->Next(&blocks_[run]));
      if (!more) {
        heads_[run].valid = false;
        return Status::OK();
      }
      decoders_[run].SetBlock(blocks_[run]);
    }
  }

  /// Index of the run whose head has the smallest key, or -1. Linear scan —
  /// run counts are small (one per spill); switch to a heap if they grow.
  int MinRun() const {
    int best = -1;
    for (size_t i = 0; i < heads_.size(); ++i) {
      if (!heads_[i].valid) continue;
      if (best < 0 ||
          heads_[i].record.key < heads_[static_cast<size_t>(best)].record.key) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  std::vector<std::string> run_paths_;
  std::vector<std::string> run_resources_;
  std::vector<std::string> owned_paths_;
  IoFaultInjector* injector_;
  int64_t* mismatch_counter_;
  std::vector<std::unique_ptr<SpillReader>> readers_;
  std::vector<Head> heads_;
  std::vector<SpillBlockDecoder> decoders_;  // parallel to readers_
  std::vector<std::string> blocks_;  // per-run fetch buffers decoders view
  std::string current_key_;
  bool in_group_ = false;
};

}  // namespace

Result<std::unique_ptr<GroupedRecordStream>> MakeGroupedStream(
    ReduceInput input, int64_t memory_budget_bytes, MemoryPolicy policy,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector, std::string resource_prefix) {
  int64_t* mismatch_counter =
      counters != nullptr ? &counters->checksum_mismatches : nullptr;
  const bool fits = input.total_bytes <= memory_budget_bytes;
  if (!fits && policy == MemoryPolicy::kStrict) {
    return Status::ResourceExhausted(
        "reduce input of " + std::to_string(input.total_bytes) +
        " bytes exceeds the machine memory budget of " +
        std::to_string(memory_budget_bytes) + " bytes");
  }
  if (fits) {
    // Small enough to run in memory; absorb any runs into the stream's
    // private arena and sort everything together.
    auto stream = std::make_unique<InMemoryGroupedStream>(
        std::move(input.memory_records), std::move(input.memory_segments));
    for (const RunInfo& run : input.spill_runs) {
      SPCUBE_RETURN_IF_ERROR(
          stream->AbsorbRun(run, injector, mismatch_counter));
    }
    stream->Seal();
    return {std::unique_ptr<GroupedRecordStream>(std::move(stream))};
  }

  // External path: sort the in-memory part into one more run, then merge.
  std::vector<std::string> run_paths;
  std::vector<std::string> run_resources;
  std::vector<std::string> owned_paths;
  run_paths.reserve(input.spill_runs.size() + 1);
  run_resources.reserve(input.spill_runs.size() + 1);
  for (const RunInfo& run : input.spill_runs) {
    run_paths.push_back(run.path);
    run_resources.push_back(run.resource);
  }
  std::vector<ShuffleRecordRef> memory_refs;
  AppendRecordEntries(input.memory_records, input.memory_segments,
                      &memory_refs);
  if (!memory_refs.empty()) {
    std::vector<ShuffleSortItem> order;
    SortRefs(memory_refs, &order);
    SpillBlockEncoder encode;
    SPCUBE_ASSIGN_OR_RETURN(RunInfo run,
                            WriteSortedRun(memory_refs, order, temp_files,
                                           counters, &encode));
    run_paths.push_back(run.path);
    run_resources.push_back(
        resource_prefix.empty() ? "" : resource_prefix + "/mem");
    owned_paths.push_back(std::move(run.path));
  }
  auto merging = std::make_unique<MergingGroupedStream>(
      std::move(run_paths), std::move(run_resources), std::move(owned_paths),
      injector, mismatch_counter);
  SPCUBE_RETURN_IF_ERROR(merging->Init());
  return {std::unique_ptr<GroupedRecordStream>(std::move(merging))};
}

Result<std::vector<ReduceInput>> SplitReduceInput(
    const ReduceInput& input, int fanout, uint64_t salt,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector, const std::string& resource_prefix) {
  SPCUBE_CHECK(fanout >= 2) << "split fanout must be >= 2, got " << fanout;
  int64_t* mismatch_counter =
      counters != nullptr ? &counters->checksum_mismatches : nullptr;
  // Gather every record as refs: in-memory sources directly, spill runs
  // parsed into a local arena. Records are scattered, not merged, so source
  // order does not affect correctness — but the global ordinal feeding the
  // scatter hash must be stable, and it is: memory records, then segments,
  // then runs, all in their stored order.
  std::vector<ShuffleRecordRef> entries;
  Arena absorbed;
  AppendRecordEntries(input.memory_records, input.memory_segments, &entries);
  for (const RunInfo& run : input.spill_runs) {
    SpillReader reader(run.path);
    SPCUBE_RETURN_IF_ERROR(reader.Open());
    reader.SetFaultInjection(injector, mismatch_counter, run.resource);
    SpillBlockDecoder decoder;
    std::string raw;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, reader.Next(&raw));
      if (!more) break;
      decoder.SetBlock(raw);
      for (;;) {
        std::string_view key;
        std::string_view value;
        SPCUBE_ASSIGN_OR_RETURN(bool record, decoder.Next(&key, &value));
        if (!record) break;
        const char* data = absorbed.AppendPair(key, value);
        entries.push_back(ShuffleRecordRef{
            data, data + key.size(), static_cast<uint32_t>(key.size()),
            static_cast<uint32_t>(value.size())});
      }
    }
  }
  // Salted scatter over (key, ordinal). Including the ordinal is what lets
  // one oversized group shrink: its records spread across every sub-input
  // and partial-aggregate there (legal only under the RecoverySpec
  // contract; see docs/INTERNALS.md §11).
  std::vector<std::vector<ShuffleRecordRef>> sub_refs(
      static_cast<size_t>(fanout));
  for (size_t i = 0; i < entries.size(); ++i) {
    const uint64_t h = HashCombine(
        HashCombine(Mix64(salt ^ 0x5ca7ull), HashBytes(entries[i].key())),
        static_cast<uint64_t>(i));
    sub_refs[h % static_cast<uint64_t>(fanout)].push_back(entries[i]);
  }
  // One sorted run file per sub-input: the result must not reference
  // `input`'s arenas (the OOMed attempt's storage is reclaimed before the
  // sub-attempts run), and runs keep the "each sorted by key" invariant.
  std::vector<ReduceInput> subs(static_cast<size_t>(fanout));
  std::vector<ShuffleSortItem> order;
  SpillBlockEncoder encode;
  for (int k = 0; k < fanout; ++k) {
    const std::vector<ShuffleRecordRef>& refs =
        sub_refs[static_cast<size_t>(k)];
    if (refs.empty()) continue;
    SortRefs(refs, &order);
    SPCUBE_ASSIGN_OR_RETURN(
        RunInfo run,
        WriteSortedRun(refs, order, temp_files, counters, &encode));
    if (!resource_prefix.empty()) {
      run.resource = resource_prefix + "/s" + std::to_string(k);
    }
    ReduceInput& sub = subs[static_cast<size_t>(k)];
    sub.total_bytes = run.payload_bytes;
    sub.total_records = run.records;
    sub.spill_runs.push_back(std::move(run));
  }
  return subs;
}

}  // namespace spcube
