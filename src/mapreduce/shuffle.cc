#include "mapreduce/shuffle.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/bytes.h"
#include "common/logging.h"

namespace spcube {
namespace {

void SortRecords(std::vector<Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.key < b.key;
                   });
}

std::string EncodeSpillRecord(const Record& record) {
  ByteWriter writer;
  writer.PutBytes(record.key);
  writer.PutBytes(record.value);
  return writer.TakeData();
}

Status DecodeSpillRecord(const std::string& raw, Record* out) {
  ByteReader reader(raw);
  std::string_view key;
  std::string_view value;
  SPCUBE_RETURN_IF_ERROR(reader.GetBytes(&key));
  SPCUBE_RETURN_IF_ERROR(reader.GetBytes(&value));
  out->key.assign(key);
  out->value.assign(value);
  return Status::OK();
}

/// Writes sorted records as one spill run.
Result<RunInfo> WriteRun(const std::vector<Record>& sorted_records,
                         TempFileManager* temp_files,
                         ShuffleCounters* counters) {
  SpillWriter writer(temp_files->NextPath());
  SPCUBE_RETURN_IF_ERROR(writer.Open());
  RunInfo info;
  for (const Record& record : sorted_records) {
    SPCUBE_RETURN_IF_ERROR(writer.Append(EncodeSpillRecord(record)));
    info.payload_bytes += RecordBytes(record.key, record.value);
  }
  SPCUBE_RETURN_IF_ERROR(writer.Close());
  if (counters != nullptr) counters->spill_bytes += writer.bytes_written();
  info.path = writer.path();
  info.file_bytes = writer.bytes_written();
  info.records = writer.record_count();
  return info;
}

}  // namespace

ShuffleBuffer::ShuffleBuffer(int num_partitions,
                             int64_t memory_budget_bytes,
                             const Combiner* combiner,
                             TempFileManager* temp_files,
                             ShuffleCounters* counters)
    : num_partitions_(num_partitions),
      memory_budget_bytes_(memory_budget_bytes),
      combiner_(combiner),
      temp_files_(temp_files),
      counters_(counters),
      memory_(static_cast<size_t>(num_partitions)),
      spill_runs_(static_cast<size_t>(num_partitions)) {}

ShuffleBuffer::~ShuffleBuffer() {
  // Any run still here belongs to an attempt whose output was never
  // published (failed or superseded); reclaim the disk now rather than at
  // TempFileManager teardown.
  for (const std::vector<RunInfo>& runs : spill_runs_) {
    for (const RunInfo& run : runs) RemoveFileIfExists(run.path);
  }
}

Status ShuffleBuffer::Add(int partition, std::string_view key,
                          std::string_view value) {
  SPCUBE_DCHECK(partition >= 0 && partition < num_partitions_)
      << "bad partition " << partition;
  counters_->map_output_records += 1;
  counters_->map_output_bytes += RecordBytes(key, value);
  buffered_bytes_ += RecordBytes(key, value);
  memory_[static_cast<size_t>(partition)].push_back(
      Record{std::string(key), std::string(value)});
  if (buffered_bytes_ > memory_budget_bytes_) {
    SPCUBE_RETURN_IF_ERROR(Overflow());
  }
  return Status::OK();
}

Status ShuffleBuffer::FinalizeMapOutput() { return CombineInMemory(); }

std::vector<Record> ShuffleBuffer::TakeMemoryRecords(int partition) {
  return std::move(memory_[static_cast<size_t>(partition)]);
}

std::vector<RunInfo> ShuffleBuffer::TakeSpillRuns(int partition) {
  // Explicitly leave the slot empty so the destructor does not delete runs
  // whose ownership moved to the shuffle.
  std::vector<RunInfo> runs;
  runs.swap(spill_runs_[static_cast<size_t>(partition)]);
  return runs;
}

Status ShuffleBuffer::Overflow() {
  if (combiner_ != nullptr) {
    SPCUBE_RETURN_IF_ERROR(CombineInMemory());
    // Keep the buffer only if combining freed real headroom; a buffer that
    // hovers near the budget would otherwise re-combine after every few
    // records (quadratic). Hadoop applies the same spill-anyway rule.
    if (buffered_bytes_ <= memory_budget_bytes_ * 3 / 4) {
      return Status::OK();
    }
  }
  return SpillAll();
}

Status ShuffleBuffer::CombineInMemory() {
  if (combiner_ == nullptr) return Status::OK();
  for (std::vector<Record>& partition : memory_) {
    if (partition.empty()) continue;
    std::unordered_map<std::string, std::vector<std::string>> by_key;
    for (Record& record : partition) {
      by_key[std::move(record.key)].push_back(std::move(record.value));
    }
    std::vector<Record> combined;
    for (auto& [key, values] : by_key) {
      counters_->combine_input_records +=
          static_cast<int64_t>(values.size());
      std::vector<std::string> merged;
      SPCUBE_RETURN_IF_ERROR(combiner_->Combine(key, values, &merged));
      counters_->combine_output_records +=
          static_cast<int64_t>(merged.size());
      for (std::string& value : merged) {
        combined.push_back(Record{key, std::move(value)});
      }
    }
    partition = std::move(combined);
  }
  buffered_bytes_ = 0;
  for (const std::vector<Record>& partition : memory_) {
    for (const Record& record : partition) {
      buffered_bytes_ += RecordBytes(record.key, record.value);
    }
  }
  return Status::OK();
}

Status ShuffleBuffer::SpillAll() {
  for (int p = 0; p < num_partitions_; ++p) {
    std::vector<Record>& partition = memory_[static_cast<size_t>(p)];
    if (partition.empty()) continue;
    SortRecords(partition);
    SPCUBE_ASSIGN_OR_RETURN(RunInfo run,
                            WriteRun(partition, temp_files_, counters_));
    if (!resource_prefix_.empty()) {
      run.resource =
          resource_prefix_ + "/p" + std::to_string(p) + "/r" +
          std::to_string(spill_runs_[static_cast<size_t>(p)].size());
    }
    spill_runs_[static_cast<size_t>(p)].push_back(std::move(run));
    partition.clear();
    partition.shrink_to_fit();
  }
  buffered_bytes_ = 0;
  return Status::OK();
}

namespace {

/// Fully in-memory grouped stream over records sorted by key.
class InMemoryGroupedStream : public GroupedRecordStream {
 public:
  explicit InMemoryGroupedStream(std::vector<Record> records)
      : records_(std::move(records)) {
    SortRecords(records_);
  }

  Result<bool> NextGroup(std::string* key) override {
    pos_ = group_end_;
    if (pos_ >= records_.size()) return false;
    *key = records_[pos_].key;
    group_end_ = pos_;
    while (group_end_ < records_.size() &&
           records_[group_end_].key == *key) {
      ++group_end_;
    }
    value_pos_ = pos_;
    return true;
  }

  Result<bool> NextValue(std::string* value) override {
    if (value_pos_ >= group_end_) return false;
    *value = std::move(records_[value_pos_].value);
    ++value_pos_;
    return true;
  }

 private:
  std::vector<Record> records_;
  size_t pos_ = 0;
  size_t group_end_ = 0;
  size_t value_pos_ = 0;
};

/// K-way merge over sorted run files; streams groups without materializing
/// them. Heads are ordered by (key, run index) for determinism. Paths in
/// `owned_paths` (the attempt-private run MakeGroupedStream sorts out of the
/// in-memory records) are deleted on destruction, whether or not the attempt
/// succeeded.
class MergingGroupedStream : public GroupedRecordStream {
 public:
  /// `run_resources` parallels `run_paths` (empty string = use the path).
  MergingGroupedStream(std::vector<std::string> run_paths,
                       std::vector<std::string> run_resources,
                       std::vector<std::string> owned_paths,
                       IoFaultInjector* injector, int64_t* mismatch_counter)
      : run_paths_(std::move(run_paths)),
        run_resources_(std::move(run_resources)),
        owned_paths_(std::move(owned_paths)),
        injector_(injector),
        mismatch_counter_(mismatch_counter) {}

  ~MergingGroupedStream() override {
    readers_.clear();  // close files before unlinking
    for (const std::string& path : owned_paths_) RemoveFileIfExists(path);
  }

  Status Init() {
    readers_.reserve(run_paths_.size());
    for (size_t i = 0; i < run_paths_.size(); ++i) {
      auto reader = std::make_unique<SpillReader>(run_paths_[i]);
      SPCUBE_RETURN_IF_ERROR(reader->Open());
      reader->SetFaultInjection(injector_, mismatch_counter_,
                                run_resources_[i]);
      readers_.push_back(std::move(reader));
    }
    heads_.resize(readers_.size());
    for (size_t i = 0; i < readers_.size(); ++i) {
      SPCUBE_RETURN_IF_ERROR(Advance(i));
    }
    return Status::OK();
  }

  Result<bool> NextGroup(std::string* key) override {
    // Drain any unread values of the previous group.
    if (in_group_) {
      std::string scratch;
      for (;;) {
        SPCUBE_ASSIGN_OR_RETURN(bool more, NextValue(&scratch));
        if (!more) break;
      }
    }
    const int run = MinRun();
    if (run < 0) return false;
    current_key_ = heads_[static_cast<size_t>(run)].record.key;
    *key = current_key_;
    in_group_ = true;
    return true;
  }

  Result<bool> NextValue(std::string* value) override {
    if (!in_group_) return false;
    const int run = MinRun();
    if (run < 0 ||
        heads_[static_cast<size_t>(run)].record.key != current_key_) {
      in_group_ = false;
      return false;
    }
    *value = std::move(heads_[static_cast<size_t>(run)].record.value);
    SPCUBE_RETURN_IF_ERROR(Advance(static_cast<size_t>(run)));
    return true;
  }

 private:
  struct Head {
    Record record;
    bool valid = false;
  };

  Status Advance(size_t run) {
    std::string raw;
    SPCUBE_ASSIGN_OR_RETURN(bool more, readers_[run]->Next(&raw));
    if (!more) {
      heads_[run].valid = false;
      return Status::OK();
    }
    SPCUBE_RETURN_IF_ERROR(DecodeSpillRecord(raw, &heads_[run].record));
    heads_[run].valid = true;
    return Status::OK();
  }

  /// Index of the run whose head has the smallest key, or -1. Linear scan —
  /// run counts are small (one per spill); switch to a heap if they grow.
  int MinRun() const {
    int best = -1;
    for (size_t i = 0; i < heads_.size(); ++i) {
      if (!heads_[i].valid) continue;
      if (best < 0 ||
          heads_[i].record.key < heads_[static_cast<size_t>(best)].record.key) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  std::vector<std::string> run_paths_;
  std::vector<std::string> run_resources_;
  std::vector<std::string> owned_paths_;
  IoFaultInjector* injector_;
  int64_t* mismatch_counter_;
  std::vector<std::unique_ptr<SpillReader>> readers_;
  std::vector<Head> heads_;
  std::string current_key_;
  bool in_group_ = false;
};

}  // namespace

Result<std::unique_ptr<GroupedRecordStream>> MakeGroupedStream(
    ReduceInput input, int64_t memory_budget_bytes, MemoryPolicy policy,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector, std::string resource_prefix) {
  int64_t* mismatch_counter =
      counters != nullptr ? &counters->checksum_mismatches : nullptr;
  const bool fits = input.total_bytes <= memory_budget_bytes;
  if (!fits && policy == MemoryPolicy::kStrict) {
    return Status::ResourceExhausted(
        "reduce input of " + std::to_string(input.total_bytes) +
        " bytes exceeds the machine memory budget of " +
        std::to_string(memory_budget_bytes) + " bytes");
  }
  if (fits && input.spill_runs.empty()) {
    return {std::make_unique<InMemoryGroupedStream>(
        std::move(input.memory_records))};
  }
  if (fits) {
    // Small enough to absorb the runs into memory: read them back and sort
    // everything together.
    std::vector<Record> all = std::move(input.memory_records);
    for (const RunInfo& run : input.spill_runs) {
      SpillReader reader(run.path);
      SPCUBE_RETURN_IF_ERROR(reader.Open());
      reader.SetFaultInjection(injector, mismatch_counter, run.resource);
      std::string raw;
      for (;;) {
        SPCUBE_ASSIGN_OR_RETURN(bool more, reader.Next(&raw));
        if (!more) break;
        Record record;
        SPCUBE_RETURN_IF_ERROR(DecodeSpillRecord(raw, &record));
        all.push_back(std::move(record));
      }
    }
    return {std::make_unique<InMemoryGroupedStream>(std::move(all))};
  }

  // External path: sort the in-memory part into one more run, then merge.
  std::vector<std::string> run_paths;
  std::vector<std::string> run_resources;
  std::vector<std::string> owned_paths;
  run_paths.reserve(input.spill_runs.size() + 1);
  run_resources.reserve(input.spill_runs.size() + 1);
  for (const RunInfo& run : input.spill_runs) {
    run_paths.push_back(run.path);
    run_resources.push_back(run.resource);
  }
  if (!input.memory_records.empty()) {
    SortRecords(input.memory_records);
    SPCUBE_ASSIGN_OR_RETURN(
        RunInfo run, WriteRun(input.memory_records, temp_files, counters));
    run_paths.push_back(run.path);
    run_resources.push_back(
        resource_prefix.empty() ? "" : resource_prefix + "/mem");
    owned_paths.push_back(std::move(run.path));
  }
  auto merging = std::make_unique<MergingGroupedStream>(
      std::move(run_paths), std::move(run_resources), std::move(owned_paths),
      injector, mismatch_counter);
  SPCUBE_RETURN_IF_ERROR(merging->Init());
  return {std::unique_ptr<GroupedRecordStream>(std::move(merging))};
}

}  // namespace spcube
