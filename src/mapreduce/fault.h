#ifndef SPCUBE_MAPREDUCE_FAULT_H_
#define SPCUBE_MAPREDUCE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/io_fault.h"

namespace spcube {

/// Which side of a MapReduce round a task attempt belongs to.
enum class TaskKind : int8_t { kMap = 0, kReduce = 1 };

/// What the plan injects into one task attempt.
struct TaskFault {
  /// Fail the attempt with an injected I/O error...
  bool fail = false;
  /// ...after this many input items (rows for maps, groups for reduces)
  /// have been processed; if the attempt has fewer items it fails at the
  /// finish barrier instead, so an injected failure always lands.
  int64_t fail_after_items = 0;
  /// > 1 marks the attempt's machine as a straggler: its charged busy time
  /// is the measured time scaled by this factor (a slow disk or a busy
  /// neighbor, not extra work).
  double slowdown_factor = 1.0;

  /// < 1 injects memory pressure into a reduce attempt: the effective
  /// memory budget for assembling the attempt's grouped input is the
  /// configured budget times this factor (a co-tenant eating the heap).
  /// Under MemoryPolicy::kSpill the attempt just spills more; under kStrict
  /// it OOMs and exercises retry / adaptive partition-split recovery.
  double budget_factor = 1.0;
};

/// Fault rates of one chaos scenario. All probabilities are per decision
/// point (task attempt, worker, DFS path, record fetch).
struct FaultConfig {
  /// Root of every pseudo-random decision; two plans with equal seeds make
  /// identical decisions regardless of thread interleaving.
  uint64_t seed = 0;

  /// Probability that a map / reduce task attempt fails outright.
  double map_failure_rate = 0.0;
  double reduce_failure_rate = 0.0;

  /// Probability, per worker per job, that the whole machine crashes after
  /// the map phase, losing its completed map outputs (at least one worker
  /// always survives).
  double worker_crash_rate = 0.0;

  /// Exactly this many workers (capped at num_workers - 1) crash per job,
  /// in addition to the rate-based crashes. Lets tests pin "one crash".
  int forced_worker_crashes = 0;

  /// Probability that a task runs `straggler_factor` times slower than
  /// measured.
  double straggler_rate = 0.0;
  double straggler_factor = 6.0;

  /// Probability, per reduce task attempt, that the attempt suffers
  /// injected memory pressure: its effective budget is the configured
  /// budget times `oom_budget_factor` (clamped to (0, 1]). Drawn per
  /// attempt, so a retried attempt may get its full budget back.
  double oom_pressure_rate = 0.0;
  double oom_budget_factor = 0.5;

  /// Probability that the first read of a DFS path fails transiently
  /// (injected only on the first read so a retried attempt can succeed).
  double dfs_read_error_rate = 0.0;

  /// Probability that a delivered payload (spill record fetch or DFS blob
  /// read) is corrupted in flight. Injected only on the first fetch of an
  /// item, so checksum-triggered re-fetches always recover.
  double payload_corruption_rate = 0.0;

  /// Persistently corrupts every read of DFS blobs whose path contains
  /// `persistent_corruption_substring` — every fetch attempt of every
  /// reader sees the same damage. Exercises SP-Cube's sketch-degradation
  /// fallback: the broadcast is unrecoverable, identically for all tasks.
  bool corrupt_sketch_broadcast = false;
  std::string persistent_corruption_substring = "spcube/sketch/";
};

/// A seeded, deterministic chaos plan. Every decision is a pure hash of
/// (seed, job ordinal, decision coordinates), never of call order, so
/// threaded and sequential engine runs inject exactly the same faults and a
/// re-executed attempt draws fresh (but reproducible) luck. Implements the
/// io-layer injector interface so the same plan drives DFS and shuffle
/// corruption.
class FaultPlan : public IoFaultInjector {
 public:
  explicit FaultPlan(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Registers the start of a job and returns its stable ordinal, the
  /// namespace of all task-level decisions for that job.
  int64_t BeginJob(std::string_view job_name);

  /// The faults destined for one task attempt. Pure and thread-safe.
  TaskFault PlanTaskAttempt(int64_t job, TaskKind kind, int task,
                            int attempt) const;

  /// The workers that crash after `job`'s map phase: the rate-based draws
  /// plus `forced_worker_crashes`, deduplicated, capped at num_workers - 1
  /// so the job can always recover. Ascending order.
  std::vector<int> CrashedWorkers(int64_t job, int num_workers) const;

  // IoFaultInjector:
  Status OnDfsRead(const std::string& path) override;
  bool MaybeCorrupt(std::string_view resource, uint64_t item,
                    int fetch_attempt, std::string* payload) override;

  /// Totals of io-level injections actually performed (task-level injections
  /// are counted by the engine in JobMetrics). Relaxed loads: callers read
  /// these after the engine joins its workers, so the join provides the
  /// happens-before edge; the atomics only make concurrent bumps lossless.
  int64_t injected_read_errors() const {
    return injected_read_errors_.load(std::memory_order_relaxed);
  }
  int64_t injected_corruptions() const {
    return injected_corruptions_.load(std::memory_order_relaxed);
  }

 private:
  FaultConfig config_;

  /// Pure counters: no other memory is published through them, so every
  /// access is std::memory_order_relaxed (see docs/INTERNALS.md §12).
  std::atomic<int64_t> next_job_{0};
  std::atomic<int64_t> injected_read_errors_{0};
  std::atomic<int64_t> injected_corruptions_{0};

  /// Per-path read counts backing the "first read only" rule for transient
  /// DFS errors.
  mutable Mutex mu_;
  std::map<std::string, int64_t> dfs_reads_seen_ SPCUBE_GUARDED_BY(mu_);
};

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_FAULT_H_
