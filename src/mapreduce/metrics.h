#ifndef SPCUBE_MAPREDUCE_METRICS_H_
#define SPCUBE_MAPREDUCE_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spcube {

/// Wall-clock accounting for one phase across the simulated machines. The
/// host may have fewer cores than the simulated cluster, so tasks run
/// (possibly) sequentially and each machine's busy time is measured
/// separately; the phase's cluster time is the critical path (max).
struct PhaseMetrics {
  std::vector<double> per_worker_seconds;

  double MaxSeconds() const;
  double AvgSeconds() const;
  double SumSeconds() const;

  void Accumulate(int worker, double seconds);
  void EnsureWorkers(int num_workers);
};

/// Counters and times for one MapReduce round, mirroring the measures the
/// paper reports: total running time, average map/reduce time, and
/// intermediate data size (§6, "the size of traffic in the cluster that is
/// delivered between mappers and reducers").
struct JobMetrics {
  std::string job_name;

  PhaseMetrics map_phase;
  PhaseMetrics reduce_phase;

  int64_t map_input_records = 0;
  /// Pairs emitted by mappers, before any combining (Hadoop's
  /// "Map output records/bytes").
  int64_t map_output_records = 0;
  int64_t map_output_bytes = 0;
  /// Pairs actually delivered to reducers, after combining — the paper's
  /// "intermediate data size".
  int64_t shuffle_records = 0;
  int64_t shuffle_bytes = 0;
  int64_t combine_input_records = 0;
  int64_t combine_output_records = 0;
  /// Bytes written to local disk because a buffer exceeded its budget.
  /// These are the bytes actually on disk — delta/varint-encoded per
  /// docs/INTERNALS.md §13.
  int64_t spill_bytes = 0;
  /// What the same spilled records would have occupied in the legacy
  /// fixed-frame format; always >= spill_bytes. Zero when nothing spilled.
  int64_t spill_bytes_uncompressed = 0;
  /// Bytes that actually cross the (simulated) wire per reducer: in-memory
  /// segment payloads plus the on-disk (compressed) bytes of spilled runs.
  /// shuffle_bytes/reducer_input_bytes stay payload-denominated so record
  /// accounting and scheduling are encoding-independent.
  int64_t shuffle_bytes_compressed = 0;
  /// The wire bytes the legacy spill format would have shipped; equals
  /// shuffle_bytes_compressed when nothing spilled.
  int64_t shuffle_bytes_uncompressed = 0;

  std::vector<int64_t> reducer_input_records;
  std::vector<int64_t> reducer_input_bytes;
  /// Per-reducer wire bytes (segment payloads + spilled-run file bytes);
  /// the bottleneck entry drives shuffle_seconds.
  std::vector<int64_t> reducer_wire_bytes;
  std::vector<int64_t> reducer_output_records;

  int64_t output_records = 0;

  // -- Fault tolerance (all zero on a fault-free run) ------------------------

  /// Failed task attempts that were retried (injected or genuine).
  int64_t task_retries = 0;
  /// Map tasks re-executed because their machine crashed after completing
  /// them (Hadoop's lost-map-output recovery).
  int64_t tasks_reexecuted_after_crash = 0;
  /// Machines lost to whole-worker crashes this round.
  int64_t workers_crashed = 0;
  /// Stragglers whose speculative copy was charged to another machine.
  int64_t tasks_speculatively_reexecuted = 0;
  /// Shuffle-fetch checksum mismatches detected and recovered by re-fetch.
  int64_t shuffle_checksum_mismatches = 0;
  /// Simulated time spent on recovery: retry backoff, crash re-execution,
  /// speculative copies and adaptive split recovery. Already included in
  /// the phase times; reported separately so overhead is visible.
  double fault_recovery_seconds = 0.0;

  // -- Adaptive split recovery (mapreduce/api.h, RecoverySpec) ---------------

  /// Reduce partitions whose strict-policy OOM was survived by splitting
  /// into sub-partitions and merging the partial outputs.
  int64_t reduce_partitions_split = 0;
  /// Split operations performed during recovery (recursive re-splits of a
  /// still-oversized sub-partition count individually).
  int64_t recovery_rounds = 0;
  /// Payload bytes re-scattered into sub-partition runs by those splits —
  /// the extra "shuffle" the degraded path pays.
  int64_t recovery_bytes_reshuffled = 0;
  /// Simulated time charged for split recovery (per-split backoff plus the
  /// re-scatter transfer at the configured network bandwidth). A subset of
  /// fault_recovery_seconds, reported separately so degradation cost is
  /// attributable.
  double recovery_seconds = 0.0;
  /// 1 when ReducerImbalance() exceeded
  /// EngineConfig::reducer_imbalance_alert_threshold (> 0) this round — the
  /// drift signal a deployment would use to trigger re-sketching.
  int64_t reducer_imbalance_alerts = 0;

  /// User counters incremented by tasks via the contexts (only successful
  /// attempts contribute), keyed by name.
  std::map<std::string, int64_t> custom_counters;

  /// Modeled network transfer time (bottleneck reducer's inbound bytes over
  /// the per-node bandwidth) — see EngineConfig.
  double shuffle_seconds = 0.0;
  /// Fixed per-round startup/teardown cost from EngineConfig.
  double round_overhead_seconds = 0.0;

  /// Cluster (simulated) end-to-end time for this round:
  /// max map + shuffle + max reduce + round overhead.
  double TotalSeconds() const;

  int64_t MaxReducerInputRecords() const;
  int64_t MaxReducerInputBytes() const;
  /// Bottleneck reducer's inbound wire bytes (falls back to
  /// MaxReducerInputBytes() when reducer_wire_bytes was never populated).
  int64_t MaxReducerWireBytes() const;

  /// Ratio of the most-loaded to the average-loaded reducer input (1.0 is
  /// perfectly balanced). The paper's balance claim in §6.2 is about this.
  double ReducerImbalance() const;

  std::string ToString() const;
};

/// Sum of several rounds (e.g. SP-Cube's sketch round + cube round, or
/// MR-Cube's three rounds).
struct RunMetrics {
  std::string algorithm;
  std::vector<JobMetrics> rounds;

  void Add(JobMetrics round) { rounds.push_back(std::move(round)); }

  double TotalSeconds() const;
  double MapSeconds() const;     // sum over rounds of max map time
  double ReduceSeconds() const;  // sum over rounds of max reduce time
  double AvgMapSeconds() const;
  double AvgReduceSeconds() const;
  int64_t MapOutputBytes() const;
  int64_t ShuffleBytes() const;
  int64_t ShuffleBytesCompressed() const;
  int64_t ShuffleBytesUncompressed() const;
  int64_t SpillBytes() const;
  int64_t SpillBytesUncompressed() const;
  int64_t OutputRecords() const;

  // Fault-tolerance totals over all rounds.
  int64_t TaskRetries() const;
  int64_t TasksReexecutedAfterCrash() const;
  int64_t WorkersCrashed() const;
  int64_t TasksSpeculativelyReexecuted() const;
  int64_t ShuffleChecksumMismatches() const;
  double FaultRecoverySeconds() const;

  // Adaptive split-recovery totals over all rounds.
  int64_t ReducePartitionsSplit() const;
  int64_t RecoveryRounds() const;
  int64_t RecoveryBytesReshuffled() const;
  double RecoverySeconds() const;
  int64_t ReducerImbalanceAlerts() const;

  /// Sum of one named user counter over all rounds.
  int64_t CustomCounter(const std::string& name) const;

  std::string ToString() const;
};

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_METRICS_H_
