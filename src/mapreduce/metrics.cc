#include "mapreduce/metrics.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace spcube {

double PhaseMetrics::MaxSeconds() const {
  if (per_worker_seconds.empty()) return 0.0;
  return *std::max_element(per_worker_seconds.begin(),
                           per_worker_seconds.end());
}

double PhaseMetrics::AvgSeconds() const {
  if (per_worker_seconds.empty()) return 0.0;
  return SumSeconds() / static_cast<double>(per_worker_seconds.size());
}

double PhaseMetrics::SumSeconds() const {
  return std::accumulate(per_worker_seconds.begin(),
                         per_worker_seconds.end(), 0.0);
}

void PhaseMetrics::Accumulate(int worker, double seconds) {
  EnsureWorkers(worker + 1);
  per_worker_seconds[static_cast<size_t>(worker)] += seconds;
}

void PhaseMetrics::EnsureWorkers(int num_workers) {
  if (static_cast<int>(per_worker_seconds.size()) < num_workers) {
    per_worker_seconds.resize(static_cast<size_t>(num_workers), 0.0);
  }
}

double JobMetrics::TotalSeconds() const {
  return map_phase.MaxSeconds() + shuffle_seconds +
         reduce_phase.MaxSeconds() + round_overhead_seconds;
}

int64_t JobMetrics::MaxReducerInputRecords() const {
  if (reducer_input_records.empty()) return 0;
  return *std::max_element(reducer_input_records.begin(),
                           reducer_input_records.end());
}

int64_t JobMetrics::MaxReducerInputBytes() const {
  if (reducer_input_bytes.empty()) return 0;
  return *std::max_element(reducer_input_bytes.begin(),
                           reducer_input_bytes.end());
}

int64_t JobMetrics::MaxReducerWireBytes() const {
  if (reducer_wire_bytes.empty()) return MaxReducerInputBytes();
  return *std::max_element(reducer_wire_bytes.begin(),
                           reducer_wire_bytes.end());
}

double JobMetrics::ReducerImbalance() const {
  if (reducer_input_records.empty()) return 1.0;
  const int64_t total = std::accumulate(reducer_input_records.begin(),
                                        reducer_input_records.end(),
                                        int64_t{0});
  if (total == 0) return 1.0;
  const double avg = static_cast<double>(total) /
                     static_cast<double>(reducer_input_records.size());
  return static_cast<double>(MaxReducerInputRecords()) / avg;
}

std::string JobMetrics::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "%s: total=%.3fs map(max=%.3fs avg=%.3fs) reduce(max=%.3fs avg=%.3fs) "
      "map_out=%lld rec/%lld B shuffle=%lld rec/%lld B spill=%lld B "
      "out=%lld rec imbalance=%.2f",
      job_name.c_str(), TotalSeconds(), map_phase.MaxSeconds(),
      map_phase.AvgSeconds(), reduce_phase.MaxSeconds(),
      reduce_phase.AvgSeconds(),
      static_cast<long long>(map_output_records),
      static_cast<long long>(map_output_bytes),
      static_cast<long long>(shuffle_records),
      static_cast<long long>(shuffle_bytes),
      static_cast<long long>(spill_bytes),
      static_cast<long long>(output_records), ReducerImbalance());
  std::string out = buf;
  if (spill_bytes_uncompressed > 0) {
    std::snprintf(buf, sizeof(buf),
                  " spill_raw=%lld B wire=%lld B (raw %lld B)",
                  static_cast<long long>(spill_bytes_uncompressed),
                  static_cast<long long>(shuffle_bytes_compressed),
                  static_cast<long long>(shuffle_bytes_uncompressed));
    out += buf;
  }
  if (task_retries > 0 || workers_crashed > 0 ||
      tasks_speculatively_reexecuted > 0 || shuffle_checksum_mismatches > 0) {
    std::snprintf(
        buf, sizeof(buf),
        " faults(retries=%lld crashed=%lld crash_reexec=%lld spec=%lld "
        "crc_mismatch=%lld recovery=%.3fs)",
        static_cast<long long>(task_retries),
        static_cast<long long>(workers_crashed),
        static_cast<long long>(tasks_reexecuted_after_crash),
        static_cast<long long>(tasks_speculatively_reexecuted),
        static_cast<long long>(shuffle_checksum_mismatches),
        fault_recovery_seconds);
    out += buf;
  }
  if (reduce_partitions_split > 0 || reducer_imbalance_alerts > 0) {
    std::snprintf(
        buf, sizeof(buf),
        " recovery(split_partitions=%lld rounds=%lld reshuffled=%lld B "
        "time=%.3fs imbalance_alerts=%lld)",
        static_cast<long long>(reduce_partitions_split),
        static_cast<long long>(recovery_rounds),
        static_cast<long long>(recovery_bytes_reshuffled), recovery_seconds,
        static_cast<long long>(reducer_imbalance_alerts));
    out += buf;
  }
  return out;
}

double RunMetrics::TotalSeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) total += round.TotalSeconds();
  return total;
}

double RunMetrics::MapSeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) {
    total += round.map_phase.MaxSeconds();
  }
  return total;
}

double RunMetrics::ReduceSeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) {
    total += round.reduce_phase.MaxSeconds();
  }
  return total;
}

double RunMetrics::AvgMapSeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) {
    total += round.map_phase.AvgSeconds();
  }
  return total;
}

double RunMetrics::AvgReduceSeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) {
    total += round.reduce_phase.AvgSeconds();
  }
  return total;
}

int64_t RunMetrics::MapOutputBytes() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.map_output_bytes;
  return total;
}

int64_t RunMetrics::ShuffleBytes() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.shuffle_bytes;
  return total;
}

int64_t RunMetrics::ShuffleBytesCompressed() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.shuffle_bytes_compressed;
  }
  return total;
}

int64_t RunMetrics::ShuffleBytesUncompressed() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.shuffle_bytes_uncompressed;
  }
  return total;
}

int64_t RunMetrics::SpillBytes() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.spill_bytes;
  return total;
}

int64_t RunMetrics::SpillBytesUncompressed() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.spill_bytes_uncompressed;
  }
  return total;
}

int64_t RunMetrics::TaskRetries() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.task_retries;
  return total;
}

int64_t RunMetrics::TasksReexecutedAfterCrash() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.tasks_reexecuted_after_crash;
  }
  return total;
}

int64_t RunMetrics::WorkersCrashed() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.workers_crashed;
  return total;
}

int64_t RunMetrics::TasksSpeculativelyReexecuted() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.tasks_speculatively_reexecuted;
  }
  return total;
}

int64_t RunMetrics::ShuffleChecksumMismatches() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.shuffle_checksum_mismatches;
  }
  return total;
}

double RunMetrics::FaultRecoverySeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) {
    total += round.fault_recovery_seconds;
  }
  return total;
}

int64_t RunMetrics::ReducePartitionsSplit() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.reduce_partitions_split;
  }
  return total;
}

int64_t RunMetrics::RecoveryRounds() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.recovery_rounds;
  return total;
}

int64_t RunMetrics::RecoveryBytesReshuffled() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.recovery_bytes_reshuffled;
  }
  return total;
}

double RunMetrics::RecoverySeconds() const {
  double total = 0.0;
  for (const JobMetrics& round : rounds) total += round.recovery_seconds;
  return total;
}

int64_t RunMetrics::ReducerImbalanceAlerts() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    total += round.reducer_imbalance_alerts;
  }
  return total;
}

int64_t RunMetrics::CustomCounter(const std::string& name) const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) {
    auto it = round.custom_counters.find(name);
    if (it != round.custom_counters.end()) total += it->second;
  }
  return total;
}

int64_t RunMetrics::OutputRecords() const {
  int64_t total = 0;
  for (const JobMetrics& round : rounds) total += round.output_records;
  return total;
}

std::string RunMetrics::ToString() const {
  std::string out = algorithm + " (" + std::to_string(rounds.size()) +
                    " round(s)):\n";
  for (const JobMetrics& round : rounds) {
    out += "  " + round.ToString() + "\n";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  TOTAL: %.3fs, shuffle=%lld B, spill=%lld B",
                TotalSeconds(), static_cast<long long>(ShuffleBytes()),
                static_cast<long long>(SpillBytes()));
  out += buf;
  return out;
}

}  // namespace spcube
