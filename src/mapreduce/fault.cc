#include "mapreduce/fault.h"

#include <algorithm>

#include "common/hash.h"
#include "common/random.h"

namespace spcube {
namespace {

/// Domain-separation tags so decisions of different kinds never share a
/// hash stream.
enum DecisionTag : uint64_t {
  kTagTaskFail = 1,
  kTagStraggler = 2,
  kTagCrash = 3,
  kTagForcedCrash = 4,
  kTagDfsReadError = 5,
  kTagCorruption = 6,
  kTagOomPressure = 7,
};

uint64_t DecisionKey(uint64_t seed, uint64_t tag, uint64_t a, uint64_t b,
                     uint64_t c) {
  uint64_t h = HashCombine(Mix64(seed ^ 0x5bd1e995u), tag);
  h = HashCombine(h, a);
  h = HashCombine(h, b);
  h = HashCombine(h, c);
  return h;
}

/// One seeded draw per decision; Rng gives well-distributed doubles from
/// the decision key without any shared state.
bool Bernoulli(uint64_t key, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Rng(key).NextBernoulli(p);
}

}  // namespace

FaultPlan::FaultPlan(FaultConfig config) : config_(std::move(config)) {}

int64_t FaultPlan::BeginJob(std::string_view job_name) {
  (void)job_name;  // the ordinal, not the name, namespaces decisions
  // Relaxed: only the returned ordinal matters, nothing is published.
  return next_job_.fetch_add(1, std::memory_order_relaxed);
}

TaskFault FaultPlan::PlanTaskAttempt(int64_t job, TaskKind kind, int task,
                                     int attempt) const {
  const double fail_rate = kind == TaskKind::kMap
                               ? config_.map_failure_rate
                               : config_.reduce_failure_rate;
  const uint64_t coords =
      HashCombine(static_cast<uint64_t>(task),
                  static_cast<uint64_t>(attempt));
  TaskFault fault;
  const uint64_t fail_key =
      DecisionKey(config_.seed, kTagTaskFail, static_cast<uint64_t>(job),
                  static_cast<uint64_t>(kind), coords);
  if (Bernoulli(fail_key, fail_rate)) {
    fault.fail = true;
    // Fail partway through the attempt's input so retried work is visibly
    // discarded, not just rejected up front.
    fault.fail_after_items = 1 + static_cast<int64_t>(Rng(fail_key).Next() % 64);
  }
  const uint64_t straggle_key =
      DecisionKey(config_.seed, kTagStraggler, static_cast<uint64_t>(job),
                  static_cast<uint64_t>(kind), coords);
  if (Bernoulli(straggle_key, config_.straggler_rate)) {
    fault.slowdown_factor = std::max(1.0, config_.straggler_factor);
  }
  if (kind == TaskKind::kReduce) {
    // Memory pressure only makes sense on the reduce side, where the budget
    // gates the grouped-input assembly. Drawn per attempt: a retry may get
    // its full budget back, which is what makes strict-policy OOMs
    // transient rather than terminal.
    const uint64_t oom_key =
        DecisionKey(config_.seed, kTagOomPressure, static_cast<uint64_t>(job),
                    static_cast<uint64_t>(kind), coords);
    if (Bernoulli(oom_key, config_.oom_pressure_rate)) {
      fault.budget_factor =
          std::clamp(config_.oom_budget_factor, 1e-6, 1.0);
    }
  }
  return fault;
}

std::vector<int> FaultPlan::CrashedWorkers(int64_t job,
                                           int num_workers) const {
  std::vector<int> crashed;
  if (num_workers <= 1) return crashed;
  const int max_crashes = num_workers - 1;  // someone must survive
  for (int w = 0; w < num_workers; ++w) {
    const uint64_t key =
        DecisionKey(config_.seed, kTagCrash, static_cast<uint64_t>(job),
                    static_cast<uint64_t>(w), 0);
    if (Bernoulli(key, config_.worker_crash_rate)) crashed.push_back(w);
    if (static_cast<int>(crashed.size()) >= max_crashes) return crashed;
  }
  // Forced crashes pick further victims pseudo-randomly among survivors.
  for (int i = 0; i < config_.forced_worker_crashes; ++i) {
    if (static_cast<int>(crashed.size()) >= max_crashes) break;
    const uint64_t key =
        DecisionKey(config_.seed, kTagForcedCrash, static_cast<uint64_t>(job),
                    static_cast<uint64_t>(i), 0);
    int victim = static_cast<int>(Rng(key).NextBounded(
        static_cast<uint64_t>(num_workers)));
    while (std::find(crashed.begin(), crashed.end(), victim) !=
           crashed.end()) {
      victim = (victim + 1) % num_workers;
    }
    crashed.push_back(victim);
  }
  std::sort(crashed.begin(), crashed.end());
  return crashed;
}

Status FaultPlan::OnDfsRead(const std::string& path) {
  if (config_.dfs_read_error_rate <= 0.0) return Status::OK();
  int64_t occurrence = 0;
  {
    MutexLock lock(&mu_);
    occurrence = ++dfs_reads_seen_[path];
  }
  // Only the first read of a path can fail: the error models a transient
  // fetch problem, so any retry — by the same task attempt's successor or a
  // later reader — succeeds by construction.
  if (occurrence != 1) return Status::OK();
  const uint64_t key =
      DecisionKey(config_.seed, kTagDfsReadError, HashBytes(path), 0, 0);
  if (!Bernoulli(key, config_.dfs_read_error_rate)) return Status::OK();
  injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
  return Status::IoError("injected transient dfs read error: " + path);
}

bool FaultPlan::MaybeCorrupt(std::string_view resource, uint64_t item,
                             int fetch_attempt, std::string* payload) {
  if (payload == nullptr || payload->empty()) return false;
  const bool persistent =
      config_.corrupt_sketch_broadcast &&
      !config_.persistent_corruption_substring.empty() &&
      resource.find(config_.persistent_corruption_substring) !=
          std::string_view::npos;
  if (!persistent) {
    // Transient in-flight corruption hits only the first fetch of an item;
    // the checksum-triggered re-fetch always delivers clean bytes.
    if (fetch_attempt != 0) return false;
    const uint64_t key = DecisionKey(config_.seed, kTagCorruption,
                                     HashBytes(resource), item, 0);
    if (!Bernoulli(key, config_.payload_corruption_rate)) return false;
  }
  // Flip one pseudo-random bit of the payload — the smallest damage a CRC
  // must still catch.
  const uint64_t bit_key = DecisionKey(config_.seed, kTagCorruption,
                                       HashBytes(resource), item, 1);
  const uint64_t bit = Mix64(bit_key) % (payload->size() * 8);
  (*payload)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  injected_corruptions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace spcube
