#ifndef SPCUBE_MAPREDUCE_ENGINE_H_
#define SPCUBE_MAPREDUCE_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "io/dfs.h"
#include "io/spill.h"
#include "mapreduce/api.h"
#include "mapreduce/metrics.h"
#include "relation/relation.h"

namespace spcube {

class FaultPlan;

/// Shape and cost model of the simulated cluster (paper §2.3: k machines,
/// each with memory O(m), m = n/k, sharing a distributed file system).
struct EngineConfig {
  /// Number of machines, k. Each runs one map task and (round-robin) the
  /// reduce tasks assigned to it.
  int num_workers = 8;

  /// Per-machine memory budget in bytes, the paper's m (times the tuple
  /// width). Map-side shuffle buffers and reduce-side inputs beyond this
  /// spill to local disk (or fail under MemoryPolicy::kStrict).
  int64_t memory_budget_bytes = 64 << 20;

  /// Models shuffle transfer time: the bottleneck reducer's inbound payload
  /// divided by this bandwidth is added to each round's total time.
  double network_bandwidth_bytes_per_sec = 100e6;

  /// Fixed per-round job startup/teardown cost (Hadoop job latency). Makes
  /// multi-round algorithms (MR-Cube) pay for their extra rounds.
  double round_overhead_seconds = 0.0;

  /// Sentinel for `host_threads`: size the pool to the host's cores.
  static constexpr int kHostThreadsAuto = -1;

  /// Host threads executing the simulated machines' tasks through the
  /// work-stealing TaskPool (common/task_pool.h). kHostThreadsAuto (the
  /// default) uses one thread per host core — real multicore is the
  /// default fast path; 0 or 1 runs everything serially on the calling
  /// thread. Any setting produces bit-identical cubes, DFS bytes and
  /// modeled metrics (tests/threading_test.cc's determinism probe); only
  /// measured wall clock changes. With > 1 thread, per-task busy time is
  /// measured with per-thread CPU clocks so host core contention cannot
  /// distort the critical-path model, and is charged to the *owning*
  /// simulated machine no matter which host thread ran (or stole) the task.
  int host_threads = kHostThreadsAuto;

  /// Stealable map sub-tasks ("producers") per simulated machine. Each
  /// producer maps a contiguous sub-range of the machine's split into its
  /// own arena-backed ShuffleBuffer sized memory_budget_bytes / producers —
  /// so the *sum* of a machine's live producer buffers never exceeds its
  /// budget, and combine_headroom_fraction applies to each producer's
  /// share. Segments merge in producer-index order on shuffle hand-off.
  /// This is simulated-cluster configuration, never derived from host
  /// cores: the combine/spill schedule depends on it, so it must be equal
  /// across serial/threaded runs for determinism. 1 (the default)
  /// reproduces the single-buffer spill schedule bit-for-bit.
  int map_producers_per_machine = 1;

  // -- Fault tolerance -------------------------------------------------------

  /// Deterministic chaos plan (mapreduce/fault.h). Borrowed, may be null
  /// (no injection). The engine also installs it as the DFS fault injector.
  FaultPlan* fault_plan = nullptr;

  /// Floor on per-task attempts, applied over JobSpec::max_task_attempts.
  /// Lets a chaos harness grant retries to jobs whose specs (built deep
  /// inside an algorithm) default to one attempt.
  int min_task_attempts = 1;

  /// Base of the capped-exponential re-scheduling delay charged to a
  /// machine's busy time when a failed attempt is retried: the i-th retry
  /// (i = 0, 1, ...) waits min(retry_backoff_cap_seconds, base * 2^i),
  /// optionally jittered (see retry_backoff_jitter). Modeled time, not
  /// wall-clock sleeping. Also the base of the per-split backoff charged by
  /// adaptive partition-split recovery (JobSpec::recovery).
  double retry_backoff_seconds = 0.0;

  /// Ceiling on a single backoff delay so deep retry/split chains cannot
  /// charge unbounded simulated time. <= 0 disables the cap.
  double retry_backoff_cap_seconds = 60.0;

  /// Jitter fraction in [0, 1]: each backoff delay is scaled by a factor
  /// drawn uniformly from [1 - jitter, 1 + jitter) with a seeded spcube::Rng
  /// keyed purely on (fault seed, job, task kind, task, attempt), so charged
  /// times stay bit-identical across same-seed reruns and across
  /// threaded/sequential execution. 0 (default) disables jitter.
  double retry_backoff_jitter = 0.0;

  /// Map-side combine headroom: after combining, the shuffle buffer only
  /// spills if it is still holding more than this fraction of
  /// memory_budget_bytes. Below that, the freed headroom is kept so the
  /// next combine window can batch more duplicates (higher combine ratio at
  /// the cost of a fuller buffer). Must be in (0, 1].
  double combine_headroom_fraction = 0.75;

  /// When > 0 and a round's reducer-input imbalance (max/avg input records,
  /// JobMetrics::ReducerImbalance) exceeds this factor, the round's metrics
  /// flag a reducer_imbalance_alert — the observable a production deployment
  /// would use to trigger re-sketching when the data drifts. 0 disables.
  double reducer_imbalance_alert_threshold = 0.0;

  /// Re-execute injected stragglers speculatively: the slow original is
  /// charged at most twice its measured time (it is killed when the backup
  /// finishes) and the backup's measured time is charged to another live
  /// machine — Hadoop's speculative execution in the cost model.
  bool speculative_execution = true;

  /// Store DFS blobs BlockCodec-compressed (docs/INTERNALS.md §13). The
  /// checksum layer covers the compressed bytes, so fault injection and
  /// re-fetch recovery are unchanged; compression CPU lands in the writing
  /// machine's measured busy time, and DFS byte totals report the stored
  /// (compressed) size. Off by default: exact byte totals of existing
  /// configurations stay bit-identical.
  bool compress_dfs_blobs = false;
};

/// Executes MapReduce rounds over the simulated cluster. Tasks run on a
/// seeded work-stealing pool sized to `EngineConfig::host_threads` (host
/// cores by default; serial with <= 1), but each simulated machine's busy
/// time is measured separately and a round's cluster time is computed as
/// the critical path (max map + modeled shuffle + max reduce + overhead),
/// so reported times reflect a k-machine cluster regardless of host cores.
class Engine {
 public:
  /// `dfs` must outlive the engine; it is shared with tasks via TaskContext.
  Engine(EngineConfig config, DistributedFileSystem* dfs);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs one round: splits `input` into num_workers equal row ranges — each
  /// handed to its mapper as a zero-copy RelationView (no tuple data is
  /// duplicated per split) — maps, shuffles (with combining/spilling),
  /// reduces, and delivers reduce output to `collector`. Returns the round's
  /// metrics, or the first task error.
  Result<JobMetrics> Run(const JobSpec& spec, const Relation& input,
                         OutputCollector* collector);

  /// Same, but the input is a list of records (a previous round's output),
  /// dispatched to Mapper::MapRecord. Used by multi-round algorithms such as
  /// MR-Cube's post-aggregation round.
  Result<JobMetrics> RunRecords(const JobSpec& spec,
                                const std::vector<Record>& input,
                                OutputCollector* collector);

  const EngineConfig& config() const { return config_; }
  DistributedFileSystem* dfs() { return dfs_; }

  /// Local scratch directory holding shuffle spills; empty of files between
  /// jobs once every attempt's output has been reclaimed (tested in
  /// tests/shuffle_test.cc).
  const std::string& temp_dir() const { return temp_files_.dir(); }

 private:
  /// `map_row` feeds the mapper one input item; `begin`/`end` delimit the
  /// task's split and `row` is the global item index within [begin, end).
  /// Relation jobs wrap the split as a RelationView; record jobs ignore the
  /// split bounds.
  Result<JobMetrics> RunImpl(
      const JobSpec& spec, int64_t num_input_rows,
      const std::function<Status(Mapper*, int64_t begin, int64_t end,
                                 int64_t row, MapContext&)>& map_row,
      OutputCollector* collector);

  EngineConfig config_;
  DistributedFileSystem* dfs_;
  TempFileManager temp_files_;
};

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_ENGINE_H_
