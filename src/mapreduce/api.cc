#include "mapreduce/api.h"

#include "common/hash.h"

namespace spcube {

int HashPartitioner::Partition(std::string_view key,
                               int num_reducers) const {
  return static_cast<int>(HashBytes(key) %
                          static_cast<uint64_t>(num_reducers));
}

Status VectorOutputCollector::Collect(int reducer_id, std::string_view key,
                                      std::string_view value) {
  MutexLock lock(&mu_);
  entries_.push_back(Entry{reducer_id, std::string(key), std::string(value)});
  return Status::OK();
}

}  // namespace spcube
