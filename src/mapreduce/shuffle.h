#ifndef SPCUBE_MAPREDUCE_SHUFFLE_H_
#define SPCUBE_MAPREDUCE_SHUFFLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "io/spill.h"
#include "mapreduce/api.h"

namespace spcube {

/// A sorted run file spilled to local disk, with both its on-disk size and
/// the payload (key+value) bytes it carries for traffic accounting.
struct RunInfo {
  std::string path;
  /// Stable logical identity (job/task/attempt/partition/run) used for
  /// fault-injection decisions instead of `path`, which embeds the pid and a
  /// process-global counter and so is not reproducible. Empty means "use
  /// the path" (buffers created outside an engine job).
  std::string resource;
  int64_t file_bytes = 0;
  int64_t payload_bytes = 0;
  int64_t records = 0;
};

/// Counters updated by the shuffle path of a single map task; the engine
/// aggregates them into JobMetrics.
struct ShuffleCounters {
  int64_t map_output_records = 0;
  int64_t map_output_bytes = 0;
  int64_t combine_input_records = 0;
  int64_t combine_output_records = 0;
  int64_t spill_bytes = 0;
  /// Fetches whose payload failed its CRC32C and was re-fetched.
  int64_t checksum_mismatches = 0;
};

/// Map-side output buffer of one map task: one in-memory record vector per
/// reduce partition, combined and/or spilled to sorted local run files when
/// the memory budget is exceeded — the Hadoop sort-and-spill pipeline in
/// miniature.
class ShuffleBuffer {
 public:
  /// `combiner` may be null. `temp_files` outlives the buffer.
  ShuffleBuffer(int num_partitions, int64_t memory_budget_bytes,
                const Combiner* combiner, TempFileManager* temp_files,
                ShuffleCounters* counters);

  /// Deletes the files of any spill runs that were never taken — the
  /// eager cleanup of a failed (and retried) map attempt's private output.
  ~ShuffleBuffer();

  /// Names this buffer's spill runs for fault injection:
  /// `<prefix>/p<partition>/r<index>`. Call before the first Add; the engine
  /// passes a job/task/attempt-scoped prefix so injection decisions are
  /// independent of host temp paths and thread interleaving.
  void SetSpillResourcePrefix(std::string prefix) {
    resource_prefix_ = std::move(prefix);
  }

  Status Add(int partition, std::string_view key, std::string_view value);

  /// Runs the final combine pass; call once after the map task finishes.
  Status FinalizeMapOutput();

  /// Moves out the surviving in-memory records of a partition.
  std::vector<Record> TakeMemoryRecords(int partition);

  /// Sorted run files spilled for a partition.
  std::vector<RunInfo> TakeSpillRuns(int partition);

 private:
  /// Combines in-memory records per key; if memory still exceeds the budget
  /// afterwards (or there is no combiner), sorts and spills each partition.
  Status Overflow();
  Status CombineInMemory();
  Status SpillAll();

  int num_partitions_;
  int64_t memory_budget_bytes_;
  const Combiner* combiner_;
  TempFileManager* temp_files_;
  ShuffleCounters* counters_;
  std::string resource_prefix_;

  int64_t buffered_bytes_ = 0;
  std::vector<std::vector<Record>> memory_;        // per partition
  std::vector<std::vector<RunInfo>> spill_runs_;   // per partition
};

/// Iterates the reduce input of one partition as (group, values) in
/// ascending key order, streaming values so that a skewed group never has
/// to be materialized. Feed it unsorted in-memory records plus the sorted
/// run files spilled by mappers; it sorts what fits and external-merges the
/// rest.
class GroupedRecordStream {
 public:
  virtual ~GroupedRecordStream() = default;

  /// Advances to the next group; false at end of input. Any unread values of
  /// the previous group are skipped.
  virtual Result<bool> NextGroup(std::string* key) = 0;

  /// Next value of the current group; false at end of group.
  virtual Result<bool> NextValue(std::string* value) = 0;
};

/// Inputs for building a reduce-side stream.
struct ReduceInput {
  std::vector<Record> memory_records;  // unsorted
  std::vector<RunInfo> spill_runs;     // each sorted by key
  int64_t total_bytes = 0;             // payload bytes across both sources
  int64_t total_records = 0;
};

/// Builds a stream over `input`. If everything fits in
/// `memory_budget_bytes`, runs fully in memory; otherwise (policy kSpill)
/// sorts the in-memory part into additional run files under `temp_files`
/// and k-way merges all runs, adding the extra runs' bytes to
/// `counters->spill_bytes`. Policy kStrict fails with ResourceExhausted
/// when over budget. Run files written here are attempt-private and deleted
/// when the stream is destroyed; the caller owns `input.spill_runs`' files.
/// `injector` (may be null) models in-flight corruption of run fetches,
/// detected via record checksums and counted in
/// `counters->checksum_mismatches`. `resource_prefix` names the extra
/// reduce-side run for injection purposes (see RunInfo::resource).
Result<std::unique_ptr<GroupedRecordStream>> MakeGroupedStream(
    ReduceInput input, int64_t memory_budget_bytes, MemoryPolicy policy,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector = nullptr, std::string resource_prefix = "");

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_SHUFFLE_H_
