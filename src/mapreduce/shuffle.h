#ifndef SPCUBE_MAPREDUCE_SHUFFLE_H_
#define SPCUBE_MAPREDUCE_SHUFFLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/lifetime.h"
#include "common/logging.h"
#include "common/status.h"
#include "io/spill.h"
#include "mapreduce/api.h"

namespace spcube {

class ShuffleSegment;

namespace internal {
/// Test seam for SPCUBE_LIFETIME_CHECKS death tests: resets the arena
/// inside `segment`'s shared rep so its refs go stale. Correct code cannot
/// reach this state (a segment owns its arena), which is exactly why the
/// stale-generation abort needs a seam to be testable. Never call outside
/// tests.
void DebugExpireSegment(ShuffleSegment* segment);
}  // namespace internal

/// A sorted run file spilled to local disk, with its on-disk size, the
/// payload (key+value) bytes it carries, and the bytes the same records
/// would occupy in the pre-§13 fixed-frame format — the honest uncompressed
/// twin for traffic accounting.
struct RunInfo {
  std::string path;
  /// Stable logical identity (job/task/attempt/partition/run) used for
  /// fault-injection decisions instead of `path`, which embeds the pid and a
  /// process-global counter and so is not reproducible. Empty means "use
  /// the path" (buffers created outside an engine job).
  std::string resource;
  int64_t file_bytes = 0;
  int64_t payload_bytes = 0;
  /// File bytes the run would occupy in the legacy encoding ([u64 len]
  /// [u32 crc] frames around non-delta payloads); see
  /// LegacySpillRecordFileBytes. Always >= file_bytes.
  int64_t uncompressed_file_bytes = 0;
  int64_t records = 0;
};

/// Counters updated by the shuffle path of a single map task; the engine
/// aggregates them into JobMetrics.
struct ShuffleCounters {
  int64_t map_output_records = 0;
  int64_t map_output_bytes = 0;
  int64_t combine_input_records = 0;
  int64_t combine_output_records = 0;
  int64_t spill_bytes = 0;
  /// What spill_bytes would have been in the legacy (pre-delta, fixed
  /// frame) run format — the uncompressed twin of spill_bytes.
  int64_t spill_bytes_uncompressed = 0;
  /// Fetches whose payload failed its CRC32C and was re-fetched.
  int64_t checksum_mismatches = 0;
};

/// On-disk bytes one record costs in the legacy spill format: an 8-byte
/// length + 4-byte CRC frame around `[varint key_len | key | varint
/// value_len | value]`. The uncompressed-twin accounting unit (§13).
int64_t LegacySpillRecordFileBytes(size_t key_len, size_t value_len);

/// Stateful spill-run record codec (docs/INTERNALS.md §13). Runs are
/// written in key order, so adjacent records share key prefixes; each
/// record's payload is
///
///   [varint shared_prefix_len | varint suffix_len | suffix bytes |
///    varint value_len | value bytes]
///
/// where shared_prefix_len counts key bytes reused from the previous record
/// of the same delta chain (0 for the first record). Encoder and decoder
/// advance in lockstep: Reset at chain boundaries, and feed the decoder
/// records strictly in write order. Production runs group records into
/// blocks (SpillBlockEncoder below) so one CRC frame amortizes over many
/// records; the chain resets at every block boundary, which keeps each
/// block self-contained — a re-fetched block re-parses with no cross-block
/// decoder state.
class SpillRecordEncoder {
 public:
  /// Appends one record's delta encoding to `out` (callers reuse the writer
  /// across records).
  void Append(std::string_view key, std::string_view value, ByteWriter* out);

  void Reset() { prev_key_.clear(); }

 private:
  std::string prev_key_;
};

class SpillRecordDecoder {
 public:
  /// Decodes the next record of the chain. `*key` views into decoder-owned
  /// storage valid until the next Parse/Reset; `*value` views into `raw`.
  /// Callers that keep either must copy first. `raw` must hold exactly one
  /// record; use ParseFrom to decode out of a larger buffer.
  Status Parse(std::string_view raw, std::string_view* key,
               std::string_view* value);

  /// Decodes one record at `reader`'s cursor, leaving the cursor on the
  /// next record. Same view lifetimes as Parse.
  Status ParseFrom(ByteReader* reader, std::string_view* key,
                   std::string_view* value);

  void Reset() { key_.clear(); }

 private:
  std::string key_;
};

/// Records per §13 run block: one SpillWriter CRC frame covers this many
/// delta-encoded records (or kSpillBlockBytes of payload, whichever comes
/// first), amortizing the frame + checksum to a fraction of a byte per
/// record while keeping a corrupted block's re-fetch small.
inline constexpr int kSpillBlockRecords = 32;
inline constexpr size_t kSpillBlockBytes = size_t{8} << 10;

/// Batches delta-encoded records into self-contained run blocks. Usage:
/// Add each record in run order; whenever BlockFull, hand block() to
/// SpillWriter::Append and call NextBlock; after the last record, flush the
/// final partial block the same way. The delta chain restarts with every
/// block, so blocks decode independently.
class SpillBlockEncoder {
 public:
  void Add(std::string_view key, std::string_view value) {
    records_.Append(key, value, &block_);
    ++block_records_;
  }

  bool BlockFull() const {
    return block_records_ >= kSpillBlockRecords ||
           block_.size() >= kSpillBlockBytes;
  }
  bool BlockEmpty() const { return block_records_ == 0; }
  std::string_view block() const { return block_.data(); }

  /// Drops the open block's bytes and restarts the delta chain.
  void NextBlock() {
    block_.Clear();
    records_.Reset();
    block_records_ = 0;
  }

  /// Same as NextBlock; reads as "make this scratch encoder fresh".
  void Reset() { NextBlock(); }

 private:
  SpillRecordEncoder records_;
  ByteWriter block_;
  int block_records_ = 0;
};

/// Streams the records back out of one run block (one SpillReader record).
/// The block bytes must outlive the views Next returns and stay alive until
/// the next SetBlock — callers keep the fetch buffer around per run.
class SpillBlockDecoder {
 public:
  /// Starts decoding `block`; implicitly restarts the delta chain.
  void SetBlock(std::string_view block) {
    reader_ = ByteReader(block);
    records_.Reset();
  }

  /// Decodes the next record of the current block; false at end of block.
  /// `*key` views into decoder-owned storage, `*value` into the block.
  Result<bool> Next(std::string_view* key, std::string_view* value) {
    if (reader_.AtEnd()) return false;
    SPCUBE_RETURN_IF_ERROR(records_.ParseFrom(&reader_, key, value));
    return true;
  }

 private:
  SpillRecordDecoder records_;
  ByteReader reader_{std::string_view()};
};

/// One shuffle record as views into arena (or other stable) storage. Plain
/// pointers + lengths so a vector of refs is trivially sortable.
struct ShuffleRecordRef {
  const char* key_data = nullptr;
  const char* value_data = nullptr;
  uint32_t key_len = 0;
  uint32_t value_len = 0;

  std::string_view key() const { return {key_data, key_len}; }
  std::string_view value() const { return {value_data, value_len}; }
};

/// Cache of a record's first 8 big-endian key bytes, used to sort slot
/// indices for a spill without touching the full keys in the hot loop.
struct ShuffleSortItem {
  uint64_t key_prefix = 0;
  uint32_t index = 0;
};

/// An immutable batch of map-output records backed by the arena they were
/// emitted into: the zero-copy hand-off from ShuffleBuffer to the reduce
/// side. Cheap to copy (shared ownership) so a ReduceInput holding segments
/// stays copyable for reduce-attempt retries.
class ShuffleSegment {
 public:
  ShuffleSegment() = default;

  bool empty() const { return rep_ == nullptr || rep_->refs.empty(); }
  int64_t num_records() const {
    return rep_ == nullptr ? 0 : static_cast<int64_t>(rep_->refs.size());
  }
  /// Key+value bytes across all records (the RecordBytes sum).
  int64_t payload_bytes() const {
    return rep_ == nullptr ? 0 : rep_->payload_bytes;
  }
  const std::vector<ShuffleRecordRef>& refs() const {
    static const std::vector<ShuffleRecordRef> kEmpty;
#if SPCUBE_LIFETIME_CHECKS
    SPCUBE_CHECK(rep_ == nullptr ||
                 rep_->arena.generation() == rep_->generation)
        << "stale ShuffleSegment: the backing arena was reset after the "
           "segment was taken";
#endif
    return rep_ == nullptr ? kEmpty : rep_->refs;
  }

 private:
  friend class ShuffleBuffer;
  friend void internal::DebugExpireSegment(ShuffleSegment* segment);

  struct Rep {
    Arena arena;  // owns the bytes the refs point into
    // spcube-analyzer: allow(view-escape): refs point into the arena this same Rep owns; both live and die together
    std::vector<ShuffleRecordRef> refs;
    int64_t payload_bytes = 0;
    /// Arena generation at hand-off; refs() verifies it still matches under
    /// SPCUBE_LIFETIME_CHECKS. Unconditional for one cross-TU layout.
    uint64_t generation = 0;
  };

  std::shared_ptr<const Rep> rep_;
};

/// Map-side output buffer of one map task — the Hadoop sort-and-spill
/// pipeline in miniature, rebuilt around per-partition bump arenas:
///
///  * Add appends `[key|value]` bytes into the partition's arena and records
///    a compact slot; no per-record std::string is created.
///  * With a combiner, keys are deduplicated on the way in through an
///    open-addressing index keyed on string_views into the arena (built
///    incrementally, not per overflow); each key's values form a linked
///    list in emission order.
///  * Spills sort slot indices (cached 8-byte key prefix, then full key,
///    then emission order — equivalent to a stable sort by key) and stream
///    the run straight from arena bytes through the CRC32C spill writer.
///
/// Counter semantics and the Take* contracts are identical to the original
/// Record-based implementation; see docs/INTERNALS.md §9 for what
/// `buffered_bytes_` counts under the arena. Spill runs are written in the
/// §13 delta/varint format, with the legacy-format cost accounted as the
/// uncompressed twin (RunInfo::uncompressed_file_bytes) — spill *decisions*
/// (when to overflow, what to combine) depend only on payload bytes, so the
/// spill schedule is unchanged from the seed.
class ShuffleBuffer {
 public:
  /// `combiner` may be null. `temp_files` outlives the buffer.
  /// `combine_headroom_fraction` (in (0, 1], see
  /// EngineConfig::combine_headroom_fraction) is the post-combine fill level
  /// above which the buffer still spills: combining that frees at least
  /// 1 - fraction of the budget defers the spill so the next combine window
  /// batches more duplicates.
  ShuffleBuffer(int num_partitions, int64_t memory_budget_bytes,
                const Combiner* combiner, TempFileManager* temp_files,
                ShuffleCounters* counters,
                double combine_headroom_fraction = 0.75);

  /// Deletes the files of any spill runs that were never taken — the
  /// eager cleanup of a failed (and retried) map attempt's private output.
  ~ShuffleBuffer();

  /// Names this buffer's spill runs for fault injection:
  /// `<prefix>/p<partition>/r<index>`. Call before the first Add; the engine
  /// passes a job/task/attempt-scoped prefix so injection decisions are
  /// independent of host temp paths and thread interleaving.
  void SetSpillResourcePrefix(std::string prefix) {
    resource_prefix_ = std::move(prefix);
  }

  /// Copies `key`/`value` into the partition's arena before returning, so
  /// callers may reuse their encode buffers immediately.
  Status Add(int partition, std::string_view key, std::string_view value);

  /// Runs the final combine pass; call once after the map task finishes.
  Status FinalizeMapOutput();

  /// Moves out a partition's surviving in-memory records together with the
  /// arena that owns their bytes — the zero-copy path the engine uses.
  ShuffleSegment TakeMemorySegment(int partition);

  /// Materializes the surviving in-memory records of a partition as owned
  /// Records (compatibility accessor; prefer TakeMemorySegment). Same
  /// records in the same order as TakeMemorySegment; each call empties the
  /// partition.
  std::vector<Record> TakeMemoryRecords(int partition);

  /// Sorted run files spilled for a partition.
  std::vector<RunInfo> TakeSpillRuns(int partition);

 private:
  /// A record of the no-combiner path: key bytes at `data`, value bytes
  /// immediately after (one contiguous AppendPair region).
  struct RecordSlot {
    const char* data = nullptr;
    uint32_t key_len = 0;
    uint32_t value_len = 0;
  };
  /// One distinct key of the combiner path, plus its value list.
  struct KeySlot {
    const char* data = nullptr;
    uint32_t len = 0;
    uint64_t hash = 0;
    int32_t head = -1;  // first ValueSlot index, -1 when empty
    int32_t tail = -1;  // last ValueSlot index
  };
  /// One value of the combiner path; `values` order is emission order.
  struct ValueSlot {
    const char* data = nullptr;
    uint32_t len = 0;
    int32_t key_index = -1;
    int32_t next = -1;  // next value of the same key
  };
  struct PartitionState {
    Arena arena;
    Arena spare_arena;  // compaction target; swapped with `arena` per pass
    std::vector<RecordSlot> records;  // no-combiner mode
    std::vector<KeySlot> keys;        // combiner mode
    std::vector<ValueSlot> values;
    std::vector<KeySlot> spare_keys;
    std::vector<ValueSlot> spare_values;
    std::vector<uint32_t> buckets;  // open addressing; key_index+1, 0=empty
  };

  /// Combines in-memory records per key; if memory still exceeds the budget
  /// afterwards (or there is no combiner), sorts and spills each partition.
  Status Overflow();
  Status CombineInMemory();
  Status SpillAll();

  /// Appends refs for a partition's live records in canonical order
  /// (emission order; after a combine, key-insertion order with each key's
  /// merged values contiguous).
  void AppendRecordRefs(const PartitionState& part,
                        std::vector<ShuffleRecordRef>* refs) const;
  void ResetPartition(PartitionState* part);
  /// Rehashes `part->keys` into a cleared bucket array of at least
  /// `min_slots` slots (power of two; never shrinks existing capacity).
  void RehashBuckets(PartitionState* part, size_t min_slots);
  /// Index into `part->keys` for `key`, inserting (arena-copying the key
  /// bytes) if absent. Caller ensures bucket headroom.
  uint32_t FindOrInsertKey(PartitionState* part, std::string_view key);

  int num_partitions_;
  int64_t memory_budget_bytes_;
  /// Post-combine spill threshold in bytes:
  /// memory_budget_bytes_ * combine_headroom_fraction.
  int64_t combine_headroom_bytes_;
  const Combiner* combiner_;
  TempFileManager* temp_files_;
  ShuffleCounters* counters_;
  std::string resource_prefix_;

  /// Live payload bytes (RecordBytes sum over surviving records) — not
  /// arena chunk bytes; see docs/INTERNALS.md §9.
  int64_t buffered_bytes_ = 0;
  std::vector<PartitionState> partitions_;
  std::vector<std::vector<RunInfo>> spill_runs_;  // per partition

  // Reusable scratch so the steady-state Add → combine → spill cycle
  // performs no per-record heap allocations.
  std::string combine_key_;
  std::vector<std::string> combine_values_;
  std::vector<std::string> combine_merged_;
  // spcube-analyzer: allow(view-escape): per-call scratch; cleared and refilled inside each Take*/spill call, never escapes
  std::vector<ShuffleRecordRef> scratch_refs_;
  std::vector<ShuffleSortItem> sort_items_;
  SpillBlockEncoder block_scratch_;
};

/// Iterates the reduce input of one partition as (group, values) in
/// ascending key order, streaming values so that a skewed group never has
/// to be materialized. Feed it unsorted in-memory records plus the sorted
/// run files spilled by mappers; it sorts what fits and external-merges the
/// rest.
class GroupedRecordStream {
 public:
  virtual ~GroupedRecordStream() = default;

  /// Advances to the next group; false at end of input. Any unread values of
  /// the previous group are skipped.
  virtual Result<bool> NextGroup(std::string* key) = 0;

  /// Next value of the current group; false at end of group.
  virtual Result<bool> NextValue(std::string* value) = 0;
};

/// Inputs for building a reduce-side stream. `memory_records` and
/// `memory_segments` are both unsorted in-memory sources (records first in
/// the canonical ordering); the engine uses segments, tests may use either.
struct ReduceInput {
  std::vector<Record> memory_records;
  std::vector<ShuffleSegment> memory_segments;
  std::vector<RunInfo> spill_runs;  // each sorted by key
  int64_t total_bytes = 0;          // payload bytes across all sources
  int64_t total_records = 0;
};

/// Builds a stream over `input`. If everything fits in
/// `memory_budget_bytes`, runs fully in memory (iterating segment slots
/// directly — absorbed runs are parsed into a stream-private arena, never
/// into per-record strings); otherwise (policy kSpill) sorts the in-memory
/// part into one additional run file under `temp_files` and k-way merges
/// all runs, adding the extra run's bytes to `counters->spill_bytes`.
/// Policy kStrict fails with ResourceExhausted when over budget. Run files
/// written here are attempt-private and deleted when the stream is
/// destroyed; the caller owns `input.spill_runs`' files. `injector` (may be
/// null) models in-flight corruption of run fetches, detected via record
/// checksums and counted in `counters->checksum_mismatches`.
/// `resource_prefix` names the extra reduce-side run for injection purposes
/// (see RunInfo::resource).
Result<std::unique_ptr<GroupedRecordStream>> MakeGroupedStream(
    ReduceInput input, int64_t memory_budget_bytes, MemoryPolicy policy,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector = nullptr, std::string resource_prefix = "");

/// Adaptive-recovery scatter (mapreduce/api.h, RecoverySpec): splits
/// `input` into `fanout` sub-inputs by a seeded hash of (key, record
/// ordinal) — the ordinal term spreads even one giant group across every
/// sub-partition, which plain key hashing never could. Each sub-input is
/// written as a single sorted run file under `temp_files` (so the result
/// holds no references into `input`'s arenas — split sub-inputs outlive the
/// attempt that OOMed), accounted to `counters->spill_bytes`, and named
/// `<resource_prefix>/s<k>` for fault injection. The caller owns the run
/// files and must delete them after the sub-attempts finish. Spill runs in
/// `input` are re-read through `injector` (may be null) with checksum
/// recovery, like any reduce-side fetch. Deterministic in `salt`: same
/// input + salt => identical scatter, regardless of threading.
Result<std::vector<ReduceInput>> SplitReduceInput(
    const ReduceInput& input, int fanout, uint64_t salt,
    TempFileManager* temp_files, ShuffleCounters* counters,
    IoFaultInjector* injector, const std::string& resource_prefix);

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_SHUFFLE_H_
