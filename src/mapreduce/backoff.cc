#include "mapreduce/backoff.h"

#include <cmath>

#include "common/hash.h"
#include "common/random.h"

namespace spcube {

double RetryBackoffSeconds(double base_seconds, double cap_seconds,
                           double jitter_fraction, uint64_t jitter_seed,
                           int64_t job, TaskKind kind, int task, int attempt) {
  if (base_seconds <= 0.0) return 0.0;
  // ldexp saturates to +inf for absurd attempt counts; the cap (when set)
  // brings the delay back to a finite schedule.
  double delay = base_seconds * std::ldexp(1.0, attempt);
  if (cap_seconds > 0.0 && delay > cap_seconds) delay = cap_seconds;
  if (jitter_fraction > 0.0) {
    // Domain-separated decision key in the style of FaultPlan: a pure hash
    // of the attempt's stable coordinates.
    uint64_t key = HashCombine(Mix64(jitter_seed ^ 0xb0ffu), 8 /*tag*/);
    key = HashCombine(key, static_cast<uint64_t>(job));
    key = HashCombine(key, static_cast<uint64_t>(kind));
    key = HashCombine(key, HashCombine(static_cast<uint64_t>(task),
                                       static_cast<uint64_t>(attempt)));
    const double u = Rng(key).NextDouble();
    delay *= 1.0 - jitter_fraction + 2.0 * jitter_fraction * u;
  }
  return delay;
}

}  // namespace spcube
