#ifndef SPCUBE_MAPREDUCE_API_H_
#define SPCUBE_MAPREDUCE_API_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "io/dfs.h"
#include "relation/relation.h"
#include "relation/relation_view.h"

namespace spcube {

/// Per-task environment handed to Mapper/Reducer Setup(): which simulated
/// machine the task runs on, the cluster shape, and the shared DFS (used
/// e.g. to fetch the broadcast SP-Sketch, paper §4.2).
struct TaskContext {
  int worker_id = 0;     // machine index, 0-based
  int num_workers = 1;   // k
  int num_reducers = 1;  // reduce partitions (may be k+1 for SP-Cube)
  /// The reduce partition this task serves; -1 for map tasks.
  int reduce_partition = -1;
  int64_t memory_budget_bytes = 0;
  DistributedFileSystem* dfs = nullptr;
};

/// One intermediate or input (key, value) pair.
struct Record {
  std::string key;
  std::string value;
};

/// Bytes a record contributes to buffers/network accounting.
inline int64_t RecordBytes(std::string_view key, std::string_view value) {
  return static_cast<int64_t>(key.size() + value.size());
}

/// Sink for map-side emits. Emit() routes the pair through the job's
/// partitioner into the target reducer's shuffle buffer and accounts its
/// bytes as intermediate data.
class MapContext {
 public:
  virtual ~MapContext() = default;

  /// Adds to a job-level named counter (Hadoop user counters); totals
  /// appear in JobMetrics::custom_counters. Failed task attempts do not
  /// contribute.
  virtual void IncrementCounter(const std::string& /*name*/,
                                int64_t /*delta*/) {}

  /// Emits an intermediate (key, value) pair. May spill to local disk when
  /// the worker's buffer exceeds its memory budget.
  ///
  /// Zero-copy contract: the implementation copies `key` and `value` into
  /// its own storage (the shuffle arena) before returning, so mappers
  /// should encode into reusable task-lifetime buffers (e.g. a ByteWriter
  /// member, cleared per emit) instead of building a fresh std::string per
  /// record — the steady-state emit path then performs no heap allocation.
  virtual Status Emit(std::string_view key, std::string_view value) = 0;

  /// Emits directly to an explicit reduce partition, bypassing the
  /// partitioner. SP-Cube uses this to route partial aggregates of skewed
  /// c-groups to the dedicated skew reducer (partition 0, paper §5).
  virtual Status EmitToPartition(int partition, std::string_view key,
                                 std::string_view value) = 0;
};

/// A map task. The engine constructs one instance per input split via the
/// job's factory, then calls Setup, Map for every row of the split, and
/// Finish (where mappers flush state accumulated across rows, e.g. SP-Cube's
/// skew partial aggregates).
class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual Status Setup(const TaskContext& /*task*/) { return Status::OK(); }

  /// Row-of-a-split input (Engine::Run). `input` is the task's zero-copy
  /// view over the job's relation — the simulated HDFS input split — and
  /// `row` indexes into the view ([0, input.num_rows())). Default fails, so
  /// record-only mappers need not implement it.
  virtual Status Map(const RelationView& /*input*/, int64_t /*row*/,
                     MapContext& /*context*/) {
    return Status::Internal("mapper does not accept relation input");
  }

  /// Record input (Engine::RunRecords) — used by follow-up rounds whose
  /// input is a previous round's output rather than the base relation.
  virtual Status MapRecord(const Record& /*record*/,
                           MapContext& /*context*/) {
    return Status::Internal("mapper does not accept record input");
  }

  virtual Status Finish(MapContext& /*context*/) { return Status::OK(); }
};

/// Streams the values of one reduce group. Large (skewed) groups are
/// streamed from merged spill runs rather than materialized, matching how a
/// real MapReduce runtime feeds reducers from sorted runs.
class ValueStream {
 public:
  virtual ~ValueStream() = default;

  /// Fetches the next value; false at end of group.
  virtual Result<bool> Next(std::string* value) = 0;
};

/// Sink for reduce-side output. Output() appends to the job's output
/// collector (the simulated DFS write of final cube tuples).
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;

  virtual Status Output(std::string_view key, std::string_view value) = 0;

  /// Adds to a job-level named counter; committed only if the task attempt
  /// succeeds (like reduce output).
  virtual void IncrementCounter(const std::string& /*name*/,
                                int64_t /*delta*/) {}
};

/// A reduce task. One instance per reduce partition; Reduce() is called
/// once per distinct key, in ascending byte order of keys.
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual Status Setup(const TaskContext& /*task*/) { return Status::OK(); }
  virtual Status Reduce(const std::string& key, ValueStream& values,
                        ReduceContext& context) = 0;
  virtual Status Finish(ReduceContext& /*context*/) { return Status::OK(); }
};

/// Routes an intermediate key to a reduce partition. Implementations must be
/// stateless/thread-safe; the engine shares one instance across map tasks.
/// The default hash partitioner mirrors Hadoop; SP-Cube plugs a range
/// partitioner driven by the SP-Sketch's partition elements (paper §3.3).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual int Partition(std::string_view key, int num_reducers) const = 0;
};

/// Hadoop-style default: hash of the key bytes modulo the reducer count.
class HashPartitioner : public Partitioner {
 public:
  int Partition(std::string_view key, int num_reducers) const override;
};

/// Optional map-side pre-aggregation (Hadoop combiner). Called with all
/// currently buffered values of one key; replaces them with the returned
/// values (typically a single merged value). Must be stateless.
class Combiner {
 public:
  virtual ~Combiner() = default;

  virtual Status Combine(const std::string& key,
                         const std::vector<std::string>& values,
                         std::vector<std::string>* combined) const = 0;
};

/// Receives the final output of every reduce task.
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;

  virtual Status Collect(int reducer_id, std::string_view key,
                         std::string_view value) = 0;
};

/// Thread-safe in-memory collector.
class VectorOutputCollector : public OutputCollector {
 public:
  struct Entry {
    int reducer_id;
    std::string key;
    std::string value;
  };

  Status Collect(int reducer_id, std::string_view key,
                 std::string_view value) override SPCUBE_EXCLUDES(mu_);

  /// Read-after-join contract: call only once the engine run that fed this
  /// collector has returned (all reduce threads joined), at which point
  /// entries_ is quiescent and a lock would be theater. The annotation (and
  /// the analyzer's matching skip) documents that this is deliberate.
  const std::vector<Entry>& entries() const SPCUBE_NO_THREAD_SAFETY_ANALYSIS {
    return entries_;
  }

 private:
  Mutex mu_;
  std::vector<Entry> entries_ SPCUBE_GUARDED_BY(mu_);
};

/// Forwards every record to two collectors (e.g. in-memory assembly plus a
/// DFS writer). Either side may be null.
class TeeOutputCollector : public OutputCollector {
 public:
  TeeOutputCollector(OutputCollector* first, OutputCollector* second)
      : first_(first), second_(second) {}

  Status Collect(int reducer_id, std::string_view key,
                 std::string_view value) override {
    if (first_ != nullptr) {
      SPCUBE_RETURN_IF_ERROR(first_->Collect(reducer_id, key, value));
    }
    if (second_ != nullptr) {
      SPCUBE_RETURN_IF_ERROR(second_->Collect(reducer_id, key, value));
    }
    return Status::OK();
  }

 private:
  OutputCollector* first_;
  OutputCollector* second_;
};

/// Discards all output (used when only metrics matter).
class NullOutputCollector : public OutputCollector {
 public:
  Status Collect(int, std::string_view, std::string_view) override {
    return Status::OK();
  }
};

/// Behaviour when a reduce task's input exceeds the machine's memory budget.
enum class MemoryPolicy : int8_t {
  /// Sort-and-spill to local disk, then stream merged runs (Hadoop).
  kSpill = 0,
  /// Fail the job with ResourceExhausted (models Hive's in-memory hash
  /// aggregation OOMing on heavy skew, as the paper observed for p >= 0.4).
  kStrict = 1,
};

/// Opt-in adaptive recovery from reduce-side memory pressure. When a
/// kStrict reduce attempt's grouped input exceeds the (possibly
/// fault-shrunk) budget, the engine can split the partition into
/// `split_fanout` sub-partitions by seeded hash-salting of (group key,
/// record ordinal) — the ordinal term scatters even a single oversized
/// group — reduce each sub-partition independently, and merge the partial
/// outputs with `merge_reducer_factory` in a follow-up merge round.
///
/// Splitting is only exact when (a) every reduce output key is emitted by
/// at most one group per partition and (b) the merge reducer is associative
/// and closed over final values (count/sum/min/max over encoded doubles
/// qualify; avg and iceberg thresholds do not — see docs/INTERNALS.md §11).
/// Jobs whose aggregates are holistic must leave splitting disabled and
/// set `reject_reason` so the fail-fast Status explains why.
struct RecoverySpec {
  /// Master switch; requires a merge_reducer_factory to take effect.
  bool allow_partition_split = false;
  /// Sub-partitions per split, >= 2.
  int split_fanout = 2;
  /// Recursive re-splits allowed when a sub-partition still overflows;
  /// beyond this depth the OOM becomes terminal again. Recursion stops as
  /// soon as a sub-partition fits, so a generous cap only matters for
  /// pathologically overloaded partitions (with fanout 2 this allows up to
  /// 2^8 = 256 leaves — enough for a partition ~256x over budget, e.g.
  /// a full-budget overflow retried under injected 0.25x pressure).
  int max_split_depth = 8;
  /// Builds the reducer of the merge round over sub-partition outputs.
  /// Receives (output key, all partial final values) groups in ascending
  /// key order, exactly like a normal reducer.
  std::function<std::unique_ptr<Reducer>()> merge_reducer_factory;
  /// Appended to the ResourceExhausted Status when splitting is disabled,
  /// explaining why this job cannot degrade (e.g. "avg finalizes to a
  /// non-mergeable value").
  std::string reject_reason;
};

/// Everything the engine needs to run one MapReduce round.
struct JobSpec {
  std::string name = "job";
  std::function<std::unique_ptr<Mapper>()> mapper_factory;
  std::function<std::unique_ptr<Reducer>()> reducer_factory;
  /// Defaults to HashPartitioner when null.
  std::shared_ptr<const Partitioner> partitioner;
  /// Optional; null disables map-side combining.
  std::shared_ptr<const Combiner> combiner;
  /// Reduce partitions; 0 means "same as the worker count".
  int num_reducers = 0;
  MemoryPolicy memory_policy = MemoryPolicy::kSpill;

  /// Fault tolerance, Hadoop-style: a failed task is re-executed from
  /// scratch (fresh Mapper/Reducer instance, discarded partial output) up
  /// to this many times before the job fails. Tasks must therefore be
  /// idempotent — true for every task in this library. A kStrict memory
  /// failure at full budget is not retried (re-running cannot shrink the
  /// input): it either fails the job or, when `recovery` permits, enters
  /// adaptive partition splitting. An OOM under injected budget pressure
  /// (TaskFault::budget_factor < 1) is transient and is retried normally.
  int max_task_attempts = 1;

  /// Adaptive reduce-side OOM recovery (kStrict only); disabled by default.
  RecoverySpec recovery;
};

}  // namespace spcube

#endif  // SPCUBE_MAPREDUCE_API_H_
