#include "mapreduce/engine.h"

// spcube-lint: allow(no-host-time): clock_gettime measures task busy time
#include <time.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/task_pool.h"
#include "common/thread_annotations.h"
#include "mapreduce/backoff.h"
#include "mapreduce/fault.h"
#include "mapreduce/shuffle.h"

namespace spcube {
namespace {

// Wall-clock busy time of one simulated machine's task: this measured
// duration is an *input* to the simulated cluster-time model (per-machine
// critical path, EngineConfig), which is the sanctioned use of host timers.
// spcube-lint: allow(no-host-time): measures task busy time for the model
double SecondsSince(std::chrono::steady_clock::time_point start) {
  // spcube-lint: allow(no-host-time): measures task busy time for the model
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// CPU time consumed by the calling thread — the busy-time measure used in
/// threaded mode, immune to preemption by the other simulated machines
/// sharing the host's cores.
double ThreadCpuSeconds() {
  timespec ts{};
  // spcube-lint: allow(no-host-time): thread CPU time is the busy-time input
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// Thread-safe accumulator for JobMetrics::custom_counters, the one piece
/// of job state that reduce worker threads write while running (map tasks
/// merge after the phase join). Annotated so -Wthread-safety and the
/// analyzer's lock-discipline rule can prove the locking.
class CounterMerger {
 public:
  explicit CounterMerger(std::map<std::string, int64_t>* totals)
      : totals_(totals) {}

  void Merge(const std::map<std::string, int64_t>& deltas)
      SPCUBE_EXCLUDES(mu_) {
    if (deltas.empty()) return;
    MutexLock lock(&mu_);
    for (const auto& [name, delta] : deltas) {
      (*totals_)[name] += delta;
    }
  }

 private:
  Mutex mu_;
  std::map<std::string, int64_t>* const totals_ SPCUBE_PT_GUARDED_BY(mu_);
};

/// Per-partition staging buffer for threaded reduce output. Each instance
/// is written by exactly one worker thread (the partition's owner machine)
/// and read only after the phase join, so it needs no lock; the replay into
/// the user collector then happens in partition order, keeping thread
/// completion order unobservable.
class StagingCollector : public OutputCollector {
 public:
  Status Collect(int reducer_id, std::string_view key,
                 std::string_view value) override {
    (void)reducer_id;
    // spcube-lint: allow(no-owning-copy-in-hot-path): staged records must outlive the reduce attempt whose buffers back these views
    records_.push_back(Record{std::string(key), std::string(value)});
    return Status::OK();
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
};

/// MapContext wired to a ShuffleBuffer and the job's partitioner.
class EngineMapContext : public MapContext {
 public:
  EngineMapContext(ShuffleBuffer* buffer, const Partitioner* partitioner,
                   int num_reducers)
      : buffer_(buffer),
        partitioner_(partitioner),
        num_reducers_(num_reducers) {}

  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_[name] += delta;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  std::map<std::string, int64_t> TakeCounters() { return std::move(counters_); }

  Status Emit(std::string_view key, std::string_view value) override {
    const int partition = partitioner_->Partition(key, num_reducers_);
    if (partition < 0 || partition >= num_reducers_) {
      return Status::Internal("partitioner returned out-of-range partition " +
                              std::to_string(partition));
    }
    return buffer_->Add(partition, key, value);
  }

  Status EmitToPartition(int partition, std::string_view key,
                         std::string_view value) override {
    if (partition < 0 || partition >= num_reducers_) {
      return Status::InvalidArgument("bad explicit partition " +
                                     std::to_string(partition));
    }
    return buffer_->Add(partition, key, value);
  }

 private:
  ShuffleBuffer* buffer_;
  const Partitioner* partitioner_;
  int num_reducers_;
  std::map<std::string, int64_t> counters_;
};

/// Adapts a GroupedRecordStream's current group to the Reducer-facing
/// ValueStream.
class GroupValueStream : public ValueStream {
 public:
  explicit GroupValueStream(GroupedRecordStream* stream) : stream_(stream) {}

  Result<bool> Next(std::string* value) override {
    return stream_->NextValue(value);
  }

 private:
  GroupedRecordStream* stream_;
};

/// Buffers a reduce attempt's output and publishes it only on success, so
/// failed attempts (which are retried from scratch) leave no trace in the
/// job output — the commit protocol of a real MapReduce runtime.
class EngineReduceContext : public ReduceContext {
 public:
  Status Output(std::string_view key, std::string_view value) override {
    // spcube-lint: allow(no-owning-copy-in-hot-path): attempt-private commit buffer must own its bytes past the reducer's scratch lifetime
    pending_.push_back(Record{std::string(key), std::string(value)});
    return Status::OK();
  }

  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_[name] += delta;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }

  /// Hands over the buffered output without committing — the split-recovery
  /// path collects sub-attempt outputs for a later merge round instead of
  /// publishing them.
  std::vector<Record> TakePending() { return std::move(pending_); }

  Status Commit(OutputCollector* collector, int reducer_id,
                int64_t* output_records) {
    *output_records += static_cast<int64_t>(pending_.size());
    if (collector != nullptr) {
      for (const Record& record : pending_) {
        SPCUBE_RETURN_IF_ERROR(
            collector->Collect(reducer_id, record.key, record.value));
      }
    }
    pending_.clear();
    return Status::OK();
  }

 private:
  std::vector<Record> pending_;
  std::map<std::string, int64_t> counters_;
};

/// Everything one producer sub-task of a map task produced. A machine's
/// split is cut into `EngineConfig::map_producers_per_machine` contiguous
/// sub-ranges; each producer maps its sub-range through its own mapper
/// instance into its own arena-backed ShuffleBuffer (its share of the
/// machine budget), so concurrent producers never touch a shared arena or
/// combiner index. Results merge in producer-index order.
struct ProducerResult {
  std::unique_ptr<ShuffleBuffer> buffer;
  ShuffleCounters counters;
  std::map<std::string, int64_t> custom_counters;
  double busy_seconds = 0.0;  // measured by the executing host thread
};

/// Everything one map task produced, isolated so that worker-crash recovery
/// can discard and replace a task's contribution wholesale (output, shuffle
/// counters and user counters all come from exactly one successful attempt).
/// `buffers` holds one ShuffleBuffer per producer, in producer-index order.
struct MapTaskState {
  std::vector<std::unique_ptr<ShuffleBuffer>> buffers;
  ShuffleCounters shuffle_counters;
  std::map<std::string, int64_t> custom_counters;
  double busy_seconds = 0.0;     // measured across all attempts
  double penalty_seconds = 0.0;  // modeled retry backoff
  double slowdown_factor = 1.0;  // >1: injected straggler
  int64_t retries = 0;           // failed attempts that were retried
  Status status;
};

/// Timing record of one reduce task; charged to its machine after the phase
/// joins so speculative copies never race across machine threads.
struct ReduceTaskState {
  double busy_seconds = 0.0;
  double penalty_seconds = 0.0;
  double slowdown_factor = 1.0;
  int64_t retries = 0;
  // Adaptive split recovery (folded into JobMetrics after the phase joins).
  int64_t recovery_rounds = 0;
  int64_t bytes_reshuffled = 0;
  double recovery_seconds = 0.0;
};

/// ValueStream over a contiguous [begin, end) range of Records — feeds the
/// merge reducer one key's partial final values during split recovery.
class RecordRangeValueStream : public ValueStream {
 public:
  RecordRangeValueStream(const std::vector<Record>& records, size_t begin,
                         size_t end)
      : records_(records), pos_(begin), end_(end) {}

  Result<bool> Next(std::string* value) override {
    if (pos_ >= end_) return false;
    value->assign(records_[pos_].value);
    ++pos_;
    return true;
  }

 private:
  const std::vector<Record>& records_;
  size_t pos_;
  size_t end_;
};

}  // namespace

Engine::Engine(EngineConfig config, DistributedFileSystem* dfs)
    : config_(config), dfs_(dfs), temp_files_("engine") {
  SPCUBE_CHECK(config_.num_workers >= 1);
  SPCUBE_CHECK(config_.memory_budget_bytes > 0);
  SPCUBE_CHECK(config_.map_producers_per_machine >= 1)
      << "map_producers_per_machine must be >= 1, got "
      << config_.map_producers_per_machine;
  SPCUBE_CHECK(config_.combine_headroom_fraction > 0.0 &&
               config_.combine_headroom_fraction <= 1.0)
      << "combine_headroom_fraction must be in (0, 1], got "
      << config_.combine_headroom_fraction;
  SPCUBE_CHECK(config_.retry_backoff_jitter >= 0.0 &&
               config_.retry_backoff_jitter <= 1.0)
      << "retry_backoff_jitter must be in [0, 1], got "
      << config_.retry_backoff_jitter;
  if (config_.fault_plan != nullptr && dfs_ != nullptr) {
    dfs_->SetFaultInjector(config_.fault_plan);
  }
  if (dfs_ != nullptr) {
    dfs_->SetCompression(config_.compress_dfs_blobs);
  }
}

Result<JobMetrics> Engine::Run(const JobSpec& spec, const Relation& input,
                               OutputCollector* collector) {
  return RunImpl(
      spec, input.num_rows(),
      [&input](Mapper* mapper, int64_t begin, int64_t end, int64_t row,
               MapContext& context) {
        // The split is a borrowed view over [begin, end): constructing it is
        // three words, and the mapper addresses rows relative to its split —
        // no tuple data is copied per task (asserted by tests/engine_test.cc).
        return mapper->Map(RelationView(input, begin, end), row - begin,
                           context);
      },
      collector);
}

Result<JobMetrics> Engine::RunRecords(const JobSpec& spec,
                                      const std::vector<Record>& input,
                                      OutputCollector* collector) {
  return RunImpl(
      spec, static_cast<int64_t>(input.size()),
      [&input](Mapper* mapper, int64_t /*begin*/, int64_t /*end*/,
               int64_t row, MapContext& context) {
        return mapper->MapRecord(input[static_cast<size_t>(row)], context);
      },
      collector);
}

Result<JobMetrics> Engine::RunImpl(
    const JobSpec& spec, int64_t num_input_rows,
    const std::function<Status(Mapper*, int64_t begin, int64_t end,
                               int64_t row, MapContext&)>& map_row,
    OutputCollector* collector) {
  if (!spec.mapper_factory || !spec.reducer_factory) {
    return Status::InvalidArgument("job needs mapper and reducer factories");
  }
  const int num_workers = config_.num_workers;
  const int num_reducers =
      spec.num_reducers > 0 ? spec.num_reducers : num_workers;

  static const HashPartitioner kDefaultPartitioner;
  const Partitioner* partitioner =
      spec.partitioner != nullptr ? spec.partitioner.get()
                                  : &kDefaultPartitioner;

  FaultPlan* plan = config_.fault_plan;
  const int64_t job_id = plan != nullptr ? plan->BeginJob(spec.name) : 0;
  const int max_attempts =
      std::max({1, spec.max_task_attempts, config_.min_task_attempts});

  // One shared backoff schedule for every retry/recovery site: capped
  // exponential, jitter seeded purely from stable coordinates so charged
  // times never depend on threading or call order.
  const uint64_t backoff_seed =
      plan != nullptr ? plan->config().seed : 0;
  auto backoff_seconds = [&](TaskKind kind, int task, int attempt) {
    return RetryBackoffSeconds(config_.retry_backoff_seconds,
                               config_.retry_backoff_cap_seconds,
                               config_.retry_backoff_jitter, backoff_seed,
                               job_id, kind, task, attempt);
  };

  // Real execution resources: a seeded work-stealing pool sized to
  // host_threads (host cores under kHostThreadsAuto). The pool seed only
  // steers steal-victim orders — results are identical for any thread
  // count, which tests/threading_test.cc's determinism probe enforces.
  const int host_threads = config_.host_threads < 0
                               ? TaskPool::HostThreads()
                               : std::max(1, config_.host_threads);
  const bool threaded = host_threads > 1;
  TaskPool pool(host_threads, backoff_seed ^ 0x9e3779b97f4a7c15ull);
  // Busy time is the model's input: per-thread CPU time when real threads
  // share the host's cores (immune to preemption by the other simulated
  // machines), wall time when serial. Charged to the owning simulated
  // machine after the phase joins, regardless of which host thread ran.
  // spcube-lint: allow(no-host-time): measures task busy time for the model
  auto busy_since = [threaded](std::chrono::steady_clock::time_point wall,
                               double cpu) {
    return threaded ? ThreadCpuSeconds() - cpu : SecondsSince(wall);
  };
  const int producers = std::max(1, config_.map_producers_per_machine);

  // Adaptive split recovery is opt-in per job and only meaningful under
  // kStrict (kSpill never OOMs): see RecoverySpec in mapreduce/api.h.
  const bool recovery_enabled =
      spec.memory_policy == MemoryPolicy::kStrict &&
      spec.recovery.allow_partition_split &&
      spec.recovery.merge_reducer_factory != nullptr;

  JobMetrics metrics;
  metrics.job_name = spec.name;
  metrics.map_phase.EnsureWorkers(num_workers);
  metrics.reduce_phase.EnsureWorkers(num_workers);
  metrics.reducer_input_records.assign(static_cast<size_t>(num_reducers), 0);
  metrics.reducer_input_bytes.assign(static_cast<size_t>(num_reducers), 0);
  metrics.reducer_wire_bytes.assign(static_cast<size_t>(num_reducers), 0);
  metrics.reducer_output_records.assign(static_cast<size_t>(num_reducers), 0);
  metrics.round_overhead_seconds = config_.round_overhead_seconds;
  metrics.map_input_records = num_input_rows;

  // Custom-counter totals may be merged from several task threads.
  CounterMerger counter_merger(&metrics.custom_counters);

  // ---- Map phase ----------------------------------------------------------
  const int64_t n = num_input_rows;
  std::vector<MapTaskState> map_tasks(static_cast<size_t>(num_workers));

  // Runs map task `w` to completion (with retries). `attempt_base` offsets
  // the fault plan's attempt coordinate so a crash re-execution draws fresh
  // — but reproducible — luck instead of replaying its original faults.
  // The machine's split is cut into `producers` contiguous sub-ranges, each
  // a stealable pool sub-task, so an unbalanced split no longer serializes
  // behind one host thread.
  auto run_map_task = [&](int w, int attempt_base) -> MapTaskState {
    MapTaskState state;
    const int64_t begin = n * w / num_workers;
    const int64_t end = n * (w + 1) / num_workers;
    const int64_t split_rows = end - begin;
    // Fixed per-producer share of the machine budget: the *sum* of live
    // producer buffers can never exceed the machine budget, and the combine
    // headroom fraction applies to each share — spill triggers stay a pure
    // function of (config, seed), independent of thread interleaving.
    const int64_t producer_budget =
        std::max<int64_t>(1, config_.memory_budget_bytes / producers);

    Status last_error = Status::OK();
    bool succeeded = false;
    for (int attempt = 0; attempt < max_attempts && !succeeded; ++attempt) {
      // spcube-lint: allow(no-host-time): map-task busy-time measurement
      auto machine_wall = std::chrono::steady_clock::now();
      double machine_cpu = ThreadCpuSeconds();

      TaskFault fault;
      if (plan != nullptr) {
        fault = plan->PlanTaskAttempt(job_id, TaskKind::kMap, w,
                                      attempt_base + attempt);
      }
      // The plan models transient faults, so the final attempt is spared
      // injected failures (a real cluster's node blacklisting converges the
      // same way); genuine errors can still fail it.
      const bool inject_failure = fault.fail && attempt + 1 < max_attempts;
      if (fault.slowdown_factor > state.slowdown_factor) {
        state.slowdown_factor = fault.slowdown_factor;
      }
      // Map the plan's serial-order fail_after_items onto producers: the
      // failure strikes the producer whose sub-range contains that item
      // (after the equivalent number of *its own* items); counts beyond the
      // split — "at finish" failures — land on the last producer. Exactly
      // one producer dies, whatever the thread count.
      int fail_producer = producers - 1;
      int64_t fail_after_local = -1;  // < 0: fail at the producer's finish
      if (inject_failure && split_rows > 0 &&
          fault.fail_after_items <= split_rows) {
        const int64_t fail_row =
            begin + std::max<int64_t>(1, fault.fail_after_items) - 1;
        for (int j = 0; j < producers; ++j) {
          const int64_t sub_begin = begin + split_rows * j / producers;
          const int64_t sub_end = begin + split_rows * (j + 1) / producers;
          if (fail_row >= sub_begin && fail_row < sub_end) {
            fail_producer = j;
            fail_after_local = fail_row - sub_begin + 1;
            break;
          }
        }
      }

      // Fresh per-producer state per attempt; a failed attempt's partial
      // shuffle output and counters are discarded wholesale.
      std::vector<ProducerResult> parts(static_cast<size_t>(producers));

      // One producer's whole pipeline: own mapper instance, own buffer, own
      // busy clock — measured on whichever host thread executes it (stolen
      // or not) and summed into the owning machine's time after the join.
      auto run_producer = [&](int j) -> Status {
        ProducerResult& part = parts[static_cast<size_t>(j)];
        // spcube-lint: allow(no-host-time): producer busy-time measurement
        const auto start_wall = std::chrono::steady_clock::now();
        const double start_cpu = ThreadCpuSeconds();
        auto body = [&]() -> Status {
          const int64_t sub_begin = begin + split_rows * j / producers;
          const int64_t sub_end = begin + split_rows * (j + 1) / producers;
          part.buffer = std::make_unique<ShuffleBuffer>(
              num_reducers, producer_budget, spec.combiner.get(),
              &temp_files_, &part.counters,
              config_.combine_headroom_fraction);
          // Logical run identity for fault injection: independent of host
          // temp paths, so a fixed seed replays the same corruptions. The
          // single-producer prefix matches the pre-pool engine exactly.
          std::string prefix = "run/j" + std::to_string(job_id) + "/m" +
                               std::to_string(w) + "/a" +
                               std::to_string(attempt_base + attempt);
          if (producers > 1) prefix += "/p" + std::to_string(j);
          part.buffer->SetSpillResourcePrefix(prefix);
          EngineMapContext map_context(part.buffer.get(), partitioner,
                                       num_reducers);

          std::unique_ptr<Mapper> mapper = spec.mapper_factory();
          if (mapper == nullptr) {
            return Status::Internal("mapper factory failed");
          }
          TaskContext task{w, num_workers, num_reducers,
                           /*reduce_partition=*/-1,
                           config_.memory_budget_bytes, dfs_};
          SPCUBE_RETURN_IF_ERROR(mapper->Setup(task));
          const bool my_failure = inject_failure && j == fail_producer;
          int64_t items = 0;
          for (int64_t row = sub_begin; row < sub_end; ++row) {
            SPCUBE_RETURN_IF_ERROR(
                map_row(mapper.get(), begin, end, row, map_context));
            ++items;
            if (my_failure && fail_after_local >= 0 &&
                items >= fail_after_local) {
              return Status::IoError("injected map task failure");
            }
          }
          if (my_failure) {
            return Status::IoError("injected map task failure (at finish)");
          }
          SPCUBE_RETURN_IF_ERROR(mapper->Finish(map_context));
          part.custom_counters = map_context.TakeCounters();
          return part.buffer->FinalizeMapOutput();
        };
        Status status = body();
        part.busy_seconds = busy_since(start_wall, start_cpu);
        return status;
      };

      Status attempt_status = Status::OK();
      if (threaded && producers > 1) {
        // Producer sub-tasks are stealable pool units. Explicit
        // init-captures: the sub-task closure names everything crossing the
        // worker boundary; `run_producer` writes only `parts[j]` — the
        // disjoint-write contract (docs/INTERNALS.md §12). Errors surface
        // in producer-index order, so failure attribution is deterministic.
        std::vector<std::function<Status()>> sub_tasks;
        sub_tasks.reserve(static_cast<size_t>(producers));
        for (int j = 0; j < producers; ++j) {
          sub_tasks.emplace_back(
              [j, &produce = run_producer]() { return produce(j); });
        }
        // Bracket the machine task's own (non-nested) work so CPU this
        // worker spends helping with *other* pool tasks while waiting is
        // never charged to this machine.
        const double setup_busy = busy_since(machine_wall, machine_cpu);
        std::vector<Status> sub_statuses =
            pool.RunNested(std::move(sub_tasks));
        // spcube-lint: allow(no-host-time): map-task busy-time measurement
        machine_wall = std::chrono::steady_clock::now();
        machine_cpu = ThreadCpuSeconds();
        for (const Status& status : sub_statuses) {
          if (!status.ok()) {
            attempt_status = status;
            break;
          }
        }
        double producer_busy = 0.0;
        for (const ProducerResult& part : parts) {
          producer_busy += part.busy_seconds;
        }
        state.busy_seconds += setup_busy + producer_busy +
                              busy_since(machine_wall, machine_cpu);
      } else {
        // Serial pool (or a single producer): run inline in producer-index
        // order; the outer bracket covers the whole attempt, exactly like
        // the pre-pool engine.
        for (int j = 0; j < producers; ++j) {
          Status status = run_producer(j);
          if (!status.ok() && attempt_status.ok()) attempt_status = status;
        }
        state.busy_seconds += busy_since(machine_wall, machine_cpu);
      }

      last_error = attempt_status;
      if (last_error.ok()) {
        succeeded = true;
        state.buffers.clear();
        state.buffers.reserve(static_cast<size_t>(producers));
        // Merge in producer-index order: counters sum and segments hand
        // off deterministically however the sub-tasks were scheduled.
        for (ProducerResult& part : parts) {
          ShuffleCounters& total = state.shuffle_counters;
          total.map_output_records += part.counters.map_output_records;
          total.map_output_bytes += part.counters.map_output_bytes;
          total.combine_input_records += part.counters.combine_input_records;
          total.combine_output_records +=
              part.counters.combine_output_records;
          total.spill_bytes += part.counters.spill_bytes;
          total.spill_bytes_uncompressed +=
              part.counters.spill_bytes_uncompressed;
          total.checksum_mismatches += part.counters.checksum_mismatches;
          for (const auto& [name, delta] : part.custom_counters) {
            state.custom_counters[name] += delta;
          }
          state.buffers.push_back(std::move(part.buffer));
        }
      } else if (attempt + 1 < max_attempts) {
        ++state.retries;
        state.penalty_seconds += backoff_seconds(TaskKind::kMap, w, attempt);
      }
      // A failed attempt's buffers die with `parts` here; their destructors
      // reclaim any spill files the attempt wrote.
    }
    if (!succeeded) {
      state.status =
          Status(last_error.code(),
                 "map task " + std::to_string(w) + " of job '" + spec.name +
                     "' failed after " + std::to_string(max_attempts) +
                     " attempt(s): " + last_error.message());
    }
    return state;
  };

  {
    // One stealable pool task per simulated machine (serial pools run them
    // inline in machine order). Explicit init-captures: everything crossing
    // the worker boundary is named (thread-capture-escape rule). `tasks` is
    // shared mutably under the sanctioned disjoint-write contract — the
    // task for machine `w` writes only slot `tasks[w]`, and Run's join
    // publishes the slots to this thread (docs/INTERNALS.md §12).
    std::vector<std::function<Status()>> batch;
    batch.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      batch.emplace_back(
          [w, &tasks = map_tasks, &run_task = run_map_task]() -> Status {
            tasks[static_cast<size_t>(w)] = run_task(w, 0);
            return tasks[static_cast<size_t>(w)].status;
          });
    }
    for (const Status& status : pool.Run(std::move(batch))) {
      SPCUBE_RETURN_IF_ERROR(status);
    }
  }

  // ---- Worker crashes & charging ------------------------------------------
  // Crashes strike after the map phase: the machine's completed map outputs
  // are gone with its local disks (Hadoop re-executes those map tasks), and
  // the machine takes no reduce work.
  std::vector<bool> alive(static_cast<size_t>(num_workers), true);
  std::vector<int> crashed;
  if (plan != nullptr && num_workers > 1) {
    crashed = plan->CrashedWorkers(job_id, num_workers);
    for (int w : crashed) alive[static_cast<size_t>(w)] = false;
    metrics.workers_crashed = static_cast<int64_t>(crashed.size());
  }
  const auto next_alive = [&](int from) {
    for (int i = 1; i < num_workers; ++i) {
      const int c = (from + i) % num_workers;
      if (alive[static_cast<size_t>(c)]) return c;
    }
    return -1;
  };

  // Charge the original map tasks: stragglers run `slowdown_factor` slow;
  // with speculative execution the slot pays at most 2x measured (the slow
  // copy is killed when the backup finishes) and the backup's measured time
  // lands on the next machine. Crashed machines still pay for their
  // original tasks — the work happened before the crash.
  std::vector<double> map_seconds(static_cast<size_t>(num_workers), 0.0);
  for (int w = 0; w < num_workers; ++w) {
    MapTaskState& task = map_tasks[static_cast<size_t>(w)];
    const double base = task.busy_seconds;
    double charged = base * task.slowdown_factor;
    if (task.slowdown_factor > 1.0 && config_.speculative_execution &&
        num_workers > 1) {
      const int backup = (w + 1) % num_workers;
      charged = std::min(charged, 2.0 * base);
      map_seconds[static_cast<size_t>(backup)] += base;
      ++metrics.tasks_speculatively_reexecuted;
      metrics.fault_recovery_seconds += base;
    }
    map_seconds[static_cast<size_t>(w)] += charged + task.penalty_seconds;
    metrics.fault_recovery_seconds += task.penalty_seconds;
    metrics.task_retries += task.retries;
  }

  // Re-execute the crashed machines' map tasks on the least-loaded
  // survivors; their results replace the lost ones wholesale so no counter
  // is double-counted.
  for (int w : crashed) {
    map_tasks[static_cast<size_t>(w)].buffers.clear();  // lost with the disk
    MapTaskState redo = run_map_task(w, max_attempts);
    SPCUBE_RETURN_IF_ERROR(redo.status);
    int host = -1;
    for (int h = 0; h < num_workers; ++h) {
      if (!alive[static_cast<size_t>(h)]) continue;
      if (host < 0 || map_seconds[static_cast<size_t>(h)] <
                          map_seconds[static_cast<size_t>(host)]) {
        host = h;
      }
    }
    SPCUBE_CHECK(host >= 0) << "no surviving worker to re-execute on";
    const double charged = redo.busy_seconds * redo.slowdown_factor +
                           redo.penalty_seconds +
                           backoff_seconds(TaskKind::kMap, w, 0);
    map_seconds[static_cast<size_t>(host)] += charged;
    metrics.fault_recovery_seconds += charged;
    metrics.task_retries += redo.retries;
    ++metrics.tasks_reexecuted_after_crash;
    map_tasks[static_cast<size_t>(w)] = std::move(redo);
  }
  for (int w = 0; w < num_workers; ++w) {
    metrics.map_phase.per_worker_seconds[static_cast<size_t>(w)] =
        map_seconds[static_cast<size_t>(w)];
  }

  for (MapTaskState& task : map_tasks) {
    const ShuffleCounters& c = task.shuffle_counters;
    metrics.map_output_records += c.map_output_records;
    metrics.map_output_bytes += c.map_output_bytes;
    metrics.combine_input_records += c.combine_input_records;
    metrics.combine_output_records += c.combine_output_records;
    metrics.shuffle_checksum_mismatches += c.checksum_mismatches;
    counter_merger.Merge(task.custom_counters);
  }

  // ---- Shuffle: assemble per-reducer inputs -------------------------------
  std::vector<ReduceInput> reduce_inputs(static_cast<size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) {
    ReduceInput& in = reduce_inputs[static_cast<size_t>(p)];
    // Wire bytes: what actually crosses the network for this reducer —
    // in-memory segment payloads plus the on-disk (delta/varint-encoded)
    // bytes of spilled runs. The twin is what the legacy fixed-frame spill
    // format would have shipped (docs/INTERNALS.md §13).
    int64_t wire_bytes = 0;
    int64_t wire_bytes_uncompressed = 0;
    for (int w = 0; w < num_workers; ++w) {
      // Machine-major, producer-minor: segments merge on hand-off in
      // producer-index order, so reduce input order is identical however
      // the producer sub-tasks were scheduled.
      for (const std::unique_ptr<ShuffleBuffer>& buffer_ptr :
           map_tasks[static_cast<size_t>(w)].buffers) {
        ShuffleBuffer& buffer = *buffer_ptr;
        // Zero-copy hand-off: the segment keeps the producer's arena alive;
        // no Record materialization between map output and reduce input.
        ShuffleSegment segment = buffer.TakeMemorySegment(p);
        in.total_bytes += segment.payload_bytes();
        in.total_records += segment.num_records();
        wire_bytes += segment.payload_bytes();
        wire_bytes_uncompressed += segment.payload_bytes();
        if (!segment.empty()) {
          in.memory_segments.push_back(std::move(segment));
        }
        std::vector<RunInfo> runs = buffer.TakeSpillRuns(p);
        for (RunInfo& run : runs) {
          in.total_bytes += run.payload_bytes;
          in.total_records += run.records;
          wire_bytes += run.file_bytes;
          wire_bytes_uncompressed += run.uncompressed_file_bytes;
          in.spill_runs.push_back(std::move(run));
        }
      }
    }
    metrics.reducer_input_records[static_cast<size_t>(p)] = in.total_records;
    metrics.reducer_input_bytes[static_cast<size_t>(p)] = in.total_bytes;
    metrics.reducer_wire_bytes[static_cast<size_t>(p)] = wire_bytes;
    metrics.shuffle_records += in.total_records;
    metrics.shuffle_bytes += in.total_bytes;
    metrics.shuffle_bytes_compressed += wire_bytes;
    metrics.shuffle_bytes_uncompressed += wire_bytes_uncompressed;
  }

  // Transfer time charges the bytes that actually move: when nothing
  // spills, wire bytes equal payload bytes and this is bit-identical to
  // the historical MaxReducerInputBytes() charge.
  metrics.shuffle_seconds =
      config_.network_bandwidth_bytes_per_sec > 0
          ? static_cast<double>(metrics.MaxReducerWireBytes()) /
                config_.network_bandwidth_bytes_per_sec
          : 0.0;

  // Drift observable: flag the round when the reducer-input skew crosses
  // the configured alert threshold (the trigger a deployment would use to
  // schedule a re-sketch; see EngineConfig).
  if (config_.reducer_imbalance_alert_threshold > 0.0 &&
      metrics.ReducerImbalance() >
          config_.reducer_imbalance_alert_threshold) {
    metrics.reducer_imbalance_alerts = 1;
  }

  // ---- Reduce phase --------------------------------------------------------
  // Assign reduce tasks to the surviving machines with a
  // longest-processing-time greedy over their (known) input sizes, as a
  // locality-free scheduler would: largest partitions first, each to the
  // currently least-loaded machine.
  std::vector<int> alive_machines;
  for (int w = 0; w < num_workers; ++w) {
    if (alive[static_cast<size_t>(w)]) alive_machines.push_back(w);
  }
  SPCUBE_CHECK(!alive_machines.empty());
  std::vector<int> machine_of(static_cast<size_t>(num_reducers), 0);
  {
    std::vector<int> by_size(static_cast<size_t>(num_reducers));
    for (int p = 0; p < num_reducers; ++p) by_size[static_cast<size_t>(p)] = p;
    std::sort(by_size.begin(), by_size.end(), [&metrics](int a, int b) {
      return metrics.reducer_input_bytes[static_cast<size_t>(a)] >
             metrics.reducer_input_bytes[static_cast<size_t>(b)];
    });
    std::vector<int64_t> machine_load(static_cast<size_t>(num_workers), 0);
    for (int p : by_size) {
      int best = alive_machines.front();
      for (int w : alive_machines) {
        if (machine_load[static_cast<size_t>(w)] <
            machine_load[static_cast<size_t>(best)]) {
          best = w;
        }
      }
      machine_of[static_cast<size_t>(p)] = best;
      machine_load[static_cast<size_t>(best)] +=
          metrics.reducer_input_bytes[static_cast<size_t>(p)];
    }
  }

  // Reduce-side spill/fetch accounting, one slot per *partition*: partition
  // tasks are independent pool units (two partitions owned by the same
  // simulated machine may run on different host threads concurrently), so
  // counters must be disjoint per task, not per machine.
  std::vector<ShuffleCounters> reduce_counters(
      static_cast<size_t>(num_reducers));
  std::vector<ReduceTaskState> reduce_tasks(
      static_cast<size_t>(num_reducers));

  // ---- Adaptive split recovery (RecoverySpec, docs/INTERNALS.md §11) ------
  // Runs a (sub-)partition's grouped stream through a reducer built by
  // `factory`, collecting output records and counters instead of
  // committing: nothing is published until the whole partition succeeds.
  auto run_reducer_collect =
      [&](int p, int machine, GroupedRecordStream* stream,
          const std::function<std::unique_ptr<Reducer>()>& factory,
          std::map<std::string, int64_t>* counters,
          std::vector<Record>* out) -> Status {
    std::unique_ptr<Reducer> reducer = factory();
    if (reducer == nullptr) return Status::Internal("reducer factory failed");
    TaskContext task{machine, num_workers, num_reducers,
                     /*reduce_partition=*/p, config_.memory_budget_bytes,
                     dfs_};
    SPCUBE_RETURN_IF_ERROR(reducer->Setup(task));
    EngineReduceContext context;
    std::string key;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, stream->NextGroup(&key));
      if (!more) break;
      GroupValueStream values(stream);
      SPCUBE_RETURN_IF_ERROR(reducer->Reduce(key, values, context));
    }
    SPCUBE_RETURN_IF_ERROR(reducer->Finish(context));
    for (const auto& [name, delta] : context.counters()) {
      (*counters)[name] += delta;
    }
    std::vector<Record> pending = context.TakePending();
    out->insert(out->end(), std::make_move_iterator(pending.begin()),
                std::make_move_iterator(pending.end()));
    return Status::OK();
  };

  // Reduces `input` under `budget`; on a strict OOM splits it into salted
  // sub-partitions (recursively, up to max_split_depth), reduces each, and
  // merges the partial final outputs with the job's merge reducer — legal
  // only under the RecoverySpec contract (unique output keys per group,
  // associative merge closed over final values). Degradation cost (one
  // backoff per split plus the re-scatter transfer) is charged to `state`.
  std::function<Status(int, int, const ReduceInput&, int64_t, int,
                       ReduceTaskState*, std::map<std::string, int64_t>*,
                       std::vector<Record>*)>
      reduce_with_split =
          [&](int p, int machine, const ReduceInput& input, int64_t budget,
              int depth, ReduceTaskState* state,
              std::map<std::string, int64_t>* counters,
              std::vector<Record>* out) -> Status {
    const std::string resource_prefix =
        "recover/j" + std::to_string(job_id) + "/red" + std::to_string(p) +
        "/d" + std::to_string(depth);
    // Cheap retry-safe copy: segments are shared refs, runs are path infos.
    ReduceInput attempt_input = input;
    auto stream_result = MakeGroupedStream(
        std::move(attempt_input), budget, MemoryPolicy::kStrict,
        &temp_files_, &reduce_counters[static_cast<size_t>(p)], plan,
        resource_prefix);
    if (stream_result.ok()) {
      std::unique_ptr<GroupedRecordStream> stream =
          std::move(stream_result).value();
      return run_reducer_collect(p, machine, stream.get(),
                                 spec.reducer_factory, counters, out);
    }
    if (!stream_result.status().IsResourceExhausted()) {
      return stream_result.status();
    }
    if (depth >= spec.recovery.max_split_depth) {
      return Status(stream_result.status().code(),
                    "split recovery exhausted max_split_depth=" +
                        std::to_string(spec.recovery.max_split_depth) +
                        ": " + stream_result.status().message());
    }

    // Still over budget: scatter into sub-partitions. The salt depends only
    // on stable coordinates, so threaded and sequential runs (and same-seed
    // reruns) split identically.
    const int fanout = std::max(2, spec.recovery.split_fanout);
    uint64_t salt = HashCombine(Mix64(backoff_seed ^ 0x5917ull),
                                static_cast<uint64_t>(job_id));
    salt = HashCombine(salt, HashCombine(static_cast<uint64_t>(p),
                                         static_cast<uint64_t>(depth)));
    auto split_result = SplitReduceInput(
        input, fanout, salt, &temp_files_,
        &reduce_counters[static_cast<size_t>(p)], plan,
        resource_prefix);
    if (!split_result.ok()) return split_result.status();
    std::vector<ReduceInput> subs = std::move(split_result).value();

    int64_t reshuffled = 0;
    for (const ReduceInput& sub : subs) reshuffled += sub.total_bytes;
    ++state->recovery_rounds;
    state->bytes_reshuffled += reshuffled;
    // Charge the degradation to simulated time: a backoff before the split
    // round (the depth extends the task's retry chain) plus the re-scatter
    // transfer at the modeled bandwidth.
    double charge =
        backoff_seconds(TaskKind::kReduce, p, max_attempts + depth);
    if (config_.network_bandwidth_bytes_per_sec > 0) {
      charge += static_cast<double>(reshuffled) /
                config_.network_bandwidth_bytes_per_sec;
    }
    state->penalty_seconds += charge;
    state->recovery_seconds += charge;

    std::vector<Record> sub_outputs;
    Status sub_status = Status::OK();
    for (const ReduceInput& sub : subs) {
      if (sub.total_records == 0) continue;
      sub_status = reduce_with_split(p, machine, sub, budget, depth + 1,
                                     state, counters, &sub_outputs);
      if (!sub_status.ok()) break;
    }
    // The sub-partition run files are recovery-private; reclaim the disk
    // now whether or not the sub-attempts succeeded.
    for (const ReduceInput& sub : subs) {
      for (const RunInfo& run : sub.spill_runs) RemoveFileIfExists(run.path);
    }
    if (!sub_status.ok()) return sub_status;

    // Merge round: partial outputs of the same key re-group and the merge
    // reducer restores the unsplit value. The stable sort keeps values in
    // sub-partition order within a key, so merge input order (and thus any
    // floating-point evaluation order) is deterministic.
    std::stable_sort(
        sub_outputs.begin(), sub_outputs.end(),
        [](const Record& a, const Record& b) { return a.key < b.key; });
    std::unique_ptr<Reducer> merger = spec.recovery.merge_reducer_factory();
    if (merger == nullptr) {
      return Status::Internal("merge reducer factory failed");
    }
    TaskContext task{machine, num_workers, num_reducers,
                     /*reduce_partition=*/p, config_.memory_budget_bytes,
                     dfs_};
    SPCUBE_RETURN_IF_ERROR(merger->Setup(task));
    EngineReduceContext merge_context;
    size_t i = 0;
    while (i < sub_outputs.size()) {
      size_t j = i + 1;
      while (j < sub_outputs.size() &&
             sub_outputs[j].key == sub_outputs[i].key) {
        ++j;
      }
      RecordRangeValueStream values(sub_outputs, i, j);
      SPCUBE_RETURN_IF_ERROR(
          merger->Reduce(sub_outputs[i].key, values, merge_context));
      i = j;
    }
    SPCUBE_RETURN_IF_ERROR(merger->Finish(merge_context));
    for (const auto& [name, delta] : merge_context.counters()) {
      (*counters)[name] += delta;
    }
    std::vector<Record> merged = merge_context.TakePending();
    out->insert(out->end(), std::make_move_iterator(merged.begin()),
                std::make_move_iterator(merged.end()));
    return Status::OK();
  };

  // `sink` receives partition p's reduce output: the real collector when
  // running sequentially, a per-partition staging buffer when threaded (so
  // delivery order is partition order, not thread completion order).
  auto run_reduce_partition = [&](int p, OutputCollector* sink) -> Status {
    const int machine = machine_of[static_cast<size_t>(p)];
    ReduceTaskState& state = reduce_tasks[static_cast<size_t>(p)];
    // spcube-lint: allow(no-host-time): reduce-task busy-time measurement
    const auto start = std::chrono::steady_clock::now();
    const double cpu_start = ThreadCpuSeconds();

    // Keep run paths for cleanup: MakeGroupedStream consumes the input.
    std::vector<std::string> run_paths;
    for (const RunInfo& run :
         reduce_inputs[static_cast<size_t>(p)].spill_runs) {
      run_paths.push_back(run.path);
    }

    Status last_error = Status::OK();
    bool succeeded = false;
    for (int attempt = 0; attempt < max_attempts && !succeeded; ++attempt) {
      TaskFault fault;
      if (plan != nullptr) {
        fault = plan->PlanTaskAttempt(job_id, TaskKind::kReduce, p, attempt);
      }
      const bool inject_failure = fault.fail && attempt + 1 < max_attempts;
      if (fault.slowdown_factor > state.slowdown_factor) {
        state.slowdown_factor = fault.slowdown_factor;
      }
      // Injected memory pressure shrinks this attempt's effective budget
      // (a co-tenant eating the heap); drawn per attempt, so pressure is
      // transient.
      const double budget_factor = std::clamp(fault.budget_factor, 1e-6, 1.0);
      const int64_t attempt_budget = std::max<int64_t>(
          1, static_cast<int64_t>(
                 static_cast<double>(config_.memory_budget_bytes) *
                 budget_factor));

      // With retries or split recovery enabled, a failed attempt needs the
      // input again, so the in-memory part is copied (segments are cheap
      // shared refs); spill-run files survive attempts either way.
      ReduceInput attempt_input;
      if (attempt + 1 < max_attempts || recovery_enabled) {
        attempt_input = reduce_inputs[static_cast<size_t>(p)];
      } else {
        attempt_input = std::move(reduce_inputs[static_cast<size_t>(p)]);
      }

      auto run_attempt = [&]() -> Status {
        auto stream_result = MakeGroupedStream(
            std::move(attempt_input), attempt_budget,
            spec.memory_policy, &temp_files_,
            &reduce_counters[static_cast<size_t>(p)], plan,
            "run/j" + std::to_string(job_id) + "/red" + std::to_string(p) +
                "/a" + std::to_string(attempt));
        if (!stream_result.ok()) return stream_result.status();
        std::unique_ptr<GroupedRecordStream> stream =
            std::move(stream_result).value();

        std::unique_ptr<Reducer> reducer = spec.reducer_factory();
        if (reducer == nullptr) {
          return Status::Internal("reducer factory failed");
        }
        TaskContext task{machine, num_workers, num_reducers,
                         /*reduce_partition=*/p, config_.memory_budget_bytes,
                         dfs_};
        SPCUBE_RETURN_IF_ERROR(reducer->Setup(task));

        EngineReduceContext reduce_context;
        std::string key;
        int64_t groups = 0;
        for (;;) {
          SPCUBE_ASSIGN_OR_RETURN(bool more, stream->NextGroup(&key));
          if (!more) break;
          GroupValueStream values(stream.get());
          SPCUBE_RETURN_IF_ERROR(
              reducer->Reduce(key, values, reduce_context));
          ++groups;
          if (inject_failure && groups >= fault.fail_after_items) {
            return Status::IoError("injected reduce task failure");
          }
        }
        if (inject_failure) {
          return Status::IoError("injected reduce task failure (at finish)");
        }
        SPCUBE_RETURN_IF_ERROR(reducer->Finish(reduce_context));
        SPCUBE_RETURN_IF_ERROR(reduce_context.Commit(
            sink, p,
            &metrics.reducer_output_records[static_cast<size_t>(p)]));
        counter_merger.Merge(reduce_context.counters());
        return Status::OK();
      };
      last_error = run_attempt();
      if (last_error.ok()) {
        succeeded = true;
      } else if (last_error.IsResourceExhausted()) {
        if (recovery_enabled) {
          // Degrade instead of dying: split the partition, reduce the
          // sub-partitions, merge — then commit exactly like a normal
          // successful attempt.
          std::map<std::string, int64_t> recovery_counters;
          std::vector<Record> recovered;
          last_error = reduce_with_split(
              p, machine, reduce_inputs[static_cast<size_t>(p)],
              attempt_budget, /*depth=*/0, &state, &recovery_counters,
              &recovered);
          if (!last_error.ok()) break;
          metrics.reducer_output_records[static_cast<size_t>(p)] +=
              static_cast<int64_t>(recovered.size());
          if (sink != nullptr) {
            for (const Record& record : recovered) {
              last_error = sink->Collect(p, record.key, record.value);
              if (!last_error.ok()) break;
            }
            if (!last_error.ok()) break;
          }
          counter_merger.Merge(recovery_counters);
          succeeded = true;
        } else if (budget_factor < 1.0 && attempt + 1 < max_attempts) {
          // The OOM came from injected budget pressure, which is
          // transient: a retried attempt may draw its full budget back.
          ++state.retries;
          state.penalty_seconds +=
              backoff_seconds(TaskKind::kReduce, p, attempt);
        } else {
          // A full-budget kStrict OOM is permanent — re-running cannot
          // shrink the input — and this job does not permit splitting;
          // explain why so the failure is actionable.
          last_error = Status(
              last_error.code(),
              last_error.message() + " (adaptive partition splitting " +
                  (spec.recovery.reject_reason.empty()
                       ? std::string("is not enabled for this job")
                       : "was rejected: " + spec.recovery.reject_reason) +
                  ")");
          break;
        }
      } else if (attempt + 1 < max_attempts) {
        ++state.retries;
        state.penalty_seconds += backoff_seconds(TaskKind::kReduce, p, attempt);
      }
    }
    state.busy_seconds = busy_since(start, cpu_start);
    if (!succeeded) {
      return Status(last_error.code(),
                    "reduce task " + std::to_string(p) + " of job '" +
                        spec.name + "': " + last_error.message());
    }
    for (const std::string& path : run_paths) RemoveFileIfExists(path);
    return Status::OK();
  };

  {
    // One stealable pool task per partition — partitions no longer queue
    // behind their owner machine's single thread, so a skewed partition
    // list keeps every host core busy. Simulated ownership is untouched:
    // busy time is still charged to `machine_of[p]` after the join.
    //
    // When threaded, output is staged per partition and replayed into the
    // collector in partition order after the join: task completion order
    // must not be observable downstream (a multi-round algorithm feeds
    // this round's collector straight into the next round's mappers). A
    // serial pool runs the tasks inline in partition order, so it writes
    // to the collector directly — the behavior reference.
    //
    // Explicit init-captures (thread-capture-escape rule). Disjoint-write
    // contract: each pool task owns partition `p` exclusively, writing
    // distinct ReduceTaskState / reduce_counters / reducer-output /
    // staging slots; Run's join publishes everything.
    std::vector<StagingCollector> staged(
        threaded && collector != nullptr ? static_cast<size_t>(num_reducers)
                                         : 0u);
    std::vector<std::function<Status()>> batch;
    batch.reserve(static_cast<size_t>(num_reducers));
    for (int p = 0; p < num_reducers; ++p) {
      OutputCollector* sink =
          staged.empty() ? collector : &staged[static_cast<size_t>(p)];
      batch.emplace_back([p, sink, &run_partition = run_reduce_partition]() {
        return run_partition(p, sink);
      });
    }
    for (const Status& status : pool.Run(std::move(batch))) {
      SPCUBE_RETURN_IF_ERROR(status);
    }
    for (int p = 0; p < num_reducers && !staged.empty(); ++p) {
      for (const Record& record : staged[static_cast<size_t>(p)].records()) {
        SPCUBE_RETURN_IF_ERROR(
            collector->Collect(p, record.key, record.value));
      }
    }
  }

  // Charge the reduce tasks to their machines (after the join, so straggler
  // speculation can deterministically bill a second machine).
  for (int p = 0; p < num_reducers; ++p) {
    const int machine = machine_of[static_cast<size_t>(p)];
    const ReduceTaskState& state = reduce_tasks[static_cast<size_t>(p)];
    const double base = state.busy_seconds;
    double charged = base * state.slowdown_factor;
    const int backup = next_alive(machine);
    if (state.slowdown_factor > 1.0 && config_.speculative_execution &&
        backup >= 0) {
      charged = std::min(charged, 2.0 * base);
      metrics.reduce_phase.Accumulate(backup, base);
      ++metrics.tasks_speculatively_reexecuted;
      metrics.fault_recovery_seconds += base;
    }
    metrics.reduce_phase.Accumulate(machine,
                                    charged + state.penalty_seconds);
    metrics.fault_recovery_seconds += state.penalty_seconds;
    metrics.task_retries += state.retries;
    if (state.recovery_rounds > 0) ++metrics.reduce_partitions_split;
    metrics.recovery_rounds += state.recovery_rounds;
    metrics.recovery_bytes_reshuffled += state.bytes_reshuffled;
    metrics.recovery_seconds += state.recovery_seconds;
  }

  // Spill bytes and fetch mismatches from reduce-side merging were
  // accumulated into the per-machine counters; fold them in with the
  // map-side spills.
  int64_t total_spill = 0;
  int64_t total_spill_uncompressed = 0;
  for (const MapTaskState& task : map_tasks) {
    total_spill += task.shuffle_counters.spill_bytes;
    total_spill_uncompressed += task.shuffle_counters.spill_bytes_uncompressed;
  }
  for (const ShuffleCounters& c : reduce_counters) {
    total_spill += c.spill_bytes;
    total_spill_uncompressed += c.spill_bytes_uncompressed;
    metrics.shuffle_checksum_mismatches += c.checksum_mismatches;
  }
  metrics.spill_bytes = total_spill;
  metrics.spill_bytes_uncompressed = total_spill_uncompressed;

  for (int64_t out : metrics.reducer_output_records) {
    metrics.output_records += out;
  }
  return metrics;
}

}  // namespace spcube
