#include "mapreduce/engine.h"

// spcube-lint: allow(no-host-time): clock_gettime measures task busy time
#include <time.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "mapreduce/fault.h"
#include "mapreduce/shuffle.h"

namespace spcube {
namespace {

// Wall-clock busy time of one simulated machine's task: this measured
// duration is an *input* to the simulated cluster-time model (per-machine
// critical path, EngineConfig), which is the sanctioned use of host timers.
// spcube-lint: allow(no-host-time): measures task busy time for the model
double SecondsSince(std::chrono::steady_clock::time_point start) {
  // spcube-lint: allow(no-host-time): measures task busy time for the model
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// CPU time consumed by the calling thread — the busy-time measure used in
/// threaded mode, immune to preemption by the other simulated machines
/// sharing the host's cores.
double ThreadCpuSeconds() {
  timespec ts{};
  // spcube-lint: allow(no-host-time): thread CPU time is the busy-time input
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// MapContext wired to a ShuffleBuffer and the job's partitioner.
class EngineMapContext : public MapContext {
 public:
  EngineMapContext(ShuffleBuffer* buffer, const Partitioner* partitioner,
                   int num_reducers)
      : buffer_(buffer),
        partitioner_(partitioner),
        num_reducers_(num_reducers) {}

  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_[name] += delta;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  std::map<std::string, int64_t> TakeCounters() { return std::move(counters_); }

  Status Emit(std::string_view key, std::string_view value) override {
    const int partition = partitioner_->Partition(key, num_reducers_);
    if (partition < 0 || partition >= num_reducers_) {
      return Status::Internal("partitioner returned out-of-range partition " +
                              std::to_string(partition));
    }
    return buffer_->Add(partition, key, value);
  }

  Status EmitToPartition(int partition, std::string_view key,
                         std::string_view value) override {
    if (partition < 0 || partition >= num_reducers_) {
      return Status::InvalidArgument("bad explicit partition " +
                                     std::to_string(partition));
    }
    return buffer_->Add(partition, key, value);
  }

 private:
  ShuffleBuffer* buffer_;
  const Partitioner* partitioner_;
  int num_reducers_;
  std::map<std::string, int64_t> counters_;
};

/// Adapts a GroupedRecordStream's current group to the Reducer-facing
/// ValueStream.
class GroupValueStream : public ValueStream {
 public:
  explicit GroupValueStream(GroupedRecordStream* stream) : stream_(stream) {}

  Result<bool> Next(std::string* value) override {
    return stream_->NextValue(value);
  }

 private:
  GroupedRecordStream* stream_;
};

/// Buffers a reduce attempt's output and publishes it only on success, so
/// failed attempts (which are retried from scratch) leave no trace in the
/// job output — the commit protocol of a real MapReduce runtime.
class EngineReduceContext : public ReduceContext {
 public:
  Status Output(std::string_view key, std::string_view value) override {
    // spcube-lint: allow(no-owning-copy-in-hot-path): attempt-private commit buffer must own its bytes past the reducer's scratch lifetime
    pending_.push_back(Record{std::string(key), std::string(value)});
    return Status::OK();
  }

  void IncrementCounter(const std::string& name, int64_t delta) override {
    counters_[name] += delta;
  }

  const std::map<std::string, int64_t>& counters() const { return counters_; }

  Status Commit(OutputCollector* collector, int reducer_id,
                int64_t* output_records) {
    *output_records += static_cast<int64_t>(pending_.size());
    if (collector != nullptr) {
      for (const Record& record : pending_) {
        SPCUBE_RETURN_IF_ERROR(
            collector->Collect(reducer_id, record.key, record.value));
      }
    }
    pending_.clear();
    return Status::OK();
  }

 private:
  std::vector<Record> pending_;
  std::map<std::string, int64_t> counters_;
};

/// Everything one map task produced, isolated so that worker-crash recovery
/// can discard and replace a task's contribution wholesale (output, shuffle
/// counters and user counters all come from exactly one successful attempt).
struct MapTaskState {
  std::unique_ptr<ShuffleBuffer> buffer;
  ShuffleCounters shuffle_counters;
  std::map<std::string, int64_t> custom_counters;
  double busy_seconds = 0.0;     // measured across all attempts
  double penalty_seconds = 0.0;  // modeled retry backoff
  double slowdown_factor = 1.0;  // >1: injected straggler
  int64_t retries = 0;           // failed attempts that were retried
  Status status;
};

/// Timing record of one reduce task; charged to its machine after the phase
/// joins so speculative copies never race across machine threads.
struct ReduceTaskState {
  double busy_seconds = 0.0;
  double penalty_seconds = 0.0;
  double slowdown_factor = 1.0;
  int64_t retries = 0;
};

}  // namespace

Engine::Engine(EngineConfig config, DistributedFileSystem* dfs)
    : config_(config), dfs_(dfs), temp_files_("engine") {
  SPCUBE_CHECK(config_.num_workers >= 1);
  SPCUBE_CHECK(config_.memory_budget_bytes > 0);
  if (config_.fault_plan != nullptr && dfs_ != nullptr) {
    dfs_->SetFaultInjector(config_.fault_plan);
  }
}

Result<JobMetrics> Engine::Run(const JobSpec& spec, const Relation& input,
                               OutputCollector* collector) {
  return RunImpl(
      spec, input.num_rows(),
      [&input](Mapper* mapper, int64_t begin, int64_t end, int64_t row,
               MapContext& context) {
        // The split is a borrowed view over [begin, end): constructing it is
        // three words, and the mapper addresses rows relative to its split —
        // no tuple data is copied per task (asserted by tests/engine_test.cc).
        return mapper->Map(RelationView(input, begin, end), row - begin,
                           context);
      },
      collector);
}

Result<JobMetrics> Engine::RunRecords(const JobSpec& spec,
                                      const std::vector<Record>& input,
                                      OutputCollector* collector) {
  return RunImpl(
      spec, static_cast<int64_t>(input.size()),
      [&input](Mapper* mapper, int64_t /*begin*/, int64_t /*end*/,
               int64_t row, MapContext& context) {
        return mapper->MapRecord(input[static_cast<size_t>(row)], context);
      },
      collector);
}

Result<JobMetrics> Engine::RunImpl(
    const JobSpec& spec, int64_t num_input_rows,
    const std::function<Status(Mapper*, int64_t begin, int64_t end,
                               int64_t row, MapContext&)>& map_row,
    OutputCollector* collector) {
  if (!spec.mapper_factory || !spec.reducer_factory) {
    return Status::InvalidArgument("job needs mapper and reducer factories");
  }
  const int num_workers = config_.num_workers;
  const int num_reducers =
      spec.num_reducers > 0 ? spec.num_reducers : num_workers;

  static const HashPartitioner kDefaultPartitioner;
  const Partitioner* partitioner =
      spec.partitioner != nullptr ? spec.partitioner.get()
                                  : &kDefaultPartitioner;

  FaultPlan* plan = config_.fault_plan;
  const int64_t job_id = plan != nullptr ? plan->BeginJob(spec.name) : 0;
  const int max_attempts =
      std::max({1, spec.max_task_attempts, config_.min_task_attempts});

  JobMetrics metrics;
  metrics.job_name = spec.name;
  metrics.map_phase.EnsureWorkers(num_workers);
  metrics.reduce_phase.EnsureWorkers(num_workers);
  metrics.reducer_input_records.assign(static_cast<size_t>(num_reducers), 0);
  metrics.reducer_input_bytes.assign(static_cast<size_t>(num_reducers), 0);
  metrics.reducer_output_records.assign(static_cast<size_t>(num_reducers), 0);
  metrics.round_overhead_seconds = config_.round_overhead_seconds;
  metrics.map_input_records = num_input_rows;

  // Custom-counter totals may be merged from several task threads.
  std::mutex counters_mutex;
  auto merge_counters = [&](const std::map<std::string, int64_t>& deltas) {
    if (deltas.empty()) return;
    std::lock_guard<std::mutex> lock(counters_mutex);
    for (const auto& [name, delta] : deltas) {
      metrics.custom_counters[name] += delta;
    }
  };

  // ---- Map phase ----------------------------------------------------------
  const int64_t n = num_input_rows;
  std::vector<MapTaskState> map_tasks(static_cast<size_t>(num_workers));

  // Runs map task `w` to completion (with retries). `attempt_base` offsets
  // the fault plan's attempt coordinate so a crash re-execution draws fresh
  // — but reproducible — luck instead of replaying its original faults.
  auto run_map_task = [&](int w, int attempt_base) -> MapTaskState {
    MapTaskState state;
    const int64_t begin = n * w / num_workers;
    const int64_t end = n * (w + 1) / num_workers;

    // spcube-lint: allow(no-host-time): map-task busy-time measurement
    const auto start = std::chrono::steady_clock::now();
    const double cpu_start = ThreadCpuSeconds();
    Status last_error = Status::OK();
    bool succeeded = false;
    for (int attempt = 0; attempt < max_attempts && !succeeded; ++attempt) {
      TaskFault fault;
      if (plan != nullptr) {
        fault = plan->PlanTaskAttempt(job_id, TaskKind::kMap, w,
                                      attempt_base + attempt);
      }
      // The plan models transient faults, so the final attempt is spared
      // injected failures (a real cluster's node blacklisting converges the
      // same way); genuine errors can still fail it.
      const bool inject_failure = fault.fail && attempt + 1 < max_attempts;
      if (fault.slowdown_factor > state.slowdown_factor) {
        state.slowdown_factor = fault.slowdown_factor;
      }

      // Fresh task state per attempt; a failed attempt's partial shuffle
      // output and counters are discarded wholesale.
      ShuffleCounters attempt_counters;
      auto buffer = std::make_unique<ShuffleBuffer>(
          num_reducers, config_.memory_budget_bytes, spec.combiner.get(),
          &temp_files_, &attempt_counters);
      // Logical run identity for fault injection: independent of host temp
      // paths, so a fixed seed replays the same corruptions.
      buffer->SetSpillResourcePrefix(
          "run/j" + std::to_string(job_id) + "/m" + std::to_string(w) +
          "/a" + std::to_string(attempt_base + attempt));
      EngineMapContext map_context(buffer.get(), partitioner, num_reducers);

      std::unique_ptr<Mapper> mapper = spec.mapper_factory();
      if (mapper == nullptr) {
        state.status = Status::Internal("mapper factory failed");
        return state;
      }
      TaskContext task{w, num_workers, num_reducers, /*reduce_partition=*/-1,
                       config_.memory_budget_bytes, dfs_};
      auto run_attempt = [&]() -> Status {
        SPCUBE_RETURN_IF_ERROR(mapper->Setup(task));
        int64_t items = 0;
        for (int64_t row = begin; row < end; ++row) {
          SPCUBE_RETURN_IF_ERROR(
              map_row(mapper.get(), begin, end, row, map_context));
          ++items;
          if (inject_failure && items >= fault.fail_after_items) {
            return Status::IoError("injected map task failure");
          }
        }
        if (inject_failure) {
          return Status::IoError("injected map task failure (at finish)");
        }
        SPCUBE_RETURN_IF_ERROR(mapper->Finish(map_context));
        return buffer->FinalizeMapOutput();
      };
      last_error = run_attempt();
      if (last_error.ok()) {
        succeeded = true;
        state.shuffle_counters = attempt_counters;
        state.custom_counters = map_context.TakeCounters();
        state.buffer = std::move(buffer);
      } else if (attempt + 1 < max_attempts) {
        ++state.retries;
        state.penalty_seconds +=
            config_.retry_backoff_seconds * (attempt + 1);
      }
      // A failed attempt's `buffer` dies here; its destructor reclaims any
      // spill files the attempt wrote.
    }
    state.busy_seconds = config_.use_threads
                             ? ThreadCpuSeconds() - cpu_start
                             : SecondsSince(start);
    if (!succeeded) {
      state.status =
          Status(last_error.code(),
                 "map task " + std::to_string(w) + " of job '" + spec.name +
                     "' failed after " + std::to_string(max_attempts) +
                     " attempt(s): " + last_error.message());
    }
    return state;
  };

  if (config_.use_threads) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      threads.emplace_back([&, w]() {
        map_tasks[static_cast<size_t>(w)] = run_map_task(w, 0);
      });
    }
    for (std::thread& thread : threads) thread.join();
  } else {
    for (int w = 0; w < num_workers; ++w) {
      map_tasks[static_cast<size_t>(w)] = run_map_task(w, 0);
    }
  }
  for (const MapTaskState& task : map_tasks) {
    SPCUBE_RETURN_IF_ERROR(task.status);
  }

  // ---- Worker crashes & charging ------------------------------------------
  // Crashes strike after the map phase: the machine's completed map outputs
  // are gone with its local disks (Hadoop re-executes those map tasks), and
  // the machine takes no reduce work.
  std::vector<bool> alive(static_cast<size_t>(num_workers), true);
  std::vector<int> crashed;
  if (plan != nullptr && num_workers > 1) {
    crashed = plan->CrashedWorkers(job_id, num_workers);
    for (int w : crashed) alive[static_cast<size_t>(w)] = false;
    metrics.workers_crashed = static_cast<int64_t>(crashed.size());
  }
  const auto next_alive = [&](int from) {
    for (int i = 1; i < num_workers; ++i) {
      const int c = (from + i) % num_workers;
      if (alive[static_cast<size_t>(c)]) return c;
    }
    return -1;
  };

  // Charge the original map tasks: stragglers run `slowdown_factor` slow;
  // with speculative execution the slot pays at most 2x measured (the slow
  // copy is killed when the backup finishes) and the backup's measured time
  // lands on the next machine. Crashed machines still pay for their
  // original tasks — the work happened before the crash.
  std::vector<double> map_seconds(static_cast<size_t>(num_workers), 0.0);
  for (int w = 0; w < num_workers; ++w) {
    MapTaskState& task = map_tasks[static_cast<size_t>(w)];
    const double base = task.busy_seconds;
    double charged = base * task.slowdown_factor;
    if (task.slowdown_factor > 1.0 && config_.speculative_execution &&
        num_workers > 1) {
      const int backup = (w + 1) % num_workers;
      charged = std::min(charged, 2.0 * base);
      map_seconds[static_cast<size_t>(backup)] += base;
      ++metrics.tasks_speculatively_reexecuted;
      metrics.fault_recovery_seconds += base;
    }
    map_seconds[static_cast<size_t>(w)] += charged + task.penalty_seconds;
    metrics.fault_recovery_seconds += task.penalty_seconds;
    metrics.task_retries += task.retries;
  }

  // Re-execute the crashed machines' map tasks on the least-loaded
  // survivors; their results replace the lost ones wholesale so no counter
  // is double-counted.
  for (int w : crashed) {
    map_tasks[static_cast<size_t>(w)].buffer.reset();  // lost with the disk
    MapTaskState redo = run_map_task(w, max_attempts);
    SPCUBE_RETURN_IF_ERROR(redo.status);
    int host = -1;
    for (int h = 0; h < num_workers; ++h) {
      if (!alive[static_cast<size_t>(h)]) continue;
      if (host < 0 || map_seconds[static_cast<size_t>(h)] <
                          map_seconds[static_cast<size_t>(host)]) {
        host = h;
      }
    }
    SPCUBE_CHECK(host >= 0) << "no surviving worker to re-execute on";
    const double charged = redo.busy_seconds * redo.slowdown_factor +
                           redo.penalty_seconds +
                           config_.retry_backoff_seconds;
    map_seconds[static_cast<size_t>(host)] += charged;
    metrics.fault_recovery_seconds += charged;
    metrics.task_retries += redo.retries;
    ++metrics.tasks_reexecuted_after_crash;
    map_tasks[static_cast<size_t>(w)] = std::move(redo);
  }
  for (int w = 0; w < num_workers; ++w) {
    metrics.map_phase.per_worker_seconds[static_cast<size_t>(w)] =
        map_seconds[static_cast<size_t>(w)];
  }

  for (MapTaskState& task : map_tasks) {
    const ShuffleCounters& c = task.shuffle_counters;
    metrics.map_output_records += c.map_output_records;
    metrics.map_output_bytes += c.map_output_bytes;
    metrics.combine_input_records += c.combine_input_records;
    metrics.combine_output_records += c.combine_output_records;
    metrics.shuffle_checksum_mismatches += c.checksum_mismatches;
    merge_counters(task.custom_counters);
    if (task.buffer == nullptr) {
      // Defensive: unfinished tasks cannot reach this point.
      task.buffer = std::make_unique<ShuffleBuffer>(
          num_reducers, config_.memory_budget_bytes, spec.combiner.get(),
          &temp_files_, &task.shuffle_counters);
    }
  }

  // ---- Shuffle: assemble per-reducer inputs -------------------------------
  std::vector<ReduceInput> reduce_inputs(static_cast<size_t>(num_reducers));
  for (int p = 0; p < num_reducers; ++p) {
    ReduceInput& in = reduce_inputs[static_cast<size_t>(p)];
    for (int w = 0; w < num_workers; ++w) {
      ShuffleBuffer& buffer = *map_tasks[static_cast<size_t>(w)].buffer;
      // Zero-copy hand-off: the segment keeps the map task's arena alive;
      // no Record materialization between map output and reduce input.
      ShuffleSegment segment = buffer.TakeMemorySegment(p);
      in.total_bytes += segment.payload_bytes();
      in.total_records += segment.num_records();
      if (!segment.empty()) {
        in.memory_segments.push_back(std::move(segment));
      }
      std::vector<RunInfo> runs = buffer.TakeSpillRuns(p);
      for (RunInfo& run : runs) {
        in.total_bytes += run.payload_bytes;
        in.total_records += run.records;
        in.spill_runs.push_back(std::move(run));
      }
    }
    metrics.reducer_input_records[static_cast<size_t>(p)] = in.total_records;
    metrics.reducer_input_bytes[static_cast<size_t>(p)] = in.total_bytes;
    metrics.shuffle_records += in.total_records;
    metrics.shuffle_bytes += in.total_bytes;
  }

  metrics.shuffle_seconds =
      config_.network_bandwidth_bytes_per_sec > 0
          ? static_cast<double>(metrics.MaxReducerInputBytes()) /
                config_.network_bandwidth_bytes_per_sec
          : 0.0;

  // ---- Reduce phase --------------------------------------------------------
  // Assign reduce tasks to the surviving machines with a
  // longest-processing-time greedy over their (known) input sizes, as a
  // locality-free scheduler would: largest partitions first, each to the
  // currently least-loaded machine.
  std::vector<int> alive_machines;
  for (int w = 0; w < num_workers; ++w) {
    if (alive[static_cast<size_t>(w)]) alive_machines.push_back(w);
  }
  SPCUBE_CHECK(!alive_machines.empty());
  std::vector<int> machine_of(static_cast<size_t>(num_reducers), 0);
  {
    std::vector<int> by_size(static_cast<size_t>(num_reducers));
    for (int p = 0; p < num_reducers; ++p) by_size[static_cast<size_t>(p)] = p;
    std::sort(by_size.begin(), by_size.end(), [&metrics](int a, int b) {
      return metrics.reducer_input_bytes[static_cast<size_t>(a)] >
             metrics.reducer_input_bytes[static_cast<size_t>(b)];
    });
    std::vector<int64_t> machine_load(static_cast<size_t>(num_workers), 0);
    for (int p : by_size) {
      int best = alive_machines.front();
      for (int w : alive_machines) {
        if (machine_load[static_cast<size_t>(w)] <
            machine_load[static_cast<size_t>(best)]) {
          best = w;
        }
      }
      machine_of[static_cast<size_t>(p)] = best;
      machine_load[static_cast<size_t>(best)] +=
          metrics.reducer_input_bytes[static_cast<size_t>(p)];
    }
  }

  // Reduce-side spill/fetch accounting, one slot per machine so machine
  // threads never share a counter.
  std::vector<ShuffleCounters> reduce_counters(
      static_cast<size_t>(num_workers));
  std::vector<ReduceTaskState> reduce_tasks(
      static_cast<size_t>(num_reducers));

  auto run_reduce_partition = [&](int p) -> Status {
    const int machine = machine_of[static_cast<size_t>(p)];
    ReduceTaskState& state = reduce_tasks[static_cast<size_t>(p)];
    // spcube-lint: allow(no-host-time): reduce-task busy-time measurement
    const auto start = std::chrono::steady_clock::now();
    const double cpu_start = ThreadCpuSeconds();

    // Keep run paths for cleanup: MakeGroupedStream consumes the input.
    std::vector<std::string> run_paths;
    for (const RunInfo& run :
         reduce_inputs[static_cast<size_t>(p)].spill_runs) {
      run_paths.push_back(run.path);
    }

    Status last_error = Status::OK();
    bool succeeded = false;
    for (int attempt = 0; attempt < max_attempts && !succeeded; ++attempt) {
      TaskFault fault;
      if (plan != nullptr) {
        fault = plan->PlanTaskAttempt(job_id, TaskKind::kReduce, p, attempt);
      }
      const bool inject_failure = fault.fail && attempt + 1 < max_attempts;
      if (fault.slowdown_factor > state.slowdown_factor) {
        state.slowdown_factor = fault.slowdown_factor;
      }

      // With retries enabled, later attempts need the input again, so the
      // in-memory part is copied; spill-run files survive attempts.
      ReduceInput attempt_input;
      if (attempt + 1 < max_attempts) {
        attempt_input = reduce_inputs[static_cast<size_t>(p)];
      } else {
        attempt_input = std::move(reduce_inputs[static_cast<size_t>(p)]);
      }

      auto run_attempt = [&]() -> Status {
        auto stream_result = MakeGroupedStream(
            std::move(attempt_input), config_.memory_budget_bytes,
            spec.memory_policy, &temp_files_,
            &reduce_counters[static_cast<size_t>(machine)], plan,
            "run/j" + std::to_string(job_id) + "/red" + std::to_string(p) +
                "/a" + std::to_string(attempt));
        if (!stream_result.ok()) return stream_result.status();
        std::unique_ptr<GroupedRecordStream> stream =
            std::move(stream_result).value();

        std::unique_ptr<Reducer> reducer = spec.reducer_factory();
        if (reducer == nullptr) {
          return Status::Internal("reducer factory failed");
        }
        TaskContext task{machine, num_workers, num_reducers,
                         /*reduce_partition=*/p, config_.memory_budget_bytes,
                         dfs_};
        SPCUBE_RETURN_IF_ERROR(reducer->Setup(task));

        EngineReduceContext reduce_context;
        std::string key;
        int64_t groups = 0;
        for (;;) {
          SPCUBE_ASSIGN_OR_RETURN(bool more, stream->NextGroup(&key));
          if (!more) break;
          GroupValueStream values(stream.get());
          SPCUBE_RETURN_IF_ERROR(
              reducer->Reduce(key, values, reduce_context));
          ++groups;
          if (inject_failure && groups >= fault.fail_after_items) {
            return Status::IoError("injected reduce task failure");
          }
        }
        if (inject_failure) {
          return Status::IoError("injected reduce task failure (at finish)");
        }
        SPCUBE_RETURN_IF_ERROR(reducer->Finish(reduce_context));
        SPCUBE_RETURN_IF_ERROR(reduce_context.Commit(
            collector, p,
            &metrics.reducer_output_records[static_cast<size_t>(p)]));
        merge_counters(reduce_context.counters());
        return Status::OK();
      };
      last_error = run_attempt();
      if (last_error.ok()) {
        succeeded = true;
      } else if (last_error.IsResourceExhausted()) {
        break;  // kStrict OOM: re-running cannot shrink the input.
      } else if (attempt + 1 < max_attempts) {
        ++state.retries;
        state.penalty_seconds += config_.retry_backoff_seconds * (attempt + 1);
      }
    }
    state.busy_seconds = config_.use_threads
                             ? ThreadCpuSeconds() - cpu_start
                             : SecondsSince(start);
    if (!succeeded) {
      return Status(last_error.code(),
                    "reduce task " + std::to_string(p) + " of job '" +
                        spec.name + "': " + last_error.message());
    }
    for (const std::string& path : run_paths) RemoveFileIfExists(path);
    return Status::OK();
  };

  if (config_.use_threads) {
    // One thread per machine; each runs its assigned partitions in order.
    std::vector<Status> machine_status(static_cast<size_t>(num_workers));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_workers));
    for (int machine = 0; machine < num_workers; ++machine) {
      threads.emplace_back([&, machine]() {
        for (int p = 0; p < num_reducers; ++p) {
          if (machine_of[static_cast<size_t>(p)] != machine) continue;
          Status status = run_reduce_partition(p);
          if (!status.ok()) {
            machine_status[static_cast<size_t>(machine)] = status;
            return;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const Status& status : machine_status) {
      SPCUBE_RETURN_IF_ERROR(status);
    }
  } else {
    for (int p = 0; p < num_reducers; ++p) {
      SPCUBE_RETURN_IF_ERROR(run_reduce_partition(p));
    }
  }

  // Charge the reduce tasks to their machines (after the join, so straggler
  // speculation can deterministically bill a second machine).
  for (int p = 0; p < num_reducers; ++p) {
    const int machine = machine_of[static_cast<size_t>(p)];
    const ReduceTaskState& state = reduce_tasks[static_cast<size_t>(p)];
    const double base = state.busy_seconds;
    double charged = base * state.slowdown_factor;
    const int backup = next_alive(machine);
    if (state.slowdown_factor > 1.0 && config_.speculative_execution &&
        backup >= 0) {
      charged = std::min(charged, 2.0 * base);
      metrics.reduce_phase.Accumulate(backup, base);
      ++metrics.tasks_speculatively_reexecuted;
      metrics.fault_recovery_seconds += base;
    }
    metrics.reduce_phase.Accumulate(machine,
                                    charged + state.penalty_seconds);
    metrics.fault_recovery_seconds += state.penalty_seconds;
    metrics.task_retries += state.retries;
  }

  // Spill bytes and fetch mismatches from reduce-side merging were
  // accumulated into the per-machine counters; fold them in with the
  // map-side spills.
  int64_t total_spill = 0;
  for (const MapTaskState& task : map_tasks) {
    total_spill += task.shuffle_counters.spill_bytes;
  }
  for (const ShuffleCounters& c : reduce_counters) {
    total_spill += c.spill_bytes;
    metrics.shuffle_checksum_mismatches += c.checksum_mismatches;
  }
  metrics.spill_bytes = total_spill;

  for (int64_t out : metrics.reducer_output_records) {
    metrics.output_records += out;
  }
  return metrics;
}

}  // namespace spcube
