#include "common/task_pool.h"

// spcube-lint: allow-file(no-raw-thread-outside-pool): this file IS the pool

#include <algorithm>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/random.h"

namespace spcube {
namespace {

/// Identity of the pool worker running on this thread, so a task can tell
/// `RunNested` which deque to push its sub-batch onto. Null/-1 off-pool.
thread_local TaskPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

}  // namespace

TaskPool::TaskPool(int num_threads, uint64_t seed)
    : num_threads_(std::max(1, num_threads)),
      queues_(static_cast<size_t>(num_threads_)),
      victims_(static_cast<size_t>(num_threads_)) {
  // Each worker's victim order is a Fisher-Yates permutation of the other
  // workers, drawn from a forked child of the pool seed: policy is a pure
  // function of (seed, num_threads), independent of host entropy.
  Rng pool_rng(seed);
  for (int w = 0; w < num_threads_; ++w) {
    Rng worker_rng = pool_rng.Fork();
    std::vector<int>& order = victims_[static_cast<size_t>(w)];
    order.reserve(static_cast<size_t>(num_threads_ - 1));
    for (int v = 0; v < num_threads_; ++v) {
      if (v != w) order.push_back(v);
    }
    for (size_t i = order.size(); i > 1; --i) {
      const size_t j =
          static_cast<size_t>(worker_rng.NextBounded(static_cast<uint64_t>(i)));
      std::swap(order[i - 1], order[j]);
    }
  }
}

int TaskPool::HostThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool TaskPool::PopOwn(int worker, QueuedTask* out) {
  WorkerQueue& q = queues_[static_cast<size_t>(worker)];
  MutexLock lock(&q.mu);
  if (q.tasks.empty()) return false;
  *out = std::move(q.tasks.front());
  q.tasks.pop_front();
  return true;
}

bool TaskPool::Steal(int worker, QueuedTask* out) {
  for (int victim : victims_[static_cast<size_t>(worker)]) {
    WorkerQueue& q = queues_[static_cast<size_t>(victim)];
    MutexLock lock(&q.mu);
    if (q.tasks.empty()) continue;
    *out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
  }
  return false;
}

void TaskPool::HelpUntil(int worker, std::atomic<int64_t>* remaining) {
  while (remaining->load(std::memory_order_acquire) > 0) {
    QueuedTask task;
    if (PopOwn(worker, &task) || Steal(worker, &task)) {
      // Execute outside any queue lock; the task may itself call RunNested.
      *task.slot = task.fn();
      // Release edge: the slot write above happens-before any thread that
      // acquire-loads this counter at zero.
      task.remaining->fetch_sub(1, std::memory_order_acq_rel);
    } else {
      std::this_thread::yield();
    }
  }
}

void TaskPool::WorkerLoop(int worker, std::atomic<int64_t>* remaining) {
  tls_pool = this;
  tls_worker = worker;
  HelpUntil(worker, remaining);
  tls_pool = nullptr;
  tls_worker = -1;
}

std::vector<Status> TaskPool::Run(std::vector<std::function<Status()>> tasks) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  std::vector<Status> statuses(static_cast<size_t>(n));
  if (n == 0) return statuses;
  if (tls_pool == this) {
    // Re-entrant use from one of our own tasks: fork-join, never a second
    // thread complement.
    return RunNested(std::move(tasks));
  }
  if (num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      statuses[static_cast<size_t>(i)] = tasks[static_cast<size_t>(i)]();
    }
    return statuses;
  }

  std::atomic<int64_t> remaining(n);
  for (int64_t i = 0; i < n; ++i) {
    const size_t q = static_cast<size_t>(i % num_threads_);
    MutexLock lock(&queues_[q].mu);
    queues_[q].tasks.push_back(QueuedTask{std::move(tasks[static_cast<size_t>(i)]),
                                          &statuses[static_cast<size_t>(i)],
                                          &remaining});
  }

  const int spawned = static_cast<int>(std::min<int64_t>(num_threads_, n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(spawned));
  for (int w = 0; w < spawned; ++w) {
    // Explicit init-captures (thread-capture-escape rule): the pool and the
    // batch counter are the only state crossing the thread boundary; result
    // slots are reached only through the queued tasks.
    threads.emplace_back([w, pool = this, batch_remaining = &remaining]() {
      pool->WorkerLoop(w, batch_remaining);
    });
  }
  for (std::thread& thread : threads) thread.join();
  SPCUBE_CHECK(remaining.load(std::memory_order_acquire) == 0)
      << "task pool batch ended with unexecuted tasks";
  return statuses;
}

std::vector<Status> TaskPool::RunNested(
    std::vector<std::function<Status()>> tasks) {
  const int64_t n = static_cast<int64_t>(tasks.size());
  std::vector<Status> statuses(static_cast<size_t>(n));
  if (n == 0) return statuses;
  const int worker = tls_pool == this ? tls_worker : -1;
  if (worker < 0 || num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) {
      statuses[static_cast<size_t>(i)] = tasks[static_cast<size_t>(i)]();
    }
    return statuses;
  }

  std::atomic<int64_t> remaining(n);
  {
    WorkerQueue& q = queues_[static_cast<size_t>(worker)];
    MutexLock lock(&q.mu);
    // Front-pushed in reverse, so the owner pops its sub-tasks in index
    // order while thieves take from the back.
    for (int64_t i = n - 1; i >= 0; --i) {
      q.tasks.push_front(QueuedTask{std::move(tasks[static_cast<size_t>(i)]),
                                    &statuses[static_cast<size_t>(i)],
                                    &remaining});
    }
  }
  HelpUntil(worker, &remaining);
  return statuses;
}

}  // namespace spcube
