#include "common/block_codec.h"

#include <cstring>
#include <vector>

#include "common/bytes.h"

namespace spcube {
namespace {

constexpr uint8_t kMethodStored = 0;
constexpr uint8_t kMethodLz = 1;

/// Hash-table size for the 4-byte match index (power of two). 1 << 14 slots
/// keeps the table in cache while still finding the long repeats that
/// dominate cube blobs (tuple streams, part files).
constexpr size_t kHashBits = 14;
constexpr size_t kHashSlots = size_t{1} << kHashBits;

/// Longest backward distance a match may reference. Bounded so distances
/// stay small varints; 1 MiB windows cover the repeats in DFS blobs, which
/// are written whole.
constexpr size_t kMaxDistance = size_t{1} << 20;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Fibonacci-hash of a 4-byte window into the match table.
inline size_t Hash4(uint32_t v) {
  return static_cast<size_t>((v * 2654435761u) >> (32 - kHashBits));
}

}  // namespace

void BlockCodec::Compress(std::string_view input, std::string* out) {
  out->clear();
  const size_t n = input.size();

  ByteWriter body;
  if (n >= kMinMatch) {
    // Greedy LZ parse: one candidate per hash slot, refreshed as the cursor
    // advances. Deterministic — the table starts empty and every probe is a
    // pure function of the input prefix.
    std::vector<int64_t> table(kHashSlots, -1);
    const char* base = input.data();
    size_t pos = 0;
    size_t literal_start = 0;
    const size_t last_match_start = n - kMinMatch;
    while (pos <= last_match_start) {
      const uint32_t window = Load32(base + pos);
      const size_t slot = Hash4(window);
      const int64_t candidate = table[slot];
      table[slot] = static_cast<int64_t>(pos);
      if (candidate >= 0 &&
          pos - static_cast<size_t>(candidate) <= kMaxDistance &&
          Load32(base + candidate) == window) {
        // Extend the match forward as far as the input allows.
        size_t len = kMinMatch;
        const size_t cand = static_cast<size_t>(candidate);
        while (pos + len < n && base[cand + len] == base[pos + len]) ++len;
        // Segment: pending literals, then the match.
        body.PutVarint(pos - literal_start);
        if (pos > literal_start) {
          body.PutRawBytes(input.substr(literal_start, pos - literal_start));
        }
        body.PutVarint(len);
        body.PutVarint(pos - cand);
        // Index a couple of positions inside the match so the next repeat
        // is still discoverable without hashing every byte (speed/ratio
        // balance, still fully deterministic).
        if (pos + len <= last_match_start) {
          const size_t mid = pos + (len >> 1);
          if (mid <= last_match_start) {
            table[Hash4(Load32(base + mid))] = static_cast<int64_t>(mid);
          }
        }
        pos += len;
        literal_start = pos;
      } else {
        ++pos;
      }
    }
    // Trailing literals + terminator segment (match_len 0, no distance).
    body.PutVarint(n - literal_start);
    if (n > literal_start) {
      body.PutRawBytes(input.substr(literal_start));
    }
    body.PutVarint(0);
  }

  ByteWriter header;
  const bool use_lz = n >= kMinMatch && body.size() < n;
  header.PutU8(use_lz ? kMethodLz : kMethodStored);
  header.PutVarint(n);
  out->reserve(header.size() + (use_lz ? body.size() : n));
  out->append(header.data());
  if (use_lz) {
    out->append(body.data());
  } else {
    out->append(input);
  }
}

Status BlockCodec::Decompress(std::string_view block, std::string* out) {
  out->clear();
  ByteReader reader(block);
  uint8_t method = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetU8(&method));
  uint64_t raw_size = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&raw_size));

  if (method == kMethodStored) {
    if (reader.remaining() != raw_size) {
      return Status::Corruption("stored block size mismatch");
    }
    out->assign(block.substr(reader.position()));
    return Status::OK();
  }
  if (method != kMethodLz) {
    return Status::Corruption("unknown block codec method " +
                              std::to_string(method));
  }

  out->reserve(raw_size);
  for (;;) {
    uint64_t literal_len = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&literal_len));
    if (literal_len > reader.remaining()) {
      return Status::Corruption("block literal run overflows input");
    }
    if (out->size() + literal_len > raw_size) {
      return Status::Corruption("block literal run overflows declared size");
    }
    out->append(block.substr(reader.position(), literal_len));
    SPCUBE_RETURN_IF_ERROR(reader.Skip(literal_len));

    uint64_t match_len = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&match_len));
    if (match_len == 0) break;  // terminator segment
    if (match_len < kMinMatch) {
      return Status::Corruption("block match shorter than minimum");
    }
    uint64_t distance = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&distance));
    if (distance == 0 || distance > out->size()) {
      return Status::Corruption("block match distance out of range");
    }
    if (out->size() + match_len > raw_size) {
      return Status::Corruption("block match overflows declared size");
    }
    // Byte-at-a-time copy: overlapping matches (distance < match_len) must
    // replicate already-copied bytes, RLE-style.
    size_t from = out->size() - static_cast<size_t>(distance);
    for (uint64_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[from + static_cast<size_t>(i)]);
    }
  }
  if (out->size() != raw_size) {
    return Status::Corruption("block decoded to " +
                              std::to_string(out->size()) + " bytes, header "
                              "declared " + std::to_string(raw_size));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after block body");
  }
  return Status::OK();
}

Result<int64_t> BlockCodec::DecodedSize(std::string_view block) {
  ByteReader reader(block);
  uint8_t method = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetU8(&method));
  if (method != kMethodStored && method != kMethodLz) {
    return Status::Corruption("unknown block codec method " +
                              std::to_string(method));
  }
  uint64_t raw_size = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&raw_size));
  return static_cast<int64_t>(raw_size);
}

}  // namespace spcube
