#ifndef SPCUBE_COMMON_RANDOM_H_
#define SPCUBE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace spcube {

/// A small, fast, deterministic PRNG (xoshiro256**). All randomness in the
/// library flows through explicitly-seeded instances of this class so that
/// tests and benchmarks are reproducible bit-for-bit.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Derives an independent child generator; used to hand each simulated
  /// worker its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

/// Samples from a Zipf(s) distribution over {0, 1, ..., num_elements-1},
/// where element i has probability proportional to 1/(i+1)^s. Uses a
/// precomputed CDF with binary search: O(num_elements) setup, O(log n) per
/// sample. This matches the generator used for the paper's gen-zipf dataset
/// (1000 elements, exponent 1.1).
class ZipfDistribution {
 public:
  ZipfDistribution(int64_t num_elements, double exponent);

  /// Draws one element index in [0, num_elements).
  int64_t Sample(Rng& rng) const;

  int64_t num_elements() const { return static_cast<int64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_RANDOM_H_
