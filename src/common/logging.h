#ifndef SPCUBE_COMMON_LOGGING_H_
#define SPCUBE_COMMON_LOGGING_H_

#include <sstream>

#include "common/status.h"

namespace spcube {

/// Log severities, lowest to highest. kFatal aborts the process after
/// emitting the message.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum severity that is actually emitted. Defaults to
/// kWarning so library internals stay quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line collector; emits to stderr on destruction and
/// aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace spcube

/// Usage: SPCUBE_LOG(Info) << "n=" << n;  Emits only if the global level
/// admits the severity; Fatal messages abort after emitting.
#define SPCUBE_LOG(level)                                                   \
  if (static_cast<int>(::spcube::LogLevel::k##level) <                      \
      static_cast<int>(::spcube::GetLogLevel())) {                          \
  } else                                                                    \
    ::spcube::internal::LogMessage(::spcube::LogLevel::k##level, __FILE__,  \
                                   __LINE__)

/// Checks an invariant in both debug and release builds; aborts on failure.
#define SPCUBE_CHECK(condition)                                       \
  if (condition) {                                                    \
  } else                                                              \
    ::spcube::internal::LogMessage(::spcube::LogLevel::kFatal,        \
                                   __FILE__, __LINE__)                \
        << "Check failed: " #condition " "

/// Checks that a Status-returning expression succeeded; aborts otherwise.
#define SPCUBE_CHECK_OK(expr)                                         \
  if (::spcube::Status _spcube_check_status = (expr);                 \
      _spcube_check_status.ok()) {                                    \
  } else                                                              \
    ::spcube::internal::LogMessage(::spcube::LogLevel::kFatal,        \
                                   __FILE__, __LINE__)                \
        << "Status not OK: " << _spcube_check_status.ToString() << " "

#define SPCUBE_DCHECK(condition) SPCUBE_CHECK(condition)

#endif  // SPCUBE_COMMON_LOGGING_H_
