#ifndef SPCUBE_COMMON_LIFETIME_H_
#define SPCUBE_COMMON_LIFETIME_H_

// SPCUBE_LIFETIME_CHECKS gates the dynamic half of the zero-copy lifetime
// contracts (docs/INTERNALS.md §10): Arena poisons retained chunks on
// Reset(), and ShuffleSegment / RelationView verify their owner's
// generation/epoch on access, aborting deterministically on a stale borrow.
//
// Layout-affecting state (the generation and epoch counters) and the stamp
// writes are compiled UNCONDITIONALLY so that objects keep one ABI across
// translation units built with different settings; only the checks and the
// poisoning are gated. Defaults to on in debug builds, off under NDEBUG;
// override per target with -DSPCUBE_LIFETIME_CHECKS=0/1 (tests/CMakeLists
// opts lifetime_test in; the SPCUBE_LIFETIME_CHECKS CMake option opts in a
// whole build, as the asan-ubsan preset does).
#ifndef SPCUBE_LIFETIME_CHECKS
#ifdef NDEBUG
#define SPCUBE_LIFETIME_CHECKS 0
#else
#define SPCUBE_LIFETIME_CHECKS 1
#endif
#endif

namespace spcube {

/// Byte written over every retained arena chunk by Arena::Reset() under
/// SPCUBE_LIFETIME_CHECKS, so a read through a stale pointer yields a
/// recognizable pattern instead of the previous cycle's plausible payload.
inline constexpr unsigned char kLifetimePoisonByte = 0xCD;

}  // namespace spcube

#endif  // SPCUBE_COMMON_LIFETIME_H_
