#ifndef SPCUBE_COMMON_ARENA_H_
#define SPCUBE_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "common/lifetime.h"

namespace spcube {

/// Chunked bump allocator for byte payloads. Appended bytes live at stable
/// addresses until Reset(): chunks are never reallocated or freed while the
/// arena is alive, so callers may hold `const char*` / `string_view` into
/// the arena across further appends. Reset() rewinds to empty but keeps the
/// chunks, so a steady-state fill/Reset cycle performs no heap allocations
/// once the high-water mark has been reached.
///
/// Oversized payloads (larger than the chunk size) get a dedicated chunk;
/// small payloads never straddle a chunk boundary, which is what lets
/// AppendPair hand out one contiguous `[a|b]` region.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  Arena(Arena&& other) noexcept { *this = std::move(other); }
  Arena& operator=(Arena&& other) noexcept {
    if (this == &other) return *this;
    chunk_bytes_ = other.chunk_bytes_;
    chunks_ = std::move(other.chunks_);
    active_ = other.active_;
    offset_ = other.offset_;
    bytes_used_ = other.bytes_used_;
    bytes_reserved_ = other.bytes_reserved_;
    // The generation travels with the chunks: addresses handed out by
    // `other` stay valid through `*this`, and `other` (now empty) must fail
    // any stale-generation comparison against them.
    generation_ = other.generation_;
    other.generation_ += 1;
    other.chunks_.clear();
    other.active_ = 0;
    other.offset_ = 0;
    other.bytes_used_ = 0;
    other.bytes_reserved_ = 0;
    return *this;
  }

  /// Copies `bytes` into the arena; returns the stable start address.
  const char* Append(std::string_view bytes) {
    char* dst = Allocate(bytes.size());
    if (!bytes.empty()) std::memcpy(dst, bytes.data(), bytes.size());
    return dst;
  }

  /// Copies `a` immediately followed by `b` into one contiguous region;
  /// returns the stable address of `a` (so `b` starts at result+a.size()).
  const char* AppendPair(std::string_view a, std::string_view b) {
    char* dst = Allocate(a.size() + b.size());
    if (!a.empty()) std::memcpy(dst, a.data(), a.size());
    if (!b.empty()) std::memcpy(dst + a.size(), b.data(), b.size());
    return dst;
  }

  /// Rewinds to empty. Keeps every chunk, so previously reached capacity is
  /// reused allocation-free; all addresses handed out before the Reset are
  /// invalidated (the bytes may be overwritten by later appends). Under
  /// SPCUBE_LIFETIME_CHECKS the retained chunks are poisoned with
  /// kLifetimePoisonByte so a stale read is recognizable instead of
  /// silently returning the previous cycle's bytes.
  void Reset() {
    generation_ += 1;
#if SPCUBE_LIFETIME_CHECKS
    // Chunks past `active_` were never written this cycle (they still hold
    // the previous Reset's poison), so poisoning [0, active_] is complete.
    for (size_t c = 0; c < chunks_.size() && c <= active_; ++c) {
      std::memset(chunks_[c].data.get(), kLifetimePoisonByte,
                  chunks_[c].capacity);
    }
#endif
    active_ = 0;
    offset_ = 0;
    bytes_used_ = 0;
  }

  /// Payload bytes appended since the last Reset.
  int64_t bytes_used() const { return bytes_used_; }

  /// Total chunk capacity held (survives Reset).
  int64_t bytes_reserved() const { return bytes_reserved_; }

  /// Bumped by every Reset() (and for the source of a move): two equal
  /// generations mean addresses taken at the first are still valid at the
  /// second. ShuffleSegment stamps this to catch stale borrows under
  /// SPCUBE_LIFETIME_CHECKS; maintained unconditionally so mixed-TU builds
  /// agree on layout and values.
  uint64_t generation() const { return generation_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  char* Allocate(size_t n) {
    // After a Reset, earlier chunks are revisited in order; one that cannot
    // fit `n` (e.g. it was sized for a smaller oversize payload) is skipped
    // for this cycle rather than resized, keeping every address stable.
    while (active_ < chunks_.size() &&
           chunks_[active_].capacity - offset_ < n) {
      ++active_;
      offset_ = 0;
    }
    if (active_ == chunks_.size()) {
      const size_t cap = n > chunk_bytes_ ? n : chunk_bytes_;
      Chunk chunk;
      chunk.data = std::unique_ptr<char[]>(new char[cap]);
      chunk.capacity = cap;
      bytes_reserved_ += static_cast<int64_t>(cap);
      chunks_.push_back(std::move(chunk));
      offset_ = 0;
    }
    char* out = chunks_[active_].data.get() + offset_;
    offset_ += n;
    bytes_used_ += static_cast<int64_t>(n);
    return out;
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t active_ = 0;   // index of the chunk currently bump-allocating
  size_t offset_ = 0;   // bytes used within the active chunk
  int64_t bytes_used_ = 0;
  int64_t bytes_reserved_ = 0;
  uint64_t generation_ = 0;  // see generation()
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_ARENA_H_
