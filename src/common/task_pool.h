#ifndef SPCUBE_COMMON_TASK_POOL_H_
#define SPCUBE_COMMON_TASK_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace spcube {

/// A seeded work-stealing task pool — the one sanctioned way to put work on
/// real host threads (spcube_lint's `no-raw-thread-outside-pool` rule keeps
/// raw `std::thread` out of everything else under src/).
///
/// Design (docs/INTERNALS.md §12):
///  * One deque per worker, guarded by its own `Mutex`. A worker pops its
///    own deque at the front; a thief steals from the victim's back, so
///    owner and thief rarely contend on the same end.
///  * The steal-victim visiting order of each worker is a permutation drawn
///    once, at construction, from a seeded `spcube::Rng` — never from host
///    entropy — so scheduling policy is a pure function of (seed,
///    num_threads) and reruns probe the same orders.
///  * Determinism contract: scheduling (which host thread runs which task,
///    and when) is *not* deterministic — only the victim policy is. Tasks
///    therefore must write disjoint result slots; `Run` publishes them to
///    the caller via the thread join / the batch counter's release-acquire
///    edge, and returns statuses in task index order. Callers that need
///    ordered side effects stage per-task output and replay it in index
///    order after `Run` returns (see engine.cc's reduce phase).
///  * Nested fork-join: a task may call `RunNested` to fan out sub-tasks.
///    The calling worker pushes them onto its own deque (front, so they are
///    its next pops), then *helps* — executing pending tasks from any deque
///    — until its sub-batch completes. Other workers can steal the
///    sub-tasks, which is what makes unbalanced splits stealable; the help
///    loop is what makes nesting deadlock-free on a fixed-size pool.
///
/// With `num_threads <= 1` (or a single task) everything runs inline on the
/// calling thread in index order: the serial path spawns no threads and is
/// the behavior reference the threaded paths must match bit-for-bit.
///
/// Tasks return `Status`; a failing task never stops the batch (callers own
/// retry/abort policy) and there are no exceptions anywhere — shutdown is a
/// plain join.
class TaskPool {
 public:
  /// `num_threads` host threads (clamped to >= 1); `seed` drives only the
  /// steal-victim permutations.
  TaskPool(int num_threads, uint64_t seed);

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Runs `tasks` to completion and returns their statuses in task index
  /// order. Blocking; threads live only for the duration of the call.
  /// Called from inside one of this pool's tasks it degrades to
  /// `RunNested` (fork-join with helping) instead of spawning threads.
  std::vector<Status> Run(std::vector<std::function<Status()>> tasks);

  /// Fork-join a sub-batch from inside a running task: the calling worker
  /// executes/helps until every sub-task is done. Outside a worker (or on
  /// a serial pool) the sub-tasks run inline in index order.
  std::vector<Status> RunNested(std::vector<std::function<Status()>> tasks);

  int num_threads() const { return num_threads_; }

  /// The seeded order in which `worker` visits steal victims — a
  /// permutation of the other workers. Exposed so tests can pin the
  /// policy's determinism (same seed ⇒ same orders).
  const std::vector<int>& victim_order(int worker) const {
    return victims_[static_cast<size_t>(worker)];
  }

  /// Host hardware concurrency, clamped to >= 1.
  static int HostThreads();

 private:
  /// One unit of queued work: the task body, its result slot (disjoint per
  /// task), and its batch's outstanding-task counter.
  struct QueuedTask {
    std::function<Status()> fn;
    Status* slot = nullptr;
    std::atomic<int64_t>* remaining = nullptr;
  };

  struct WorkerQueue {
    Mutex mu;
    std::deque<QueuedTask> tasks SPCUBE_GUARDED_BY(mu);
  };

  /// Entry point of a spawned worker thread.
  void WorkerLoop(int worker, std::atomic<int64_t>* remaining);

  /// Pop-or-steal-or-yield until `remaining` (some batch's counter, not
  /// necessarily one this worker contributes to) reaches zero.
  void HelpUntil(int worker, std::atomic<int64_t>* remaining);

  bool PopOwn(int worker, QueuedTask* out);
  bool Steal(int worker, QueuedTask* out);

  int num_threads_;
  std::vector<WorkerQueue> queues_;
  std::vector<std::vector<int>> victims_;
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_TASK_POOL_H_
