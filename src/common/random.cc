#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace spcube {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SPCUBE_DCHECK(bound > 0) << "bound must be positive";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SPCUBE_DCHECK(lo <= hi) << "empty range";
  const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  if (span == UINT64_MAX) return static_cast<int64_t>(Next());
  return lo + static_cast<int64_t>(NextBounded(span + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfDistribution::ZipfDistribution(int64_t num_elements, double exponent)
    : exponent_(exponent) {
  SPCUBE_CHECK(num_elements > 0) << "Zipf needs at least one element";
  cdf_.resize(static_cast<size_t>(num_elements));
  double acc = 0.0;
  for (int64_t i = 0; i < num_elements; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[static_cast<size_t>(i)] = acc;
  }
  const double total = acc;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding.
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace spcube
