#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace spcube {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  // spcube-lint: allow(no-stdout-in-lib): abort path must not depend on
  std::fprintf(stderr, "Result<T>::value() called on error: %s\n",
               status.ToString().c_str());  // the logging layer above it
  std::abort();
}

}  // namespace internal
}  // namespace spcube
