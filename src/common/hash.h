#ifndef SPCUBE_COMMON_HASH_H_
#define SPCUBE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spcube {

/// Mixes a 64-bit value (Murmur3 finalizer). Good avalanche behaviour for
/// hash-partitioning keys across reducers.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash state with another value, order-sensitively.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hashes a byte string (FNV-1a 64, then mixed). Used for raw shuffle keys.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Hashes a span of 64-bit values.
inline uint64_t HashSpan(const int64_t* data, size_t count) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (size_t i = 0; i < count; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

}  // namespace spcube

#endif  // SPCUBE_COMMON_HASH_H_
