#ifndef SPCUBE_COMMON_HASH_H_
#define SPCUBE_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spcube {

/// Mixes a 64-bit value (Murmur3 finalizer). Good avalanche behaviour for
/// hash-partitioning keys across reducers.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines a hash state with another value, order-sensitively.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hashes a byte string (FNV-1a 64, then mixed). Used for raw shuffle keys.
inline uint64_t HashBytes(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

namespace internal {

/// Byte-at-a-time table for the Castagnoli CRC (reflected polynomial
/// 0x82F63B78), built at compile time so the header stays dependency-free.
constexpr std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrc32cTable();

}  // namespace internal

/// CRC32C (Castagnoli) of a byte string. Guards spill records, shuffle runs
/// and DFS blobs against corruption in flight or at rest; software
/// table-driven so no platform intrinsics are required.
inline uint32_t Crc32c(std::string_view bytes) {
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : bytes) {
    crc = (crc >> 8) ^ internal::kCrc32cTable[(crc ^ c) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Hashes a span of 64-bit values.
inline uint64_t HashSpan(const int64_t* data, size_t count) {
  uint64_t h = 0x9ae16a3b2f90404fULL;
  for (size_t i = 0; i < count; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

}  // namespace spcube

#endif  // SPCUBE_COMMON_HASH_H_
