#ifndef SPCUBE_COMMON_INLINE_VEC_H_
#define SPCUBE_COMMON_INLINE_VEC_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>

#include "common/logging.h"

namespace spcube {

/// A fixed-capacity vector with fully inline storage: push_back never
/// allocates, so values live wherever the InlineVec itself lives (stack,
/// or inline inside a hash-map node). The cube hot paths use it for
/// per-group attribute values, whose length is bounded by kMaxDims — the
/// whole point is that projecting a tuple onto a cuboid touches the heap
/// zero times (ISSUE: allocation-free GroupKey).
///
/// Deliberately a subset of std::vector's interface: size/operator[]/
/// data/begin/end/push_back/clear plus value comparisons. Exceeding the
/// capacity is a programming error (checked by SPCUBE_DCHECK), not a
/// growth trigger.
template <typename T, int Capacity>
class InlineVec {
 public:
  InlineVec() = default;

  InlineVec(std::initializer_list<T> init) {
    SPCUBE_DCHECK(init.size() <= static_cast<size_t>(Capacity))
        << "InlineVec initializer exceeds capacity " << Capacity;
    for (const T& v : init) data_[size_++] = v;
  }

  static constexpr int capacity() { return Capacity; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() { size_ = 0; }

  void push_back(const T& v) {
    SPCUBE_DCHECK(size_ < static_cast<size_t>(Capacity))
        << "InlineVec overflow beyond capacity " << Capacity;
    data_[size_++] = v;
  }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* data() { return data_; }
  const T* data() const { return data_; }

  T* begin() { return data_; }
  const T* begin() const { return data_; }
  T* end() { return data_ + size_; }
  const T* end() const { return data_ + size_; }

  friend bool operator==(const InlineVec& a, const InlineVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

  /// Lexicographic, mirroring std::vector's operator<.
  friend bool operator<(const InlineVec& a, const InlineVec& b) {
    const size_t n = a.size_ < b.size_ ? a.size_ : b.size_;
    for (size_t i = 0; i < n; ++i) {
      if (a.data_[i] < b.data_[i]) return true;
      if (b.data_[i] < a.data_[i]) return false;
    }
    return a.size_ < b.size_;
  }

 private:
  T data_[Capacity];
  size_t size_ = 0;
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_INLINE_VEC_H_
