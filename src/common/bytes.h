#ifndef SPCUBE_COMMON_BYTES_H_
#define SPCUBE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace spcube {

/// Append-only binary encoder used for shuffle records, spill files and
/// SP-Sketch serialization. All integers are encoded little-endian; varints
/// use LEB128. The writer owns its buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }

  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }

  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v);

  /// Zig-zag + varint for signed values.
  void PutVarintSigned(int64_t v);

  /// Length-prefixed byte string.
  void PutBytes(std::string_view bytes);

  /// Raw bytes with no length prefix, for codecs that frame themselves.
  void PutRawBytes(std::string_view bytes) { PutRaw(bytes.data(), bytes.size()); }

  /// Length-prefixed vector of signed varints.
  void PutI64Vector(const std::vector<int64_t>& values);

  /// Same wire format as PutI64Vector over a borrowed span, so inline-storage
  /// containers (InlineVec) encode bit-identically to std::vector.
  void PutI64Span(const int64_t* values, size_t count);

  const std::string& data() const { return buffer_; }
  std::string TakeData() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  void PutRaw(const void* src, size_t n) {
    const size_t old = buffer_.size();
    buffer_.resize(old + n);
    std::memcpy(buffer_.data() + old, src, n);
  }

  std::string buffer_;
};

/// Sequential decoder over a borrowed byte span. Every accessor reports
/// truncation/corruption through Status rather than crashing, so readers can
/// be driven by untrusted spill-file contents.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetDouble(double* out);
  Status GetVarint(uint64_t* out);
  Status GetVarintSigned(int64_t* out);
  /// Returns a view into the underlying buffer (no copy).
  Status GetBytes(std::string_view* out);

  /// Views `n` un-prefixed bytes at the cursor and advances past them — the
  /// decode counterpart of ByteWriter::PutRawBytes.
  Status GetRawBytes(size_t n, std::string_view* out) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("byte reader truncated");
    }
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }
  Status GetI64Vector(std::vector<int64_t>* out);

  /// Advances past `n` bytes without copying them.
  Status Skip(size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("byte reader truncated");
    }
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  Status GetRaw(void* dst, size_t n);

  // spcube-analyzer: allow(view-escape): ByteReader is a decode cursor; its contract (class comment) is that the caller keeps the buffer alive
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_BYTES_H_
