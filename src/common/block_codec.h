#ifndef SPCUBE_COMMON_BLOCK_CODEC_H_
#define SPCUBE_COMMON_BLOCK_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace spcube {

/// Deterministic LZ-style byte-match block compressor for DFS blobs
/// (docs/INTERNALS.md §13). No external dependencies, no host state: the
/// greedy hash-table match search is a pure function of the input bytes, so
/// same-seed runs store bit-identical blobs regardless of threading.
///
/// Wire format (all varints are LEB128):
///
///   [u8 method][varint raw_size][body]
///
///   method 0 (stored):     body is raw_size raw bytes, used whenever the
///                          match encoding would not shrink the input.
///   method 1 (lz-match):   body is a sequence of segments
///                          [varint literal_len][literal bytes]
///                          [varint match_len][varint match_distance],
///                          where match_len == 0 terminates the body (its
///                          distance is omitted) and a real match copies
///                          match_len bytes from match_distance bytes back
///                          in the decoded output (overlap allowed, so runs
///                          compress like RLE). match_len >= kMinMatch.
///
/// Compression sits *under* the CRC32C layer and *above* fault injection:
/// the DFS checksums the compressed bytes, corruption strikes the
/// compressed bytes in flight, and decoding happens only after the checksum
/// accepted a fetch. BlockDecompress still validates every length/distance
/// so a hostile buffer yields Corruption, never UB.
class BlockCodec {
 public:
  static constexpr size_t kMinMatch = 4;

  /// Compresses `input`, appending the encoded block to `*out` (cleared
  /// first). Falls back to the stored method when matching does not shrink
  /// the input, so the result is never more than input.size() + header
  /// bytes.
  static void Compress(std::string_view input, std::string* out);

  /// Decompresses a block produced by Compress into `*out` (cleared first).
  static Status Decompress(std::string_view block, std::string* out);

  /// Decoded size recorded in a block's header (cheap peek, no decode).
  static Result<int64_t> DecodedSize(std::string_view block);
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_BLOCK_CODEC_H_
