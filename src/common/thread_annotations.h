#ifndef SPCUBE_COMMON_THREAD_ANNOTATIONS_H_
#define SPCUBE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes (-Wthread-safety), in the style
/// of absl/base/thread_annotations.h. They declare which mutex guards which
/// member and which capabilities a function needs, so Clang can prove lock
/// discipline at compile time; `tools/analyzer/spcube_analyzer.py` reads the
/// same annotations textually for its `lock-discipline` rule, and the TSan
/// threaded grid (tests/threading_test.cc) checks the claims dynamically.
/// On compilers without the attributes (GCC) every macro expands to nothing.
///
/// Use `spcube::Mutex` / `spcube::MutexLock` (common/mutex.h) rather than
/// raw std::mutex for annotated state: libstdc++'s std::mutex carries no
/// capability attributes, so Clang cannot see std::lock_guard acquisitions.
///
/// See docs/INTERNALS.md §12 for the shared-state inventory and the rules.

#if defined(__clang__) && defined(__has_attribute)
#define SPCUBE_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define SPCUBE_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

/// On a data member: reads/writes require holding mutex `x`.
#define SPCUBE_GUARDED_BY(x) SPCUBE_THREAD_ANNOTATION_IMPL(guarded_by(x))

/// On a pointer member: dereferences require holding mutex `x` (the pointer
/// itself may be read freely, e.g. when set once in the constructor).
#define SPCUBE_PT_GUARDED_BY(x) \
  SPCUBE_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/// On a function: callers must hold the listed mutexes.
#define SPCUBE_REQUIRES(...) \
  SPCUBE_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the listed mutexes (the function
/// acquires them itself; prevents self-deadlock).
#define SPCUBE_EXCLUDES(...) \
  SPCUBE_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/// On a function: acquires / releases the listed mutexes.
#define SPCUBE_ACQUIRE(...) \
  SPCUBE_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define SPCUBE_RELEASE(...) \
  SPCUBE_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/// On a type: instances are lockable capabilities (a mutex).
#define SPCUBE_CAPABILITY(x) SPCUBE_THREAD_ANNOTATION_IMPL(capability(x))

/// On a type: RAII object that holds a capability for its lifetime.
#define SPCUBE_SCOPED_CAPABILITY \
  SPCUBE_THREAD_ANNOTATION_IMPL(scoped_lockable)

/// On a function: returns a reference to the mutex guarding the returned or
/// passed object (not currently used; kept for API completeness).
#define SPCUBE_RETURN_CAPABILITY(x) \
  SPCUBE_THREAD_ANNOTATION_IMPL(lock_returned(x))

/// On a function definition: turn the analysis off. Reserve this for
/// deliberate, documented contracts the analysis cannot express — e.g. a
/// read-after-join accessor of data that is quiescent once worker threads
/// are joined. `spcube_analyzer` skips such functions too, so keep the
/// justifying comment next to the annotation.
#define SPCUBE_NO_THREAD_SAFETY_ANALYSIS \
  SPCUBE_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // SPCUBE_COMMON_THREAD_ANNOTATIONS_H_
