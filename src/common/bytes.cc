#include "common/bytes.h"

namespace spcube {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutVarintSigned(int64_t v) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint(zigzag);
}

void ByteWriter::PutBytes(std::string_view bytes) {
  PutVarint(bytes.size());
  PutRaw(bytes.data(), bytes.size());
}

void ByteWriter::PutI64Vector(const std::vector<int64_t>& values) {
  PutI64Span(values.data(), values.size());
}

void ByteWriter::PutI64Span(const int64_t* values, size_t count) {
  PutVarint(count);
  for (size_t i = 0; i < count; ++i) PutVarintSigned(values[i]);
}

Status ByteReader::GetRaw(void* dst, size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::Corruption("byte reader truncated");
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::GetU8(uint8_t* out) { return GetRaw(out, sizeof(*out)); }
Status ByteReader::GetU32(uint32_t* out) { return GetRaw(out, sizeof(*out)); }
Status ByteReader::GetU64(uint64_t* out) { return GetRaw(out, sizeof(*out)); }

Status ByteReader::GetI64(int64_t* out) {
  uint64_t raw = 0;
  SPCUBE_RETURN_IF_ERROR(GetU64(&raw));
  *out = static_cast<int64_t>(raw);
  return Status::OK();
}

Status ByteReader::GetDouble(double* out) { return GetRaw(out, sizeof(*out)); }

Status ByteReader::GetVarint(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t byte = 0;
    SPCUBE_RETURN_IF_ERROR(GetU8(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = result;
      return Status::OK();
    }
    shift += 7;
  }
  return Status::Corruption("varint too long");
}

Status ByteReader::GetVarintSigned(int64_t* out) {
  uint64_t zigzag = 0;
  SPCUBE_RETURN_IF_ERROR(GetVarint(&zigzag));
  *out = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return Status::OK();
}

Status ByteReader::GetBytes(std::string_view* out) {
  uint64_t len = 0;
  SPCUBE_RETURN_IF_ERROR(GetVarint(&len));
  if (pos_ + len > data_.size()) {
    return Status::Corruption("byte string truncated");
  }
  *out = data_.substr(pos_, len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::GetI64Vector(std::vector<int64_t>* out) {
  uint64_t count = 0;
  SPCUBE_RETURN_IF_ERROR(GetVarint(&count));
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    SPCUBE_RETURN_IF_ERROR(GetVarintSigned(&v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace spcube
