#ifndef SPCUBE_COMMON_MUTEX_H_
#define SPCUBE_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace spcube {

/// std::mutex wrapped as a Clang thread-safety *capability*, so that
/// `SPCUBE_GUARDED_BY(mu_)` declarations are actually checkable:
/// libstdc++'s std::mutex / std::lock_guard carry no capability
/// attributes, which would make every annotated access a false positive.
/// Same cost as the raw mutex; use it for any member that guards state
/// shared with the engine's worker threads.
class SPCUBE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPCUBE_ACQUIRE() { mu_.lock(); }
  void Unlock() SPCUBE_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex, annotated as a scoped capability — the moral
/// equivalent of std::lock_guard<std::mutex>, but visible to
/// -Wthread-safety (and to spcube_analyzer's lock-discipline rule, which
/// recognizes `MutexLock` statements textually).
class SPCUBE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SPCUBE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SPCUBE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace spcube

#endif  // SPCUBE_COMMON_MUTEX_H_
