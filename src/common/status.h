#ifndef SPCUBE_COMMON_STATUS_H_
#define SPCUBE_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace spcube {

/// Canonical error codes for the library. Modeled after the usual
/// database-engine conventions (Arrow/RocksDB): library code never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kCorruption = 6,
  kFailedPrecondition = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  kCancelled = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); errors carry a message. Marked [[nodiscard]] so an ignored
/// error fails the -Wall build; intentional discards must go through
/// SPCUBE_IGNORE_ERROR with a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, the library's return type for fallible
/// computations. Accessing the value of an error Result aborts, so callers
/// must check ok() (or use ASSIGN_OR_RETURN).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse (`return value;` / `return Status::IoError(...)`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error Status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(repr_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(repr_));
}

}  // namespace spcube

/// Deliberately discards a Status (or Result<T>) with a documented reason.
/// This is the only sanctioned way to ignore a fallible call's outcome; the
/// reason string keeps the "why is this safe" next to the discard and gives
/// spcube_lint an anchor to distinguish audited discards from accidents.
#define SPCUBE_IGNORE_ERROR(expr, reason)            \
  do {                                               \
    static_assert(sizeof(reason) > 1,                \
                  "give a non-empty discard reason"); \
    (void)(expr);                                    \
  } while (false)

/// Propagates a non-OK Status from an expression to the caller.
#define SPCUBE_RETURN_IF_ERROR(expr)                    \
  do {                                                  \
    ::spcube::Status _spcube_status = (expr);           \
    if (!_spcube_status.ok()) return _spcube_status;    \
  } while (false)

#define SPCUBE_CONCAT_IMPL(a, b) a##b
#define SPCUBE_CONCAT(a, b) SPCUBE_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define SPCUBE_ASSIGN_OR_RETURN(lhs, expr)                              \
  SPCUBE_ASSIGN_OR_RETURN_IMPL(SPCUBE_CONCAT(_spcube_result_, __LINE__), \
                               lhs, expr)

#define SPCUBE_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value();

#endif  // SPCUBE_COMMON_STATUS_H_
