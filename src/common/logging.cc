#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spcube {
namespace {

/// Ordering contract: relaxed loads/stores everywhere. The level is a
/// standalone filter knob — no other memory is published through it, so a
/// worker thread observing a level change "late" merely logs (or skips) a
/// few more lines; it can never see torn or otherwise invalid state.
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // spcube-lint: allow(no-stdout-in-lib): this is the logging sink itself
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace spcube
