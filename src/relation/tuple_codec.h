#ifndef SPCUBE_RELATION_TUPLE_CODEC_H_
#define SPCUBE_RELATION_TUPLE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "relation/relation.h"

namespace spcube {

/// Wire format for a full relation tuple (all dimension values plus the
/// measure), used as the shuffle value when a tuple travels to a reducer and
/// inside the sketch-sampling round. Varint-encoded, so a tuple costs O(d)
/// bytes — the unit of the paper's intermediate-data analysis (§5.2).
/// Accepts spans, vectors and borrowed Relation::RowRef rows; the encoding
/// is identical regardless of the tuple's in-memory layout.
template <TupleLike Tuple>
void EncodeTupleTo(ByteWriter& writer, const Tuple& dims, int64_t measure) {
  const size_t n = dims.size();
  writer.PutVarint(n);
  for (size_t d = 0; d < n; ++d) writer.PutVarintSigned(dims[d]);
  writer.PutVarintSigned(measure);
}

template <TupleLike Tuple>
std::string EncodeTuple(const Tuple& dims, int64_t measure) {
  ByteWriter writer;
  EncodeTupleTo(writer, dims, measure);
  return writer.TakeData();
}

/// Decodes a tuple previously encoded with EncodeTuple.
Status DecodeTuple(std::string_view bytes, std::vector<int64_t>* dims,
                   int64_t* measure);

}  // namespace spcube

#endif  // SPCUBE_RELATION_TUPLE_CODEC_H_
