#ifndef SPCUBE_RELATION_TUPLE_CODEC_H_
#define SPCUBE_RELATION_TUPLE_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace spcube {

/// Wire format for a full relation tuple (all dimension values plus the
/// measure), used as the shuffle value when a tuple travels to a reducer and
/// inside the sketch-sampling round. Varint-encoded, so a tuple costs O(d)
/// bytes — the unit of the paper's intermediate-data analysis (§5.2).
std::string EncodeTuple(std::span<const int64_t> dims, int64_t measure);

/// Appends the encoding to an existing writer.
void EncodeTupleTo(ByteWriter& writer, std::span<const int64_t> dims,
                   int64_t measure);

/// Decodes a tuple previously encoded with EncodeTuple.
Status DecodeTuple(std::string_view bytes, std::vector<int64_t>* dims,
                   int64_t* measure);

}  // namespace spcube

#endif  // SPCUBE_RELATION_TUPLE_CODEC_H_
