#ifndef SPCUBE_RELATION_GENERATORS_H_
#define SPCUBE_RELATION_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "relation/relation.h"

namespace spcube {

/// Workload generators for the paper's experimental study (§6). All are
/// deterministic given the seed. Measures are uniform in [0, 99] unless
/// noted; the paper's default aggregate is count, for which measures are
/// irrelevant.

/// Every dimension independently uniform over [0, domain). Skew-free
/// baseline workload.
Relation GenUniform(int64_t num_rows, int num_dims, int64_t domain,
                    uint64_t seed);

/// The paper's gen-binomial dataset (§6.2): with probability p, draw
/// i ∈ {1..20} uniformly and emit the tuple (i, i, ..., i); otherwise each
/// attribute is an independent uniform 32-bit integer. A fraction p of the
/// tuples therefore contributes to skewed groups in every cuboid.
Relation GenBinomial(int64_t num_rows, int num_dims, double p, uint64_t seed);

/// The paper's gen-zipf dataset (§6.2): `num_zipf_dims` attributes drawn
/// from Zipf(domain, exponent) and `num_uniform_dims` attributes drawn
/// uniformly from [0, domain). The paper uses 2+2 dims, domain 1000,
/// exponent 1.1.
Relation GenZipf(int64_t num_rows, int num_zipf_dims, int num_uniform_dims,
                 int64_t domain, double exponent, uint64_t seed);

/// Convenience: the exact gen-zipf configuration of the paper.
Relation GenZipfPaper(int64_t num_rows, uint64_t seed);

/// A planted-skew mixture: `pattern_fracs[i]` of the rows repeat the i-th
/// fixed "heavy" tuple (distinct reserved values per pattern); the remaining
/// rows draw each dimension uniformly from its background domain. Every
/// projection of a planted tuple whose fraction exceeds the skew threshold
/// becomes a skewed c-group, so a d-dim relation with h patterns yields
/// about h * 2^d skewed c-groups of known sizes — the knob we use to match
/// the fingerprints reported for the real datasets.
Relation GenPlantedSkew(int64_t num_rows, int num_dims,
                        const std::vector<double>& pattern_fracs,
                        const std::vector<int64_t>& background_domains,
                        uint64_t seed);

/// Stand-in for the Wikipedia Traffic Statistics dataset (§6.1): 4 dims
/// (project, page, hour, agent), ~3 heavy patterns at 30%/10%/5% of the rows
/// (≈ 50 skewed c-groups across the 16 cuboids, cardinalities 5%-30% of n,
/// matching the paper's fingerprint), and a page dimension with a large
/// domain so the total number of c-groups is a constant fraction of n.
Relation GenWikiLike(int64_t num_rows, uint64_t seed);

/// Stand-in for the USAGOV click-log dataset (§6.1): 15 dimensions; the
/// cube benchmarks project to the first 4 (matching the paper's setup).
/// Two heavy patterns at 25%/8% give ≈ 30 skewed c-groups at 6%-25% of n.
Relation GenUsaGovLike(int64_t num_rows, uint64_t seed);

/// A drifting batched stream (ROADMAP item 5): the workload is a sequence
/// of batches whose distribution ages between batches, so a sketch built on
/// batch b misclassifies the heavy hitters of batch b' > b. Two drift
/// mechanisms compose:
///   * Zipf-exponent ramp — the zipf dimensions' exponent interpolates
///     linearly from start_exponent (batch 0) to end_exponent (batch
///     num_batches-1), sharpening (or flattening) the skew over time;
///   * hot-key churn — every churn_period batches the rank -> value mapping
///     rotates by churn_step, so *which* keys are hot changes even when the
///     rank distribution does not.
/// Layout matches GenZipf (zipf dims first, then uniform dims).
struct DriftSpec {
  int num_batches = 2;
  int num_zipf_dims = 2;
  int num_uniform_dims = 2;
  int64_t domain = 1000;
  double start_exponent = 0.6;
  double end_exponent = 1.4;
  /// Rotate the rank -> value mapping every this many batches; <= 0
  /// disables churn.
  int churn_period = 1;
  /// Offset added to every value per rotation (mod domain).
  int64_t churn_step = 17;
};

/// Generates batch `batch` (in [0, spec.num_batches)) of the drifting
/// stream. Deterministic in (spec, batch, seed); batches are independent
/// row-wise but share the seed so the whole stream is reproducible from one
/// number.
Relation GenDriftBatch(const DriftSpec& spec, int batch, int64_t num_rows,
                       uint64_t seed);

/// Projects a relation onto a subset of its dimensions (used to cube over 4
/// of USAGOV's 15 attributes, as the paper does).
Relation ProjectDims(const Relation& input, const std::vector<int>& dims);

/// The adversarial relation of Theorem 5.3: for every size-(d/2) subset S of
/// the dimensions, `group_size` identical tuples with value 1 on S and 0
/// elsewhere. With group_size = m+1, every level-(d/2) cuboid holds a skewed
/// group but no level-(d/2+1) cuboid does, forcing SP-Cube to ship
/// Θ(2^d · n) intermediate data.
Relation GenWorstCaseTraffic(int num_dims, int64_t group_size);

/// A skewness-monotonic relation (Def. 5.4): with probability q the tuple is
/// the all-zero pattern (its projections skew together); otherwise uniform
/// over a large domain. Traffic for such relations is O(d^2 n) (Prop. 5.5).
Relation GenMonotonicSkew(int64_t num_rows, int num_dims, double q,
                          int64_t domain, uint64_t seed);

/// Independently-skewed attributes (the Prop. 5.6 regime): each attribute is
/// 0 with probability q, otherwise uniform over [1, domain). Produces
/// non-monotonic skew: one-attribute groups skew at rate q while
/// l-attribute groups skew at rate q^l.
Relation GenIndependentSkew(int64_t num_rows, int num_dims, double q,
                            int64_t domain, uint64_t seed);

}  // namespace spcube

#endif  // SPCUBE_RELATION_GENERATORS_H_
