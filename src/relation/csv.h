#ifndef SPCUBE_RELATION_CSV_H_
#define SPCUBE_RELATION_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/dictionary.h"
#include "relation/relation.h"

namespace spcube {

/// A relation plus the per-dimension dictionaries needed to decode it back
/// to strings. Produced by CSV loading; consumed by pretty-printers.
struct EncodedRelation {
  Relation relation;
  std::vector<Dictionary> dictionaries;  // one per dimension
};

/// Parses CSV text with a header row into a dictionary-encoded relation.
/// The last column is the measure and must parse as an integer; all other
/// columns become dimensions. Quoting is not supported (values must not
/// contain commas or newlines); leading/trailing whitespace is trimmed.
Result<EncodedRelation> LoadCsv(const std::string& csv_text);

/// Serializes an encoded relation back to CSV text (header + rows).
std::string ToCsv(const EncodedRelation& encoded);

}  // namespace spcube

#endif  // SPCUBE_RELATION_CSV_H_
