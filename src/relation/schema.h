#ifndef SPCUBE_RELATION_SCHEMA_H_
#define SPCUBE_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace spcube {

/// Describes a cube input relation R(A1, ..., Ad, B): an ordered list of
/// dimension attribute names plus one numeric measure attribute (paper §2.1).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<std::string> dimension_names, std::string measure_name);

  /// Validates that names are non-empty and unique.
  static Result<Schema> Make(std::vector<std::string> dimension_names,
                             std::string measure_name);

  int num_dims() const { return static_cast<int>(dimension_names_.size()); }
  const std::vector<std::string>& dimension_names() const {
    return dimension_names_;
  }
  const std::string& dimension_name(int i) const {
    return dimension_names_[static_cast<size_t>(i)];
  }
  const std::string& measure_name() const { return measure_name_; }

  /// Index of a dimension by name, or -1.
  int DimensionIndex(const std::string& name) const;

  /// "R(name, city, year; sales)"
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.dimension_names_ == b.dimension_names_ &&
           a.measure_name_ == b.measure_name_;
  }

 private:
  std::vector<std::string> dimension_names_;
  std::string measure_name_;
};

/// A throwaway schema ("a0", ..., "a<d-1>"; measure "m") for relations whose
/// attribute names do not matter (deserialized reducer inputs, generated
/// workloads).
Schema MakeAnonymousSchema(int num_dims);

}  // namespace spcube

#endif  // SPCUBE_RELATION_SCHEMA_H_
