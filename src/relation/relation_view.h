#ifndef SPCUBE_RELATION_RELATION_VIEW_H_
#define SPCUBE_RELATION_RELATION_VIEW_H_

#include <cstdint>
#include <span>

#include "common/lifetime.h"
#include "common/logging.h"
#include "relation/relation.h"

namespace spcube {

/// A non-owning window onto a Relation: either a contiguous row range
/// [begin, end) — the shape of an engine input split — or an explicit
/// row-index indirection (the shape of BUC recursion state and of test
/// grids that shuffle or subset rows). Copying a view copies three words;
/// no tuple data moves.
///
/// Lifetime rules (docs/INTERNALS.md "Data layer"): a view borrows both the
/// relation and, in the indirection case, the index array. Neither may be
/// destroyed, and the relation must not be appended to, while the view is
/// in use. Views are therefore function-parameter and stack objects, never
/// stored members of long-lived state.
class RelationView {
 public:
  /// All rows of `rel`.
  explicit RelationView(const Relation& rel)
      : rel_(&rel), begin_(0), end_(rel.num_rows()),
        epoch_(rel.lifetime_epoch()) {}

  /// The contiguous rows [begin, end) of `rel`.
  RelationView(const Relation& rel, int64_t begin, int64_t end)
      : rel_(&rel), begin_(begin), end_(end),
        epoch_(rel.lifetime_epoch()) {}

  /// The rows of `rel` named by `rows`, in that order (duplicates allowed).
  RelationView(const Relation& rel, std::span<const int64_t> rows)
      : rel_(&rel), rows_(rows), begin_(0),
        end_(static_cast<int64_t>(rows.size())),
        epoch_(rel.lifetime_epoch()), indirect_(true) {}

  const Relation& base() const { return *rel_; }
  const Schema& schema() const { return rel_->schema(); }
  int num_dims() const { return rel_->num_dims(); }
  int64_t num_rows() const { return end_ - begin_; }
  bool has_indirection() const { return indirect_; }

  /// Base-relation row id of the view's i-th row. Every element accessor
  /// funnels through here, so this is where a stale view (relation appended
  /// to after the view was taken; see Relation::lifetime_epoch) aborts
  /// under SPCUBE_LIFETIME_CHECKS.
  int64_t base_row(int64_t i) const {
#if SPCUBE_LIFETIME_CHECKS
    SPCUBE_CHECK(rel_->lifetime_epoch() == epoch_)
        << "stale RelationView: the relation was appended to after this "
           "view was taken";
#endif
    return indirect_ ? rows_[static_cast<size_t>(i)] : begin_ + i;
  }

  Relation::RowRef row(int64_t i) const { return rel_->row(base_row(i)); }
  int64_t dim(int64_t i, int d) const { return rel_->dim(base_row(i), d); }
  int64_t measure(int64_t i) const { return rel_->measure(base_row(i)); }

  /// Bytes of tuple data this view would occupy if materialized — the
  /// memory-model cost a copying split would pay. The view itself costs
  /// O(1); tests assert splits never pay the materialized figure.
  int64_t MaterializedByteSize() const {
    return num_rows() * static_cast<int64_t>(num_dims() + 1) *
           static_cast<int64_t>(sizeof(int64_t));
  }

 private:
  const Relation* rel_;
  // spcube-analyzer: allow(view-escape): RelationView is itself a borrow; it adds no lifetime beyond the one its creator manages
  std::span<const int64_t> rows_;  // used only when indirect_
  int64_t begin_;
  int64_t end_;
  uint64_t epoch_;  // rel_'s lifetime_epoch() at construction
  bool indirect_ = false;
};

}  // namespace spcube

#endif  // SPCUBE_RELATION_RELATION_VIEW_H_
