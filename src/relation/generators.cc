#include "relation/generators.h"

#include <algorithm>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"

namespace spcube {
namespace {

int64_t RandomMeasure(Rng& rng) {
  return static_cast<int64_t>(rng.NextBounded(100));
}

}  // namespace

Relation GenUniform(int64_t num_rows, int num_dims, int64_t domain,
                    uint64_t seed) {
  SPCUBE_CHECK(num_dims >= 1 && domain >= 1);
  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    for (int d = 0; d < num_dims; ++d) {
      row[static_cast<size_t>(d)] =
          static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(domain)));
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation GenBinomial(int64_t num_rows, int num_dims, double p,
                     uint64_t seed) {
  SPCUBE_CHECK(num_dims >= 1 && p >= 0.0 && p <= 1.0);
  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    if (rng.NextBernoulli(p)) {
      const int64_t i = 1 + static_cast<int64_t>(rng.NextBounded(20));
      for (int d = 0; d < num_dims; ++d) row[static_cast<size_t>(d)] = i;
    } else {
      for (int d = 0; d < num_dims; ++d) {
        row[static_cast<size_t>(d)] =
            static_cast<int64_t>(rng.NextBounded(uint64_t{1} << 32));
      }
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation GenZipf(int64_t num_rows, int num_zipf_dims, int num_uniform_dims,
                 int64_t domain, double exponent, uint64_t seed) {
  const int num_dims = num_zipf_dims + num_uniform_dims;
  SPCUBE_CHECK(num_dims >= 1 && domain >= 1);
  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  const ZipfDistribution zipf(domain, exponent);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    int d = 0;
    for (int z = 0; z < num_zipf_dims; ++z, ++d) {
      row[static_cast<size_t>(d)] = zipf.Sample(rng);
    }
    for (int u = 0; u < num_uniform_dims; ++u, ++d) {
      row[static_cast<size_t>(d)] =
          static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(domain)));
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation GenZipfPaper(int64_t num_rows, uint64_t seed) {
  return GenZipf(num_rows, /*num_zipf_dims=*/2, /*num_uniform_dims=*/2,
                 /*domain=*/1000, /*exponent=*/1.1, seed);
}

Relation GenPlantedSkew(int64_t num_rows, int num_dims,
                        const std::vector<double>& pattern_fracs,
                        const std::vector<int64_t>& background_domains,
                        uint64_t seed) {
  SPCUBE_CHECK(static_cast<int>(background_domains.size()) == num_dims)
      << "one background domain per dimension required";
  double total_frac = 0.0;
  for (double f : pattern_fracs) {
    SPCUBE_CHECK(f > 0.0);
    total_frac += f;
  }
  SPCUBE_CHECK(total_frac < 1.0) << "pattern fractions must sum below 1";

  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    const double u = rng.NextDouble();
    double acc = 0.0;
    int pattern = -1;
    for (size_t i = 0; i < pattern_fracs.size(); ++i) {
      acc += pattern_fracs[i];
      if (u < acc) {
        pattern = static_cast<int>(i);
        break;
      }
    }
    if (pattern >= 0) {
      // Planted heavy tuple: reserved values below 0 never collide with the
      // background, so planted group sizes are exact.
      for (int d = 0; d < num_dims; ++d) {
        row[static_cast<size_t>(d)] = -(pattern + 1);
      }
    } else {
      for (int d = 0; d < num_dims; ++d) {
        row[static_cast<size_t>(d)] = static_cast<int64_t>(rng.NextBounded(
            static_cast<uint64_t>(background_domains[static_cast<size_t>(d)])));
      }
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation GenWikiLike(int64_t num_rows, uint64_t seed) {
  // 4 dims: project (small domain), page (large domain -> many c-groups),
  // hour, agent. Three heavy patterns at 30%/10%/5% of the rows.
  const int64_t pages = std::max<int64_t>(16, num_rows / 4);
  Relation out = GenPlantedSkew(num_rows, /*num_dims=*/4,
                                {0.30, 0.10, 0.05},
                                {/*project=*/1000, /*page=*/pages,
                                 /*hour=*/24, /*agent=*/100},
                                seed);
  return out;
}

Relation GenUsaGovLike(int64_t num_rows, uint64_t seed) {
  // 15 dims; heavy patterns at 25% and 8%. The first four dimensions carry
  // the interesting distribution (country, browser, os, tz-like); the
  // remaining eleven are narrow categorical attributes.
  std::vector<int64_t> domains = {500, std::max<int64_t>(16, num_rows / 8),
                                  40, 300};
  for (int i = 4; i < 15; ++i) domains.push_back(8 + i);
  return GenPlantedSkew(num_rows, /*num_dims=*/15, {0.25, 0.08}, domains,
                        seed);
}

Relation GenDriftBatch(const DriftSpec& spec, int batch, int64_t num_rows,
                       uint64_t seed) {
  SPCUBE_CHECK(spec.num_batches >= 1 && batch >= 0 &&
               batch < spec.num_batches);
  const int num_dims = spec.num_zipf_dims + spec.num_uniform_dims;
  SPCUBE_CHECK(num_dims >= 1 && spec.domain >= 1);

  // Linear exponent ramp across the stream; a single batch sits at the
  // start of the ramp.
  const double t = spec.num_batches > 1
                       ? static_cast<double>(batch) /
                             static_cast<double>(spec.num_batches - 1)
                       : 0.0;
  const double exponent =
      spec.start_exponent + t * (spec.end_exponent - spec.start_exponent);
  // Hot-key churn: rotating the rank -> value mapping moves the head of the
  // distribution to fresh keys without changing the rank frequencies.
  const int64_t rotations =
      spec.churn_period > 0 ? batch / spec.churn_period : 0;
  const int64_t offset =
      ((rotations * spec.churn_step) % spec.domain + spec.domain) %
      spec.domain;

  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  // Per-batch stream derived from the shared seed: batches differ row-wise
  // but the whole stream replays from one number.
  Rng rng(HashCombine(Mix64(seed ^ 0xd21f7ull), static_cast<uint64_t>(batch)));
  const ZipfDistribution zipf(spec.domain, exponent);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    int d = 0;
    for (int z = 0; z < spec.num_zipf_dims; ++z, ++d) {
      row[static_cast<size_t>(d)] =
          (zipf.Sample(rng) + offset) % spec.domain;
    }
    for (int u = 0; u < spec.num_uniform_dims; ++u, ++d) {
      row[static_cast<size_t>(d)] = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(spec.domain)));
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation ProjectDims(const Relation& input, const std::vector<int>& dims) {
  std::vector<std::string> names;
  names.reserve(dims.size());
  for (int d : dims) {
    SPCUBE_CHECK(d >= 0 && d < input.num_dims()) << "bad projection index";
    names.push_back(input.schema().dimension_name(d));
  }
  Relation out(Schema(std::move(names), input.schema().measure_name()));
  out.Reserve(input.num_rows());
  std::vector<int64_t> row(dims.size());
  for (int64_t r = 0; r < input.num_rows(); ++r) {
    for (size_t i = 0; i < dims.size(); ++i) {
      row[i] = input.dim(r, dims[i]);
    }
    out.AppendRow(row, input.measure(r));
  }
  return out;
}

Relation GenWorstCaseTraffic(int num_dims, int64_t group_size) {
  SPCUBE_CHECK(num_dims >= 2 && num_dims % 2 == 0 && group_size >= 1);
  Relation out(MakeAnonymousSchema(num_dims));
  const int half = num_dims / 2;
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  // Enumerate all bitmasks with exactly d/2 bits set.
  for (uint32_t mask = 0; mask < (uint32_t{1} << num_dims); ++mask) {
    if (__builtin_popcount(mask) != half) continue;
    for (int d = 0; d < num_dims; ++d) {
      row[static_cast<size_t>(d)] = (mask >> d) & 1;
    }
    for (int64_t i = 0; i < group_size; ++i) out.AppendRow(row, 1);
  }
  return out;
}

Relation GenMonotonicSkew(int64_t num_rows, int num_dims, double q,
                          int64_t domain, uint64_t seed) {
  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    if (rng.NextBernoulli(q)) {
      for (int d = 0; d < num_dims; ++d) row[static_cast<size_t>(d)] = 0;
    } else {
      for (int d = 0; d < num_dims; ++d) {
        row[static_cast<size_t>(d)] = 1 + static_cast<int64_t>(rng.NextBounded(
                                              static_cast<uint64_t>(domain)));
      }
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

Relation GenIndependentSkew(int64_t num_rows, int num_dims, double q,
                            int64_t domain, uint64_t seed) {
  Relation out(MakeAnonymousSchema(num_dims));
  out.Reserve(num_rows);
  Rng rng(seed);
  std::vector<int64_t> row(static_cast<size_t>(num_dims));
  for (int64_t r = 0; r < num_rows; ++r) {
    for (int d = 0; d < num_dims; ++d) {
      row[static_cast<size_t>(d)] =
          rng.NextBernoulli(q)
              ? 0
              : 1 + static_cast<int64_t>(
                        rng.NextBounded(static_cast<uint64_t>(domain)));
    }
    out.AppendRow(row, RandomMeasure(rng));
  }
  return out;
}

}  // namespace spcube
