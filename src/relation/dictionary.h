#ifndef SPCUBE_RELATION_DICTIONARY_H_
#define SPCUBE_RELATION_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace spcube {

/// Bidirectional string <-> int64 code mapping used to dictionary-encode
/// categorical dimension values (product names, cities, ...). Codes are
/// dense, starting at 0, in first-seen order, so lexicographic order of
/// codes is NOT string order; cube semantics only need equality plus a total
/// order, which codes provide.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `value`, inserting it if new.
  int64_t Intern(const std::string& value);

  /// Returns the code for `value`, or NotFound.
  Result<int64_t> Lookup(const std::string& value) const;

  /// Returns the string for `code`, or InvalidArgument if out of range.
  Result<std::string> Decode(int64_t code) const;

  int64_t size() const { return static_cast<int64_t>(values_.size()); }

 private:
  std::unordered_map<std::string, int64_t> index_;
  std::vector<std::string> values_;
};

}  // namespace spcube

#endif  // SPCUBE_RELATION_DICTIONARY_H_
