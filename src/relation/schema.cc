#include "relation/schema.h"

#include <unordered_set>

namespace spcube {

Schema::Schema(std::vector<std::string> dimension_names,
               std::string measure_name)
    : dimension_names_(std::move(dimension_names)),
      measure_name_(std::move(measure_name)) {}

Result<Schema> Schema::Make(std::vector<std::string> dimension_names,
                            std::string measure_name) {
  if (dimension_names.empty()) {
    return Status::InvalidArgument("schema needs at least one dimension");
  }
  if (measure_name.empty()) {
    return Status::InvalidArgument("measure name must be non-empty");
  }
  std::unordered_set<std::string> seen;
  for (const std::string& name : dimension_names) {
    if (name.empty()) {
      return Status::InvalidArgument("dimension name must be non-empty");
    }
    if (!seen.insert(name).second || name == measure_name) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
  }
  return Schema(std::move(dimension_names), std::move(measure_name));
}

int Schema::DimensionIndex(const std::string& name) const {
  for (int i = 0; i < num_dims(); ++i) {
    if (dimension_names_[static_cast<size_t>(i)] == name) return i;
  }
  return -1;
}

Schema MakeAnonymousSchema(int num_dims) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(num_dims));
  for (int i = 0; i < num_dims; ++i) names.push_back("a" + std::to_string(i));
  return Schema(std::move(names), "m");
}

std::string Schema::ToString() const {
  std::string out = "R(";
  for (size_t i = 0; i < dimension_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += dimension_names_[i];
  }
  out += "; " + measure_name_ + ")";
  return out;
}

}  // namespace spcube
