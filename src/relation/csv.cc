#include "relation/csv.h"

#include <charconv>
#include <string_view>

namespace spcube {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> SplitLine(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      fields.push_back(Trim(line.substr(start, i - start)));
      start = i + 1;
    }
  }
  return fields;
}

}  // namespace

Result<EncodedRelation> LoadCsv(const std::string& csv_text) {
  std::vector<std::string_view> lines;
  {
    std::string_view text = csv_text;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
      if (i == text.size() || text[i] == '\n') {
        std::string_view line = text.substr(start, i - start);
        if (!Trim(line).empty()) lines.push_back(line);
        start = i + 1;
      }
    }
  }
  if (lines.empty()) return Status::InvalidArgument("empty CSV input");

  const std::vector<std::string_view> header = SplitLine(lines[0]);
  if (header.size() < 2) {
    return Status::InvalidArgument(
        "CSV needs at least one dimension and a measure column");
  }
  std::vector<std::string> dim_names;
  for (size_t i = 0; i + 1 < header.size(); ++i) {
    dim_names.emplace_back(header[i]);
  }
  SPCUBE_ASSIGN_OR_RETURN(
      Schema schema, Schema::Make(std::move(dim_names),
                                  std::string(header.back())));

  const int d = schema.num_dims();
  EncodedRelation out{Relation(schema), std::vector<Dictionary>(
                                            static_cast<size_t>(d))};
  out.relation.Reserve(static_cast<int64_t>(lines.size()) - 1);

  std::vector<int64_t> row(static_cast<size_t>(d));
  for (size_t li = 1; li < lines.size(); ++li) {
    const std::vector<std::string_view> fields = SplitLine(lines[li]);
    if (static_cast<int>(fields.size()) != d + 1) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(li) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(d + 1));
    }
    for (int c = 0; c < d; ++c) {
      row[static_cast<size_t>(c)] =
          out.dictionaries[static_cast<size_t>(c)].Intern(
              std::string(fields[static_cast<size_t>(c)]));
    }
    int64_t measure = 0;
    const std::string_view mf = fields.back();
    auto [ptr, ec] =
        std::from_chars(mf.data(), mf.data() + mf.size(), measure);
    if (ec != std::errc() || ptr != mf.data() + mf.size()) {
      return Status::InvalidArgument("CSV row " + std::to_string(li) +
                                     ": bad measure value '" +
                                     std::string(mf) + "'");
    }
    out.relation.AppendRow(row, measure);
  }
  return out;
}

std::string ToCsv(const EncodedRelation& encoded) {
  const Schema& schema = encoded.relation.schema();
  std::string out;
  for (int c = 0; c < schema.num_dims(); ++c) {
    out += schema.dimension_name(c);
    out += ',';
  }
  out += schema.measure_name();
  out += '\n';
  for (int64_t r = 0; r < encoded.relation.num_rows(); ++r) {
    for (int c = 0; c < schema.num_dims(); ++c) {
      auto decoded = encoded.dictionaries[static_cast<size_t>(c)].Decode(
          encoded.relation.dim(r, c));
      out += decoded.ok() ? decoded.value()
                          : std::to_string(encoded.relation.dim(r, c));
      out += ',';
    }
    out += std::to_string(encoded.relation.measure(r));
    out += '\n';
  }
  return out;
}

}  // namespace spcube
