#include "relation/dictionary.h"

namespace spcube {

int64_t Dictionary::Intern(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const int64_t code = static_cast<int64_t>(values_.size());
  values_.push_back(value);
  index_.emplace(value, code);
  return code;
}

Result<int64_t> Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("value not in dictionary: " + value);
  }
  return it->second;
}

Result<std::string> Dictionary::Decode(int64_t code) const {
  if (code < 0 || code >= size()) {
    return Status::InvalidArgument("dictionary code out of range: " +
                                   std::to_string(code));
  }
  return values_[static_cast<size_t>(code)];
}

}  // namespace spcube
