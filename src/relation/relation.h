#ifndef SPCUBE_RELATION_RELATION_H_
#define SPCUBE_RELATION_RELATION_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"

namespace spcube {

/// Anything that reads like a dimension tuple: `t[d]` yields the value of
/// dimension d and `t.size()` its arity. Satisfied by std::span/std::vector/
/// std::array over int64_t and by Relation::RowRef, so the projection and
/// comparison hot paths (GroupKey::Project, CompareOnCuboid, tuple_codec,
/// SpSketch probes) work over both materialized tuples and borrowed rows of
/// a columnar relation without copying.
template <typename T>
concept TupleLike = requires(const T& t, int d) {
  { t[d] } -> std::convertible_to<int64_t>;
  { t.size() } -> std::convertible_to<size_t>;
};

/// A columnar (struct-of-arrays), dictionary-encodable fact table: one
/// contiguous array per dimension plus the measure column. Dimension values
/// are stored as int64 codes (use Dictionary to map strings); the measure is
/// an int64. Rows are append-only; the MapReduce engine hands each mapper a
/// non-owning RelationView over a contiguous row range, mirroring equal HDFS
/// input splits (paper §2.3). The columnar layout makes per-dimension scans
/// (BUC partitioning, cuboid projections) read contiguous memory instead of
/// striding across row-major tuples.
class Relation {
 public:
  explicit Relation(Schema schema)
      : schema_(std::move(schema)),
        cols_(static_cast<size_t>(schema_.num_dims())) {}

  const Schema& schema() const { return schema_; }
  int num_dims() const { return schema_.num_dims(); }
  int64_t num_rows() const {
    return static_cast<int64_t>(measures_.size());
  }

  void Reserve(int64_t rows) {
    for (std::vector<int64_t>& col : cols_) {
      col.reserve(static_cast<size_t>(rows));
    }
    measures_.reserve(static_cast<size_t>(rows));
  }

  /// A borrowed view of one row's dimension values. Gathers from the
  /// dimension columns on access; cheap to copy (pointer + index) and
  /// valid only while the relation outlives it and is not appended to.
  class RowRef {
   public:
    RowRef(const Relation* rel, int64_t row) : rel_(rel), row_(row) {}

    int64_t operator[](int d) const { return rel_->dim(row_, d); }
    int64_t operator[](size_t d) const {
      return rel_->dim(row_, static_cast<int>(d));
    }
    size_t size() const { return static_cast<size_t>(rel_->num_dims()); }

   private:
    const Relation* rel_;
    int64_t row_;
  };

  /// Appends a row; `dims.size()` must equal num_dims().
  void AppendRow(std::span<const int64_t> dims, int64_t measure);

  /// Appends a borrowed row of another relation — a deliberate
  /// materialization (e.g. Bernoulli sampling into a sketch sample, or a
  /// reducer rebuilding its local partition from wire tuples).
  void AppendRow(RowRef row, int64_t measure);

  /// Dimension values of a row, gathered lazily from the columns.
  RowRef row(int64_t r) const { return RowRef(this, r); }

  int64_t dim(int64_t r, int d) const {
    return cols_[static_cast<size_t>(d)][static_cast<size_t>(r)];
  }

  int64_t measure(int64_t r) const {
    return measures_[static_cast<size_t>(r)];
  }

  /// One dimension's values for all rows, contiguous in memory — the unit
  /// of columnar scans (BUC partitioning, cardinality sampling).
  std::span<const int64_t> column(int d) const {
    return cols_[static_cast<size_t>(d)];
  }

  std::span<const int64_t> measures() const { return measures_; }

  /// Bumped by every append (a push_back may reallocate the columns, so any
  /// outstanding borrow is suspect). RelationView stamps this at
  /// construction and, under SPCUBE_LIFETIME_CHECKS, aborts when a read
  /// goes through a view whose relation has since been appended to.
  /// Maintained unconditionally so mixed-TU builds agree on layout.
  uint64_t lifetime_epoch() const { return lifetime_epoch_; }

  /// Approximate in-memory footprint in bytes (used for the memory model):
  /// num_rows * (num_dims + 1) int64s, identical to the row-major layout.
  int64_t ByteSize() const {
    int64_t cells = static_cast<int64_t>(measures_.size());
    for (const std::vector<int64_t>& col : cols_) {
      cells += static_cast<int64_t>(col.size());
    }
    return cells * static_cast<int64_t>(sizeof(int64_t));
  }

 private:
  Schema schema_;
  std::vector<std::vector<int64_t>> cols_;  // one contiguous array per dim
  std::vector<int64_t> measures_;           // one per row
  uint64_t lifetime_epoch_ = 0;             // see lifetime_epoch()
};

}  // namespace spcube

#endif  // SPCUBE_RELATION_RELATION_H_
