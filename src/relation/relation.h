#ifndef SPCUBE_RELATION_RELATION_H_
#define SPCUBE_RELATION_RELATION_H_

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "relation/schema.h"

namespace spcube {

/// Anything that reads like a dimension tuple: `t[d]` yields the value of
/// dimension d and `t.size()` its arity. Satisfied by std::span/std::vector/
/// std::array over int64_t and by Relation::RowRef, so the projection and
/// comparison hot paths (GroupKey::Project, CompareOnCuboid, tuple_codec,
/// SpSketch probes) work over both materialized tuples and borrowed rows of
/// a columnar relation without copying.
template <typename T>
concept TupleLike = requires(const T& t, int d) {
  { t[d] } -> std::convertible_to<int64_t>;
  { t.size() } -> std::convertible_to<size_t>;
};

/// A columnar (struct-of-arrays), dictionary-encodable fact table: one
/// contiguous array per dimension plus the measure column. Dimension values
/// are stored as int64 codes (use Dictionary to map strings); the measure is
/// an int64. Rows are append-only; the MapReduce engine hands each mapper a
/// non-owning RelationView over a contiguous row range, mirroring equal HDFS
/// input splits (paper §2.3). The columnar layout makes per-dimension scans
/// (BUC partitioning, cuboid projections) read contiguous memory instead of
/// striding across row-major tuples.
///
/// DictionaryEncode() freezes the relation and re-stores each dimension as
/// a sorted per-column dictionary plus a narrow (u8/u16/u32 by cardinality)
/// code array (docs/INTERNALS.md §13). Codes are order-preserving, so
/// equality/order scans run on the codes; dim()/RowRef decode through the
/// dictionary, which keeps every wire byte (group keys, shuffled tuples)
/// and every modeled metric bit-identical to the plain representation —
/// only the physical footprint and cache behavior change.
class Relation {
 public:
  explicit Relation(Schema schema)
      : schema_(std::move(schema)),
        cols_(static_cast<size_t>(schema_.num_dims())) {}

  const Schema& schema() const { return schema_; }
  int num_dims() const { return schema_.num_dims(); }
  int64_t num_rows() const {
    return static_cast<int64_t>(measures_.size());
  }

  void Reserve(int64_t rows) {
    for (std::vector<int64_t>& col : cols_) {
      col.reserve(static_cast<size_t>(rows));
    }
    measures_.reserve(static_cast<size_t>(rows));
  }

  /// A borrowed view of one row's dimension values. Gathers from the
  /// dimension columns on access; cheap to copy (pointer + index) and
  /// valid only while the relation outlives it and is not appended to.
  class RowRef {
   public:
    RowRef(const Relation* rel, int64_t row) : rel_(rel), row_(row) {}

    int64_t operator[](int d) const { return rel_->dim(row_, d); }
    int64_t operator[](size_t d) const {
      return rel_->dim(row_, static_cast<int>(d));
    }
    size_t size() const { return static_cast<size_t>(rel_->num_dims()); }

   private:
    const Relation* rel_;
    int64_t row_;
  };

  /// Appends a row; `dims.size()` must equal num_dims(). Appending to a
  /// dictionary-encoded relation aborts (the relation is frozen).
  void AppendRow(std::span<const int64_t> dims, int64_t measure);

  /// Appends a borrowed row of another relation — a deliberate
  /// materialization (e.g. Bernoulli sampling into a sketch sample, or a
  /// reducer rebuilding its local partition from wire tuples).
  void AppendRow(RowRef row, int64_t measure);

  /// Dimension values of a row, gathered lazily from the columns.
  RowRef row(int64_t r) const { return RowRef(this, r); }

  int64_t dim(int64_t r, int d) const {
    const size_t dd = static_cast<size_t>(d);
    const size_t i = static_cast<size_t>(r);
    if (!encoded_) return cols_[dd][i];
    const DimColumn& col = dims_[dd];
    switch (col.code_width) {
      case 1: return col.dict[col.codes8[i]];
      case 2: return col.dict[col.codes16[i]];
      case 4: return col.dict[col.codes32[i]];
      default: return cols_[dd][i];  // raw fallback kept the plain column
    }
  }

  int64_t measure(int64_t r) const {
    return measures_[static_cast<size_t>(r)];
  }

  /// One dimension's values for all rows, contiguous in memory — the unit
  /// of columnar scans (BUC partitioning, cardinality sampling). Only valid
  /// on plain relations: once DictionaryEncode() has replaced a column with
  /// codes there is no int64 array to span — scan below serves both forms.
  std::span<const int64_t> column(int d) const {
    SPCUBE_DCHECK(!encoded_ ||
                  dims_[static_cast<size_t>(d)].code_width == 8)
        << "column() on a dictionary-encoded dimension; use scan()";
    return cols_[static_cast<size_t>(d)];
  }

  /// Width-tagged zero-copy cursor over one dimension's *stored* values:
  /// dictionary codes when encoded, raw int64 values otherwise. The
  /// dictionary is sorted, so codes are order-preserving — comparisons and
  /// equality over scan values agree with the decoded values, which is all
  /// BUC partitioning and PipeSort ordering need. Borrowed like a column
  /// span: valid only while the relation outlives it and is not mutated.
  class ColumnScan {
   public:
    int64_t operator[](size_t i) const {
      switch (width_) {
        case 1: return static_cast<const uint8_t*>(data_)[i];
        case 2: return static_cast<const uint16_t*>(data_)[i];
        case 4: return static_cast<const uint32_t*>(data_)[i];
        default: return static_cast<const int64_t*>(data_)[i];
      }
    }

   private:
    friend class Relation;
    ColumnScan(const void* data, uint8_t width)
        : data_(data), width_(width) {}

    // spcube-analyzer: allow(view-escape): ColumnScan is a borrow like a column span; callers keep the relation alive for the scan's (stack) lifetime
    const void* data_;
    uint8_t width_;
  };

  ColumnScan scan(int d) const {
    const size_t dd = static_cast<size_t>(d);
    if (encoded_) {
      const DimColumn& col = dims_[dd];
      switch (col.code_width) {
        case 1: return ColumnScan(col.codes8.data(), 1);
        case 2: return ColumnScan(col.codes16.data(), 2);
        case 4: return ColumnScan(col.codes32.data(), 4);
        default: break;
      }
    }
    return ColumnScan(cols_[dd].data(), 8);
  }

  /// Freezes the relation and dictionary-encodes every dimension column:
  /// sorted unique values per dimension, plus a code array whose width is
  /// picked by cardinality (u8 <= 256 distinct, u16 <= 65536, u32 beyond;
  /// a dimension too wide for u32 codes keeps its raw column). The plain
  /// int64 columns are freed. Appends abort afterwards, and the lifetime
  /// epoch is bumped — outstanding views and column spans are invalidated
  /// exactly as by an append. Idempotent.
  void DictionaryEncode();

  bool dictionary_encoded() const { return encoded_; }

  /// Sorted distinct values of an encoded dimension (empty for plain
  /// relations and raw-fallback dimensions).
  std::span<const int64_t> dictionary(int d) const {
    if (!encoded_) return {};
    return dims_[static_cast<size_t>(d)].dict;
  }

  std::span<const int64_t> measures() const { return measures_; }

  /// Bumped by every append (a push_back may reallocate the columns, so any
  /// outstanding borrow is suspect). RelationView stamps this at
  /// construction and, under SPCUBE_LIFETIME_CHECKS, aborts when a read
  /// goes through a view whose relation has since been appended to.
  /// Maintained unconditionally so mixed-TU builds agree on layout.
  uint64_t lifetime_epoch() const { return lifetime_epoch_; }

  /// Logical tuple footprint in bytes (used for the memory model):
  /// num_rows * (num_dims + 1) int64s, identical to the row-major layout.
  /// Deliberately independent of dictionary encoding — the paper's m is a
  /// budget on tuple data, and modeled spill/memory schedules must be
  /// bit-identical between plain and encoded representations.
  int64_t ByteSize() const {
    return num_rows() * static_cast<int64_t>(num_dims() + 1) *
           static_cast<int64_t>(sizeof(int64_t));
  }

  /// Actual in-memory bytes of the current representation: raw columns and
  /// measures at 8 bytes per cell, plus dictionaries and narrow code arrays
  /// when encoded. Equals ByteSize() for plain relations.
  int64_t PhysicalByteSize() const;

 private:
  /// One dictionary-encoded dimension: sorted distinct values plus a code
  /// array in exactly one of the width-specific vectors (selected by
  /// code_width; 8 means raw fallback — the plain column was kept).
  struct DimColumn {
    std::vector<int64_t> dict;
    std::vector<uint8_t> codes8;
    std::vector<uint16_t> codes16;
    std::vector<uint32_t> codes32;
    uint8_t code_width = 8;
  };

  Schema schema_;
  std::vector<std::vector<int64_t>> cols_;  // one contiguous array per dim
  std::vector<DimColumn> dims_;             // filled by DictionaryEncode
  std::vector<int64_t> measures_;           // one per row
  uint64_t lifetime_epoch_ = 0;             // see lifetime_epoch()
  bool encoded_ = false;                    // see DictionaryEncode
};

}  // namespace spcube

#endif  // SPCUBE_RELATION_RELATION_H_
