#ifndef SPCUBE_RELATION_RELATION_H_
#define SPCUBE_RELATION_RELATION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "relation/schema.h"

namespace spcube {

/// A row-major, dictionary-encodable fact table. Dimension values are stored
/// as int64 codes (use Dictionary to map strings); the measure is an int64.
/// Rows are append-only; the MapReduce engine splits a relation into
/// contiguous row ranges, one per mapper, mirroring equal HDFS input splits
/// (paper §2.3).
class Relation {
 public:
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_dims() const { return schema_.num_dims(); }
  int64_t num_rows() const {
    return static_cast<int64_t>(measures_.size());
  }

  void Reserve(int64_t rows) {
    dims_.reserve(static_cast<size_t>(rows) *
                  static_cast<size_t>(num_dims()));
    measures_.reserve(static_cast<size_t>(rows));
  }

  /// Appends a row; `dims.size()` must equal num_dims().
  void AppendRow(std::span<const int64_t> dims, int64_t measure);

  /// Dimension values of a row as a borrowed span of length num_dims().
  std::span<const int64_t> row(int64_t r) const {
    return {dims_.data() + static_cast<size_t>(r) *
                               static_cast<size_t>(num_dims()),
            static_cast<size_t>(num_dims())};
  }

  int64_t dim(int64_t r, int d) const {
    return dims_[static_cast<size_t>(r) * static_cast<size_t>(num_dims()) +
                 static_cast<size_t>(d)];
  }

  int64_t measure(int64_t r) const {
    return measures_[static_cast<size_t>(r)];
  }

  /// Approximate in-memory footprint in bytes (used for the memory model).
  int64_t ByteSize() const {
    return static_cast<int64_t>(dims_.size() * sizeof(int64_t) +
                                measures_.size() * sizeof(int64_t));
  }

  /// Copies rows [begin, end) into a new relation with the same schema.
  Relation Slice(int64_t begin, int64_t end) const;

 private:
  Schema schema_;
  std::vector<int64_t> dims_;      // row-major, num_dims per row
  std::vector<int64_t> measures_;  // one per row
};

}  // namespace spcube

#endif  // SPCUBE_RELATION_RELATION_H_
