#include "relation/relation.h"

#include <algorithm>

#include "common/logging.h"

namespace spcube {

void Relation::AppendRow(std::span<const int64_t> dims, int64_t measure) {
  SPCUBE_CHECK(!encoded_) << "AppendRow on a dictionary-encoded relation";
  SPCUBE_DCHECK(static_cast<int>(dims.size()) == num_dims())
      << "row arity mismatch: got " << dims.size() << ", schema has "
      << num_dims();
  for (size_t d = 0; d < dims.size(); ++d) {
    cols_[d].push_back(dims[d]);
  }
  measures_.push_back(measure);
  lifetime_epoch_ += 1;
}

void Relation::AppendRow(RowRef row, int64_t measure) {
  SPCUBE_CHECK(!encoded_) << "AppendRow on a dictionary-encoded relation";
  SPCUBE_DCHECK(static_cast<int>(row.size()) == num_dims())
      << "row arity mismatch: got " << row.size() << ", schema has "
      << num_dims();
  for (size_t d = 0; d < row.size(); ++d) {
    cols_[d].push_back(row[static_cast<int>(d)]);
  }
  measures_.push_back(measure);
  lifetime_epoch_ += 1;
}

void Relation::DictionaryEncode() {
  if (encoded_) return;
  dims_.assign(cols_.size(), DimColumn{});
  const size_t rows = measures_.size();
  for (size_t d = 0; d < cols_.size(); ++d) {
    std::vector<int64_t>& raw = cols_[d];
    DimColumn& col = dims_[d];

    std::vector<int64_t> dict(raw.begin(), raw.end());
    std::sort(dict.begin(), dict.end());
    dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
    if (dict.size() > (size_t{1} << 32)) {
      // Cardinality exceeds u32 codes: keep the raw column (code_width 8).
      continue;
    }
    col.dict = std::move(dict);

    const size_t card = col.dict.size();
    col.code_width = card <= (size_t{1} << 8)    ? 1
                     : card <= (size_t{1} << 16) ? 2
                                                 : 4;
    const auto code_of = [&col](int64_t v) {
      return static_cast<size_t>(
          std::lower_bound(col.dict.begin(), col.dict.end(), v) -
          col.dict.begin());
    };
    switch (col.code_width) {
      case 1:
        col.codes8.reserve(rows);
        for (int64_t v : raw) {
          col.codes8.push_back(static_cast<uint8_t>(code_of(v)));
        }
        break;
      case 2:
        col.codes16.reserve(rows);
        for (int64_t v : raw) {
          col.codes16.push_back(static_cast<uint16_t>(code_of(v)));
        }
        break;
      default:
        col.codes32.reserve(rows);
        for (int64_t v : raw) {
          col.codes32.push_back(static_cast<uint32_t>(code_of(v)));
        }
        break;
    }
    std::vector<int64_t>().swap(raw);  // release the plain column
  }
  encoded_ = true;
  // Encoding moves the backing storage, so outstanding borrows (views,
  // column spans) are as suspect as after an append.
  lifetime_epoch_ += 1;
}

int64_t Relation::PhysicalByteSize() const {
  int64_t bytes =
      static_cast<int64_t>(measures_.size()) * static_cast<int64_t>(sizeof(int64_t));
  for (const std::vector<int64_t>& col : cols_) {
    bytes += static_cast<int64_t>(col.size() * sizeof(int64_t));
  }
  for (const DimColumn& col : dims_) {
    bytes += static_cast<int64_t>(col.dict.size() * sizeof(int64_t));
    bytes += static_cast<int64_t>(col.codes8.size());
    bytes += static_cast<int64_t>(col.codes16.size() * sizeof(uint16_t));
    bytes += static_cast<int64_t>(col.codes32.size() * sizeof(uint32_t));
  }
  return bytes;
}

}  // namespace spcube
