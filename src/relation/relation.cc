#include "relation/relation.h"

#include "common/logging.h"

namespace spcube {

void Relation::AppendRow(std::span<const int64_t> dims, int64_t measure) {
  SPCUBE_DCHECK(static_cast<int>(dims.size()) == num_dims())
      << "row arity mismatch: got " << dims.size() << ", schema has "
      << num_dims();
  dims_.insert(dims_.end(), dims.begin(), dims.end());
  measures_.push_back(measure);
}

Relation Relation::Slice(int64_t begin, int64_t end) const {
  SPCUBE_DCHECK(begin >= 0 && begin <= end && end <= num_rows())
      << "bad slice [" << begin << ", " << end << ")";
  Relation out(schema_);
  out.Reserve(end - begin);
  for (int64_t r = begin; r < end; ++r) {
    out.AppendRow(row(r), measure(r));
  }
  return out;
}

}  // namespace spcube
