#include "relation/relation.h"

#include "common/logging.h"

namespace spcube {

void Relation::AppendRow(std::span<const int64_t> dims, int64_t measure) {
  SPCUBE_DCHECK(static_cast<int>(dims.size()) == num_dims())
      << "row arity mismatch: got " << dims.size() << ", schema has "
      << num_dims();
  for (size_t d = 0; d < dims.size(); ++d) {
    cols_[d].push_back(dims[d]);
  }
  measures_.push_back(measure);
  lifetime_epoch_ += 1;
}

void Relation::AppendRow(RowRef row, int64_t measure) {
  SPCUBE_DCHECK(static_cast<int>(row.size()) == num_dims())
      << "row arity mismatch: got " << row.size() << ", schema has "
      << num_dims();
  for (size_t d = 0; d < row.size(); ++d) {
    cols_[d].push_back(row[static_cast<int>(d)]);
  }
  measures_.push_back(measure);
  lifetime_epoch_ += 1;
}

}  // namespace spcube
