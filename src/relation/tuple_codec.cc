#include "relation/tuple_codec.h"

namespace spcube {

Status DecodeTuple(std::string_view bytes, std::vector<int64_t>* dims,
                   int64_t* measure) {
  ByteReader reader(bytes);
  uint64_t count = 0;
  SPCUBE_RETURN_IF_ERROR(reader.GetVarint(&count));
  dims->clear();
  dims->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    SPCUBE_RETURN_IF_ERROR(reader.GetVarintSigned(&v));
    dims->push_back(v);
  }
  SPCUBE_RETURN_IF_ERROR(reader.GetVarintSigned(measure));
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Status::OK();
}

}  // namespace spcube
