// Tests for the SP-Sketch data structure and its sampling-based builder
// (paper §4): skew detection, partition elements, ownership rule, accuracy
// propositions 4.4-4.7 at test scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cube/cube_result.h"
#include "relation/generators.h"
#include "sketch/builder.h"
#include "sketch/sp_sketch.h"

namespace spcube {
namespace {

TEST(SpSketchTest, SkewAddAndQuery) {
  SpSketch sketch(3, 4);
  const std::vector<int64_t> tuple = {7, 8, 9};
  sketch.AddSkew(GroupKey::Project(0b011, tuple), 100);
  EXPECT_TRUE(sketch.IsSkewedTuple(0b011, tuple));
  EXPECT_TRUE(sketch.IsSkewedKey(GroupKey(0b011, {7, 8})));
  EXPECT_FALSE(sketch.IsSkewedTuple(0b111, tuple));
  EXPECT_FALSE(sketch.IsSkewedTuple(0b011, std::vector<int64_t>{7, 9, 9}));
  // Same projected values under a different mask are a different group.
  EXPECT_FALSE(sketch.IsSkewedKey(GroupKey(0b101, {7, 8})));
  EXPECT_EQ(sketch.TotalSkewedGroups(), 1);
  EXPECT_EQ(sketch.SkewedGroupsInCuboid(0b011), 1);
  EXPECT_EQ(sketch.SkewedGroupsInCuboid(0b111), 0);
}

TEST(SpSketchTest, AddSkewIsIdempotentKeepingLargerEstimate) {
  SpSketch sketch(2, 2);
  GroupKey key(0b01, {5});
  sketch.AddSkew(key, 10);
  sketch.AddSkew(key, 30);
  sketch.AddSkew(key, 20);
  EXPECT_EQ(sketch.TotalSkewedGroups(), 1);
}

TEST(SpSketchTest, ProjectedLookupMatchesKeyLookup) {
  // The allocation-free tuple lookup must agree with the key lookup for
  // every mask (they share the hash function by construction).
  SpSketch sketch(4, 4);
  const std::vector<int64_t> tuple = {1, -2, 3, 400000000000LL};
  for (CuboidMask mask = 0; mask < 16; ++mask) {
    if (mask % 3 == 0) {
      sketch.AddSkew(GroupKey::Project(mask, tuple), 50);
    }
  }
  for (CuboidMask mask = 0; mask < 16; ++mask) {
    EXPECT_EQ(sketch.IsSkewedTuple(mask, tuple),
              sketch.IsSkewedKey(GroupKey::Project(mask, tuple)))
        << mask;
  }
}

TEST(SpSketchTest, PartitionElementsValidation) {
  SpSketch sketch(2, 3);
  // Wrong mask inside elements.
  EXPECT_FALSE(
      sketch.SetPartitionElements(0b01, {GroupKey(0b10, {1})}).ok());
  // Too many elements (k-1 = 2 allowed).
  EXPECT_FALSE(sketch
                   .SetPartitionElements(0b01, {GroupKey(0b01, {1}),
                                                GroupKey(0b01, {2}),
                                                GroupKey(0b01, {3})})
                   .ok());
  // Unsorted.
  EXPECT_FALSE(sketch
                   .SetPartitionElements(0b01, {GroupKey(0b01, {5}),
                                                GroupKey(0b01, {2})})
                   .ok());
  // Valid.
  EXPECT_TRUE(sketch
                  .SetPartitionElements(0b01, {GroupKey(0b01, {2}),
                                               GroupKey(0b01, {5})})
                  .ok());
}

TEST(SpSketchTest, PartitionOfImplementsDefinition41) {
  SpSketch sketch(1, 4);
  ASSERT_TRUE(sketch
                  .SetPartitionElements(0b1, {GroupKey(0b1, {10}),
                                              GroupKey(0b1, {20}),
                                              GroupKey(0b1, {30})})
                  .ok());
  // Partition i = number of elements strictly smaller than the tuple:
  // t <= 10 -> 0; 10 < t <= 20 -> 1; 20 < t <= 30 -> 2; t > 30 -> 3.
  auto partition_of = [&](int64_t v) {
    return sketch.PartitionOfTuple(0b1, std::vector<int64_t>{v});
  };
  EXPECT_EQ(partition_of(5), 0);
  EXPECT_EQ(partition_of(10), 0);
  EXPECT_EQ(partition_of(11), 1);
  EXPECT_EQ(partition_of(20), 1);
  EXPECT_EQ(partition_of(25), 2);
  EXPECT_EQ(partition_of(30), 2);
  EXPECT_EQ(partition_of(31), 3);
  EXPECT_EQ(sketch.PartitionOfKey(GroupKey(0b1, {15})), 1);
  EXPECT_EQ(sketch.PartitionOfKey(GroupKey(0b1, {10})), 0);
}

TEST(SpSketchTest, PartitionOfEmptyElementsIsZero) {
  SpSketch sketch(2, 4);
  EXPECT_EQ(sketch.PartitionOfTuple(0b11, std::vector<int64_t>{1, 2}), 0);
}

TEST(SpSketchTest, OwnerMaskIsBfsFirstNonSkewedSubset) {
  SpSketch sketch(3, 4);
  const std::vector<int64_t> tuple = {1, 2, 3};
  // Make the apex and both single-attribute groups of dims 0/1 skewed.
  sketch.AddSkew(GroupKey::Project(0b000, tuple), 100);
  sketch.AddSkew(GroupKey::Project(0b001, tuple), 100);
  sketch.AddSkew(GroupKey::Project(0b010, tuple), 100);

  // Owner of (1,2,*): subsets in BFS order: {}, {0}, {1}, {0,1} — first
  // three are skewed, so the owner is {0,1} = the group itself.
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b011, tuple)), 0b011u);
  // Owner of (*,*,3): subsets {} (skewed), {2} (not skewed) -> {2}.
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b100, tuple)), 0b100u);
  // Owner of (1,*,3): subsets {}, {0} skewed; {2} non-skewed -> {2}.
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b101, tuple)), 0b100u);
  // Owner of the full group: {2} is its BFS-first non-skewed subset.
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b111, tuple)), 0b100u);
}

TEST(SpSketchTest, OwnerMaskNoOwnerWhenAllSubsetsSkewed) {
  SpSketch sketch(2, 4);
  const std::vector<int64_t> tuple = {4, 5};
  for (CuboidMask mask = 0; mask < 4; ++mask) {
    sketch.AddSkew(GroupKey::Project(mask, tuple), 100);
  }
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b11, tuple)), kNoOwner);
  EXPECT_EQ(sketch.OwnerMask(GroupKey::Project(0b01, tuple)), kNoOwner);
}

TEST(SpSketchTest, OwnerMaskWithEmptySketchIsApex) {
  SpSketch sketch(3, 4);
  EXPECT_EQ(sketch.OwnerMask(GroupKey(0b111, {1, 2, 3})), 0u);
}

// Every non-skewed group's owner must itself be a "minimal non-skewed"
// group (all strict subsets skewed) — the uniqueness the routing relies on.
TEST(SpSketchTest, OwnerIsAlwaysMinimalNonSkewed) {
  Relation rel = GenBinomial(2000, 4, 0.5, 3);
  SketchBuildConfig config;
  config.num_partitions = 4;
  config.memory_tuples_m = 100;
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());
  for (int64_t r = 0; r < 200; ++r) {
    const auto tuple = rel.row(r);
    for (CuboidMask mask = 0; mask < 16; ++mask) {
      GroupKey key = GroupKey::Project(mask, tuple);
      const CuboidMask owner = sketch->OwnerMask(key);
      if (owner == kNoOwner) {
        EXPECT_TRUE(sketch->IsSkewedTuple(mask, tuple));
        continue;
      }
      EXPECT_TRUE(IsSubsetMask(owner, mask));
      EXPECT_FALSE(sketch->IsSkewedTuple(owner, tuple));
      for (CuboidMask sub : ImmediateDescendants(owner)) {
        EXPECT_TRUE(sketch->IsSkewedTuple(sub, tuple))
            << "owner not minimal";
      }
    }
  }
}

TEST(SpSketchTest, SerializeDeserializeRoundTrip) {
  SpSketch sketch(3, 4);
  const std::vector<int64_t> tuple = {10, 20, 30};
  sketch.AddSkew(GroupKey::Project(0b001, tuple), 1234);
  sketch.AddSkew(GroupKey::Project(0b111, tuple), 77);
  ASSERT_TRUE(sketch
                  .SetPartitionElements(0b010, {GroupKey(0b010, {1}),
                                                GroupKey(0b010, {9})})
                  .ok());

  const std::string bytes = sketch.Serialize();
  auto decoded = SpSketch::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_dims(), 3);
  EXPECT_EQ(decoded->num_partitions(), 4);
  EXPECT_EQ(decoded->TotalSkewedGroups(), 2);
  EXPECT_TRUE(decoded->IsSkewedTuple(0b001, tuple));
  EXPECT_TRUE(decoded->IsSkewedTuple(0b111, tuple));
  EXPECT_FALSE(decoded->IsSkewedTuple(0b011, tuple));
  ASSERT_EQ(decoded->PartitionElements(0b010).size(), 2u);
  EXPECT_EQ(decoded->PartitionElements(0b010)[1].values[0], 9);
  EXPECT_EQ(decoded->SerializedByteSize(),
            static_cast<int64_t>(bytes.size()));
}

TEST(SpSketchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SpSketch::Deserialize("not a sketch").ok());
  EXPECT_FALSE(SpSketch::Deserialize("").ok());
  SpSketch sketch(2, 2);
  std::string bytes = sketch.Serialize();
  bytes += "trailing";
  EXPECT_FALSE(SpSketch::Deserialize(bytes).ok());
}

TEST(SketchBuildConfigTest, AlphaBetaMath) {
  SketchBuildConfig config;
  config.num_partitions = 10;
  config.memory_tuples_m = 1000;
  const int64_t n = 100000;
  // alpha = ln(n*k)/m = ln(1e6)/1000 ~ 0.0138.
  EXPECT_NEAR(config.SampleAlpha(n), std::log(1e6) / 1000.0, 1e-9);
  // beta = alpha * m = ln(nk).
  EXPECT_NEAR(config.SkewBeta(n), std::log(1e6), 1e-9);
  EXPECT_EQ(config.EffectiveM(n), 1000);

  // Tiny inputs: alpha caps at 1 and beta degrades to m, the exact
  // threshold (ln(8*2) / 1 > 1).
  SketchBuildConfig exact;
  exact.num_partitions = 2;
  exact.memory_tuples_m = 1;
  EXPECT_EQ(exact.SampleAlpha(8), 1.0);
  EXPECT_EQ(exact.SkewBeta(8), 1.0);

  // m defaults to n/k.
  SketchBuildConfig derived;
  derived.num_partitions = 4;
  EXPECT_EQ(derived.EffectiveM(1000), 250);
}

TEST(SketchBuilderTest, ExactSketchWithFullSample) {
  // With alpha = 1 the sketch is the utopian one: skews are exactly the
  // groups with |set(g)| > m.
  Relation rel(MakeAnonymousSchema(2));
  for (int i = 0; i < 30; ++i) rel.AppendRow(std::vector<int64_t>{1, 1}, 1);
  for (int i = 0; i < 5; ++i) rel.AppendRow(std::vector<int64_t>{2, i}, 1);

  SketchBuildConfig config;
  config.num_partitions = 2;
  config.memory_tuples_m = 10;
  config.sample_rate_multiplier = 1e9;  // force alpha = 1
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());

  // Skewed groups: apex (35), (1,*,) (30), (*,1) (30), (1,1) (30).
  EXPECT_EQ(sketch->TotalSkewedGroups(), 4);
  EXPECT_TRUE(sketch->IsSkewedKey(GroupKey(0b00, {})));
  EXPECT_TRUE(sketch->IsSkewedKey(GroupKey(0b01, {1})));
  EXPECT_TRUE(sketch->IsSkewedKey(GroupKey(0b10, {1})));
  EXPECT_TRUE(sketch->IsSkewedKey(GroupKey(0b11, {1, 1})));
  EXPECT_FALSE(sketch->IsSkewedKey(GroupKey(0b01, {2})));
}

// Proposition 4.5 at test scale: all truly skewed groups are detected
// (with a comfortable margin, planted groups are far above the threshold).
TEST(SketchBuilderTest, DetectsAllPlantedSkews) {
  const int64_t n = 50000;
  Relation rel = GenPlantedSkew(n, 4, {0.3, 0.15}, {50, 50, 50, 50}, 7);
  SketchBuildConfig config;
  config.num_partitions = 8;  // m = 6250; planted groups are 15000/7500
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());
  // Every projection of both planted tuples must be recorded as skewed.
  for (int pattern = 1; pattern <= 2; ++pattern) {
    const std::vector<int64_t> tuple(4, -pattern);
    for (CuboidMask mask = 0; mask < 16; ++mask) {
      EXPECT_TRUE(sketch->IsSkewedTuple(mask, tuple))
          << "pattern " << pattern << " mask " << mask;
    }
  }
}

// No false positives far below the threshold: uniform data with tiny
// groups yields (almost) no skews besides coarse cuboids.
TEST(SketchBuilderTest, UniformDataHasOnlyCoarseSkews) {
  const int64_t n = 50000;
  Relation rel = GenUniform(n, 4, 1000, 11);
  SketchBuildConfig config;
  config.num_partitions = 8;  // m = 6250
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());
  // The apex (n tuples) is skewed; single-attribute groups hold ~n/1000
  // tuples, far below m, and should not be flagged.
  EXPECT_TRUE(sketch->IsSkewedKey(GroupKey(0, {})));
  for (const GroupKey& key : sketch->AllSkewedGroups()) {
    EXPECT_EQ(key.mask, 0u) << key.ToString(4);
  }
}

// Proposition 4.4 at test scale: the Bernoulli sample is close to alpha*n.
TEST(SketchBuilderTest, SampleSizeConcentration) {
  const int64_t n = 200000;
  SketchBuildConfig config;
  config.num_partitions = 10;
  const double alpha = config.SampleAlpha(n);
  Rng rng(13);
  int64_t sampled = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(alpha)) ++sampled;
  }
  const double expected = alpha * static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(sampled), expected,
              4 * std::sqrt(expected));
}

// Proposition 4.6 at test scale: on skew-free data the partition elements
// split every cuboid into near-equal ranges.
TEST(SketchBuilderTest, PartitionsAreBalancedOnUniformData) {
  const int64_t n = 40000;
  const int k = 8;
  Relation rel = GenUniform(n, 3, 10000, 17);
  SketchBuildConfig config;
  config.num_partitions = k;
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());

  for (CuboidMask mask = 1; mask < 8; ++mask) {
    std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
    for (int64_t r = 0; r < n; ++r) {
      ++sizes[static_cast<size_t>(
          sketch->PartitionOfTuple(mask, rel.row(r)))];
    }
    const int64_t expected = n / k;
    for (int64_t size : sizes) {
      EXPECT_LT(size, 2 * expected) << "mask " << mask;
      EXPECT_GT(size, expected / 3) << "mask " << mask;
    }
  }
}

// Proposition 4.7 at test scale: the sketch stays tiny relative to the
// input (the paper reports 6 orders of magnitude on real data).
TEST(SketchBuilderTest, SketchIsSmall) {
  const int64_t n = 100000;
  Relation rel = GenWikiLike(n, 19);
  SketchBuildConfig config;
  config.num_partitions = 16;
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());
  const int64_t sketch_bytes = sketch->SerializedByteSize();
  const int64_t data_bytes = rel.ByteSize();
  EXPECT_LT(sketch_bytes * 50, data_bytes);
  // And bounded by O(2^d * k) entries worth of bytes.
  EXPECT_LT(sketch->TotalSkewedGroups(), NumCuboids(4) * 16);
}

TEST(SketchBuilderTest, EmptyRelation) {
  Relation rel(MakeAnonymousSchema(2));
  SketchBuildConfig config;
  config.num_partitions = 4;
  auto sketch = BuildSketchLocal(rel, config);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->TotalSkewedGroups(), 0);
}

TEST(SketchBuilderTest, DeterministicForSeed) {
  Relation rel = GenZipfPaper(20000, 23);
  SketchBuildConfig config;
  config.num_partitions = 8;
  config.seed = 99;
  auto a = BuildSketchLocal(rel, config);
  auto b = BuildSketchLocal(rel, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Serialize(), b->Serialize());
}

}  // namespace
}  // namespace spcube
