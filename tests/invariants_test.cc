// Metamorphic invariants every correct cube satisfies, checked on the
// output of every distributed algorithm (without consulting the reference
// cube — these catch errors the differential tests would miss if the
// reference itself were wrong):
//   * apex(count) == n; apex(sum) == sum of measures
//   * every cuboid's count values sum to n (each tuple in exactly 1 group)
//   * descendant dominance (Observation 2.6): dropping an attribute never
//     decreases a group's count
//   * group counts: cuboid C has at most min(n, prod of domains) groups
//   * min <= avg <= max per group

#include <gtest/gtest.h>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "baselines/topdown.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "query/cube_store.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 5;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

CubeResult RunCube(CubeAlgorithm& algorithm, const Relation& rel,
                   AggregateKind kind) {
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  CubeRunOptions options;
  options.aggregate = kind;
  auto output = algorithm.Run(engine, rel, options);
  EXPECT_TRUE(output.ok()) << algorithm.name() << ": " << output.status();
  return output.ok() ? std::move(*output->cube) : CubeResult(rel.num_dims());
}

class InvariantsTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<CubeAlgorithm> MakeAlgorithm() {
    switch (GetParam()) {
      case 0:
        return std::make_unique<SpCubeAlgorithm>();
      case 1:
        return std::make_unique<NaiveCubeAlgorithm>();
      case 2:
        return std::make_unique<MrCubeAlgorithm>();
      case 3:
        return std::make_unique<HiveCubeAlgorithm>();
      default:
        return std::make_unique<TopDownCubeAlgorithm>();
    }
  }
};

TEST_P(InvariantsTest, CountInvariants) {
  Relation rel = GenZipfPaper(2500, 171);
  auto algorithm = MakeAlgorithm();
  CubeResult cube = RunCube(*algorithm, rel, AggregateKind::kCount);
  const double n = static_cast<double>(rel.num_rows());

  // Apex holds all tuples; every cuboid partitions the relation.
  EXPECT_EQ(cube.Lookup(GroupKey(0, {})).value(), n);
  CubeStore store(cube);
  for (CuboidMask mask = 0; mask < 16; ++mask) {
    EXPECT_NEAR(store.CuboidTotal(mask), n, 1e-6)
        << algorithm->name() << " cuboid " << mask;
  }

  // Descendant dominance.
  for (const auto& [key, value] : cube.groups()) {
    if (key.mask == 0) continue;
    std::vector<int64_t> expanded(4, 0);
    size_t vi = 0;
    for (int d = 0; d < 4; ++d) {
      if ((key.mask >> d) & 1) expanded[static_cast<size_t>(d)] = key.values[vi++];
    }
    for (CuboidMask coarser : ImmediateDescendants(key.mask)) {
      auto coarser_value =
          cube.Lookup(GroupKey::Project(coarser, expanded));
      ASSERT_TRUE(coarser_value.ok()) << algorithm->name();
      EXPECT_GE(coarser_value.value(), value) << algorithm->name();
    }
  }
}

TEST_P(InvariantsTest, SumAndBoundsInvariants) {
  Relation rel = GenBinomial(2000, 3, 0.4, 173);
  auto algorithm = MakeAlgorithm();
  CubeResult sum_cube = RunCube(*algorithm, rel, AggregateKind::kSum);
  CubeResult min_cube = RunCube(*algorithm, rel, AggregateKind::kMin);
  CubeResult max_cube = RunCube(*algorithm, rel, AggregateKind::kMax);
  CubeResult avg_cube = RunCube(*algorithm, rel, AggregateKind::kAvg);

  double total = 0;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    total += static_cast<double>(rel.measure(r));
  }
  EXPECT_NEAR(sum_cube.Lookup(GroupKey(0, {})).value(), total, 1e-6);

  // All four cubes enumerate the same groups, and min <= avg <= max.
  ASSERT_EQ(sum_cube.num_groups(), avg_cube.num_groups());
  for (const auto& [key, avg] : avg_cube.groups()) {
    auto min_value = min_cube.Lookup(key);
    auto max_value = max_cube.Lookup(key);
    ASSERT_TRUE(min_value.ok());
    ASSERT_TRUE(max_value.ok());
    EXPECT_LE(min_value.value(), avg + 1e-9) << algorithm->name();
    EXPECT_GE(max_value.value() + 1e-9, avg) << algorithm->name();
  }
}

std::string AlgorithmName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "spcube";
    case 1:
      return "naive";
    case 2:
      return "mrcube";
    case 3:
      return "hive";
    default:
      return "topdown";
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, InvariantsTest,
                         ::testing::Range(0, 5), AlgorithmName);

}  // namespace
}  // namespace spcube
