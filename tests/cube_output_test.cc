// Tests for the DFS cube output format (paper §3.1's "one file per cuboid,
// concatenating the reducers' part files").

#include <gtest/gtest.h>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "baselines/topdown.h"
#include "core/cube_output.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

TEST(DfsCubeWriterTest, WriteAndReadBack) {
  DistributedFileSystem dfs;
  DfsCubeWriter writer(&dfs, "out");
  ByteWriter key_writer;
  GroupKey(0b01, {7}).EncodeTo(key_writer);
  ByteWriter value_writer;
  value_writer.PutDouble(3.5);
  ASSERT_TRUE(writer.Collect(2, key_writer.data(), value_writer.data()).ok());

  key_writer.Clear();
  GroupKey(0b11, {7, 8}).EncodeTo(key_writer);
  value_writer.Clear();
  value_writer.PutDouble(1.0);
  ASSERT_TRUE(writer.Collect(0, key_writer.data(), value_writer.data()).ok());

  // Layout: one directory per cuboid, part per reducer.
  EXPECT_TRUE(dfs.Exists("out/cuboid_1/part-2"));
  EXPECT_TRUE(dfs.Exists("out/cuboid_3/part-0"));
  EXPECT_EQ(CuboidPartCount(dfs, "out", 0b01), 1);
  EXPECT_EQ(CuboidPartCount(dfs, "out", 0b10), 0);

  auto cube = ReadCubeFromDfs(dfs, "out", 2);
  ASSERT_TRUE(cube.ok()) << cube.status();
  EXPECT_EQ(cube->num_groups(), 2);
  EXPECT_EQ(cube->Lookup(GroupKey(0b01, {7})).value(), 3.5);
  EXPECT_EQ(cube->Lookup(GroupKey(0b11, {7, 8})).value(), 1.0);
}

TEST(DfsCubeWriterTest, RejectsGarbageKeys) {
  DistributedFileSystem dfs;
  DfsCubeWriter writer(&dfs, "out");
  EXPECT_FALSE(writer.Collect(0, "", "x").ok());
}

TEST(DfsCubeWriterTest, ReadRejectsCorruptPart) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("out/cuboid_0/part-0", "garbage!").ok());
  EXPECT_FALSE(ReadCubeFromDfs(dfs, "out", 2).ok());
}

class DfsOutputAlgorithmTest : public ::testing::Test {
 protected:
  void ExpectDfsMatchesCollected(CubeAlgorithm& algorithm) {
    Relation rel = GenBinomial(1500, 3, 0.4, 121);
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    CubeRunOptions options;
    options.dfs_output_root = "cube/out";
    auto output = algorithm.Run(engine, rel, options);
    ASSERT_TRUE(output.ok()) << algorithm.name() << ": " << output.status();
    auto from_dfs = ReadCubeFromDfs(dfs, "cube/out", 3);
    ASSERT_TRUE(from_dfs.ok()) << algorithm.name() << ": "
                               << from_dfs.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(*output->cube, *from_dfs, 1e-9, &diff))
        << algorithm.name() << ":\n"
        << diff;
    // Every cuboid directory exists.
    for (CuboidMask mask = 0; mask < 8; ++mask) {
      EXPECT_GT(CuboidPartCount(dfs, "cube/out", mask), 0)
          << algorithm.name() << " cuboid " << mask;
    }
  }
};

TEST_F(DfsOutputAlgorithmTest, SpCube) {
  SpCubeAlgorithm algorithm;
  ExpectDfsMatchesCollected(algorithm);
}

TEST_F(DfsOutputAlgorithmTest, Naive) {
  NaiveCubeAlgorithm algorithm;
  ExpectDfsMatchesCollected(algorithm);
}

TEST_F(DfsOutputAlgorithmTest, Hive) {
  HiveCubeAlgorithm algorithm;
  ExpectDfsMatchesCollected(algorithm);
}

TEST_F(DfsOutputAlgorithmTest, MrCube) {
  MrCubeAlgorithm algorithm;
  ExpectDfsMatchesCollected(algorithm);
}

TEST_F(DfsOutputAlgorithmTest, TopDown) {
  TopDownCubeAlgorithm algorithm;
  ExpectDfsMatchesCollected(algorithm);
}

TEST(DfsOutputTest, WorksWithoutInMemoryCollection) {
  Relation rel = GenUniform(800, 2, 10, 123);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions options;
  options.collect_output = false;
  options.dfs_output_root = "only/dfs";
  auto output = sp.Run(engine, rel, options);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->cube, nullptr);
  auto from_dfs = ReadCubeFromDfs(dfs, "only/dfs", 2);
  ASSERT_TRUE(from_dfs.ok());
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(reference, *from_dfs, 1e-9, &diff))
      << diff;
}

}  // namespace
}  // namespace spcube
