// Tests for the sequential BUC algorithm against the reference cube.

#include <gtest/gtest.h>

#include <numeric>
#include <unordered_map>

#include "cube/buc.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

CubeResult RunBucFull(const Relation& rel, AggregateKind kind,
                      const BucOptions& options = {}) {
  CubeResult cube(rel.num_dims());
  BucComputeFull(rel, GetAggregator(kind), options,
                 [&](const GroupKey& key, const AggState& state) {
                   EXPECT_TRUE(
                       cube.AddGroup(key, GetAggregator(kind).Finalize(state))
                           .ok())
                       << "BUC produced a duplicate group";
                 });
  return cube;
}

TEST(BucTest, EmptyRelationProducesNothing) {
  Relation rel(MakeAnonymousSchema(2));
  int calls = 0;
  BucComputeFull(rel, GetAggregator(AggregateKind::kCount), {},
                 [&](const GroupKey&, const AggState&) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(BucTest, SingleTupleProducesFullLattice) {
  Relation rel(MakeAnonymousSchema(3));
  rel.AppendRow(std::vector<int64_t>{1, 2, 3}, 9);
  CubeResult cube = RunBucFull(rel, AggregateKind::kSum);
  EXPECT_EQ(cube.num_groups(), 8);
  for (const auto& [key, value] : cube.groups()) {
    EXPECT_EQ(value, 9.0) << key.ToString(3);
  }
}

class BucVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(BucVsReferenceTest, MatchesReferenceOnRandomData) {
  const auto [num_dims, domain, seed] = GetParam();
  Relation rel = GenUniform(300, num_dims, domain, seed);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg}) {
    CubeResult reference = ComputeCubeReference(rel, kind);
    CubeResult buc = RunBucFull(rel, kind);
    std::string diff;
    EXPECT_TRUE(CubeResult::ApproxEqual(reference, buc, 1e-9, &diff))
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsDomainsSeeds, BucVsReferenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 7),
                       ::testing::Values(1u, 99u)));

TEST(BucTest, SkewedDataMatchesReference) {
  Relation rel = GenBinomial(400, 4, 0.5, 5);
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  CubeResult buc = RunBucFull(rel, AggregateKind::kCount);
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(reference, buc, 1e-9, &diff)) << diff;
}

TEST(BucTest, DimOrderingHeuristicDoesNotChangeOutput) {
  Relation rel = GenZipfPaper(400, 77);
  BucOptions natural;
  natural.order_dims_by_cardinality = false;
  BucOptions heuristic;
  heuristic.order_dims_by_cardinality = true;
  CubeResult a = RunBucFull(rel, AggregateKind::kCount, natural);
  CubeResult b = RunBucFull(rel, AggregateKind::kCount, heuristic);
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(a, b, 1e-9, &diff)) << diff;
}

TEST(BucTest, MinSupportPrunesSmallGroups) {
  // 5 copies of (1,1), 2 copies of (2,2).
  Relation rel(MakeAnonymousSchema(2));
  for (int i = 0; i < 5; ++i) rel.AppendRow(std::vector<int64_t>{1, 1}, 1);
  for (int i = 0; i < 2; ++i) rel.AppendRow(std::vector<int64_t>{2, 2}, 1);

  BucOptions options;
  options.min_support = 3;
  CubeResult cube = RunBucFull(rel, AggregateKind::kCount, options);
  // Reported groups: apex (count 7) and the three projections of the
  // (1,1) group (count 5 each). Everything from (2,2) is pruned.
  EXPECT_EQ(cube.num_groups(), 4);
  EXPECT_EQ(cube.Lookup(GroupKey(0, {})).value(), 7.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b11, {1, 1})).value(), 5.0);
  EXPECT_FALSE(cube.Lookup(GroupKey(0b11, {2, 2})).ok());
}

TEST(BucTest, MinSupportIcebergIsExact) {
  // Iceberg BUC must report exactly the groups whose count >= threshold.
  Relation rel = GenBinomial(500, 3, 0.3, 11);
  const int64_t threshold = 20;
  BucOptions options;
  options.min_support = threshold;
  CubeResult iceberg = RunBucFull(rel, AggregateKind::kCount, options);
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  int64_t expected = 0;
  for (const auto& [key, value] : reference.groups()) {
    if (value >= static_cast<double>(threshold)) {
      ++expected;
      auto found = iceberg.Lookup(key);
      ASSERT_TRUE(found.ok()) << key.ToString(3);
      EXPECT_EQ(found.value(), value);
    }
  }
  EXPECT_EQ(iceberg.num_groups(), expected);
}

TEST(BucTest, BaseMaskRestrictsToAncestors) {
  // Rows share the value 5 on dim 0; base_mask fixes dim 0 so BUC must
  // produce exactly the groups extending (5, *, *).
  Relation rel(MakeAnonymousSchema(3));
  rel.AppendRow(std::vector<int64_t>{5, 1, 1}, 1);
  rel.AppendRow(std::vector<int64_t>{5, 1, 2}, 1);
  rel.AppendRow(std::vector<int64_t>{5, 2, 1}, 1);

  std::unordered_map<GroupKey, double, GroupKeyHash> produced;
  BucCompute(RelationView(rel), /*base_mask=*/0b001,
             GetAggregator(AggregateKind::kCount), {},
             [&](const GroupKey& key, const AggState& state) {
               EXPECT_TRUE(IsSubsetMask(0b001, key.mask));
               EXPECT_EQ(key.values.front(), 5);
               produced[key] = static_cast<double>(state.v0);
             });
  // Groups: (5,*,*)=3, (5,1,*)=2, (5,2,*)=1, (5,*,1)=2, (5,*,2)=1,
  // (5,1,1)=1, (5,1,2)=1, (5,2,1)=1.
  EXPECT_EQ(produced.size(), 8u);
  EXPECT_EQ(produced[GroupKey(0b001, {5})], 3.0);
  EXPECT_EQ(produced[GroupKey(0b011, {5, 1})], 2.0);
  EXPECT_EQ(produced[GroupKey(0b111, {5, 1, 2})], 1.0);
}

TEST(BucTest, FullBaseMaskReportsOnlyTheGroup) {
  Relation rel(MakeAnonymousSchema(2));
  rel.AppendRow(std::vector<int64_t>{1, 2}, 10);
  rel.AppendRow(std::vector<int64_t>{1, 2}, 20);
  int calls = 0;
  BucCompute(RelationView(rel), /*base_mask=*/0b11,
             GetAggregator(AggregateKind::kSum), {},
             [&](const GroupKey& key, const AggState& state) {
               ++calls;
               EXPECT_EQ(key.mask, 0b11u);
               EXPECT_EQ(state.v0, 30);
             });
  EXPECT_EQ(calls, 1);
}

TEST(BucTest, SubsetOfRowsOnly) {
  Relation rel(MakeAnonymousSchema(1));
  for (int64_t i = 0; i < 10; ++i) {
    rel.AppendRow(std::vector<int64_t>{i % 2}, 1);
  }
  // Only even rows (value 0), selected through view row indirection.
  const std::vector<int64_t> rows = {0, 2, 4, 6, 8};
  std::unordered_map<GroupKey, double, GroupKeyHash> produced;
  BucCompute(RelationView(rel, rows), 0,
             GetAggregator(AggregateKind::kCount), {},
             [&](const GroupKey& key, const AggState& state) {
               produced[key] = static_cast<double>(state.v0);
             });
  EXPECT_EQ(produced.size(), 2u);  // apex + the single value-0 group
  EXPECT_EQ(produced[GroupKey(0, {})], 5.0);
  EXPECT_EQ(produced[GroupKey(0b1, {0})], 5.0);
}

}  // namespace
}  // namespace spcube
