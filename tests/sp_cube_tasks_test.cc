// White-box tests of the SP-Cube round-2 tasks (paper Algorithm 3), driven
// directly with hand-crafted sketches: the mapper's minimal-group emission
// and skew-aggregation rules, the partitioner's routing, and the reducer's
// ownership-based ancestor computation.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/bytes.h"
#include "common/logging.h"
#include "core/cube_algorithm.h"
#include "core/sp_cube_tasks.h"
#include "io/dfs.h"
#include "relation/relation.h"
#include "relation/relation_view.h"
#include "relation/tuple_codec.h"
#include "sketch/sp_sketch.h"

namespace spcube {
namespace {

constexpr char kSketchPath[] = "test/sketch";

/// Captures emissions instead of shuffling them.
class CapturingMapContext : public MapContext {
 public:
  struct Emission {
    int explicit_partition;  // -1 when routed via the partitioner
    GroupKey key;
    std::string value;
  };

  Status Emit(std::string_view key, std::string_view value) override {
    return Record(-1, key, value);
  }

  Status EmitToPartition(int partition, std::string_view key,
                         std::string_view value) override {
    return Record(partition, key, value);
  }

  std::vector<Emission> emissions;

 private:
  Status Record(int partition, std::string_view key,
                std::string_view value) {
    ByteReader reader(key);
    GroupKey decoded;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &decoded));
    emissions.push_back(
        Emission{partition, std::move(decoded), std::string(value)});
    return Status::OK();
  }
};

/// Captures reducer outputs.
class CapturingReduceContext : public ReduceContext {
 public:
  Status Output(std::string_view key, std::string_view value) override {
    ByteReader reader(key);
    GroupKey decoded;
    SPCUBE_RETURN_IF_ERROR(GroupKey::DecodeFrom(reader, &decoded));
    SPCUBE_ASSIGN_OR_RETURN(double v, DecodeCubeValue(value));
    outputs[decoded] = v;
    return Status::OK();
  }

  std::map<GroupKey, double> outputs;
};

/// Feeds a fixed vector of values.
class VectorValueStream : public ValueStream {
 public:
  explicit VectorValueStream(std::vector<std::string> values)
      : values_(std::move(values)) {}

  Result<bool> Next(std::string* value) override {
    if (pos_ >= values_.size()) return false;
    *value = values_[pos_++];
    return true;
  }

 private:
  std::vector<std::string> values_;
  size_t pos_ = 0;
};

/// Publishes `sketch` to a fresh DFS and returns a mapper-ready context.
TaskContext MakeTask(DistributedFileSystem* dfs, const SpSketch& sketch,
                     int reduce_partition = -1) {
  SPCUBE_CHECK_OK(dfs->Overwrite(kSketchPath, sketch.Serialize()));
  TaskContext task;
  task.worker_id = 0;
  task.num_workers = 4;
  task.num_reducers = 5;
  task.reduce_partition = reduce_partition;
  task.memory_budget_bytes = 1 << 20;
  task.dfs = dfs;
  return task;
}

Relation OneRow(std::vector<int64_t> dims, int64_t measure) {
  Relation rel(MakeAnonymousSchema(static_cast<int>(dims.size())));
  rel.AppendRow(dims, measure);
  return rel;
}

TEST(SpCubeMapperTest, NoSkewsEmitsApexOnly) {
  // Empty sketch: the apex group is non-skewed and minimal, so the whole
  // tuple lattice is covered by a single emission.
  SpSketch sketch(3, 4);
  DistributedFileSystem dfs;
  SpCubeMapper mapper(kSketchPath, 3, AggregateKind::kCount, {});
  ASSERT_TRUE(mapper.Setup(MakeTask(&dfs, sketch)).ok());

  Relation rel = OneRow({1, 2, 3}, 7);
  CapturingMapContext context;
  ASSERT_TRUE(mapper.Map(RelationView(rel), 0, context).ok());
  ASSERT_TRUE(mapper.Finish(context).ok());
  ASSERT_EQ(context.emissions.size(), 1u);
  EXPECT_EQ(context.emissions[0].key.mask, 0u);
  std::vector<int64_t> dims;
  int64_t measure = 0;
  ASSERT_TRUE(
      DecodeTuple(context.emissions[0].value, &dims, &measure).ok());
  EXPECT_EQ(dims, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(measure, 7);
}

TEST(SpCubeMapperTest, ApexSkewedEmitsSingletons) {
  // Only the apex is skewed: every singleton cuboid is minimal non-skewed,
  // so the tuple ships d times plus one partial state for the apex.
  SpSketch sketch(3, 4);
  sketch.AddSkew(GroupKey(0, {}), 1000);
  DistributedFileSystem dfs;
  SpCubeMapper mapper(kSketchPath, 3, AggregateKind::kCount, {});
  ASSERT_TRUE(mapper.Setup(MakeTask(&dfs, sketch)).ok());

  Relation rel = OneRow({1, 2, 3}, 7);
  CapturingMapContext context;
  ASSERT_TRUE(mapper.Map(RelationView(rel), 0, context).ok());
  ASSERT_EQ(context.emissions.size(), 3u);
  std::set<CuboidMask> masks;
  for (const auto& emission : context.emissions) {
    masks.insert(emission.key.mask);
  }
  EXPECT_EQ(masks, (std::set<CuboidMask>{0b001, 0b010, 0b100}));

  // Finish ships the apex partial (count 1 for the single tuple).
  ASSERT_TRUE(mapper.Finish(context).ok());
  ASSERT_EQ(context.emissions.size(), 4u);
  EXPECT_EQ(context.emissions[3].key.mask, 0u);
  ByteReader reader(context.emissions[3].value);
  AggState state;
  ASSERT_TRUE(AggState::DecodeFrom(reader, &state).ok());
  EXPECT_EQ(state.v0, 1);
}

TEST(SpCubeMapperTest, SkewPartialsAccumulateAcrossRows) {
  SpSketch sketch(2, 4);
  sketch.AddSkew(GroupKey(0, {}), 1000);
  sketch.AddSkew(GroupKey(0b01, {5}), 500);
  DistributedFileSystem dfs;
  SpCubeMapper mapper(kSketchPath, 2, AggregateKind::kSum, {});
  ASSERT_TRUE(mapper.Setup(MakeTask(&dfs, sketch)).ok());

  Relation rel(MakeAnonymousSchema(2));
  rel.AppendRow(std::vector<int64_t>{5, 1}, 10);
  rel.AppendRow(std::vector<int64_t>{5, 2}, 20);
  rel.AppendRow(std::vector<int64_t>{6, 1}, 40);

  CapturingMapContext context;
  for (int64_t r = 0; r < 3; ++r) {
    ASSERT_TRUE(mapper.Map(RelationView(rel), r, context).ok());
  }
  const size_t tuples_shipped = context.emissions.size();
  ASSERT_TRUE(mapper.Finish(context).ok());

  // Partials: apex sum=70, (5,*) sum=30.
  std::map<GroupKey, int64_t> partials;
  for (size_t i = tuples_shipped; i < context.emissions.size(); ++i) {
    ByteReader reader(context.emissions[i].value);
    AggState state;
    ASSERT_TRUE(AggState::DecodeFrom(reader, &state).ok());
    partials[context.emissions[i].key] = state.v0;
  }
  ASSERT_EQ(partials.size(), 2u);
  EXPECT_EQ(partials[GroupKey(0, {})], 70);
  EXPECT_EQ(partials[GroupKey(0b01, {5})], 30);

  // Tuple routing: rows 1-2 ship to ({a1}) minimal groups etc.; crucially
  // rows with a0 = 5 never ship for cuboids whose projection is skewed.
  for (size_t i = 0; i < tuples_shipped; ++i) {
    EXPECT_FALSE(sketch.IsSkewedKey(context.emissions[i].key));
  }
}

TEST(SpCubeMapperTest, MarkingSkipsCoveredAncestors) {
  // Sketch: apex + both singletons of dims 0,1 skewed; dim 2 not. For a
  // tuple, minimal non-skewed groups are {a2} (covers all its ancestors)
  // and {a0,a1} (both of whose immediate descendants are skewed).
  SpSketch sketch(3, 4);
  const std::vector<int64_t> tuple = {1, 2, 3};
  sketch.AddSkew(GroupKey(0, {}), 1000);
  sketch.AddSkew(GroupKey::Project(0b001, tuple), 900);
  sketch.AddSkew(GroupKey::Project(0b010, tuple), 800);
  DistributedFileSystem dfs;
  SpCubeMapper mapper(kSketchPath, 3, AggregateKind::kCount, {});
  ASSERT_TRUE(mapper.Setup(MakeTask(&dfs, sketch)).ok());

  Relation rel = OneRow(tuple, 1);
  CapturingMapContext context;
  ASSERT_TRUE(mapper.Map(RelationView(rel), 0, context).ok());
  std::set<CuboidMask> masks;
  for (const auto& emission : context.emissions) {
    masks.insert(emission.key.mask);
  }
  EXPECT_EQ(masks, (std::set<CuboidMask>{0b100, 0b011}));
}

TEST(SketchRangePartitionerTest, RoutesSkewsToZeroAndRangesByElements) {
  auto sketch = std::make_shared<SpSketch>(1, 4);
  sketch->AddSkew(GroupKey(0b1, {99}), 1000);
  ASSERT_TRUE(sketch
                  ->SetPartitionElements(0b1, {GroupKey(0b1, {10}),
                                               GroupKey(0b1, {20}),
                                               GroupKey(0b1, {30})})
                  .ok());
  SketchRangePartitioner partitioner(sketch);

  auto encode = [](const GroupKey& key) {
    ByteWriter writer;
    key.EncodeTo(writer);
    return writer.TakeData();
  };
  const int num_reducers = 5;  // k=4 ranges + skew reducer
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {99})),
                                  num_reducers),
            0);
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {5})), num_reducers),
            1);
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {15})),
                                  num_reducers),
            2);
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {25})),
                                  num_reducers),
            3);
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {35})),
                                  num_reducers),
            4);
}

TEST(SkewAwareHashPartitionerTest, SkewsToZeroOthersInRange) {
  auto sketch = std::make_shared<SpSketch>(1, 4);
  sketch->AddSkew(GroupKey(0b1, {99}), 1000);
  SkewAwareHashPartitioner partitioner(sketch);
  auto encode = [](const GroupKey& key) {
    ByteWriter writer;
    key.EncodeTo(writer);
    return writer.TakeData();
  };
  EXPECT_EQ(partitioner.Partition(encode(GroupKey(0b1, {99})), 5), 0);
  for (int64_t v = 0; v < 50; ++v) {
    const int p = partitioner.Partition(encode(GroupKey(0b1, {v})), 5);
    EXPECT_GE(p, 1);
    EXPECT_LE(p, 4);
  }
}

TEST(SpCubeReducerTest, SkewReducerMergesPartials) {
  SpSketch sketch(2, 4);
  sketch.AddSkew(GroupKey(0b01, {7}), 100);
  DistributedFileSystem dfs;
  SpCubeReducer reducer(kSketchPath, 2, AggregateKind::kSum, {});
  ASSERT_TRUE(
      reducer.Setup(MakeTask(&dfs, sketch, /*reduce_partition=*/0)).ok());

  auto encode_state = [](int64_t v0, int64_t v1) {
    ByteWriter writer;
    AggState{v0, v1}.EncodeTo(writer);
    return writer.TakeData();
  };
  ByteWriter key_writer;
  GroupKey(0b01, {7}).EncodeTo(key_writer);
  VectorValueStream values(
      {encode_state(10, 0), encode_state(20, 0), encode_state(12, 0)});
  CapturingReduceContext context;
  ASSERT_TRUE(reducer.Reduce(key_writer.data(), values, context).ok());
  ASSERT_EQ(context.outputs.size(), 1u);
  EXPECT_EQ(context.outputs[GroupKey(0b01, {7})], 42.0);
}

TEST(SpCubeReducerTest, RangeReducerComputesOwnedAncestorsOnly) {
  // Sketch: apex skewed, nothing else. For received group g = (5,*) every
  // ancestor's owner is the BFS-first non-skewed subset: for (5,x) masks,
  // subsets are {} (skewed), {a0} -> owner {a0} = g. But for (*,x) groups
  // the owner would be {a1}, handled by a different key; g must not
  // produce them.
  SpSketch sketch(2, 4);
  sketch.AddSkew(GroupKey(0, {}), 1000);
  DistributedFileSystem dfs;
  SpCubeReducer reducer(kSketchPath, 2, AggregateKind::kCount, {});
  ASSERT_TRUE(
      reducer.Setup(MakeTask(&dfs, sketch, /*reduce_partition=*/1)).ok());

  ByteWriter key_writer;
  GroupKey(0b01, {5}).EncodeTo(key_writer);
  VectorValueStream values({EncodeTuple(std::vector<int64_t>{5, 1}, 1),
                            EncodeTuple(std::vector<int64_t>{5, 1}, 1),
                            EncodeTuple(std::vector<int64_t>{5, 2}, 1)});
  CapturingReduceContext context;
  ASSERT_TRUE(reducer.Reduce(key_writer.data(), values, context).ok());

  // Owned outputs: (5,*) = 3, (5,1) = 2, (5,2) = 1. Not (*,1), (*,2), apex.
  ASSERT_EQ(context.outputs.size(), 3u);
  EXPECT_EQ(context.outputs[GroupKey(0b01, {5})], 3.0);
  EXPECT_EQ(context.outputs[(GroupKey(0b11, {5, 1}))], 2.0);
  EXPECT_EQ(context.outputs[(GroupKey(0b11, {5, 2}))], 1.0);
}

TEST(SpCubeReducerTest, ClosureViolatingSketchStillCoversExactlyOnce) {
  // Sketches built from real samples are downward-closed (a skewed group's
  // descendants are skewed), and then skewed groups have no owner and flow
  // through the skew path. This sketch VIOLATES closure: (5,1) is marked
  // skewed while its descendant (5,*) is not. The mapper then never
  // aggregates (5,1) locally (its lattice walk marks it via the emitted
  // (5,*)), and the ownership rule assigns it to (5,*)'s reducer — the
  // group is still produced exactly once, just by the range path. This
  // agreement between marking and ownership is what makes correctness
  // independent of sketch quality.
  SpSketch sketch(2, 4);
  sketch.AddSkew(GroupKey(0, {}), 1000);
  sketch.AddSkew(GroupKey(0b11, {5, 1}), 100);
  EXPECT_EQ(sketch.OwnerMask(GroupKey(0b11, {5, 1})), 0b01u);

  DistributedFileSystem dfs;

  // Mapper side: (5,1) rows are NOT aggregated locally.
  SpCubeMapper mapper(kSketchPath, 2, AggregateKind::kCount, {});
  ASSERT_TRUE(mapper.Setup(MakeTask(&dfs, sketch)).ok());
  Relation rel = OneRow({5, 1}, 1);
  CapturingMapContext map_context;
  ASSERT_TRUE(mapper.Map(RelationView(rel), 0, map_context).ok());
  ASSERT_TRUE(mapper.Finish(map_context).ok());
  // Emissions: tuples for (5,*) and (*,1), then the apex partial from
  // Finish — never a record keyed by the "skewed" (5,1).
  ASSERT_EQ(map_context.emissions.size(), 3u);
  EXPECT_EQ(map_context.emissions[0].key, GroupKey(0b01, {5}));
  EXPECT_EQ(map_context.emissions[1].key, GroupKey(0b10, {1}));
  EXPECT_EQ(map_context.emissions[2].key, GroupKey(0, {}));

  // Reducer side: (5,*)'s reducer outputs (5,1) because it owns it.
  SpCubeReducer reducer(kSketchPath, 2, AggregateKind::kCount, {});
  ASSERT_TRUE(
      reducer.Setup(MakeTask(&dfs, sketch, /*reduce_partition=*/2)).ok());
  ByteWriter key_writer;
  GroupKey(0b01, {5}).EncodeTo(key_writer);
  VectorValueStream values({EncodeTuple(std::vector<int64_t>{5, 1}, 1),
                            EncodeTuple(std::vector<int64_t>{5, 2}, 1)});
  CapturingReduceContext context;
  ASSERT_TRUE(reducer.Reduce(key_writer.data(), values, context).ok());
  EXPECT_EQ(context.outputs.count(GroupKey(0b11, {5, 1})), 1u);
  EXPECT_EQ(context.outputs.count(GroupKey(0b11, {5, 2})), 1u);
  EXPECT_EQ(context.outputs[GroupKey(0b01, {5})], 2.0);
}

TEST(LoadSketchTest, MissingAndCorruptPaths) {
  DistributedFileSystem dfs;
  EXPECT_EQ(LoadSketch(&dfs, "nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(dfs.Overwrite("bad", "garbage").ok());
  EXPECT_FALSE(LoadSketch(&dfs, "bad").ok());
  EXPECT_EQ(LoadSketch(nullptr, "x").status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace spcube
