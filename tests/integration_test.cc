// Cross-algorithm integration tests: the four algorithms agree on every
// workload; the paper's traffic-bound theorems (§5.2) hold at test scale.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig(int workers = 6) {
  EngineConfig config;
  config.num_workers = workers;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

struct NamedRelation {
  const char* name;
  Relation (*make)();
};

Relation Wiki() { return GenWikiLike(3000, 101); }
Relation UsaGov() {
  return ProjectDims(GenUsaGovLike(3000, 102), {0, 1, 2, 3});
}
Relation BinomialMid() { return GenBinomial(3000, 4, 0.4, 103); }
Relation Zipf() { return GenZipfPaper(3000, 104); }
Relation Monotonic() { return GenMonotonicSkew(3000, 4, 0.4, 300, 105); }

class AllAlgorithmsAgreeTest
    : public ::testing::TestWithParam<NamedRelation> {};

TEST_P(AllAlgorithmsAgreeTest, IdenticalCubes) {
  Relation rel = GetParam().make();
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);

  SpCubeAlgorithm sp;
  NaiveCubeAlgorithm naive;
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  for (CubeAlgorithm* algorithm : std::initializer_list<CubeAlgorithm*>{
           &sp, &naive, &mrcube, &hive}) {
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    auto output = algorithm->Run(engine, rel, {});
    ASSERT_TRUE(output.ok()) << algorithm->name() << ": " << output.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << algorithm->name() << " on " << GetParam().name << ":\n"
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, AllAlgorithmsAgreeTest,
    ::testing::Values(NamedRelation{"wiki", Wiki},
                      NamedRelation{"usagov", UsaGov},
                      NamedRelation{"binomial", BinomialMid},
                      NamedRelation{"zipf", Zipf},
                      NamedRelation{"monotonic", Monotonic}),
    [](const ::testing::TestParamInfo<NamedRelation>& info) {
      return info.param.name;
    });

int64_t SpCubeRound2Records(const Relation& rel, int workers) {
  DistributedFileSystem dfs;
  Engine engine(TestConfig(workers), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions options;
  options.collect_output = false;
  auto output = sp.Run(engine, rel, options);
  EXPECT_TRUE(output.ok()) << output.status();
  return output->metrics.rounds[1].map_output_records;
}

// Theorem 5.3's regime: when skew stops exactly at the middle lattice
// level, every tuple's minimal non-skewed groups are the ~C(d, d/2+1)
// middle-level cuboids, so traffic is a constant fraction of 2^d * n.
// A binary-domain uniform relation realizes this cleanly: level-l group
// sizes concentrate around n / 2^l, so choosing m between the level-3 and
// level-4 sizes (d = 6) makes all level-<=3 groups skewed and (almost) all
// level->=4 groups non-skewed.
TEST(TrafficBoundsTest, WorstCaseRelationIsExponential) {
  const int d = 6;
  const int64_t n = 4000;
  Relation rel = GenUniform(n, d, 2, 109);

  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);
  SpCubeOptions options;
  // Level-3 groups hold ~500 tuples, level-4 groups ~250.
  options.sketch.memory_tuples_m = 300;
  options.sketch.sample_rate_multiplier = 8.0;  // tight skew estimates
  SpCubeAlgorithm sp(options);
  CubeRunOptions run_options;
  run_options.collect_output = false;
  auto output = sp.Run(engine, rel, run_options);
  ASSERT_TRUE(output.ok()) << output.status();

  const int64_t records = output->metrics.rounds[1].map_output_records;
  // ~C(6,4) = 15 emissions per tuple: well above any O(d) regime and a
  // sizable fraction of the trivial 2^d cap.
  EXPECT_GT(records, n * (d + 2));
  EXPECT_LE(records, n * (int64_t{1} << d));
}

// Proposition 5.5: on skewness-monotonic relations traffic is O(d^2 n) —
// in fact each tuple ships at most d+1 times here.
TEST(TrafficBoundsTest, MonotonicSkewIsLinearish) {
  const int d = 6;
  Relation rel = GenMonotonicSkew(4000, d, 0.5, 1000, 111);
  const int64_t records = SpCubeRound2Records(rel, 5);
  EXPECT_LE(records, rel.num_rows() * (d + 2));
}

// Proposition 5.6 regime: independently skewed attributes still yield
// polynomial traffic, far below naive's 2^d factor.
TEST(TrafficBoundsTest, IndependentSkewIsPolynomial) {
  const int d = 6;
  Relation rel = GenIndependentSkew(4000, d, 0.3, 200, 113);
  const int64_t records = SpCubeRound2Records(rel, 5);
  EXPECT_LT(records, rel.num_rows() * d * d);
  EXPECT_LT(records, rel.num_rows() * (int64_t{1} << d) / 2);
}

// The headline comparison the evaluation repeats everywhere: SP-Cube moves
// less intermediate data than every baseline, on every distribution.
TEST(TrafficComparisonTest, SpCubeShipsLeast) {
  for (auto make : {Wiki, BinomialMid, Zipf}) {
    Relation rel = make();
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    CubeRunOptions options;
    options.collect_output = false;

    SpCubeAlgorithm sp;
    NaiveCubeAlgorithm naive;
    HiveCubeAlgorithm hive;
    auto sp_out = sp.Run(engine, rel, options);
    auto naive_out = naive.Run(engine, rel, options);
    auto hive_out = hive.Run(engine, rel, options);
    ASSERT_TRUE(sp_out.ok());
    ASSERT_TRUE(naive_out.ok());
    ASSERT_TRUE(hive_out.ok());
    EXPECT_LT(sp_out->metrics.ShuffleBytes(),
              naive_out->metrics.ShuffleBytes());
    EXPECT_LT(sp_out->metrics.ShuffleBytes(),
              hive_out->metrics.ShuffleBytes());
  }
}

// The sketch is aggregate-independent (§4): one sketch, many measures.
// Run SP-Cube with different aggregates on the same relation and verify
// each against the reference.
TEST(SketchReuseTest, SameRelationManyAggregates) {
  Relation rel = GenWikiLike(2000, 117);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    SpCubeAlgorithm sp;
    CubeRunOptions options;
    options.aggregate = kind;
    auto output = sp.Run(engine, rel, options);
    ASSERT_TRUE(output.ok());
    CubeResult reference = ComputeCubeReference(rel, kind);
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << diff;
  }
}

// Output sizes: every algorithm must produce exactly one tuple per c-group.
TEST(OutputCardinalityTest, MatchesReferenceGroupCount) {
  Relation rel = GenZipfPaper(2500, 119);
  const int64_t expected =
      ComputeCubeReference(rel, AggregateKind::kCount).num_groups();
  SpCubeAlgorithm sp;
  NaiveCubeAlgorithm naive;
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  for (CubeAlgorithm* algorithm : std::initializer_list<CubeAlgorithm*>{
           &sp, &naive, &mrcube, &hive}) {
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    auto output = algorithm->Run(engine, rel, {});
    ASSERT_TRUE(output.ok()) << algorithm->name();
    EXPECT_EQ(output->cube->num_groups(), expected) << algorithm->name();
  }
}

}  // namespace
}  // namespace spcube
