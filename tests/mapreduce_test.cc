// Tests for the simulated MapReduce engine: mapping, shuffling, combining,
// spilling, memory policies, metrics and record-input rounds.

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "common/bytes.h"
#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "relation/generators.h"

namespace spcube {
namespace {

/// Emits (dim0 value as decimal string, "1") per row.
class TokenMapper : public Mapper {
 public:
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    return context.Emit(std::to_string(input.dim(row, 0)), "1");
  }
};

/// Outputs (key, count of values as decimal string).
class CountReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t count = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      count += std::stoll(value);
    }
    return context.Output(key, std::to_string(count));
  }
};

/// Combiner that sums decimal-string values.
class SumCombiner : public Combiner {
 public:
  Status Combine(const std::string& /*key*/,
                 const std::vector<std::string>& values,
                 std::vector<std::string>* combined) const override {
    int64_t total = 0;
    for (const std::string& value : values) total += std::stoll(value);
    combined->assign(1, std::to_string(total));
    return Status::OK();
  }
};

JobSpec CountJob() {
  JobSpec spec;
  spec.name = "count";
  spec.mapper_factory = [] { return std::make_unique<TokenMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  return spec;
}

std::map<std::string, int64_t> DirectCounts(const Relation& rel) {
  std::map<std::string, int64_t> counts;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    ++counts[std::to_string(rel.dim(r, 0))];
  }
  return counts;
}

std::map<std::string, int64_t> CollectorCounts(
    const VectorOutputCollector& collector) {
  std::map<std::string, int64_t> counts;
  for (const auto& entry : collector.entries()) {
    counts[entry.key] += std::stoll(entry.value);
  }
  return counts;
}

class MapReduceTest : public ::testing::Test {
 protected:
  EngineConfig DefaultConfig() {
    EngineConfig config;
    config.num_workers = 4;
    config.memory_budget_bytes = 1 << 20;
    config.network_bandwidth_bytes_per_sec = 0;  // no modeled time in tests
    return config;
  }

  DistributedFileSystem dfs_;
};

TEST_F(MapReduceTest, CountJobMatchesDirectComputation) {
  Relation rel = GenUniform(2000, 1, 37, 5);
  Engine engine(DefaultConfig(), &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  EXPECT_EQ(metrics->map_input_records, 2000);
  EXPECT_EQ(metrics->map_output_records, 2000);
  EXPECT_EQ(metrics->shuffle_records, 2000);
  EXPECT_EQ(metrics->output_records,
            static_cast<int64_t>(DirectCounts(rel).size()));
}

TEST_F(MapReduceTest, EachGroupReducedExactlyOnce) {
  Relation rel = GenUniform(500, 1, 20, 7);
  Engine engine(DefaultConfig(), &dfs_);
  VectorOutputCollector collector;
  ASSERT_TRUE(engine.Run(CountJob(), rel, &collector).ok());
  std::set<std::string> keys;
  for (const auto& entry : collector.entries()) {
    EXPECT_TRUE(keys.insert(entry.key).second)
        << "key reduced twice: " << entry.key;
  }
}

TEST_F(MapReduceTest, ReducerInputAccountingIsConsistent) {
  Relation rel = GenUniform(1000, 1, 13, 9);
  Engine engine(DefaultConfig(), &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok());
  const int64_t total_inputs =
      std::accumulate(metrics->reducer_input_records.begin(),
                      metrics->reducer_input_records.end(), int64_t{0});
  EXPECT_EQ(total_inputs, metrics->shuffle_records);
  EXPECT_GE(metrics->ReducerImbalance(), 1.0);
  EXPECT_EQ(static_cast<int>(metrics->reducer_input_records.size()), 4);
}

TEST_F(MapReduceTest, CombinerReducesShuffleButNotResults) {
  Relation rel = GenUniform(4000, 1, 5, 11);  // few keys -> combines well
  Engine engine(DefaultConfig(), &dfs_);

  JobSpec plain = CountJob();
  VectorOutputCollector out_plain;
  auto m_plain = engine.Run(plain, rel, &out_plain);
  ASSERT_TRUE(m_plain.ok());

  JobSpec combined = CountJob();
  combined.combiner = std::make_shared<SumCombiner>();
  VectorOutputCollector out_combined;
  auto m_combined = engine.Run(combined, rel, &out_combined);
  ASSERT_TRUE(m_combined.ok());

  EXPECT_EQ(CollectorCounts(out_plain), CollectorCounts(out_combined));
  EXPECT_EQ(m_combined->map_output_records, 4000);
  // 4 workers x 5 keys = at most 20 shuffled records.
  EXPECT_LE(m_combined->shuffle_records, 20);
  EXPECT_LT(m_combined->shuffle_bytes, m_plain->shuffle_bytes);
  EXPECT_GT(m_combined->combine_input_records, 0);
}

TEST_F(MapReduceTest, MapSideSpillPreservesResults) {
  Relation rel = GenUniform(3000, 1, 50, 13);
  EngineConfig config = DefaultConfig();
  config.memory_budget_bytes = 256;  // absurdly small: force spills
  Engine engine(config, &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->spill_bytes, 0);
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
}

TEST_F(MapReduceTest, StrictPolicyFailsWhenOverBudget) {
  Relation rel = GenUniform(3000, 1, 50, 13);
  EngineConfig config = DefaultConfig();
  config.memory_budget_bytes = 256;
  Engine engine(config, &dfs_);
  JobSpec spec = CountJob();
  spec.memory_policy = MemoryPolicy::kStrict;
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(MapReduceTest, StrictPolicyPassesWhenWithinBudget) {
  Relation rel = GenUniform(100, 1, 50, 13);
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec = CountJob();
  spec.memory_policy = MemoryPolicy::kStrict;
  VectorOutputCollector collector;
  EXPECT_TRUE(engine.Run(spec, rel, &collector).ok());
}

/// Mapper that routes every row to an explicit partition (row % reducers).
class ExplicitPartitionMapper : public Mapper {
 public:
  Status Setup(const TaskContext& task) override {
    num_reducers_ = task.num_reducers;
    return Status::OK();
  }
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    // Spread by the global row id: view-local indices restart per split.
    const int partition =
        static_cast<int>(input.base_row(row) % num_reducers_);
    return context.EmitToPartition(partition, std::to_string(input.dim(row, 0)),
                                   "1");
  }

 private:
  int num_reducers_ = 1;
};

/// Reducer that records which partition served it.
class PartitionEchoReducer : public Reducer {
 public:
  Status Setup(const TaskContext& task) override {
    partition_ = task.reduce_partition;
    return Status::OK();
  }
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
    }
    return context.Output(key, std::to_string(partition_));
  }

 private:
  int partition_ = -1;
};

TEST_F(MapReduceTest, EmitToPartitionAndReducePartitionIds) {
  Relation rel = GenUniform(100, 1, 1000000, 17);  // distinct keys
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec;
  spec.name = "explicit";
  spec.num_reducers = 7;
  spec.mapper_factory = [] {
    return std::make_unique<ExplicitPartitionMapper>();
  };
  spec.reducer_factory = [] {
    return std::make_unique<PartitionEchoReducer>();
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(static_cast<int>(metrics->reducer_input_records.size()), 7);
  for (const auto& entry : collector.entries()) {
    EXPECT_EQ(std::to_string(entry.reducer_id), entry.value);
  }
  // Rows were spread round-robin over 7 partitions.
  for (int64_t per_partition : metrics->reducer_input_records) {
    EXPECT_NEAR(static_cast<double>(per_partition), 100.0 / 7, 1.1);
  }
}

TEST_F(MapReduceTest, EmitToInvalidPartitionFails) {
  Relation rel = GenUniform(10, 1, 5, 1);
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec;
  spec.mapper_factory = [] {
    class BadMapper : public Mapper {
      Status Map(const RelationView&, int64_t, MapContext& context) override {
        return context.EmitToPartition(99, "k", "v");
      }
    };
    return std::make_unique<BadMapper>();
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  EXPECT_FALSE(engine.Run(spec, rel, &collector).ok());
}

/// Reducer that verifies keys arrive in ascending byte order.
class OrderCheckingReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    if (!last_key_.empty() && key <= last_key_) {
      return Status::Internal("keys out of order: " + last_key_ +
                              " then " + key);
    }
    last_key_ = key;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
    }
    return context.Output(key, "ok");
  }

 private:
  std::string last_key_;
};

TEST_F(MapReduceTest, KeysArriveSortedWithinReducer) {
  Relation rel = GenUniform(2000, 1, 300, 19);
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec = CountJob();
  spec.reducer_factory = [] {
    return std::make_unique<OrderCheckingReducer>();
  };
  VectorOutputCollector collector;
  EXPECT_TRUE(engine.Run(spec, rel, &collector).ok());
}

TEST_F(MapReduceTest, KeysSortedEvenWhenSpilling) {
  Relation rel = GenUniform(2000, 1, 300, 19);
  EngineConfig config = DefaultConfig();
  config.memory_budget_bytes = 512;
  Engine engine(config, &dfs_);
  JobSpec spec = CountJob();
  spec.reducer_factory = [] {
    return std::make_unique<OrderCheckingReducer>();
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->spill_bytes, 0);
}

/// Mapper that emits only from Finish (checks lifecycle hooks).
class FinishOnlyMapper : public Mapper {
 public:
  Status Map(const RelationView&, int64_t, MapContext&) override {
    ++rows_;
    return Status::OK();
  }
  Status Finish(MapContext& context) override {
    return context.Emit("rows", std::to_string(rows_));
  }

 private:
  int64_t rows_ = 0;
};

TEST_F(MapReduceTest, FinishEmitsAreDelivered) {
  Relation rel = GenUniform(100, 1, 5, 23);
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<FinishOnlyMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(collector.entries().size(), 1u);
  EXPECT_EQ(collector.entries()[0].value, "100");  // all rows, 4 mappers
}

/// Identity record mapper for RunRecords tests.
class EchoRecordMapper : public Mapper {
 public:
  Status MapRecord(const Record& record, MapContext& context) override {
    return context.Emit(record.key, record.value);
  }
};

TEST_F(MapReduceTest, RunRecordsRoundTrip) {
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back(Record{"k" + std::to_string(i % 10), "1"});
  }
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<EchoRecordMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.RunRecords(spec, records, &collector);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_input_records, 100);
  std::map<std::string, int64_t> counts = CollectorCounts(collector);
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) EXPECT_EQ(count, 10);
}

TEST_F(MapReduceTest, RelationMapperRejectsRecordInputAndViceVersa) {
  Engine engine(DefaultConfig(), &dfs_);
  {
    JobSpec spec = CountJob();  // TokenMapper has no MapRecord
    VectorOutputCollector collector;
    EXPECT_FALSE(
        engine.RunRecords(spec, {Record{"k", "v"}}, &collector).ok());
  }
  {
    JobSpec spec;
    spec.mapper_factory = [] { return std::make_unique<EchoRecordMapper>(); };
    spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
    Relation rel = GenUniform(5, 1, 5, 1);
    VectorOutputCollector collector;
    EXPECT_FALSE(engine.Run(spec, rel, &collector).ok());
  }
}

TEST_F(MapReduceTest, MissingFactoriesRejected) {
  Engine engine(DefaultConfig(), &dfs_);
  JobSpec spec;
  Relation rel = GenUniform(5, 1, 5, 1);
  VectorOutputCollector collector;
  EXPECT_EQ(engine.Run(spec, rel, &collector).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MapReduceTest, HashPartitionerInRange) {
  HashPartitioner partitioner;
  for (int i = 0; i < 1000; ++i) {
    const int p = partitioner.Partition("key" + std::to_string(i), 7);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 7);
  }
}

TEST_F(MapReduceTest, HashPartitionerSpreadsKeys) {
  HashPartitioner partitioner;
  std::vector<int> histogram(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++histogram[static_cast<size_t>(
        partitioner.Partition("key" + std::to_string(i), 8))];
  }
  for (int count : histogram) EXPECT_NEAR(count, 1000, 250);
}

TEST_F(MapReduceTest, RoundOverheadAndShuffleModelFlowIntoTotal) {
  Relation rel = GenUniform(100, 1, 5, 29);
  EngineConfig config = DefaultConfig();
  config.round_overhead_seconds = 2.5;
  config.network_bandwidth_bytes_per_sec = 1e6;
  Engine engine(config, &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->TotalSeconds(), 2.5);
  EXPECT_GT(metrics->shuffle_seconds, 0.0);
}

TEST_F(MapReduceTest, EngineReusableAcrossJobs) {
  Relation rel = GenUniform(500, 1, 7, 31);
  Engine engine(DefaultConfig(), &dfs_);
  for (int i = 0; i < 3; ++i) {
    VectorOutputCollector collector;
    auto metrics = engine.Run(CountJob(), rel, &collector);
    ASSERT_TRUE(metrics.ok());
    EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  }
}

TEST_F(MapReduceTest, SingleWorkerCluster) {
  Relation rel = GenUniform(300, 1, 7, 33);
  EngineConfig config = DefaultConfig();
  config.num_workers = 1;
  Engine engine(config, &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
}

TEST_F(MapReduceTest, ThreadedModeMatchesSequential) {
  Relation rel = GenUniform(3000, 1, 60, 41);
  EngineConfig sequential = DefaultConfig();
  sequential.host_threads = 0;
  EngineConfig threaded = DefaultConfig();
  threaded.host_threads = 4;
  threaded.num_workers = 6;
  sequential.num_workers = 6;

  VectorOutputCollector seq_out;
  VectorOutputCollector thr_out;
  {
    Engine engine(sequential, &dfs_);
    ASSERT_TRUE(engine.Run(CountJob(), rel, &seq_out).ok());
  }
  {
    Engine engine(threaded, &dfs_);
    auto metrics = engine.Run(CountJob(), rel, &thr_out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    // CPU-clock accounting produced sane per-worker times.
    for (double seconds : metrics->map_phase.per_worker_seconds) {
      EXPECT_GE(seconds, 0.0);
    }
  }
  EXPECT_EQ(CollectorCounts(seq_out), CollectorCounts(thr_out));
}

TEST_F(MapReduceTest, ThreadedModeWithSpills) {
  Relation rel = GenUniform(4000, 1, 300, 43);
  EngineConfig config = DefaultConfig();
  config.host_threads = 4;
  config.memory_budget_bytes = 512;
  Engine engine(config, &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->spill_bytes, 0);
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
}

TEST_F(MapReduceTest, ThreadedModePropagatesTaskFailures) {
  Relation rel = GenUniform(100, 1, 5, 45);
  EngineConfig config = DefaultConfig();
  config.host_threads = 4;
  Engine engine(config, &dfs_);
  JobSpec spec;
  spec.mapper_factory = [] {
    class Fails : public Mapper {
      Status Map(const RelationView&, int64_t, MapContext&) override {
        return Status::IoError("boom");
      }
    };
    return std::make_unique<Fails>();
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  EXPECT_FALSE(engine.Run(spec, rel, &collector).ok());
}

TEST_F(MapReduceTest, EmptyInputYieldsEmptyOutput) {
  Relation rel(MakeAnonymousSchema(1));
  Engine engine(DefaultConfig(), &dfs_);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJob(), rel, &collector);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(collector.entries().empty());
  EXPECT_EQ(metrics->map_output_records, 0);
}

}  // namespace
}  // namespace spcube
