// Tests for the MapReduce metrics arithmetic (phase times, totals,
// imbalance, run aggregation).

#include <gtest/gtest.h>

#include "mapreduce/metrics.h"

namespace spcube {
namespace {

TEST(PhaseMetricsTest, EmptyPhase) {
  PhaseMetrics phase;
  EXPECT_EQ(phase.MaxSeconds(), 0.0);
  EXPECT_EQ(phase.AvgSeconds(), 0.0);
  EXPECT_EQ(phase.SumSeconds(), 0.0);
}

TEST(PhaseMetricsTest, AccumulateGrowsAndAdds) {
  PhaseMetrics phase;
  phase.Accumulate(2, 1.5);
  ASSERT_EQ(phase.per_worker_seconds.size(), 3u);
  EXPECT_EQ(phase.per_worker_seconds[2], 1.5);
  phase.Accumulate(2, 0.5);
  EXPECT_EQ(phase.per_worker_seconds[2], 2.0);
  phase.Accumulate(0, 4.0);
  EXPECT_EQ(phase.MaxSeconds(), 4.0);
  EXPECT_DOUBLE_EQ(phase.AvgSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(phase.SumSeconds(), 6.0);
}

TEST(PhaseMetricsTest, EnsureWorkersNeverShrinks) {
  PhaseMetrics phase;
  phase.EnsureWorkers(4);
  EXPECT_EQ(phase.per_worker_seconds.size(), 4u);
  phase.EnsureWorkers(2);
  EXPECT_EQ(phase.per_worker_seconds.size(), 4u);
}

JobMetrics MakeRound(double map_max, double reduce_max, double shuffle,
                     double overhead) {
  JobMetrics round;
  round.map_phase.Accumulate(0, map_max);
  round.reduce_phase.Accumulate(0, reduce_max);
  round.shuffle_seconds = shuffle;
  round.round_overhead_seconds = overhead;
  return round;
}

TEST(JobMetricsTest, TotalIsCriticalPath) {
  JobMetrics round = MakeRound(1.0, 2.0, 0.25, 0.05);
  round.map_phase.Accumulate(1, 0.5);  // not the max
  EXPECT_DOUBLE_EQ(round.TotalSeconds(), 1.0 + 2.0 + 0.25 + 0.05);
}

TEST(JobMetricsTest, ReducerStats) {
  JobMetrics round;
  round.reducer_input_records = {10, 30, 20, 0};
  round.reducer_input_bytes = {100, 900, 200, 0};
  EXPECT_EQ(round.MaxReducerInputRecords(), 30);
  EXPECT_EQ(round.MaxReducerInputBytes(), 900);
  // Mean input = 15; max = 30 -> imbalance 2.
  EXPECT_DOUBLE_EQ(round.ReducerImbalance(), 2.0);
}

TEST(JobMetricsTest, ImbalanceOfEmptyOrZero) {
  JobMetrics round;
  EXPECT_EQ(round.ReducerImbalance(), 1.0);
  round.reducer_input_records = {0, 0};
  EXPECT_EQ(round.ReducerImbalance(), 1.0);
}

TEST(JobMetricsTest, ToStringMentionsNameAndCounts) {
  JobMetrics round = MakeRound(0.1, 0.2, 0.0, 0.0);
  round.job_name = "myjob";
  round.map_output_records = 42;
  const std::string text = round.ToString();
  EXPECT_NE(text.find("myjob"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(RunMetricsTest, SumsAcrossRounds) {
  RunMetrics run;
  run.algorithm = "test";
  JobMetrics r1 = MakeRound(1.0, 2.0, 0.5, 0.1);
  r1.map_output_bytes = 100;
  r1.shuffle_bytes = 80;
  r1.spill_bytes = 7;
  r1.output_records = 5;
  r1.custom_counters["c"] = 3;
  JobMetrics r2 = MakeRound(0.5, 0.5, 0.0, 0.1);
  r2.map_output_bytes = 50;
  r2.shuffle_bytes = 40;
  r2.output_records = 2;
  r2.custom_counters["c"] = 4;
  run.Add(r1);
  run.Add(r2);

  EXPECT_DOUBLE_EQ(run.TotalSeconds(), 3.6 + 1.1);
  EXPECT_DOUBLE_EQ(run.MapSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(run.ReduceSeconds(), 2.5);
  EXPECT_EQ(run.MapOutputBytes(), 150);
  EXPECT_EQ(run.ShuffleBytes(), 120);
  EXPECT_EQ(run.SpillBytes(), 7);
  EXPECT_EQ(run.OutputRecords(), 7);
  EXPECT_EQ(run.CustomCounter("c"), 7);
  EXPECT_EQ(run.CustomCounter("missing"), 0);
  EXPECT_NE(run.ToString().find("test"), std::string::npos);
}

}  // namespace
}  // namespace spcube
