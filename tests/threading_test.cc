// The threaded half of the concurrency contracts (docs/INTERNALS.md §12):
// with EngineConfig::host_threads > 1 the simulated machines' tasks run on
// the seeded work-stealing TaskPool (common/task_pool.h) — including
// stealable map producer sub-tasks when map_producers_per_machine > 1 —
// and (a) every algorithm must still reproduce the in-memory reference
// cube bit-for-bit, fault plan or not, and (b) a threaded or
// work-stealing run must be indistinguishable from the same-seed serial
// run in everything the model reports — cube bytes on the DFS, user
// counters, and all modeled (non-measured) metrics. This binary is the
// TSan payload of tools/check_all.sh's tsan-threaded-grid stage: any data
// race in the pool's deques, the engine's fan-out paths, the shared
// collectors, or the DFS surfaces here under -fsanitize=thread.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "baselines/topdown.h"
#include "common/random.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "mapreduce/fault.h"
#include "relation/generators.h"

namespace spcube {
namespace {

struct Config {
  int distribution;   // 0..2
  int num_dims;       // 1..4
  int workers;        // 2..6
  int budget_shift;   // memory budget = 1 << (10 + 2*shift)
  int aggregate;      // AggregateKind
  uint64_t seed;

  std::string Name() const {
    static const char* kDistributions[] = {"uniform", "zipf", "planted"};
    static const char* kAggregates[] = {"count", "sum", "min", "max", "avg"};
    return std::string(kDistributions[distribution]) + "_d" +
           std::to_string(num_dims) + "_k" + std::to_string(workers) +
           "_b" + std::to_string(budget_shift) + "_" +
           kAggregates[aggregate] + "_s" + std::to_string(seed);
  }
};

Relation MakeRelation(const Config& config) {
  const int64_t n = 900;
  switch (config.distribution) {
    case 0:
      return GenUniform(n, config.num_dims, 10, config.seed);
    case 1:
      return GenZipf(n, std::min(2, config.num_dims),
                     std::max(0, config.num_dims - 2), 40, 1.1, config.seed);
    default:
      return GenPlantedSkew(
          n, config.num_dims, {0.35, 0.2},
          std::vector<int64_t>(static_cast<size_t>(config.num_dims), 8),
          config.seed);
  }
}

/// A deterministic grid, deliberately smaller than differential_test's:
/// under TSan every memory access is instrumented and the host may have a
/// single core, so this sweep favors breadth of shapes over volume.
std::vector<Config> MakeGrid() {
  std::vector<Config> grid;
  Rng rng(0x7EADED);
  for (int i = 0; i < 8; ++i) {
    Config config;
    config.distribution = static_cast<int>(rng.NextBounded(3));
    config.num_dims = 1 + static_cast<int>(rng.NextBounded(4));
    config.workers = 2 + static_cast<int>(rng.NextBounded(5));
    config.budget_shift = static_cast<int>(rng.NextBounded(4));
    config.aggregate = static_cast<int>(rng.NextBounded(5));
    config.seed = 7000 + i;
    grid.push_back(config);
  }
  return grid;
}

/// `host_threads` 0 runs serial; > 1 runs the work-stealing pool (pinned
/// to a fixed count so the grid behaves the same on any host).
/// `producers` > 1 additionally splits each machine's map task into that
/// many stealable sub-tasks — the "stolen" execution mode.
EngineConfig MakeCluster(const Config& config, int host_threads,
                         int producers = 1) {
  EngineConfig cluster;
  cluster.num_workers = config.workers;
  cluster.memory_budget_bytes = int64_t{1} << (10 + 2 * config.budget_shift);
  cluster.network_bandwidth_bytes_per_sec = 0;
  cluster.host_threads = host_threads;
  cluster.map_producers_per_machine = producers;
  return cluster;
}

/// Every algorithm under study, including the combiner variant whose
/// map-side merge path exercises the shuffle buffers concurrently.
struct AlgorithmSet {
  SpCubeAlgorithm sp;
  NaiveCubeAlgorithm naive;
  NaiveCubeAlgorithm naive_combiner{NaiveCubeOptions{true}};
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  TopDownCubeAlgorithm topdown;

  std::vector<CubeAlgorithm*> All() {
    return {&sp, &naive, &naive_combiner, &mrcube, &hive, &topdown};
  }
};

class ThreadedDifferentialTest : public ::testing::TestWithParam<Config> {};

TEST_P(ThreadedDifferentialTest, ThreadedRunsMatchReference) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  AlgorithmSet algorithms;
  for (CubeAlgorithm* algorithm : algorithms.All()) {
    DistributedFileSystem dfs;
    Engine engine(MakeCluster(config, /*host_threads=*/4, /*producers=*/2),
                  &dfs);
    CubeRunOptions options;
    options.aggregate = kind;
    auto output = algorithm->Run(engine, rel, options);
    ASSERT_TRUE(output.ok())
        << config.Name() << " / " << algorithm->name() << ": "
        << output.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << config.Name() << " / " << algorithm->name() << ":\n"
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadedGrid, ThreadedDifferentialTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

/// Threads plus a deterministic chaos plan: the retry/crash/speculation
/// machinery runs concurrently with the fault bookkeeping, which is where
/// unsynchronized counters would race. Exactness must survive.
class ThreadedFaultedTest : public ::testing::TestWithParam<Config> {};

TEST_P(ThreadedFaultedTest, ThreadedRecoveryIsExact) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  FaultConfig chaos;
  chaos.seed = config.seed;
  chaos.map_failure_rate = 0.25;
  chaos.reduce_failure_rate = 0.25;
  chaos.straggler_rate = 0.2;
  chaos.dfs_read_error_rate = 0.2;
  chaos.payload_corruption_rate = 0.25;
  chaos.forced_worker_crashes = 1;

  SpCubeAlgorithm sp;
  MrCubeAlgorithm mrcube;
  for (CubeAlgorithm* algorithm :
       std::initializer_list<CubeAlgorithm*>{&sp, &mrcube}) {
    FaultPlan plan(chaos);
    EngineConfig cluster =
        MakeCluster(config, /*host_threads=*/4, /*producers=*/2);
    cluster.fault_plan = &plan;
    cluster.min_task_attempts = 3;
    cluster.retry_backoff_seconds = 0.01;
    DistributedFileSystem dfs;
    Engine engine(cluster, &dfs);
    CubeRunOptions options;
    options.aggregate = kind;
    auto output = algorithm->Run(engine, rel, options);
    ASSERT_TRUE(output.ok())
        << config.Name() << " / " << algorithm->name() << ": "
        << output.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << config.Name() << " / " << algorithm->name() << ":\n"
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadedGrid, ThreadedFaultedTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

/// The modeled (deterministic) slice of a round's metrics. Measured
/// per-machine phase seconds are excluded on purpose: serial runs measure
/// steady-clock time, threaded runs per-thread CPU time, so their values
/// legitimately differ — everything else must not.
std::string ModeledMetricsFingerprint(const RunMetrics& metrics) {
  std::string fp;
  for (const JobMetrics& round : metrics.rounds) {
    fp += round.job_name + "{";
    fp += "mi=" + std::to_string(round.map_input_records);
    fp += ",mo=" + std::to_string(round.map_output_records);
    fp += ",mob=" + std::to_string(round.map_output_bytes);
    fp += ",sr=" + std::to_string(round.shuffle_records);
    fp += ",sb=" + std::to_string(round.shuffle_bytes);
    fp += ",ci=" + std::to_string(round.combine_input_records);
    fp += ",co=" + std::to_string(round.combine_output_records);
    fp += ",sp=" + std::to_string(round.spill_bytes);
    fp += ",spu=" + std::to_string(round.spill_bytes_uncompressed);
    fp += ",swc=" + std::to_string(round.shuffle_bytes_compressed);
    fp += ",swu=" + std::to_string(round.shuffle_bytes_uncompressed);
    fp += ",out=" + std::to_string(round.output_records);
    fp += ",retry=" + std::to_string(round.task_retries);
    fp += ",reexec=" + std::to_string(round.tasks_reexecuted_after_crash);
    fp += ",crash=" + std::to_string(round.workers_crashed);
    fp += ",spec=" + std::to_string(round.tasks_speculatively_reexecuted);
    fp += ",ck=" + std::to_string(round.shuffle_checksum_mismatches);
    fp += ",split=" + std::to_string(round.reduce_partitions_split);
    fp += ",rr=" + std::to_string(round.recovery_rounds);
    fp += ",rb=" + std::to_string(round.recovery_bytes_reshuffled);
    fp += ",alerts=" + std::to_string(round.reducer_imbalance_alerts);
    for (size_t r = 0; r < round.reducer_input_records.size(); ++r) {
      fp += ",r" + std::to_string(r) + "=" +
            std::to_string(round.reducer_input_records[r]) + "/" +
            std::to_string(round.reducer_input_bytes[r]) + "/" +
            std::to_string(round.reducer_output_records[r]);
    }
    for (size_t r = 0; r < round.reducer_wire_bytes.size(); ++r) {
      fp += ",w" + std::to_string(r) + "=" +
            std::to_string(round.reducer_wire_bytes[r]);
    }
    for (const auto& [name, value] : round.custom_counters) {
      fp += "," + name + "=" + std::to_string(value);
    }
    fp += "}";
  }
  return fp;
}

/// Byte-exact snapshot of the cube the run laid out on the DFS
/// (cuboid_<mask>/part-<reducer>): path -> contents, in path order.
std::string DfsCubeFingerprint(const DistributedFileSystem& dfs,
                               const std::string& root) {
  std::string fp;
  for (const std::string& path : dfs.List(root)) {
    auto contents = dfs.Read(path);
    EXPECT_TRUE(contents.ok()) << path << ": " << contents.status();
    if (!contents.ok()) continue;
    fp += path + "#" + std::to_string(contents->size()) + ":" + *contents +
          "\n";
  }
  return fp;
}

struct DeterminismProbe {
  std::unique_ptr<CubeResult> cube;
  std::string metrics_fp;
  std::string dfs_fp;
};

Result<DeterminismProbe> RunProbe(CubeAlgorithm* algorithm,
                                  const Config& config, const Relation& rel,
                                  int host_threads, int producers,
                                  FaultConfig* chaos,
                                  bool compress_dfs = false) {
  EngineConfig cluster = MakeCluster(config, host_threads, producers);
  cluster.compress_dfs_blobs = compress_dfs;
  FaultPlan plan(chaos != nullptr ? *chaos : FaultConfig{});
  if (chaos != nullptr) {
    cluster.fault_plan = &plan;
    cluster.min_task_attempts = 3;
    cluster.retry_backoff_seconds = 0.01;
    cluster.retry_backoff_jitter = 0.3;
  }
  DistributedFileSystem dfs;
  Engine engine(cluster, &dfs);
  CubeRunOptions options;
  options.aggregate = static_cast<AggregateKind>(config.aggregate);
  options.dfs_output_root = "determinism/cube";
  auto output = algorithm->Run(engine, rel, options);
  if (!output.ok()) return output.status();
  // The run is over: read the cube back without chaos so the fingerprint
  // reflects the committed bytes, not the test's own injected read luck.
  dfs.SetFaultInjector(nullptr);
  DeterminismProbe probe;
  probe.cube = std::move(output->cube);
  probe.metrics_fp = ModeledMetricsFingerprint(output->metrics);
  probe.dfs_fp = DfsCubeFingerprint(dfs, options.dfs_output_root);
  return probe;
}

/// Same seed, same config: serial, threaded, and work-stealing runs must
/// agree on the cube (as text), the bytes written to the DFS, the user
/// counters and every modeled metric — scheduling must be unobservable
/// (CLAUDE.md's determinism convention). The sweep compares a serial run
/// against a pool run at each producer count: producers=1 is the plain
/// threaded mode (machine tasks stealable), producers=3 is the stolen mode
/// (map sub-tasks fan out via RunNested and get stolen across machines).
/// map_producers_per_machine is part of the simulated config — it changes
/// the combine/spill schedule — so each comparison pins it on both sides.
/// Checked clean and under chaos with backoff jitter, whose Rng is keyed
/// on (seed, job, task, attempt) exactly so this holds.
TEST(ThreadedDeterminismTest, SerialThreadedAndStolenRunsAreIndistinguishable) {
  Config config;
  config.distribution = 2;
  config.num_dims = 3;
  config.workers = 5;
  config.budget_shift = 1;
  config.aggregate = 1;  // sum
  config.seed = 4242;
  const Relation rel = MakeRelation(config);

  FaultConfig chaos;
  chaos.seed = config.seed;
  chaos.map_failure_rate = 0.2;
  chaos.reduce_failure_rate = 0.2;
  chaos.straggler_rate = 0.2;
  chaos.dfs_read_error_rate = 0.15;
  chaos.payload_corruption_rate = 0.2;
  chaos.forced_worker_crashes = 1;

  AlgorithmSet algorithms;
  for (CubeAlgorithm* algorithm : algorithms.All()) {
    for (FaultConfig* plan :
         std::initializer_list<FaultConfig*>{nullptr, &chaos}) {
      const char* mode = plan == nullptr ? "clean" : "chaos";
      for (int producers : {1, 3}) {
        auto serial = RunProbe(algorithm, config, rel, /*host_threads=*/0,
                               producers, plan);
        ASSERT_TRUE(serial.ok()) << algorithm->name() << ": "
                                 << serial.status();
        auto pooled = RunProbe(algorithm, config, rel, /*host_threads=*/4,
                               producers, plan);
        ASSERT_TRUE(pooled.ok()) << algorithm->name() << ": "
                                 << pooled.status();
        std::string diff;
        EXPECT_TRUE(CubeResult::ApproxEqual(*serial->cube, *pooled->cube,
                                            /*tolerance=*/0.0, &diff))
            << algorithm->name() << " (" << mode << ", producers="
            << producers << "): cube diverged:\n"
            << diff;
        EXPECT_EQ(serial->dfs_fp, pooled->dfs_fp)
            << algorithm->name() << " (" << mode << ", producers="
            << producers << "): DFS bytes diverged";
        EXPECT_EQ(serial->metrics_fp, pooled->metrics_fp)
            << algorithm->name() << " (" << mode << ", producers="
            << producers << "): modeled metrics diverged";
      }
    }
  }
}

/// The compressed columnar path (docs/INTERNALS.md §13) under the same
/// probe: dictionary-encoded reducer partitions plus compressed DFS blobs
/// must be invisible to scheduling AND to the model — serial, threaded and
/// stolen runs agree with each other, and with the *plain* serial run, in
/// the cube bytes, user counters and every modeled metric. The deflate work
/// happens on worker threads; TSan covers it via this test.
TEST(ThreadedDeterminismTest, CompressedStorageIsScheduleAndModelInvisible) {
  Config config;
  config.distribution = 1;  // zipf: hot groups make spills + redundancy
  config.num_dims = 3;
  config.workers = 5;
  config.budget_shift = 0;  // tight budget so the spill path engages
  config.aggregate = 4;     // avg: order-sensitive if anything reorders
  config.seed = 1313;
  const Relation rel = MakeRelation(config);

  FaultConfig chaos;
  chaos.seed = config.seed;
  chaos.map_failure_rate = 0.2;
  chaos.reduce_failure_rate = 0.2;
  chaos.dfs_read_error_rate = 0.15;
  chaos.payload_corruption_rate = 0.2;

  SpCubeOptions compressed_options;
  compressed_options.tuning.dictionary_encode_partitions = true;
  SpCubeAlgorithm plain_algorithm;
  SpCubeAlgorithm compressed_algorithm(compressed_options);

  for (FaultConfig* plan :
       std::initializer_list<FaultConfig*>{nullptr, &chaos}) {
    const char* mode = plan == nullptr ? "clean" : "chaos";
    // Producer count is part of the simulated config (it changes the
    // combine/spill schedule, and with avg the low-order float bits), so
    // each comparison pins it on both sides.
    for (int producers : {1, 3}) {
      auto plain = RunProbe(&plain_algorithm, config, rel,
                            /*host_threads=*/0, producers, plan);
      ASSERT_TRUE(plain.ok()) << mode << ": " << plain.status();
      for (int host_threads : {0, 4}) {
        auto probe = RunProbe(&compressed_algorithm, config, rel,
                              host_threads, producers, plan,
                              /*compress_dfs=*/true);
        ASSERT_TRUE(probe.ok()) << mode << ": " << probe.status();
        std::string diff;
        EXPECT_TRUE(CubeResult::ApproxEqual(*plain->cube, *probe->cube,
                                            /*tolerance=*/0.0, &diff))
            << mode << " threads=" << host_threads << " producers="
            << producers << ": cube diverged from plain serial run:\n"
            << diff;
        EXPECT_EQ(plain->dfs_fp, probe->dfs_fp)
            << mode << " threads=" << host_threads << " producers="
            << producers << ": decoded DFS bytes diverged";
        EXPECT_EQ(plain->metrics_fp, probe->metrics_fp)
            << mode << " threads=" << host_threads << " producers="
            << producers << ": modeled metrics saw the encoding";
      }
    }
  }
}

/// Determinism & model-purity probe (docs/INTERNALS.md §14): the dynamic
/// twin of the analyzer's unordered-iteration-escape family. SP-Cube's
/// mapper-side skew partials, Hive's map-side hash aggregation, and the
/// sketch serializer all drain hash tables into emitted records or wire
/// bytes; §14 requires those drains to run in canonical key order, so any
/// regression to raw bucket order shows up here as a DFS or metrics
/// fingerprint mismatch across host-thread counts. The drifting batched
/// stream keeps the hash tables hot (changing heavy hitters per batch),
/// and the compression axis checks that DFS blob codecs stay invisible to
/// both the model and the stored bytes. Every cell of
/// host_threads x compress_dfs_blobs must be indistinguishable from the
/// serial uncompressed baseline.
TEST(ThreadedDeterminismTest, DriftBatchesMatchAcrossThreadsAndCompression) {
  Config config;
  config.distribution = 1;
  config.num_dims = 3;
  config.workers = 5;
  config.budget_shift = 1;
  config.aggregate = 1;  // sum: exercises the skew-partial merge path
  config.seed = 2026;

  DriftSpec spec;
  spec.num_batches = 2;
  spec.num_zipf_dims = 2;
  spec.num_uniform_dims = 1;
  spec.domain = 60;
  spec.start_exponent = 0.7;
  spec.end_exponent = 1.5;

  SpCubeAlgorithm sp;
  HiveCubeAlgorithm hive;
  for (int batch = 0; batch < spec.num_batches; ++batch) {
    const Relation rel =
        GenDriftBatch(spec, batch, /*num_rows=*/700, config.seed);
    for (CubeAlgorithm* algorithm :
         std::initializer_list<CubeAlgorithm*>{&sp, &hive}) {
      auto baseline = RunProbe(algorithm, config, rel, /*host_threads=*/0,
                               /*producers=*/1, /*chaos=*/nullptr,
                               /*compress_dfs=*/false);
      ASSERT_TRUE(baseline.ok()) << algorithm->name() << " batch=" << batch
                                 << ": " << baseline.status();
      for (int host_threads : {0, 2, 4}) {
        for (bool compress : {false, true}) {
          if (host_threads == 0 && !compress) continue;  // the baseline
          auto probe = RunProbe(algorithm, config, rel, host_threads,
                                /*producers=*/1, /*chaos=*/nullptr, compress);
          ASSERT_TRUE(probe.ok())
              << algorithm->name() << " batch=" << batch << ": "
              << probe.status();
          std::string diff;
          EXPECT_TRUE(CubeResult::ApproxEqual(*baseline->cube, *probe->cube,
                                              /*tolerance=*/0.0, &diff))
              << algorithm->name() << " batch=" << batch << " threads="
              << host_threads << " compress=" << compress
              << ": cube diverged:\n"
              << diff;
          EXPECT_EQ(baseline->dfs_fp, probe->dfs_fp)
              << algorithm->name() << " batch=" << batch << " threads="
              << host_threads << " compress=" << compress
              << ": DFS bytes diverged";
          EXPECT_EQ(baseline->metrics_fp, probe->metrics_fp)
              << algorithm->name() << " batch=" << batch << " threads="
              << host_threads << " compress=" << compress
              << ": modeled metrics diverged";
        }
      }
    }
  }
}

/// Splitting a machine's map task into producers must not change the cube
/// itself (only the combine/spill schedule): the stolen run's cube still
/// matches the single-producer serial cube to aggregation tolerance.
TEST(ThreadedDeterminismTest, ProducerSplitPreservesTheCube) {
  Config config;
  config.distribution = 1;  // zipf
  config.num_dims = 3;
  config.workers = 4;
  config.budget_shift = 1;
  config.aggregate = 1;  // sum
  config.seed = 1717;
  const Relation rel = MakeRelation(config);
  const CubeResult reference =
      ComputeCubeReference(rel, static_cast<AggregateKind>(config.aggregate));

  SpCubeAlgorithm sp;
  for (int producers : {2, 4}) {
    auto stolen = RunProbe(&sp, config, rel, /*host_threads=*/4, producers,
                           /*chaos=*/nullptr);
    ASSERT_TRUE(stolen.ok()) << stolen.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *stolen->cube, 1e-6, &diff))
        << "producers=" << producers << ":\n"
        << diff;
  }
}

}  // namespace
}  // namespace spcube
