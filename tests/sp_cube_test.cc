// End-to-end tests of the SP-Cube algorithm: exact agreement with the
// reference cube across workloads, aggregates and cluster shapes; the
// skew-routing invariants; robustness to degraded sketches; ablations.

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/naive.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig(int workers = 6) {
  EngineConfig config;
  config.num_workers = workers;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

void ExpectMatchesReference(const Relation& rel, AggregateKind kind,
                            SpCubeOptions options = {}, int workers = 6) {
  DistributedFileSystem dfs;
  Engine engine(TestConfig(workers), &dfs);
  SpCubeAlgorithm algorithm(options);
  CubeRunOptions run_options;
  run_options.aggregate = kind;
  auto output = algorithm.Run(engine, rel, run_options);
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_NE(output->cube, nullptr);
  CubeResult reference = ComputeCubeReference(rel, kind);
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << diff;
}

struct Workload {
  const char* name;
  Relation (*make)(uint64_t seed);
};

Relation MakeUniform(uint64_t seed) { return GenUniform(3000, 4, 30, seed); }
Relation MakeTinyDomain(uint64_t seed) {
  return GenUniform(2000, 3, 3, seed);
}
Relation MakeBinomialLow(uint64_t seed) {
  return GenBinomial(3000, 4, 0.1, seed);
}
Relation MakeBinomialHigh(uint64_t seed) {
  return GenBinomial(3000, 4, 0.75, seed);
}
Relation MakeZipf(uint64_t seed) { return GenZipfPaper(3000, seed); }
Relation MakePlanted(uint64_t seed) {
  return GenPlantedSkew(3000, 4, {0.4, 0.2}, {20, 20, 20, 20}, seed);
}
Relation MakeMonotonic(uint64_t seed) {
  return GenMonotonicSkew(3000, 4, 0.5, 500, seed);
}
Relation MakeIndependent(uint64_t seed) {
  return GenIndependentSkew(3000, 4, 0.4, 100, seed);
}
Relation MakeWorstCase(uint64_t) { return GenWorstCaseTraffic(4, 80); }
Relation MakeOneDim(uint64_t seed) { return GenUniform(1000, 1, 10, seed); }
Relation MakeSixDims(uint64_t seed) {
  return GenBinomial(1500, 6, 0.3, seed);
}

class SpCubeWorkloadTest : public ::testing::TestWithParam<Workload> {};

TEST_P(SpCubeWorkloadTest, CountMatchesReference) {
  ExpectMatchesReference(GetParam().make(42), AggregateKind::kCount);
}

TEST_P(SpCubeWorkloadTest, SumMatchesReference) {
  ExpectMatchesReference(GetParam().make(43), AggregateKind::kSum);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SpCubeWorkloadTest,
    ::testing::Values(Workload{"uniform", MakeUniform},
                      Workload{"tiny_domain", MakeTinyDomain},
                      Workload{"binomial_low", MakeBinomialLow},
                      Workload{"binomial_high", MakeBinomialHigh},
                      Workload{"zipf", MakeZipf},
                      Workload{"planted", MakePlanted},
                      Workload{"monotonic", MakeMonotonic},
                      Workload{"independent", MakeIndependent},
                      Workload{"worst_case", MakeWorstCase},
                      Workload{"one_dim", MakeOneDim},
                      Workload{"six_dims", MakeSixDims}),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return info.param.name;
    });

TEST(SpCubeTest, AllAggregateKinds) {
  Relation rel = GenBinomial(2000, 3, 0.4, 7);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    ExpectMatchesReference(rel, kind);
  }
}

TEST(SpCubeTest, VariousClusterSizes) {
  Relation rel = GenZipfPaper(2500, 9);
  for (int workers : {1, 2, 5, 12}) {
    ExpectMatchesReference(rel, AggregateKind::kCount, {}, workers);
  }
}

TEST(SpCubeTest, EmptyRelation) {
  Relation rel(MakeAnonymousSchema(3));
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm algorithm;
  auto output = algorithm.Run(engine, rel, {});
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_EQ(output->cube->num_groups(), 0);
}

TEST(SpCubeTest, SingleRowRelation) {
  Relation rel(MakeAnonymousSchema(3));
  rel.AppendRow(std::vector<int64_t>{1, 2, 3}, 5);
  ExpectMatchesReference(rel, AggregateKind::kSum);
}

TEST(SpCubeTest, AllRowsIdentical) {
  // The most skewed possible input: every projection of every tuple is the
  // same group, and every group is skewed -> the whole cube flows through
  // the mapper partial-aggregation path and the skew reducer.
  Relation rel(MakeAnonymousSchema(3));
  for (int i = 0; i < 2000; ++i) {
    rel.AppendRow(std::vector<int64_t>{4, 5, 6}, 1);
  }
  ExpectMatchesReference(rel, AggregateKind::kCount);
}

TEST(SpCubeTest, TwoRoundsAndMetricsShape) {
  Relation rel = GenWikiLike(4000, 11);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(8), &dfs);
  SpCubeAlgorithm algorithm;
  auto output = algorithm.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  ASSERT_EQ(output->metrics.rounds.size(), 2u);
  EXPECT_EQ(output->metrics.rounds[0].job_name, "spcube-sketch");
  EXPECT_EQ(output->metrics.rounds[1].job_name, "spcube-cube");
  // Round 2 uses k+1 reducers.
  EXPECT_EQ(
      static_cast<int>(output->metrics.rounds[1].reducer_input_records.size()),
      9);
  EXPECT_GT(algorithm.last_sketch_bytes(), 0);
  EXPECT_GT(algorithm.last_sketch_skews(), 0);
  EXPECT_EQ(output->metrics.OutputRecords(),
            output->cube->num_groups() + 1);  // +1 sketch-stats row
}

TEST(SpCubeTest, SkewPartialsFlowToSkewReducer) {
  // Heavily skewed relation: the skew reducer (partition 0) must receive
  // only a handful of records (at most #mappers x #skewed-groups partials),
  // not raw tuples.
  const int64_t n = 4000;
  Relation rel = GenPlantedSkew(n, 3, {0.5}, {10, 10, 10}, 13);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);
  SpCubeAlgorithm algorithm;
  auto output = algorithm.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  const JobMetrics& round2 = output->metrics.rounds[1];
  const int64_t skew_reducer_records = round2.reducer_input_records[0];
  EXPECT_GT(skew_reducer_records, 0);
  // 4 mappers x (at most 8 skewed groups + coarse ones): far below n.
  EXPECT_LT(skew_reducer_records, 4 * 50);
}

TEST(SpCubeTest, IntermediateDataFarBelowNaive) {
  // Observation 2.6 in action: SP-Cube ships each tuple O(d) times rather
  // than 2^d times.
  Relation rel = GenZipfPaper(3000, 17);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(6), &dfs);

  SpCubeAlgorithm sp;
  auto sp_out = sp.Run(engine, rel, {});
  ASSERT_TRUE(sp_out.ok());

  NaiveCubeAlgorithm naive;
  auto naive_out = naive.Run(engine, rel, {});
  ASSERT_TRUE(naive_out.ok());

  EXPECT_LT(sp_out->metrics.ShuffleBytes(),
            naive_out->metrics.ShuffleBytes());
  // Naive ships exactly n * 2^d records.
  EXPECT_EQ(naive_out->metrics.rounds[0].map_output_records, 3000 * 16);
  // SP-Cube round 2 ships at most d+1 records per tuple plus skew partials.
  EXPECT_LT(sp_out->metrics.rounds[1].map_output_records, 3000 * (4 + 2));
}

TEST(SpCubeTest, RangePartitionerBalancesReducers) {
  // On skew-free data every range reducer should receive a near-equal
  // number of tuples (paper §6.2: "good balancing between reducers").
  Relation rel = GenUniform(6000, 3, 5000, 19);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(6), &dfs);
  SpCubeAlgorithm algorithm;
  auto output = algorithm.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  const JobMetrics& round2 = output->metrics.rounds[1];
  // Partitions 1..k hold the range data. Compare max to mean.
  int64_t total = 0;
  int64_t max_records = 0;
  for (size_t p = 1; p < round2.reducer_input_records.size(); ++p) {
    total += round2.reducer_input_records[p];
    max_records =
        std::max(max_records, round2.reducer_input_records[p]);
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(round2.reducer_input_records.size() - 1);
  EXPECT_LT(static_cast<double>(max_records), 1.8 * mean);
}

// Correctness must not depend on sketch quality: with an absurdly low
// sampling rate (empty or near-empty sketch) the algorithm degrades to
// "ship everything to the apex owner" but stays exact.
TEST(SpCubeTest, RobustToDegradedSketch) {
  Relation rel = GenBinomial(1500, 3, 0.5, 21);
  SpCubeOptions options;
  options.sketch.sample_rate_multiplier = 1e-6;  // nearly no samples
  ExpectMatchesReference(rel, AggregateKind::kCount, options);
}

TEST(SpCubeTest, RobustToOversampledSketch) {
  Relation rel = GenBinomial(1500, 3, 0.5, 23);
  SpCubeOptions options;
  options.sketch.sample_rate_multiplier = 1e9;  // alpha = 1, exact sketch
  ExpectMatchesReference(rel, AggregateKind::kCount, options);
}

TEST(SpCubeTest, AblationNoMapperSkewAggregationStillExact) {
  Relation rel = GenBinomial(1500, 3, 0.6, 25);
  SpCubeOptions options;
  options.tuning.aggregate_skews_in_mapper = false;
  ExpectMatchesReference(rel, AggregateKind::kCount, options);
  ExpectMatchesReference(rel, AggregateKind::kAvg, options);
}

TEST(SpCubeTest, AblationNoFactorizationStillExact) {
  Relation rel = GenBinomial(1500, 3, 0.4, 27);
  SpCubeOptions options;
  options.tuning.emit_minimal_groups_only = false;
  ExpectMatchesReference(rel, AggregateKind::kCount, options);
}

TEST(SpCubeTest, AblationHashPartitionerStillExact) {
  Relation rel = GenZipfPaper(1500, 29);
  SpCubeOptions options;
  options.use_range_partitioner = false;
  ExpectMatchesReference(rel, AggregateKind::kCount, options);
}

TEST(SpCubeTest, AblationsChangeTrafficAsExpected) {
  Relation rel = GenPlantedSkew(4000, 4, {0.5}, {30, 30, 30, 30}, 31);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);

  SpCubeAlgorithm paper_version;
  auto paper_out = paper_version.Run(engine, rel, {});
  ASSERT_TRUE(paper_out.ok());

  SpCubeOptions no_skew_agg;
  no_skew_agg.tuning.aggregate_skews_in_mapper = false;
  SpCubeAlgorithm degraded(no_skew_agg);
  auto degraded_out = degraded.Run(engine, rel, {});
  ASSERT_TRUE(degraded_out.ok());

  // Without mapper-side aggregation, every skewed occurrence ships a
  // record, so round-2 shuffle records must be strictly larger.
  EXPECT_GT(degraded_out->metrics.rounds[1].shuffle_records,
            paper_out->metrics.rounds[1].shuffle_records);

  SpCubeOptions no_factorization;
  no_factorization.tuning.emit_minimal_groups_only = false;
  SpCubeAlgorithm unfactorized(no_factorization);
  auto unfactorized_out = unfactorized.Run(engine, rel, {});
  ASSERT_TRUE(unfactorized_out.ok());
  EXPECT_GT(unfactorized_out->metrics.rounds[1].map_output_records,
            paper_out->metrics.rounds[1].map_output_records);
}

TEST(SpCubeTest, CollectOutputFalseSkipsCube) {
  Relation rel = GenUniform(500, 2, 5, 33);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm algorithm;
  CubeRunOptions run_options;
  run_options.collect_output = false;
  auto output = algorithm.Run(engine, rel, run_options);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->cube, nullptr);
  EXPECT_GT(output->metrics.OutputRecords(), 0);
}

TEST(SpCubeTest, RunManyAggregatesSharesOneSketchRound) {
  Relation rel = GenBinomial(2000, 3, 0.4, 37);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;

  CubeRunOptions count_options;
  CubeRunOptions sum_options;
  sum_options.aggregate = AggregateKind::kSum;
  CubeRunOptions avg_options;
  avg_options.aggregate = AggregateKind::kAvg;
  auto outputs = sp.RunManyAggregates(
      engine, rel, {count_options, sum_options, avg_options});
  ASSERT_TRUE(outputs.ok()) << outputs.status();
  ASSERT_EQ(outputs->size(), 3u);

  // One sketch round total: the first output carries 2 rounds, the rest 1.
  EXPECT_EQ((*outputs)[0].metrics.rounds.size(), 2u);
  EXPECT_EQ((*outputs)[0].metrics.rounds[0].job_name, "spcube-sketch");
  EXPECT_EQ((*outputs)[1].metrics.rounds.size(), 1u);
  EXPECT_EQ((*outputs)[2].metrics.rounds.size(), 1u);

  // And every aggregate is exact.
  const AggregateKind kinds[] = {AggregateKind::kCount, AggregateKind::kSum,
                                 AggregateKind::kAvg};
  for (size_t i = 0; i < 3; ++i) {
    CubeResult reference = ComputeCubeReference(rel, kinds[i]);
    std::string diff;
    EXPECT_TRUE(CubeResult::ApproxEqual(reference, *(*outputs)[i].cube,
                                        1e-6, &diff))
        << diff;
  }
}

TEST(SpCubeTest, RunManyAggregatesValidatesEachEntry) {
  Relation rel = GenUniform(100, 2, 5, 39);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  EXPECT_FALSE(sp.RunManyAggregates(engine, rel, {}).ok());
  CubeRunOptions bad;
  bad.aggregate = AggregateKind::kSum;
  bad.iceberg_min_count = 5;
  EXPECT_FALSE(sp.RunManyAggregates(engine, rel, {bad}).ok());
}

TEST(SpCubeTest, RepeatedRunsAreIndependent) {
  Relation rel = GenUniform(800, 2, 10, 35);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm algorithm;
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  for (int i = 0; i < 3; ++i) {
    auto output = algorithm.Run(engine, rel, {});
    ASSERT_TRUE(output.ok());
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-9, &diff))
        << diff;
  }
}

}  // namespace
}  // namespace spcube
