// Unit tests for src/relation: schema, relation container, dictionary,
// CSV codec, tuple wire codec.

#include <gtest/gtest.h>

#include "common/random.h"
#include "relation/csv.h"
#include "relation/dictionary.h"
#include "relation/relation.h"
#include "relation/relation_view.h"
#include "relation/schema.h"
#include "relation/tuple_codec.h"

namespace spcube {
namespace {

TEST(SchemaTest, MakeValid) {
  auto schema = Schema::Make({"name", "city", "year"}, "sales");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_dims(), 3);
  EXPECT_EQ(schema->dimension_name(1), "city");
  EXPECT_EQ(schema->measure_name(), "sales");
  EXPECT_EQ(schema->ToString(), "R(name, city, year; sales)");
}

TEST(SchemaTest, RejectsEmptyDimensions) {
  EXPECT_FALSE(Schema::Make({}, "m").ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Make({"a", "a"}, "m").ok());
  EXPECT_FALSE(Schema::Make({"a", "m"}, "m").ok());
}

TEST(SchemaTest, RejectsEmptyNames) {
  EXPECT_FALSE(Schema::Make({"a", ""}, "m").ok());
  EXPECT_FALSE(Schema::Make({"a"}, "").ok());
}

TEST(SchemaTest, DimensionIndex) {
  Schema schema({"x", "y"}, "m");
  EXPECT_EQ(schema.DimensionIndex("x"), 0);
  EXPECT_EQ(schema.DimensionIndex("y"), 1);
  EXPECT_EQ(schema.DimensionIndex("z"), -1);
}

TEST(SchemaTest, AnonymousSchema) {
  Schema schema = MakeAnonymousSchema(3);
  EXPECT_EQ(schema.num_dims(), 3);
  EXPECT_EQ(schema.dimension_name(0), "a0");
  EXPECT_EQ(schema.dimension_name(2), "a2");
  EXPECT_EQ(schema.measure_name(), "m");
}

TEST(RelationTest, AppendAndRead) {
  Relation rel(MakeAnonymousSchema(2));
  rel.AppendRow(std::vector<int64_t>{1, 2}, 10);
  rel.AppendRow(std::vector<int64_t>{3, 4}, 20);
  ASSERT_EQ(rel.num_rows(), 2);
  EXPECT_EQ(rel.dim(0, 0), 1);
  EXPECT_EQ(rel.dim(0, 1), 2);
  EXPECT_EQ(rel.dim(1, 0), 3);
  EXPECT_EQ(rel.measure(0), 10);
  EXPECT_EQ(rel.measure(1), 20);
  const auto row = rel.row(1);
  EXPECT_EQ(row[0], 3);
  EXPECT_EQ(row[1], 4);
}

TEST(RelationTest, ColumnSpansMirrorRows) {
  Relation rel(MakeAnonymousSchema(2));
  rel.AppendRow(std::vector<int64_t>{1, 2}, 10);
  rel.AppendRow(std::vector<int64_t>{3, 4}, 20);
  const auto col0 = rel.column(0);
  const auto col1 = rel.column(1);
  ASSERT_EQ(col0.size(), 2u);
  EXPECT_EQ(col0[0], 1);
  EXPECT_EQ(col0[1], 3);
  EXPECT_EQ(col1[0], 2);
  EXPECT_EQ(col1[1], 4);
  const auto measures = rel.measures();
  ASSERT_EQ(measures.size(), 2u);
  EXPECT_EQ(measures[1], 20);
}

TEST(RelationViewTest, ContiguousRange) {
  Relation rel(MakeAnonymousSchema(1));
  for (int64_t i = 0; i < 10; ++i) {
    rel.AppendRow(std::vector<int64_t>{i}, i * 100);
  }
  RelationView view(rel, 3, 7);
  ASSERT_EQ(view.num_rows(), 4);
  EXPECT_FALSE(view.has_indirection());
  EXPECT_EQ(&view.base(), &rel);
  EXPECT_EQ(view.dim(0, 0), 3);
  EXPECT_EQ(view.measure(3), 600);
  EXPECT_EQ(view.base_row(0), 3);
}

TEST(RelationViewTest, EmptyRange) {
  Relation rel(MakeAnonymousSchema(1));
  rel.AppendRow(std::vector<int64_t>{1}, 1);
  RelationView view(rel, 1, 1);
  EXPECT_EQ(view.num_rows(), 0);
  EXPECT_FALSE(view.has_indirection());
}

TEST(RelationViewTest, RowIndirection) {
  Relation rel(MakeAnonymousSchema(2));
  for (int64_t i = 0; i < 5; ++i) {
    rel.AppendRow(std::vector<int64_t>{i, i * 10}, i);
  }
  const std::vector<int64_t> rows = {4, 0, 2};
  RelationView view(rel, rows);
  ASSERT_EQ(view.num_rows(), 3);
  EXPECT_TRUE(view.has_indirection());
  EXPECT_EQ(view.base_row(0), 4);
  EXPECT_EQ(view.dim(0, 0), 4);
  EXPECT_EQ(view.dim(0, 1), 40);
  EXPECT_EQ(view.dim(2, 1), 20);
  EXPECT_EQ(view.measure(2), 2);
  const auto row = view.row(1);
  EXPECT_EQ(row[0], 0);
  EXPECT_EQ(row.size(), 2u);
}

TEST(RelationViewTest, WholeRelationView) {
  Relation rel(MakeAnonymousSchema(1));
  rel.AppendRow(std::vector<int64_t>{7}, 70);
  RelationView view(rel);
  EXPECT_EQ(view.num_rows(), 1);
  EXPECT_EQ(view.MaterializedByteSize(), 2 * 8);
}

TEST(RelationTest, ByteSizeGrows) {
  Relation rel(MakeAnonymousSchema(4));
  const int64_t empty = rel.ByteSize();
  rel.AppendRow(std::vector<int64_t>{1, 2, 3, 4}, 5);
  EXPECT_EQ(rel.ByteSize() - empty, 5 * 8);
}

// ---------------------------------------------------------------------------
// Per-column dictionary encoding (docs/INTERNALS.md §13). Every decoded
// value, measure, and modeled byte must be identical to the plain layout.
// ---------------------------------------------------------------------------

Relation MakeMixedWidthRelation(int64_t rows) {
  // dim0: 8 distinct small values (u8 codes); dim1: > 256 distinct values,
  // negatives included (u16 codes); dim2: constant (u8, single-entry dict).
  Relation rel(MakeAnonymousSchema(3));
  Rng rng(20260808);
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t d0 = static_cast<int64_t>(rng.NextBounded(8));
    const int64_t d1 = static_cast<int64_t>(rng.NextBounded(500)) - 250;
    rel.AppendRow(std::vector<int64_t>{d0, d1, 42}, i * 3 - 7);
  }
  return rel;
}

TEST(DictionaryEncodingTest, EncodeRoundTripsValuesAndMeasures) {
  const int64_t rows = 1500;
  Relation plain = MakeMixedWidthRelation(rows);
  Relation encoded = MakeMixedWidthRelation(rows);
  encoded.DictionaryEncode();
  ASSERT_TRUE(encoded.dictionary_encoded());
  EXPECT_FALSE(plain.dictionary_encoded());
  for (int64_t r = 0; r < rows; ++r) {
    for (int d = 0; d < 3; ++d) {
      ASSERT_EQ(encoded.dim(r, d), plain.dim(r, d)) << "r=" << r << " d=" << d;
    }
    ASSERT_EQ(encoded.measure(r), plain.measure(r));
    const auto row = encoded.row(r);
    ASSERT_EQ(row[0], plain.dim(r, 0));
  }
}

TEST(DictionaryEncodingTest, DictionariesAreSortedUnique) {
  Relation rel = MakeMixedWidthRelation(1500);
  rel.DictionaryEncode();
  for (int d = 0; d < 3; ++d) {
    const auto dict = rel.dictionary(d);
    ASSERT_FALSE(dict.empty());
    for (size_t i = 1; i < dict.size(); ++i) {
      EXPECT_LT(dict[i - 1], dict[i]);  // strictly increasing: sorted + unique
    }
  }
  EXPECT_EQ(rel.dictionary(2).size(), 1u);  // constant column
  // Plain relations expose no dictionaries.
  Relation plain = MakeMixedWidthRelation(10);
  EXPECT_TRUE(plain.dictionary(0).empty());
}

TEST(DictionaryEncodingTest, ScanIsOrderPreserving) {
  Relation rel = MakeMixedWidthRelation(1500);
  Relation plain = MakeMixedWidthRelation(1500);
  rel.DictionaryEncode();
  for (int d = 0; d < 3; ++d) {
    const auto scan = rel.scan(d);
    const auto raw = plain.scan(d);
    for (int64_t r = 1; r < rel.num_rows(); ++r) {
      const size_t i = static_cast<size_t>(r);
      // Codes compare exactly as the decoded values do.
      const int cmp_codes = scan[i] < scan[i - 1]   ? -1
                            : scan[i] > scan[i - 1] ? 1
                                                    : 0;
      const int cmp_vals = raw[i] < raw[i - 1]   ? -1
                           : raw[i] > raw[i - 1] ? 1
                                                 : 0;
      ASSERT_EQ(cmp_codes, cmp_vals) << "r=" << r << " d=" << d;
    }
  }
}

TEST(DictionaryEncodingTest, ByteSizeIsEncodingInvariantPhysicalShrinks) {
  Relation rel = MakeMixedWidthRelation(2000);
  const int64_t logical = rel.ByteSize();
  EXPECT_EQ(rel.PhysicalByteSize(), logical);  // plain: identical
  rel.DictionaryEncode();
  // The memory model must not see the encoding (modeled spill schedules
  // stay bit-identical), but the physical footprint drops.
  EXPECT_EQ(rel.ByteSize(), logical);
  EXPECT_LT(rel.PhysicalByteSize(), logical);
}

TEST(DictionaryEncodingTest, EncodeIsIdempotentAndBumpsEpoch) {
  Relation rel = MakeMixedWidthRelation(100);
  const uint64_t before = rel.lifetime_epoch();
  rel.DictionaryEncode();
  EXPECT_GT(rel.lifetime_epoch(), before);
  const uint64_t after = rel.lifetime_epoch();
  const int64_t sample = rel.dim(17, 1);
  rel.DictionaryEncode();  // no-op
  EXPECT_EQ(rel.lifetime_epoch(), after);
  EXPECT_EQ(rel.dim(17, 1), sample);
}

TEST(DictionaryEncodingTest, ViewsReadThroughEncodedRelations) {
  Relation rel = MakeMixedWidthRelation(200);
  Relation plain = MakeMixedWidthRelation(200);
  rel.DictionaryEncode();
  RelationView contiguous(rel, 50, 150);
  ASSERT_EQ(contiguous.num_rows(), 100);
  for (int64_t r = 0; r < contiguous.num_rows(); ++r) {
    for (int d = 0; d < 3; ++d) {
      ASSERT_EQ(contiguous.dim(r, d), plain.dim(r + 50, d));
    }
    ASSERT_EQ(contiguous.measure(r), plain.measure(r + 50));
  }
  const std::vector<int64_t> rows = {199, 3, 77};
  RelationView gathered(rel, rows);
  EXPECT_EQ(gathered.dim(0, 1), plain.dim(199, 1));
  EXPECT_EQ(gathered.dim(2, 2), plain.dim(77, 2));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("rome"), 0);
  EXPECT_EQ(dict.Intern("paris"), 1);
  EXPECT_EQ(dict.Intern("rome"), 0);
  EXPECT_EQ(dict.size(), 2);
}

TEST(DictionaryTest, LookupAndDecode) {
  Dictionary dict;
  dict.Intern("laptop");
  EXPECT_EQ(dict.Lookup("laptop").value(), 0);
  EXPECT_FALSE(dict.Lookup("printer").ok());
  EXPECT_EQ(dict.Decode(0).value(), "laptop");
  EXPECT_FALSE(dict.Decode(1).ok());
  EXPECT_FALSE(dict.Decode(-1).ok());
}

constexpr char kSalesCsv[] =
    "name,city,year,sales\n"
    "laptop,Rome,2012,2000\n"
    "laptop,Paris,2012,1500\n"
    "printer,Rome,2013,700\n";

TEST(CsvTest, LoadBasic) {
  auto loaded = LoadCsv(kSalesCsv);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Relation& rel = loaded->relation;
  EXPECT_EQ(rel.num_dims(), 3);
  EXPECT_EQ(rel.num_rows(), 3);
  EXPECT_EQ(rel.schema().dimension_name(0), "name");
  EXPECT_EQ(rel.schema().measure_name(), "sales");
  // laptop interned first -> code 0; printer -> 1.
  EXPECT_EQ(rel.dim(0, 0), 0);
  EXPECT_EQ(rel.dim(2, 0), 1);
  EXPECT_EQ(rel.measure(0), 2000);
  EXPECT_EQ(loaded->dictionaries[0].Decode(0).value(), "laptop");
}

TEST(CsvTest, RoundTrip) {
  auto loaded = LoadCsv(kSalesCsv);
  ASSERT_TRUE(loaded.ok());
  const std::string csv = ToCsv(*loaded);
  auto reloaded = LoadCsv(csv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->relation.num_rows(), 3);
  EXPECT_EQ(ToCsv(*reloaded), csv);
}

TEST(CsvTest, TrimsWhitespace) {
  auto loaded = LoadCsv("a, b ,m\n 1 ,2, 3 \n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->relation.schema().dimension_name(1), "b");
  EXPECT_EQ(loaded->relation.measure(0), 3);
}

TEST(CsvTest, RejectsEmpty) { EXPECT_FALSE(LoadCsv("").ok()); }

TEST(CsvTest, RejectsSingleColumn) {
  EXPECT_FALSE(LoadCsv("only\n1\n").ok());
}

TEST(CsvTest, RejectsArityMismatch) {
  EXPECT_FALSE(LoadCsv("a,b,m\n1,2\n").ok());
}

TEST(CsvTest, RejectsBadMeasure) {
  EXPECT_FALSE(LoadCsv("a,m\nx,notanumber\n").ok());
}

TEST(TupleCodecTest, RoundTrip) {
  const std::vector<int64_t> dims = {5, -7, 1LL << 40};
  const std::string encoded = EncodeTuple(dims, -99);
  std::vector<int64_t> decoded_dims;
  int64_t measure = 0;
  ASSERT_TRUE(DecodeTuple(encoded, &decoded_dims, &measure).ok());
  EXPECT_EQ(decoded_dims, dims);
  EXPECT_EQ(measure, -99);
}

TEST(TupleCodecTest, RejectsTrailingBytes) {
  std::string encoded = EncodeTuple(std::vector<int64_t>{1}, 2);
  encoded += "x";
  std::vector<int64_t> dims;
  int64_t measure = 0;
  EXPECT_EQ(DecodeTuple(encoded, &dims, &measure).code(),
            StatusCode::kCorruption);
}

TEST(TupleCodecTest, RejectsTruncation) {
  std::string encoded = EncodeTuple(std::vector<int64_t>{1, 2, 3}, 4);
  encoded.resize(encoded.size() - 1);
  std::vector<int64_t> dims;
  int64_t measure = 0;
  EXPECT_FALSE(DecodeTuple(encoded, &dims, &measure).ok());
}

class TupleCodecPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TupleCodecPropertyTest, RandomTuplesRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(8));
    std::vector<int64_t> dims;
    for (int i = 0; i < d; ++i) {
      dims.push_back(static_cast<int64_t>(rng.Next()));
    }
    const int64_t measure = static_cast<int64_t>(rng.Next());
    std::vector<int64_t> decoded;
    int64_t decoded_measure = 0;
    ASSERT_TRUE(DecodeTuple(EncodeTuple(dims, measure), &decoded,
                            &decoded_measure)
                    .ok());
    EXPECT_EQ(decoded, dims);
    EXPECT_EQ(decoded_measure, measure);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TupleCodecPropertyTest,
                         ::testing::Values(10, 20, 30));

}  // namespace
}  // namespace spcube
