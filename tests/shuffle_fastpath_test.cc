// Allocation-freedom tests for the arena-backed shuffle fast path: the
// steady-state Emit -> combine cycle must perform zero heap allocations, the
// spill path boundedly few (per spill, not per record), and the Arena must
// hand out stable addresses across growth and Reset cycles.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "io/dfs.h"
#include "io/spill.h"
#include "mapreduce/api.h"
#include "mapreduce/engine.h"
#include "mapreduce/metrics.h"
#include "mapreduce/shuffle.h"
#include "relation/generators.h"
#include "relation/relation.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the global operator new lets the
// tests assert that a code path performs no (or boundedly many) heap
// allocations; counting is toggled so gtest's own bookkeeping is excluded.
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) std::abort();  // repo builds with -fno-exceptions
  return ptr;
}

}  // namespace

// The nothrow variants must be replaced alongside the plain ones: the
// default nothrow new forwards to the plain new, but sanitizer runtimes
// intercept any variant left unreplaced, and an ASan-allocated pointer
// freed by the replaced delete is an alloc-dealloc mismatch.
void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace spcube {
namespace {

/// Runs `fn` with allocation counting on; returns the number of operator-new
/// calls it made.
template <typename Fn>
int64_t CountAllocations(Fn&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  fn();
  g_count_allocs.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Arena.
// ---------------------------------------------------------------------------

TEST(ArenaTest, AddressesStayStableAcrossGrowth) {
  // A tiny chunk size forces many chunk transitions; every previously handed
  // out address must keep its bytes.
  Arena arena(/*chunk_bytes=*/64);
  std::vector<std::pair<const char*, std::string>> appended;
  for (int i = 0; i < 500; ++i) {
    std::string payload = "payload_" + std::to_string(i);
    const char* ptr = arena.Append(payload);
    appended.emplace_back(ptr, std::move(payload));
  }
  for (const auto& [ptr, payload] : appended) {
    EXPECT_EQ(std::string_view(ptr, payload.size()), payload);
  }
  EXPECT_GT(arena.bytes_reserved(), 64);
}

TEST(ArenaTest, AppendPairIsContiguous) {
  Arena arena(/*chunk_bytes=*/32);
  for (int i = 0; i < 100; ++i) {
    const std::string a = "key" + std::to_string(i);
    const std::string b = "value" + std::to_string(i * 7);
    const char* ptr = arena.AppendPair(a, b);
    EXPECT_EQ(std::string_view(ptr, a.size()), a);
    EXPECT_EQ(std::string_view(ptr + a.size(), b.size()), b);
  }
}

TEST(ArenaTest, OversizedPayloadGetsItsOwnChunk) {
  Arena arena(/*chunk_bytes=*/16);
  const std::string big(1000, 'x');
  const char* ptr = arena.Append(big);
  EXPECT_EQ(std::string_view(ptr, big.size()), big);
  // Small appends after the oversize one still work and stay readable.
  const char* small = arena.Append("tail");
  EXPECT_EQ(std::string_view(small, 4), "tail");
}

TEST(ArenaTest, ResetReusesChunksAllocationFree) {
  Arena arena(/*chunk_bytes=*/1024);
  const std::string payload(100, 'p');
  for (int i = 0; i < 50; ++i) arena.Append(payload);  // high-water mark
  const int64_t reserved = arena.bytes_reserved();

  const int64_t allocs = CountAllocations([&] {
    for (int cycle = 0; cycle < 10; ++cycle) {
      arena.Reset();
      for (int i = 0; i < 50; ++i) arena.Append(payload);
    }
  });
  EXPECT_EQ(allocs, 0);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.bytes_used(), 50 * 100);
}

// ---------------------------------------------------------------------------
// ShuffleBuffer allocation behaviour.
// ---------------------------------------------------------------------------

/// Sums decimal-string values; the merged value stays within std::string's
/// inline capacity so combining itself needs no heap storage.
class SumCombiner : public Combiner {
 public:
  Status Combine(const std::string& /*key*/,
                 const std::vector<std::string>& values,
                 std::vector<std::string>* combined) const override {
    int64_t total = 0;
    for (const std::string& value : values) total += std::stoll(value);
    combined->assign(1, std::to_string(total));
    return Status::OK();
  }
};

TEST(ShuffleFastPathTest, SteadyStateEmitAndCombineAllocationFree) {
  TempFileManager temp("fastpath");
  ShuffleCounters counters;
  SumCombiner combiner;
  // Budget small enough that Add repeatedly overflows into combine passes,
  // but with only 8 distinct keys each pass shrinks the buffer far below
  // 3/4 budget, so the cycle never spills.
  ShuffleBuffer buffer(2, /*memory_budget_bytes=*/4096, &combiner, &temp,
                       &counters);

  std::vector<std::string> keys;
  for (int k = 0; k < 8; ++k) keys.push_back("group_key_" + std::to_string(k));
  const std::string value = "1";

  // Warm-up: reach the high-water mark of every internal buffer (arenas,
  // slot vectors, hash buckets, combine scratch) across several
  // overflow-combine cycles.
  constexpr int kEmits = 20000;
  for (int i = 0; i < kEmits; ++i) {
    ASSERT_TRUE(buffer.Add(i % 2, keys[static_cast<size_t>(i % 8)], value).ok());
  }

  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < kEmits; ++i) {
      ASSERT_TRUE(
          buffer.Add(i % 2, keys[static_cast<size_t>(i % 8)], value).ok());
    }
  });
  EXPECT_EQ(allocs, 0) << "steady-state Add -> combine cycle allocated";
  EXPECT_GT(counters.combine_input_records, 0) << "combine never ran";
  EXPECT_EQ(counters.spill_bytes, 0) << "test invalid: the cycle spilled";

  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
}

TEST(ShuffleFastPathTest, SpillPathAllocatesPerSpillNotPerRecord) {
  TempFileManager temp("fastpath_spill");
  ShuffleCounters counters;
  // No combiner and distinct keys: every overflow must sort-and-spill.
  ShuffleBuffer buffer(1, /*memory_budget_bytes=*/4096, nullptr, &temp,
                       &counters);

  // Pre-build the keys so the test's own string formatting is not counted.
  constexpr int kEmits = 8192;
  std::vector<std::string> keys;
  keys.reserve(kEmits);
  for (int i = 0; i < kEmits; ++i) {
    keys.push_back("spill_key_" + std::to_string(i % 512));
  }
  const std::string value = "payload8";

  // Warm-up through a few spill cycles.
  for (int i = 0; i < kEmits; ++i) {
    ASSERT_TRUE(buffer.Add(0, keys[static_cast<size_t>(i)], value).ok());
  }
  for ([[maybe_unused]] RunInfo& run : buffer.TakeSpillRuns(0)) {
  }

  const int64_t allocs = CountAllocations([&] {
    for (int i = 0; i < kEmits; ++i) {
      ASSERT_TRUE(buffer.Add(0, keys[static_cast<size_t>(i)], value).ok());
    }
  });
  EXPECT_GT(counters.spill_bytes, 0) << "test invalid: nothing spilled";
  // Each spill opens a run file and registers it (a handful of allocations);
  // the per-record path — arena append, slot push, sort, stream write — must
  // not allocate. ~20 B/record against a 4 KiB budget means a spill every
  // ~200 records, so even 8 allocations per spill stays under kEmits / 16.
  EXPECT_LT(allocs, kEmits / 16)
      << "spill cycle allocates per record, not per spill";

  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
}

TEST(ShuffleFastPathTest, SegmentOutlivesSourceBufferAcrossCombinePass) {
  // Regression for the zero-copy hand-off contract (docs/INTERNALS.md §10):
  // TakeMemorySegment moves the partition's arena into the segment, so the
  // segment's refs must stay valid while the source buffer keeps running
  // combine passes on a fresh arena — and after the buffer dies entirely.
  // This is exactly the shape spcube-analyzer's view-escape rule flags when
  // the ownership transfer is missing.
  TempFileManager temp("fastpath_segment");
  ShuffleCounters counters;
  SumCombiner combiner;
  auto buffer = std::make_unique<ShuffleBuffer>(
      1, /*memory_budget_bytes=*/4096, &combiner, &temp, &counters);

  // First batch: small budget forces combine passes before the take, so the
  // segment's refs point into arena bytes rewritten by compaction at least
  // once.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        buffer->Add(0, "early_key_" + std::to_string(i % 8), "1").ok());
  }
  ASSERT_TRUE(buffer->FinalizeMapOutput().ok());
  ASSERT_GT(counters.combine_input_records, 0) << "combine never ran";
  ASSERT_EQ(counters.spill_bytes, 0) << "test invalid: the batch spilled";

  ShuffleSegment segment = buffer->TakeMemorySegment(0);
  ASSERT_EQ(segment.num_records(), 8);

  // Snapshot what the segment reads now (owned copies), to compare against
  // reads made after the buffer has mutated and died.
  std::vector<std::pair<std::string, std::string>> expected;
  for (const ShuffleRecordRef& ref : segment.refs()) {
    expected.emplace_back(std::string(ref.key()), std::string(ref.value()));
  }

  // Second batch on the same buffer: drives fresh combine passes (arena
  // appends, compaction swaps, Reset cycles) on the partition the segment
  // was taken from. None of that may disturb the segment's bytes.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(buffer->Add(0, "late_key_" + std::to_string(i % 8), "1").ok());
  }
  ASSERT_TRUE(buffer->FinalizeMapOutput().ok());

  auto read_segment = [&segment] {
    std::vector<std::pair<std::string, std::string>> got;
    for (const ShuffleRecordRef& ref : segment.refs()) {
      got.emplace_back(std::string(ref.key()), std::string(ref.value()));
    }
    return got;
  };
  EXPECT_EQ(read_segment(), expected)
      << "segment contents changed while the source buffer kept combining";

  // Destroy the source buffer outright; the segment owns its arena and must
  // keep every byte readable.
  buffer.reset();
  EXPECT_EQ(read_segment(), expected)
      << "segment contents changed after the source buffer was destroyed";
  for (const auto& [key, value] : expected) {
    EXPECT_TRUE(key.rfind("early_key_", 0) == 0) << key;
    EXPECT_EQ(value, "250");  // 2000 emits of "1" over 8 keys, summed
  }
}

// ---------------------------------------------------------------------------
// Per-producer budget shares (EngineConfig::map_producers_per_machine).
//
// With producer sub-tasks, each producer's ShuffleBuffer is sized
// memory_budget_bytes / producers so the *sum* of a machine's live producer
// buffers never exceeds its budget — the latent combine_headroom_fraction
// interaction: sizing every producer at the full machine budget would let a
// machine hold producers × budget in memory and silently skip spills the
// cost model is supposed to charge. These tests pin that schedule.
// ---------------------------------------------------------------------------

/// Emits one record per row in the first half of the input, with a fat value
/// and globally distinct keys (no combining possible); the second half emits
/// nothing. With producers=2 the first sub-range carries all the bytes, so
/// the spill schedule directly reveals which budget each producer was given.
class FrontLoadedMapper : public Mapper {
 public:
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    if (row >= input.num_rows() / 2) return Status::OK();
    return context.Emit("front_key_" + std::to_string(row),
                        std::string(80, 'v'));
  }
};

class DrainReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    std::string value;
    int64_t count = 0;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      ++count;
    }
    return context.Output(key, std::to_string(count));
  }
};

JobSpec FrontLoadedJob() {
  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<FrontLoadedMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<DrainReducer>(); };
  return spec;
}

Result<JobMetrics> RunFrontLoaded(int producers, int host_threads) {
  // One machine, 1000 rows: ~500 × (key + 80 B) ≈ 45 KiB of map output, all
  // of it in the first producer's sub-range.
  Relation rel = GenUniform(1000, 1, 10, /*seed=*/771);
  DistributedFileSystem dfs;
  EngineConfig config;
  config.num_workers = 1;
  config.memory_budget_bytes = 64 << 10;
  config.network_bandwidth_bytes_per_sec = 0;
  config.map_producers_per_machine = producers;
  config.host_threads = host_threads;
  Engine engine(config, &dfs);
  NullOutputCollector sink;
  return engine.Run(FrontLoadedJob(), rel, &sink);
}

TEST(ProducerBudgetTest, ProducersShareTheMachineBudget) {
  // The whole machine's output fits the machine budget: one producer, no
  // spill.
  auto whole = RunFrontLoaded(/*producers=*/1, /*host_threads=*/0);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->spill_bytes, 0)
      << "test invalid: output no longer fits the machine budget";

  // Split across two producers, the first sub-range's bytes exceed a *half*
  // budget: the first producer must spill. If this stops spilling, producers
  // are being sized at the full machine budget again — their live buffers
  // would sum to 2× the machine's memory.
  auto split = RunFrontLoaded(/*producers=*/2, /*host_threads=*/0);
  ASSERT_TRUE(split.ok());
  EXPECT_GT(split->spill_bytes, 0)
      << "producer buffers no longer share memory_budget_bytes";

  // Whatever the schedule, the shuffled data itself is unchanged.
  EXPECT_EQ(split->shuffle_records, whole->shuffle_records);
  EXPECT_EQ(split->shuffle_bytes, whole->shuffle_bytes);
  EXPECT_EQ(split->output_records, whole->output_records);
}

TEST(ProducerBudgetTest, SpillScheduleIsBitIdenticalAcrossHostThreads) {
  // The spill/combine schedule is a pure function of (config, seed): the
  // serial pool and a 4-thread pool with stealing must reproduce it
  // byte-for-byte, spills included.
  auto serial = RunFrontLoaded(/*producers=*/2, /*host_threads=*/0);
  auto threaded = RunFrontLoaded(/*producers=*/2, /*host_threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(threaded.ok());
  EXPECT_GT(serial->spill_bytes, 0) << "test invalid: nothing spilled";
  EXPECT_EQ(threaded->spill_bytes, serial->spill_bytes);
  EXPECT_EQ(threaded->combine_input_records, serial->combine_input_records);
  EXPECT_EQ(threaded->combine_output_records, serial->combine_output_records);
  EXPECT_EQ(threaded->shuffle_records, serial->shuffle_records);
  EXPECT_EQ(threaded->shuffle_bytes, serial->shuffle_bytes);
  EXPECT_EQ(threaded->output_records, serial->output_records);
}

}  // namespace
}  // namespace spcube
