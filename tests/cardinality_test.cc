// Tests for the GEE cube-cardinality estimator.

#include <gtest/gtest.h>

#include "common/random.h"
#include "cube/cube_result.h"
#include "relation/generators.h"
#include "sketch/cardinality.h"

namespace spcube {
namespace {

Relation Sample(const Relation& rel, double alpha, uint64_t seed) {
  Relation out(MakeAnonymousSchema(rel.num_dims()));
  Rng rng(seed);
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    if (rng.NextBernoulli(alpha)) out.AppendRow(rel.row(r), rel.measure(r));
  }
  return out;
}

TEST(CardinalityTest, ExactMatchesReferenceCube) {
  Relation rel = GenZipfPaper(2000, 131);
  CubeCardinalityEstimate exact = ExactCubeCardinality(rel);
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  for (CuboidMask mask = 0; mask < 16; ++mask) {
    EXPECT_EQ(exact.per_cuboid[mask], reference.CuboidGroupCount(mask))
        << mask;
  }
  EXPECT_EQ(exact.TotalGroups(), reference.num_groups());
}

TEST(CardinalityTest, AlphaOneIsExact) {
  Relation rel = GenUniform(1000, 3, 7, 133);
  auto estimate = EstimateCubeCardinality(rel, 1.0);
  ASSERT_TRUE(estimate.ok());
  CubeCardinalityEstimate exact = ExactCubeCardinality(rel);
  EXPECT_EQ(estimate->per_cuboid, exact.per_cuboid);
}

TEST(CardinalityTest, RejectsBadAlpha) {
  Relation rel = GenUniform(10, 2, 5, 135);
  EXPECT_FALSE(EstimateCubeCardinality(rel, 0.0).ok());
  EXPECT_FALSE(EstimateCubeCardinality(rel, 1.5).ok());
  EXPECT_FALSE(EstimateCubeCardinality(rel, -0.1).ok());
}

TEST(CardinalityTest, LowCardinalityCuboidsEstimatedTightly) {
  // Small domains: the sample sees every group several times, so repeated
  // counts dominate and the estimate is near-exact.
  Relation rel = GenUniform(50000, 3, 8, 137);  // <= 8^3 = 512 base groups
  const double alpha = 0.05;
  Relation sample = Sample(rel, alpha, 139);
  auto estimate = EstimateCubeCardinality(sample, alpha);
  ASSERT_TRUE(estimate.ok());
  CubeCardinalityEstimate exact = ExactCubeCardinality(rel);
  for (CuboidMask mask = 0; mask < 8; ++mask) {
    EXPECT_NEAR(static_cast<double>(estimate->per_cuboid[mask]),
                static_cast<double>(exact.per_cuboid[mask]),
                0.15 * static_cast<double>(exact.per_cuboid[mask]) + 2)
        << mask;
  }
}

TEST(CardinalityTest, GeeUpscalesSingletonHeavySamples) {
  // Huge domain: nearly every sampled tuple is a singleton group, so the
  // estimate must exceed the raw sample-distinct count by ~sqrt(1/alpha).
  Relation rel = GenUniform(20000, 2, 1 << 30, 141);
  const double alpha = 0.04;
  Relation sample = Sample(rel, alpha, 143);
  auto estimate = EstimateCubeCardinality(sample, alpha);
  ASSERT_TRUE(estimate.ok());
  const CuboidMask base = 0b11;
  CubeCardinalityEstimate sample_exact = ExactCubeCardinality(sample);
  EXPECT_GT(estimate->per_cuboid[base],
            3 * sample_exact.per_cuboid[base]);
  // GEE guarantees the estimate is within sqrt(1/alpha) of the truth in
  // ratio; check the order of magnitude here.
  CubeCardinalityEstimate exact = ExactCubeCardinality(rel);
  const double ratio =
      static_cast<double>(estimate->per_cuboid[base]) /
      static_cast<double>(exact.per_cuboid[base]);
  EXPECT_GT(ratio, 1.0 / 6.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(CardinalityTest, ApexAlwaysOne) {
  Relation rel = GenZipfPaper(5000, 145);
  Relation sample = Sample(rel, 0.1, 147);
  auto estimate = EstimateCubeCardinality(sample, 0.1);
  ASSERT_TRUE(estimate.ok());
  // The apex cuboid has exactly one group; with >= 2 samples it is seen
  // repeatedly, so GEE reports exactly 1.
  EXPECT_EQ(estimate->per_cuboid[0], 1);
}

}  // namespace
}  // namespace spcube
