// Failure-injection tests for the engine's task-retry machinery: flaky map
// and reduce tasks must be retried from scratch with no duplicated or lost
// output, and permanent failures must surface with context.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 1 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

/// Emits (dim0, "1") per row; fails mid-split (after emitting part of its
/// output!) on the first `failures_per_task` attempts of every task.
class FlakyMapper : public Mapper {
 public:
  FlakyMapper(std::shared_ptr<std::atomic<int>> attempts, int failures)
      : attempts_(std::move(attempts)), failures_(failures) {}

  Status Setup(const TaskContext&) override {
    attempt_index_ = attempts_->fetch_add(1);
    return Status::OK();
  }

  Status Map(const Relation& input, int64_t row,
             MapContext& context) override {
    SPCUBE_RETURN_IF_ERROR(
        context.Emit(std::to_string(input.dim(row, 0)), "1"));
    ++rows_seen_;
    // Fail after half the split was already emitted, on "early" attempts.
    if (rows_seen_ == 3 && (attempt_index_ % 2) < failures_) {
      return Status::IoError("injected mapper failure");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<int>> attempts_;
  int failures_;
  int attempt_index_ = 0;
  int64_t rows_seen_ = 0;
};

class CountReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t count = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      count += std::stoll(value);
    }
    return context.Output(key, std::to_string(count));
  }
};

/// Reducer that fails after outputting some pairs on its first attempt.
class FlakyReducer : public Reducer {
 public:
  explicit FlakyReducer(std::shared_ptr<std::atomic<int>> attempts)
      : attempts_(std::move(attempts)) {}

  Status Setup(const TaskContext&) override {
    // Tasks run sequentially and each failing task is retried immediately,
    // so even construction indices are first attempts.
    first_attempt_ = attempts_->fetch_add(1) % 2 == 0;
    return Status::OK();
  }

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t count = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      count += std::stoll(value);
    }
    SPCUBE_RETURN_IF_ERROR(context.Output(key, std::to_string(count)));
    if (first_attempt_ && ++groups_ == 2) {
      return Status::IoError("injected reducer failure");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<int>> attempts_;
  bool first_attempt_ = false;
  int groups_ = 0;
};

std::map<std::string, int64_t> DirectCounts(const Relation& rel) {
  std::map<std::string, int64_t> counts;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    ++counts[std::to_string(rel.dim(r, 0))];
  }
  return counts;
}

std::map<std::string, int64_t> CollectorCounts(
    const VectorOutputCollector& collector) {
  std::map<std::string, int64_t> counts;
  for (const auto& entry : collector.entries()) {
    counts[entry.key] += std::stoll(entry.value);
  }
  return counts;
}

TEST(FaultToleranceTest, FlakyMapperSucceedsWithRetries) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 2;
  spec.mapper_factory = [attempts] {
    return std::make_unique<FlakyMapper>(attempts, /*failures=*/1);
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  // Retried attempts' partial emissions were discarded: counts are exact.
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // Each of the 4 map tasks ran twice (fail, then succeed).
  EXPECT_EQ(attempts->load(), 8);
}

TEST(FaultToleranceTest, MapperFailsWithoutRetries) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 1;
  spec.mapper_factory = [attempts] {
    return std::make_unique<FlakyMapper>(attempts, /*failures=*/1);
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kIoError);
  EXPECT_NE(metrics.status().message().find("map task"), std::string::npos);
}

TEST(FaultToleranceTest, PermanentMapperFailureExhaustsAttempts) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  JobSpec spec;
  spec.max_task_attempts = 3;
  spec.mapper_factory = [] {
    class AlwaysFails : public Mapper {
      Status Map(const Relation&, int64_t, MapContext&) override {
        return Status::IoError("permanently broken");
      }
    };
    return std::make_unique<AlwaysFails>();
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_NE(metrics.status().message().find("3 attempt(s)"),
            std::string::npos);
}

TEST(FaultToleranceTest, FlakyReducerOutputNotDuplicated) {
  // The reducer outputs pairs and then fails; on retry it outputs them
  // again. The commit protocol must deliver each group exactly once.
  Relation rel = GenUniform(400, 1, 40, 73);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 2;
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const Relation& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [attempts] {
    return std::make_unique<FlakyReducer>(attempts);
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // No key appears twice in the raw entries either.
  std::map<std::string, int> seen;
  for (const auto& entry : collector.entries()) ++seen[entry.key];
  for (const auto& [key, times] : seen) {
    EXPECT_EQ(times, 1) << key;
  }
}

TEST(FaultToleranceTest, StrictMemoryFailureIsNotRetried) {
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 256;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  auto reducer_constructions = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 5;
  spec.memory_policy = MemoryPolicy::kStrict;
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const Relation& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [reducer_constructions] {
    reducer_constructions->fetch_add(1);
    return std::make_unique<CountReducer>();
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
  // The OOM happens before the reducer is even constructed, and it is not
  // retried — so no reducer was built for the failing partition.
  EXPECT_LE(reducer_constructions->load(), 1);
}

}  // namespace
}  // namespace spcube
