// Failure-injection tests for the engine's task-retry machinery: flaky map
// and reduce tasks must be retried from scratch with no duplicated or lost
// output, and permanent failures must surface with context.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "common/logging.h"
#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/fault.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 1 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

/// Emits (dim0, "1") per row; fails mid-split (after emitting part of its
/// output!) on the first `failures_per_task` attempts of every task.
class FlakyMapper : public Mapper {
 public:
  FlakyMapper(std::shared_ptr<std::atomic<int>> attempts, int failures)
      : attempts_(std::move(attempts)), failures_(failures) {}

  Status Setup(const TaskContext&) override {
    attempt_index_ = attempts_->fetch_add(1);
    return Status::OK();
  }

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    SPCUBE_RETURN_IF_ERROR(
        context.Emit(std::to_string(input.dim(row, 0)), "1"));
    ++rows_seen_;
    // Fail after half the split was already emitted, on "early" attempts.
    if (rows_seen_ == 3 && (attempt_index_ % 2) < failures_) {
      return Status::IoError("injected mapper failure");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<int>> attempts_;
  int failures_;
  int attempt_index_ = 0;
  int64_t rows_seen_ = 0;
};

class CountReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t count = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      count += std::stoll(value);
    }
    return context.Output(key, std::to_string(count));
  }
};

/// Reducer that fails after outputting some pairs on its first attempt.
class FlakyReducer : public Reducer {
 public:
  explicit FlakyReducer(std::shared_ptr<std::atomic<int>> attempts)
      : attempts_(std::move(attempts)) {}

  Status Setup(const TaskContext&) override {
    // Tasks run sequentially and each failing task is retried immediately,
    // so even construction indices are first attempts.
    first_attempt_ = attempts_->fetch_add(1) % 2 == 0;
    return Status::OK();
  }

  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t count = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      count += std::stoll(value);
    }
    SPCUBE_RETURN_IF_ERROR(context.Output(key, std::to_string(count)));
    if (first_attempt_ && ++groups_ == 2) {
      return Status::IoError("injected reducer failure");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<int>> attempts_;
  bool first_attempt_ = false;
  int groups_ = 0;
};

std::map<std::string, int64_t> DirectCounts(const Relation& rel) {
  std::map<std::string, int64_t> counts;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    ++counts[std::to_string(rel.dim(r, 0))];
  }
  return counts;
}

std::map<std::string, int64_t> CollectorCounts(
    const VectorOutputCollector& collector) {
  std::map<std::string, int64_t> counts;
  for (const auto& entry : collector.entries()) {
    counts[entry.key] += std::stoll(entry.value);
  }
  return counts;
}

TEST(FaultToleranceTest, FlakyMapperSucceedsWithRetries) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 2;
  spec.mapper_factory = [attempts] {
    return std::make_unique<FlakyMapper>(attempts, /*failures=*/1);
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  // Retried attempts' partial emissions were discarded: counts are exact.
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // Each of the 4 map tasks ran twice (fail, then succeed).
  EXPECT_EQ(attempts->load(), 8);
}

TEST(FaultToleranceTest, MapperFailsWithoutRetries) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 1;
  spec.mapper_factory = [attempts] {
    return std::make_unique<FlakyMapper>(attempts, /*failures=*/1);
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kIoError);
  EXPECT_NE(metrics.status().message().find("map task"), std::string::npos);
}

TEST(FaultToleranceTest, PermanentMapperFailureExhaustsAttempts) {
  Relation rel = GenUniform(100, 1, 9, 71);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  JobSpec spec;
  spec.max_task_attempts = 3;
  spec.mapper_factory = [] {
    class AlwaysFails : public Mapper {
      Status Map(const RelationView&, int64_t, MapContext&) override {
        return Status::IoError("permanently broken");
      }
    };
    return std::make_unique<AlwaysFails>();
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_NE(metrics.status().message().find("3 attempt(s)"),
            std::string::npos);
}

TEST(FaultToleranceTest, FlakyReducerOutputNotDuplicated) {
  // The reducer outputs pairs and then fails; on retry it outputs them
  // again. The commit protocol must deliver each group exactly once.
  Relation rel = GenUniform(400, 1, 40, 73);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);

  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 2;
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const RelationView& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [attempts] {
    return std::make_unique<FlakyReducer>(attempts);
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // No key appears twice in the raw entries either.
  std::map<std::string, int> seen;
  for (const auto& entry : collector.entries()) ++seen[entry.key];
  for (const auto& [key, times] : seen) {
    EXPECT_EQ(times, 1) << key;
  }
}

TEST(FaultToleranceTest, StrictMemoryFailureIsNotRetried) {
  // Under MemoryPolicy::kStrict, ResourceExhausted is a *deterministic*
  // verdict about the partition's size, not a transient fault: re-running
  // the attempt cannot shrink the input, so the engine must fail fast
  // instead of burning the remaining attempts. Even the chaos harness's
  // attempt floor (min_task_attempts) must not override this.
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 256;
  config.min_task_attempts = 5;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  auto reducer_constructions = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 5;
  spec.memory_policy = MemoryPolicy::kStrict;
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const RelationView& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [reducer_constructions] {
    reducer_constructions->fetch_add(1);
    return std::make_unique<CountReducer>();
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
  // The OOM happens before the reducer is even constructed, and it is not
  // retried — so no reducer was built for the failing partition.
  EXPECT_LE(reducer_constructions->load(), 1);
}

// ---- Deterministic chaos (FaultPlan) ---------------------------------------

JobSpec CountJobSpec() {
  JobSpec spec;
  spec.name = "chaos-count";
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const RelationView& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  return spec;
}

TEST(FaultPlanTest, DecisionsAreDeterministicAndSeedSensitive) {
  FaultConfig config;
  config.seed = 42;
  config.map_failure_rate = 0.5;
  config.straggler_rate = 0.5;
  config.worker_crash_rate = 0.3;

  FaultPlan a(config);
  FaultPlan b(config);
  const int64_t job_a = a.BeginJob("j");
  const int64_t job_b = b.BeginJob("j");
  EXPECT_EQ(job_a, job_b);
  for (int task = 0; task < 16; ++task) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const TaskFault fa = a.PlanTaskAttempt(job_a, TaskKind::kMap, task,
                                             attempt);
      const TaskFault fb = b.PlanTaskAttempt(job_b, TaskKind::kMap, task,
                                             attempt);
      EXPECT_EQ(fa.fail, fb.fail);
      EXPECT_EQ(fa.fail_after_items, fb.fail_after_items);
      EXPECT_EQ(fa.slowdown_factor, fb.slowdown_factor);
    }
  }
  EXPECT_EQ(a.CrashedWorkers(job_a, 8), b.CrashedWorkers(job_b, 8));

  // A different seed yields a different plan somewhere in this window.
  config.seed = 43;
  FaultPlan c(config);
  const int64_t job_c = c.BeginJob("j");
  bool any_difference = !(a.CrashedWorkers(job_a, 8) ==
                          c.CrashedWorkers(job_c, 8));
  for (int task = 0; task < 16 && !any_difference; ++task) {
    for (int attempt = 0; attempt < 4 && !any_difference; ++attempt) {
      const TaskFault fa = a.PlanTaskAttempt(job_a, TaskKind::kMap, task,
                                             attempt);
      const TaskFault fc = c.PlanTaskAttempt(job_c, TaskKind::kMap, task,
                                             attempt);
      any_difference = fa.fail != fc.fail ||
                       fa.slowdown_factor != fc.slowdown_factor;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, InjectedMapFailuresRecoverWithBackoffCharged) {
  Relation rel = GenUniform(200, 1, 9, 71);
  EngineConfig config = TestConfig();
  config.min_task_attempts = 3;
  config.retry_backoff_seconds = 0.5;

  FaultConfig fault_config;
  fault_config.seed = 7;
  fault_config.map_failure_rate = 1.0;  // every non-final attempt fails
  FaultPlan plan(fault_config);
  config.fault_plan = &plan;

  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJobSpec(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));

  // All 4 map tasks fail attempts 0 and 1 and succeed on the spared final
  // attempt: 8 retries, each charged its capped-exponential backoff
  // (0.5 * 2^0 + 0.5 * 2^1 = 1.5 per task, jitter disabled by default)
  // into both the phase time and the recovery total.
  EXPECT_EQ(metrics->task_retries, 8);
  EXPECT_DOUBLE_EQ(metrics->fault_recovery_seconds, 4 * 1.5);
  EXPECT_GE(metrics->map_phase.MaxSeconds(), 1.5);
}

TEST(FaultPlanTest, WorkerCrashRecoveryReexecutesLostMapTasks) {
  Relation rel = GenZipf(600, 1, 1, 30, 1.2, 77);
  EngineConfig config = TestConfig();
  config.retry_backoff_seconds = 0.25;

  // Fault-free reference run.
  DistributedFileSystem clean_dfs;
  Engine clean_engine(config, &clean_dfs);
  VectorOutputCollector clean_collector;
  auto clean = clean_engine.Run(CountJobSpec(), rel, &clean_collector);
  ASSERT_TRUE(clean.ok()) << clean.status();

  FaultConfig fault_config;
  fault_config.seed = 11;
  fault_config.forced_worker_crashes = 2;
  FaultPlan plan(fault_config);
  config.fault_plan = &plan;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJobSpec(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  // The crash is recovered exactly: same output, same record counts.
  EXPECT_EQ(CollectorCounts(collector), CollectorCounts(clean_collector));
  EXPECT_EQ(metrics->map_output_records, clean->map_output_records);
  EXPECT_EQ(metrics->workers_crashed, 2);
  EXPECT_EQ(metrics->tasks_reexecuted_after_crash, 2);
  // Recovery has a simulated-time cost: re-executed work plus the
  // re-scheduling backoff lands on surviving machines.
  EXPECT_GT(metrics->fault_recovery_seconds, 0.0);
  EXPECT_GE(metrics->map_phase.SumSeconds(),
            2 * config.retry_backoff_seconds);
}

TEST(FaultPlanTest, StragglersAreSpeculativelyReexecuted) {
  Relation rel = GenUniform(200, 1, 9, 71);
  EngineConfig config = TestConfig();

  FaultConfig fault_config;
  fault_config.seed = 5;
  fault_config.straggler_rate = 1.0;
  fault_config.straggler_factor = 10.0;
  FaultPlan plan(fault_config);
  config.fault_plan = &plan;

  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJobSpec(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // Every map task and every reduce task straggled and was backed up.
  EXPECT_EQ(metrics->tasks_speculatively_reexecuted, 4 + 4);

  // Without speculation the same plan pays the full slowdown.
  config.speculative_execution = false;
  FaultPlan slow_plan(fault_config);
  config.fault_plan = &slow_plan;
  DistributedFileSystem slow_dfs;
  Engine slow_engine(config, &slow_dfs);
  VectorOutputCollector slow_collector;
  auto slow = slow_engine.Run(CountJobSpec(), rel, &slow_collector);
  ASSERT_TRUE(slow.ok()) << slow.status();
  EXPECT_EQ(slow->tasks_speculatively_reexecuted, 0);
  // The speculative run's recovery time is the backups' busy time.
  EXPECT_GT(metrics->fault_recovery_seconds, 0.0);
}

TEST(FaultPlanTest, TransientDfsReadErrorIsRetriable) {
  FaultConfig config;
  config.seed = 3;
  config.dfs_read_error_rate = 1.0;
  FaultPlan plan(config);

  DistributedFileSystem dfs;
  dfs.SetFaultInjector(&plan);
  ASSERT_TRUE(dfs.Write("a/b", "payload").ok());
  // The first-ever read of the path fails; the retry succeeds, so a reader
  // with one retry always makes progress.
  auto first = dfs.Read("a/b");
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsIoError());
  auto second = dfs.Read("a/b");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*second, "payload");
  EXPECT_EQ(plan.injected_read_errors(), 1);
}

TEST(FaultPlanTest, CorruptedDfsPayloadIsDetectedAndRefetched) {
  FaultConfig config;
  config.seed = 9;
  config.payload_corruption_rate = 1.0;
  FaultPlan plan(config);

  DistributedFileSystem dfs;
  dfs.SetFaultInjector(&plan);
  ASSERT_TRUE(dfs.Write("blob", "some payload bytes").ok());
  auto read = dfs.Read("blob");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "some payload bytes");
  EXPECT_GE(dfs.checksum_mismatches(), 1);
  EXPECT_GE(dfs.reads_recovered(), 1);
}

TEST(FaultPlanTest, CorruptedShuffleFetchIsDetectedAndRefetched) {
  // Tiny memory budget forces spill runs, whose reduce-side fetches are the
  // corruption surface; every first fetch is corrupted and every record
  // still arrives intact via CRC-triggered re-fetch.
  Relation rel = GenUniform(2000, 2, 40, 79);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 1 << 10;

  FaultConfig fault_config;
  fault_config.seed = 13;
  fault_config.payload_corruption_rate = 1.0;
  FaultPlan plan(fault_config);
  config.fault_plan = &plan;

  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  VectorOutputCollector collector;
  auto metrics = engine.Run(CountJobSpec(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  EXPECT_GT(metrics->shuffle_checksum_mismatches, 0);
  EXPECT_GT(plan.injected_corruptions(), 0);
}

TEST(FaultPlanTest, ThreadedChaosMatchesSequentialChaos) {
  // The plan keys every decision on stable task coordinates, so the same
  // seed produces the same failures, retries and output under real thread
  // interleaving.
  Relation rel = GenUniform(800, 2, 25, 91);
  EngineConfig config = TestConfig();
  config.min_task_attempts = 3;
  config.retry_backoff_seconds = 0.125;

  FaultConfig fault_config;
  fault_config.seed = 17;
  fault_config.map_failure_rate = 0.4;
  fault_config.reduce_failure_rate = 0.4;
  fault_config.forced_worker_crashes = 1;
  fault_config.payload_corruption_rate = 0.3;

  auto run = [&](bool use_threads, int64_t* retries) {
    EngineConfig engine_config = config;
    engine_config.host_threads = use_threads ? 4 : 0;
    FaultPlan plan(fault_config);
    engine_config.fault_plan = &plan;
    DistributedFileSystem dfs;
    Engine engine(engine_config, &dfs);
    VectorOutputCollector collector;
    auto metrics = engine.Run(CountJobSpec(), rel, &collector);
    SPCUBE_CHECK_OK(metrics.status());
    *retries = metrics->task_retries;
    return CollectorCounts(collector);
  };
  int64_t sequential_retries = 0;
  int64_t threaded_retries = 0;
  const auto sequential = run(false, &sequential_retries);
  const auto threaded = run(true, &threaded_retries);
  EXPECT_EQ(sequential, DirectCounts(rel));
  EXPECT_EQ(threaded, sequential);
  EXPECT_EQ(threaded_retries, sequential_retries);
}

}  // namespace
}  // namespace spcube
