#!/usr/bin/env python3
"""Golden tests for tools/lint/spcube_lint.py.

Each rule has a violating fixture and a clean fixture under
tests/lint/fixtures/src/ (the src/ segment matters: several rules only
apply to library code, and the fixtures are linted with --root pointing
at the fixtures dir so they look like library files). The test asserts
the exact (line, rule-id) set per fixture — a linter that fires the right
rule on the wrong line, or a neighboring rule, fails here.

Each fixture is linted in its own invocation: the marked-type exemption
for nodiscard-on-status is computed over the scanned set, and the clean
fixture's `class [[nodiscard]] Status` must not leak into the violating
fixture's run.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.normpath(os.path.join(HERE, "..", ".."))
LINTER = os.path.join(REPO, "tools", "lint", "spcube_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file (relative to fixtures/) -> expected [(line, rule-id)].
EXPECTATIONS = {
    "src/raw_random_violation.cc": [
        (8, "no-raw-random"),
        (13, "no-raw-random"),
        (18, "no-raw-random"),
        (19, "no-raw-random"),
    ],
    "src/raw_random_clean.cc": [],
    "src/exceptions_violation.cc": [
        (8, "no-exceptions"),
        (9, "no-exceptions"),
        (10, "no-exceptions"),
    ],
    "src/exceptions_clean.cc": [],
    "src/host_time_violation.cc": [
        (3, "no-host-time"),
        (10, "no-host-time"),
        (15, "no-host-time"),
        (19, "no-host-time"),
    ],
    "src/host_time_clean.cc": [],
    "src/stdout_violation.cc": [
        (8, "no-stdout-in-lib"),
        (9, "no-stdout-in-lib"),
        (10, "no-stdout-in-lib"),
        (11, "no-stdout-in-lib"),
    ],
    "src/stdout_clean.cc": [],
    "src/guard_violation.h": [
        (3, "include-guard-name"),
    ],
    "src/guard_clean.h": [],
    "src/nodiscard_violation.h": [
        (13, "nodiscard-on-status"),
        (14, "nodiscard-on-status"),
        (17, "nodiscard-on-status"),
    ],
    "src/nodiscard_clean.h": [],
    "src/cube/owning_copy_violation.cc": [
        (6, "no-owning-copy-in-hot-path"),
        (8, "no-owning-copy-in-hot-path"),
        (10, "no-owning-copy-in-hot-path"),
    ],
    "src/cube/owning_copy_clean.cc": [],
    "src/mapreduce/owning_copy_violation.cc": [
        (6, "no-owning-copy-in-hot-path"),
        (8, "no-owning-copy-in-hot-path"),
    ],
    "src/mapreduce/owning_copy_clean.cc": [],
    "src/owning_copy_outside_hot_path.cc": [],
    "src/ignore_error_violation.cc": [
        (11, "ignore-error-has-reason"),
        (12, "ignore-error-has-reason"),
        (13, "ignore-error-has-reason"),
    ],
    "src/ignore_error_clean.cc": [],
    "src/raw_thread_violation.cc": [
        (3, "no-raw-thread-outside-pool"),
        (10, "no-raw-thread-outside-pool"),
        (12, "no-raw-thread-outside-pool"),
        (18, "no-raw-thread-outside-pool"),
    ],
    "src/raw_thread_clean.cc": [],
}


def run_linter(paths, root):
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", root] + paths,
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        # path:line: [rule] message
        parts = line.split(":", 2)
        if len(parts) < 3 or "[" not in parts[2]:
            continue
        rule = parts[2].split("[", 1)[1].split("]", 1)[0]
        findings.append((parts[0], int(parts[1]), rule))
    return proc, findings


def main():
    failures = []

    for rel, expected in sorted(EXPECTATIONS.items()):
        path = os.path.join(FIXTURES, rel)
        proc, findings = run_linter([path], FIXTURES)
        got = [(line, rule) for (_, line, rule) in findings]
        want = sorted(expected)
        if sorted(got) != want:
            failures.append(
                "%s:\n  expected %s\n  got      %s\n  stdout: %s"
                % (rel, want, sorted(got), proc.stdout.strip()))
            continue
        want_exit = 1 if expected else 0
        if proc.returncode != want_exit:
            failures.append("%s: exit code %d, expected %d"
                            % (rel, proc.returncode, want_exit))

    # The reported paths must be relative to --root so findings are
    # stable across checkouts.
    proc, findings = run_linter(
        [os.path.join(FIXTURES, "src/guard_violation.h")], FIXTURES)
    if findings and findings[0][0] != os.path.join(
            "src", "guard_violation.h"):
        failures.append("paths not reported relative to --root: %s"
                        % findings[0][0])

    # An allow pragma without a reason is itself a finding.
    proc = subprocess.run(
        [sys.executable, LINTER, "--root", FIXTURES, "--list-rules"],
        capture_output=True, text=True)
    rules = proc.stdout.split()
    for rule in ("no-raw-random", "no-exceptions", "no-host-time",
                 "no-stdout-in-lib", "include-guard-name",
                 "nodiscard-on-status", "no-owning-copy-in-hot-path",
                 "ignore-error-has-reason", "no-raw-thread-outside-pool"):
        if rule not in rules:
            failures.append("--list-rules missing %s" % rule)

    # --emit-sarif writes a SARIF 2.1.0 run mirroring the plain-text
    # findings (shared writer with the analyzer; CI uploads both).
    import json
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "out.sarif")
        proc = subprocess.run(
            [sys.executable, LINTER, "--root", FIXTURES,
             "--emit-sarif=%s" % sarif_path,
             os.path.join(FIXTURES, "src", "guard_violation.h")],
            capture_output=True, text=True)
        with open(sarif_path, "r", encoding="utf-8") as f:
            sarif = json.load(f)
        run = sarif["runs"][0]
        got = sorted((r["locations"][0]["physicalLocation"]["region"]
                      ["startLine"], r["ruleId"]) for r in run["results"])
        if (sarif["version"] != "2.1.0"
                or run["tool"]["driver"]["name"] != "spcube-lint"
                or got != sorted(EXPECTATIONS["src/guard_violation.h"])):
            failures.append("SARIF results do not mirror findings: %s" % got)

    # The repo itself must be clean: the acceptance gate for every PR.
    proc, findings = run_linter([], REPO)
    if proc.returncode != 0:
        failures.append("repo-wide lint not clean:\n%s" % proc.stdout)

    if failures:
        print("spcube_lint_test: %d failure(s)" % len(failures))
        for failure in failures:
            print("---\n" + failure)
        return 1
    print("spcube_lint_test: all %d fixtures behaved" % len(EXPECTATIONS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
