// Fixture: owning sub-relation copies on a cube hot path, one violating
// construct per line so the lint test can pin exact line numbers.
namespace spcube {

void Partition(Relation& rel, Relation& out) {
  Relation chunk = rel.Slice(0, 4);  // line 6
  for (long r = 0; r < rel.num_rows(); ++r) {
    out.AppendRow(rel.row(r), rel.measure(r));  // line 8
  }
  out.AppendRow(chunk.row(0), 0);  // line 10
}

}  // namespace spcube
