// Fixture: the sanctioned hot-path styles — zero-copy views, appends from
// freshly decoded vectors, and an annotated deliberate copy.
namespace spcube {

void Recurse(const Relation& rel, Relation& sample,
             const std::vector<long>& decoded) {
  RelationView view(rel, 0, rel.num_rows());
  RelationView subset(rel, decoded);
  sample.AppendRow(decoded, 7);  // appending a decoded tuple is fine
  // spcube-lint: allow(no-owning-copy-in-hot-path): Bernoulli sampling
  sample.AppendRow(rel.row(0), rel.measure(0));
}

}  // namespace spcube
