// Fixture: SPCUBE_IGNORE_ERROR discards that defeat the audit-trail
// contract — an empty reason, a too-short reason, and a non-literal
// reason the linter cannot audit.
#include "common/status.h"

namespace spcube {

Status CloseShard(int shard);

void Teardown(const char* why) {
  SPCUBE_IGNORE_ERROR(CloseShard(0), "");
  SPCUBE_IGNORE_ERROR(CloseShard(1), "cleanup");
  SPCUBE_IGNORE_ERROR(CloseShard(2), why);
}

}  // namespace spcube
