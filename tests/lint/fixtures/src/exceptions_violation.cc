// Fixture: exception constructs in library code, one per line so the
// lint test can pin exact line numbers.
#include <stdexcept>

namespace spcube {

int Parse(int x) {
  try {  // line 8
    if (x < 0) throw std::runtime_error("negative");  // line 9
  } catch (const std::exception&) {  // line 10
    return -1;
  }
  return x;
}

}  // namespace spcube
