// Fixture: the sanctioned uses of time-like code. Simulated timestamps
// carried in plain doubles are fine, and a measured busy-time read is
// acceptable when annotated with an allow pragma carrying a reason —
// spcube_lint must report nothing here.
#include <chrono>

namespace spcube {

struct SimulatedClock {
  double now_seconds = 0.0;
  void Advance(double dt) { now_seconds += dt; }
};

double BusyTimeInput() {
  // spcube-lint: allow(no-host-time): measured busy time feeds the model
  auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(start.time_since_epoch()).count();
}

}  // namespace spcube
