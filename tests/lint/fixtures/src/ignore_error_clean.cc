// Fixture: sanctioned SPCUBE_IGNORE_ERROR discards — a real reason, a
// multi-line call whose reason closes on a later line, and concatenated
// literals whose combined length is the audit trail.
#include "common/status.h"

namespace spcube {

Status CloseShard(int shard);

void Teardown() {
  SPCUBE_IGNORE_ERROR(CloseShard(0), "shard teardown is best-effort");
  SPCUBE_IGNORE_ERROR(
      CloseShard(1),
      "a failed close here is retried by the janitor pass");
  SPCUBE_IGNORE_ERROR(CloseShard(2), "best-"
                                     "effort close");
}

}  // namespace spcube
