// Fixture: concurrency done the sanctioned way — batches handed to the
// pool, plus an annotated raw-thread escape hatch with a reason —
// spcube_lint must report nothing here. (A stand-in pool type keeps the
// fixture self-contained; the rule is textual.)
#include <functional>
// spcube-lint: allow(no-raw-thread-outside-pool): FFI handle typedef only
#include <thread>
#include <vector>

namespace spcube {

struct Status {
  static Status OK() { return Status{}; }
};

struct TaskPool {
  explicit TaskPool(int, unsigned long long) {}
  std::vector<Status> Run(std::vector<std::function<Status()>> tasks) {
    std::vector<Status> statuses;
    for (auto& task : tasks) statuses.push_back(task());
    return statuses;
  }
};

void FanOut(int n) {
  TaskPool pool(n, /*seed=*/42);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.emplace_back([] { return Status::OK(); });
  }
  pool.Run(std::move(tasks));
}

void Interop() {
  // spcube-lint: allow(no-raw-thread-outside-pool): FFI thread handle only
  using NativeHandle = std::thread::native_handle_type;
  static_cast<void>(sizeof(NativeHandle*));
}

}  // namespace spcube
