// Fixture: direct console I/O from library code, one form per line.
#include <cstdio>
#include <iostream>

namespace spcube {

void Report(int n) {
  std::cout << "groups: " << n << "\n";        // line 8
  std::printf("groups: %d\n", n);              // line 9
  fprintf(stderr, "groups: %d\n", n);          // line 10
  puts("done");                                // line 11
}

}  // namespace spcube
