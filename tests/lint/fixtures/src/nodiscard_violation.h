// Fixture: fallible declarations without [[nodiscard]] (and no
// class-level [[nodiscard]] on the types in this scan set), plus a bare
// (void)-cast discard of a call result.
#ifndef SPCUBE_NODISCARD_VIOLATION_H_
#define SPCUBE_NODISCARD_VIOLATION_H_

namespace spcube {

class Status;
template <typename T>
class Result;

Status OpenShard(int shard);                 // line 13
Result<int> CountGroups(const char* name);   // line 14

inline void Discard() {
  (void)OpenShard(0);  // line 17: unaudited discard
}

}  // namespace spcube

#endif  // SPCUBE_NODISCARD_VIOLATION_H_
