// Fixture: the same owning-copy constructs outside src/cube|core|sketch —
// the rule is scoped to the cube hot paths and must not fire here.
namespace spcube {

void Helper(Relation& rel, Relation& out) {
  Relation chunk = rel.Slice(0, 4);
  out.AppendRow(rel.row(0), rel.measure(0));
}

}  // namespace spcube
