// Fixture: reproducible randomness through seeded spcube::Rng only —
// spcube_lint must report nothing here. Mentions of rand inside comments
// ("never call rand()") and strings must not trip the rule either.
#include "common/random.h"

namespace spcube {

double DrawOne(uint64_t seed) {
  Rng rng(seed);
  const char* message = "rand() and std::random_device are banned";
  (void)message;
  return rng.NextDouble();
}

}  // namespace spcube
