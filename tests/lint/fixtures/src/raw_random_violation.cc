// Fixture: every seeded-randomness bypass spcube_lint must catch.
#include <cstdlib>
#include <random>

namespace spcube {

int UnseededEngine() {
  std::mt19937 gen;  // line 8: default-seeded mersenne twister
  return static_cast<int>(gen());
}

int HostEntropy() {
  std::random_device device;  // line 13: nondeterministic host entropy
  return static_cast<int>(device());
}

int LibcRand() {
  srand(42);              // line 18: libc seeding
  return rand();          // line 19: libc generator
}

}  // namespace spcube
