// Fixture: include guard that does not match the header's path (expected
// SPCUBE_GUARD_VIOLATION_H_) and a #define that differs from the #ifndef.
#ifndef SPCUBE_WRONG_GUARD_H_
#define SPCUBE_WRONG_GUARD_H_

namespace spcube {
inline int GuardFixture() { return 1; }
}  // namespace spcube

#endif  // SPCUBE_WRONG_GUARD_H_
