// Fixture: the three sanctioned shapes — a per-declaration [[nodiscard]],
// a declaration whose return type is itself class-level [[nodiscard]],
// and a discard audited through SPCUBE_IGNORE_ERROR — spcube_lint must
// report nothing here.
#ifndef SPCUBE_NODISCARD_CLEAN_H_
#define SPCUBE_NODISCARD_CLEAN_H_

#include "common/status.h"

namespace spcube {

class [[nodiscard]] Status {};
template <typename T>
class [[nodiscard]] Result;

Status OpenShard(int shard);
Result<int> CountGroups(const char* name);

[[nodiscard]] Status CloseShard(int shard);

inline void Discard() {
  SPCUBE_IGNORE_ERROR(OpenShard(0), "fixture: shard teardown best-effort");
}

}  // namespace spcube

#endif  // SPCUBE_NODISCARD_CLEAN_H_
