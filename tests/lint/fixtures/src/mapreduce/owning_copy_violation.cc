// Fixture: materializing owned Records on the shuffle hot path, one
// violating construct per line so the lint test can pin exact line numbers.
namespace spcube {

void Drain(Stream& stream, std::vector<Record>& out) {
  out.push_back(Record{std::string(stream.key()), "v"});  // line 6
  out.emplace_back(
      Record{std::string(stream.key()), std::string(stream.value())});
}

}  // namespace spcube
