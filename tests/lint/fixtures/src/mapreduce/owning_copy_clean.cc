// Fixture: the sanctioned shuffle styles — string_views into the arena,
// aggregate Records built from already-owned strings, and an annotated
// deliberate copy at an ownership boundary.
namespace spcube {

void Forward(Stream& stream, Arena& arena, std::vector<Ref>& refs,
             std::vector<Record>& pending) {
  const char* bytes = arena.AppendPair(stream.key(), stream.value());
  refs.push_back(Ref{bytes, stream.key().size(), stream.value().size()});
  std::string owned_key = TakeKey(stream);
  pending.push_back(Record{std::move(owned_key), TakeValue(stream)});
  // spcube-lint: allow(no-owning-copy-in-hot-path): commit buffer must own
  pending.push_back(Record{std::string(stream.key()), TakeValue(stream)});
}

}  // namespace spcube
