// Fixture: hand-rolled threading that bypasses the work-stealing
// TaskPool — exactly the engine.cc pattern the pool replaced.
#include <thread>

#include <vector>

namespace spcube {

void FanOut(int n) {
  std::vector<std::thread> threads;  // line 10
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([] { std::this_thread::yield(); });  // line 12
  }
  for (auto& t : threads) t.join();
}

void FireAndForget() {
  std::jthread worker([] {});  // line 18
}

}  // namespace spcube
