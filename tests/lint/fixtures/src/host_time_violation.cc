// Fixture: host-clock reads that would leak wall time into simulated
// cluster-time metrics.
#include <time.h>

#include <chrono>

namespace spcube {

double WallSeconds() {
  auto now = std::chrono::steady_clock::now();  // line 10
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

long SystemEpoch() {
  return static_cast<long>(time(nullptr));  // line 15
}

double DateStamp() {
  auto tp = std::chrono::system_clock::now();  // line 19
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

}  // namespace spcube
