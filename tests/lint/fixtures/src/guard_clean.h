// Fixture: include guard following the SPCUBE_<PATH>_H_ convention —
// spcube_lint must report nothing here.
#ifndef SPCUBE_GUARD_CLEAN_H_
#define SPCUBE_GUARD_CLEAN_H_

namespace spcube {
inline int GuardFixture() { return 1; }
}  // namespace spcube

#endif  // SPCUBE_GUARD_CLEAN_H_
