// Fixture: library-style reporting that must not be flagged — the
// logging macro, string formatting into buffers (snprintf is not console
// I/O), and printf-lookalike identifiers.
#include <cstdio>

namespace spcube {

void Report(int n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "groups: %d", n);
  int pretty_printf_count = n;
  (void)pretty_printf_count;
}

}  // namespace spcube
