// Fixture: fallible code in the sanctioned style — Status out, no throw.
// Identifiers that merely contain the keywords (entry, retry_count,
// dispatch) must not be flagged.
namespace spcube {

struct Entry {
  int retry_count = 0;
};

int DispatchEntry(const Entry& entry) { return entry.retry_count; }

}  // namespace spcube
