// Adaptive skew-recovery tests (docs/INTERNALS.md §11): a reduce partition
// that overflows the strict memory budget is deterministically split into
// sub-partitions, partial-aggregated, and merged back exactly; every
// degradation is visible in RunMetrics and reproducible per fault seed.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/hive.h"
#include "common/logging.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "io/dfs.h"
#include "mapreduce/backoff.h"
#include "mapreduce/engine.h"
#include "mapreduce/fault.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 1 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

class TokenMapper : public Mapper {
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    return context.Emit(std::to_string(input.dim(row, 0)), "1");
  }
};

/// Sums decimal-string values — both the first-pass reducer (counting
/// tokens) and the merge reducer (summing sub-partition partial counts).
class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    int64_t sum = 0;
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
      sum += std::stoll(value);
    }
    return context.Output(key, std::to_string(sum));
  }
};

class SumCombiner : public Combiner {
 public:
  Status Combine(const std::string&, const std::vector<std::string>& values,
                 std::vector<std::string>* combined) const override {
    int64_t sum = 0;
    for (const std::string& value : values) sum += std::stoll(value);
    combined->push_back(std::to_string(sum));
    return Status::OK();
  }
};

/// The count job whose strict-memory failure mode the recovery subsystem
/// exists to survive: identical to the one in
/// FaultToleranceTest.StrictMemoryFailureIsNotRetried, plus a RecoverySpec.
JobSpec RecoverableCountSpec() {
  JobSpec spec;
  spec.name = "recoverable-count";
  spec.memory_policy = MemoryPolicy::kStrict;
  spec.mapper_factory = [] { return std::make_unique<TokenMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  spec.recovery.allow_partition_split = true;
  spec.recovery.merge_reducer_factory = [] {
    return std::make_unique<SumReducer>();
  };
  return spec;
}

std::map<std::string, int64_t> DirectCounts(const Relation& rel) {
  std::map<std::string, int64_t> counts;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    ++counts[std::to_string(rel.dim(r, 0))];
  }
  return counts;
}

std::map<std::string, int64_t> CollectorCounts(
    const VectorOutputCollector& collector) {
  std::map<std::string, int64_t> counts;
  for (const auto& entry : collector.entries()) {
    counts[entry.key] += std::stoll(entry.value);
  }
  return counts;
}

// ---- Engine-level split recovery -------------------------------------------

TEST(RecoveryTest, SplitRecoversStrictOomExactly) {
  // The exact configuration StrictMemoryFailureIsNotRetried proves is fatal
  // without recovery: 3000 rows into a 256-byte strict budget.
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 256;
  config.retry_backoff_seconds = 0.05;  // else the modeled charge is zero
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  VectorOutputCollector collector;
  auto metrics = engine.Run(RecoverableCountSpec(), rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(CollectorCounts(collector), DirectCounts(rel));
  // The degradation is visible: partitions split, rounds and re-shuffled
  // bytes counted, simulated time charged.
  EXPECT_GT(metrics->reduce_partitions_split, 0);
  EXPECT_GT(metrics->recovery_rounds, 0);
  EXPECT_GT(metrics->recovery_bytes_reshuffled, 0);
  EXPECT_GT(metrics->recovery_seconds, 0.0);
  // Recovery time is part of the fault-recovery total.
  EXPECT_LE(metrics->recovery_seconds, metrics->fault_recovery_seconds);
}

TEST(RecoveryTest, RecoveryMetricsAreDeterministicAcrossReruns) {
  Relation rel = GenUniform(3000, 1, 50, 75);
  auto run = [&rel]() {
    EngineConfig config = TestConfig();
    config.memory_budget_bytes = 256;
    DistributedFileSystem dfs;
    Engine engine(config, &dfs);
    VectorOutputCollector collector;
    auto metrics = engine.Run(RecoverableCountSpec(), rel, &collector);
    SPCUBE_CHECK_OK(metrics.status());
    return *metrics;
  };
  const JobMetrics a = run();
  const JobMetrics b = run();
  EXPECT_EQ(a.reduce_partitions_split, b.reduce_partitions_split);
  EXPECT_EQ(a.recovery_rounds, b.recovery_rounds);
  EXPECT_EQ(a.recovery_bytes_reshuffled, b.recovery_bytes_reshuffled);
  EXPECT_DOUBLE_EQ(a.recovery_seconds, b.recovery_seconds);
}

TEST(RecoveryTest, DepthExhaustionSurfacesExplanatoryStatus) {
  // A budget so small that even max-depth sub-partitions overflow: the job
  // must fail with ResourceExhausted and name the exhausted knob.
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 64;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  JobSpec spec = RecoverableCountSpec();
  spec.recovery.max_split_depth = 1;
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
  EXPECT_NE(metrics.status().message().find("max_split_depth"),
            std::string::npos)
      << metrics.status();
}

TEST(RecoveryTest, DisabledRecoveryStatusExplainsWhy) {
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 256;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  JobSpec spec = RecoverableCountSpec();
  spec.recovery = RecoverySpec{};  // back to the default: no recovery
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
  EXPECT_NE(metrics.status().message().find("not enabled"),
            std::string::npos)
      << metrics.status();
}

TEST(RecoveryTest, RejectedRecoveryStatusCarriesReason) {
  // A holistic aggregate: MakeCubeRecoverySpec refuses to split and the
  // failure Status must carry its reason.
  Relation rel = GenUniform(3000, 1, 50, 75);
  EngineConfig config = TestConfig();
  config.memory_budget_bytes = 256;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  JobSpec spec = RecoverableCountSpec();
  spec.recovery = MakeCubeRecoverySpec(AggregateKind::kAvg, 1);
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_FALSE(metrics.ok());
  EXPECT_TRUE(metrics.status().IsResourceExhausted());
  EXPECT_NE(metrics.status().message().find("non-mergeable quotient"),
            std::string::npos)
      << metrics.status();
}

TEST(RecoveryTest, ImbalanceAlertFiresOnSkewedPartitions) {
  // One dominant key under hash partitioning: the max/mean reduce-input
  // ratio far exceeds a threshold just above perfect balance.
  Relation rel = GenMonotonicSkew(4000, 1, 0.7, 1000, 83);
  EngineConfig config = TestConfig();
  config.reducer_imbalance_alert_threshold = 1.5;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);

  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<TokenMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->reducer_imbalance_alerts, 1);
  EXPECT_GT(metrics->ReducerImbalance(), 1.5);
}

// ---- Backoff helper --------------------------------------------------------

TEST(BackoffTest, GrowsExponentiallyAndClampsAtCap) {
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.5, 60.0, 0.0, 1, 1,
                                       TaskKind::kMap, 0, 0),
                   0.5);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.5, 60.0, 0.0, 1, 1,
                                       TaskKind::kMap, 0, 1),
                   1.0);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.5, 60.0, 0.0, 1, 1,
                                       TaskKind::kMap, 0, 4),
                   8.0);
  // 0.5 * 2^10 = 512 clamps to the 60 s cap; cap <= 0 disables clamping.
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.5, 60.0, 0.0, 1, 1,
                                       TaskKind::kMap, 0, 10),
                   60.0);
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.5, 0.0, 0.0, 1, 1,
                                       TaskKind::kMap, 0, 10),
                   512.0);
  // Non-positive base disables backoff entirely.
  EXPECT_DOUBLE_EQ(RetryBackoffSeconds(0.0, 60.0, 0.5, 1, 1,
                                       TaskKind::kMap, 0, 3),
                   0.0);
}

TEST(BackoffTest, JitterStaysInBandAndIsDeterministic) {
  const double base = 1.0;
  bool any_off_center = false;
  for (int task = 0; task < 32; ++task) {
    const double delay = RetryBackoffSeconds(base, 60.0, 0.25, 99, 7,
                                             TaskKind::kReduce, task, 0);
    EXPECT_GE(delay, base * 0.75);
    EXPECT_LT(delay, base * 1.25);
    if (delay != base) any_off_center = true;
    // Same coordinates, same jitter draw.
    EXPECT_DOUBLE_EQ(delay,
                     RetryBackoffSeconds(base, 60.0, 0.25, 99, 7,
                                         TaskKind::kReduce, task, 0));
  }
  EXPECT_TRUE(any_off_center);
}

// ---- OOM-pressure injection grid -------------------------------------------

struct OomGridConfig {
  bool strict = true;
  bool combiner = false;
  bool speculative = false;
  std::string Name() const {
    std::string name = strict ? "strict" : "spill";
    name += combiner ? "_comb" : "_nocomb";
    name += speculative ? "_spec" : "_nospec";
    return name;
  }
};

class OomInjectionTest : public ::testing::TestWithParam<OomGridConfig> {};

TEST_P(OomInjectionTest, InjectedPressureRecoversExactlyAndDeterministically) {
  const OomGridConfig& grid = GetParam();
  Relation rel = GenZipf(3000, 1, 1, 60, 1.2, 87);

  auto run = [&](JobMetrics* out) {
    EngineConfig config = TestConfig();
    config.memory_budget_bytes = 1 << 12;
    config.speculative_execution = grid.speculative;
    config.min_task_attempts = 3;
    config.retry_backoff_seconds = 0.01;
    FaultConfig chaos;
    chaos.seed = 29;
    chaos.oom_pressure_rate = 0.6;
    chaos.oom_budget_factor = 0.25;
    chaos.straggler_rate = grid.speculative ? 0.3 : 0.0;
    FaultPlan plan(chaos);
    config.fault_plan = &plan;
    DistributedFileSystem dfs;
    Engine engine(config, &dfs);

    JobSpec spec = RecoverableCountSpec();
    if (!grid.strict) spec.memory_policy = MemoryPolicy::kSpill;
    if (grid.combiner) spec.combiner = std::make_shared<SumCombiner>();
    VectorOutputCollector collector;
    auto metrics = engine.Run(spec, rel, &collector);
    SPCUBE_CHECK_OK(metrics.status());
    if (out != nullptr) *out = *metrics;
    return CollectorCounts(collector);
  };

  JobMetrics first_metrics;
  JobMetrics second_metrics;
  EXPECT_EQ(run(&first_metrics), DirectCounts(rel));
  EXPECT_EQ(run(&second_metrics), DirectCounts(rel));
  // Same fault seed, same degradation accounting.
  EXPECT_EQ(first_metrics.reduce_partitions_split,
            second_metrics.reduce_partitions_split);
  EXPECT_EQ(first_metrics.recovery_rounds, second_metrics.recovery_rounds);
  EXPECT_EQ(first_metrics.recovery_bytes_reshuffled,
            second_metrics.recovery_bytes_reshuffled);
  EXPECT_EQ(first_metrics.task_retries, second_metrics.task_retries);
  // Spill mode absorbs the shrunken budget by spilling: no splits ever.
  if (!grid.strict) {
    EXPECT_EQ(first_metrics.reduce_partitions_split, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OomInjectionTest,
    ::testing::Values(OomGridConfig{true, false, false},
                      OomGridConfig{true, true, false},
                      OomGridConfig{true, false, true},
                      OomGridConfig{true, true, true},
                      OomGridConfig{false, false, false},
                      OomGridConfig{false, true, true}),
    [](const ::testing::TestParamInfo<OomGridConfig>& info) {
      return info.param.Name();
    });

// ---- Distribution drift ----------------------------------------------------

TEST(DriftTest, GenDriftBatchIsDeterministicAndActuallyDrifts) {
  DriftSpec spec;
  spec.num_batches = 4;
  spec.start_exponent = 0.4;
  spec.end_exponent = 1.6;
  const Relation a = GenDriftBatch(spec, 0, 500, 123);
  const Relation b = GenDriftBatch(spec, 0, 500, 123);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int d = 0; d < a.num_dims(); ++d) {
      ASSERT_EQ(a.dim(r, d), b.dim(r, d));
    }
    ASSERT_EQ(a.measure(r), b.measure(r));
  }
  // The last batch is sharper: its top key covers far more rows. Compare
  // the modal frequency of dim 0.
  auto modal_count = [](const Relation& rel) {
    std::map<int64_t, int64_t> freq;
    int64_t best = 0;
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      best = std::max(best, ++freq[rel.dim(r, 0)]);
    }
    return best;
  };
  const Relation last = GenDriftBatch(spec, 3, 500, 123);
  EXPECT_GT(modal_count(last), modal_count(a));
  for (int64_t r = 0; r < last.num_rows(); ++r) {
    for (int d = 0; d < last.num_dims(); ++d) {
      ASSERT_GE(last.dim(r, d), 0);
      ASSERT_LT(last.dim(r, d), spec.domain);
    }
  }
}

TEST(DriftTest, StaleSketchStrictMemoryRecoversExactly) {
  // The acceptance scenario: sketch built on batch 0 of a drifting Zipf
  // stream, cube computed on the aged final batch under strict reducer
  // memory. The stale sketch misplaces the new heavy hitters, a partition
  // overflows, and split recovery completes the job exactly.
  DriftSpec drift;
  drift.num_batches = 3;
  drift.start_exponent = 0.3;
  drift.end_exponent = 1.5;
  drift.churn_period = 1;
  drift.churn_step = 311;
  const Relation old_batch = GenDriftBatch(drift, 0, 4000, 2026);
  const Relation new_batch = GenDriftBatch(drift, 2, 4000, 2026);
  const CubeResult reference =
      ComputeCubeReference(new_batch, AggregateKind::kCount);

  auto run = [&](RunMetrics* out) {
    EngineConfig cluster;
    cluster.num_workers = 4;
    cluster.memory_budget_bytes = 1 << 14;
    cluster.network_bandwidth_bytes_per_sec = 0;
    cluster.retry_backoff_seconds = 0.01;
    DistributedFileSystem dfs;
    Engine engine(cluster, &dfs);
    SpCubeOptions options;
    options.strict_reducer_memory = true;
    SpCubeAlgorithm algorithm(options);
    CubeRunOptions cube_options;
    cube_options.aggregate = AggregateKind::kCount;
    auto output =
        algorithm.RunWithSketchFrom(engine, old_batch, new_batch,
                                    cube_options);
    SPCUBE_CHECK_OK(output.status());
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << diff;
    if (out != nullptr) *out = std::move(output->metrics);
  };

  RunMetrics first;
  RunMetrics second;
  run(&first);
  run(&second);
  // The stale sketch must actually hurt: recovery engaged and is visible.
  EXPECT_GT(first.ReducePartitionsSplit(), 0);
  EXPECT_GT(first.RecoveryRounds(), 0);
  EXPECT_GT(first.RecoverySeconds(), 0.0);
  // And deterministically so.
  EXPECT_EQ(first.ReducePartitionsSplit(), second.ReducePartitionsSplit());
  EXPECT_EQ(first.RecoveryRounds(), second.RecoveryRounds());
  EXPECT_EQ(first.RecoveryBytesReshuffled(),
            second.RecoveryBytesReshuffled());
}

TEST(DriftTest, HiveOptInRecoverySurvivesStrictSkew) {
  // The baselines_test asserts Hive *dies* here by default; with the
  // opt-in recovery knob the same configuration completes exactly.
  Relation rel = GenBinomial(4000, 3, 0.5, 301);
  const CubeResult reference =
      ComputeCubeReference(rel, AggregateKind::kSum);

  EngineConfig cluster;
  cluster.num_workers = 4;
  cluster.memory_budget_bytes = 1 << 14;
  cluster.network_bandwidth_bytes_per_sec = 0;
  DistributedFileSystem dfs;
  Engine engine(cluster, &dfs);

  HiveCubeOptions options;
  options.strict_reducer_memory = true;
  options.allow_split_recovery = true;
  HiveCubeAlgorithm hive(options);
  CubeRunOptions cube_options;
  cube_options.aggregate = AggregateKind::kSum;
  auto output = hive.Run(engine, rel, cube_options);
  ASSERT_TRUE(output.ok()) << output.status();
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << diff;
  EXPECT_GT(output->metrics.ReducePartitionsSplit(), 0);
}

}  // namespace
}  // namespace spcube
