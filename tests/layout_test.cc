// Tests for the columnar data layer: allocation-freedom of the GroupKey
// hot path, bounded allocations in BUC's emission loop, and seeded property
// tests that the SoA Relation + RelationView round-trip through the tuple
// codec / CSV and stay exact under row indirection.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/random.h"
#include "cube/buc.h"
#include "cube/cube_result.h"
#include "cube/group_key.h"
#include "relation/csv.h"
#include "relation/generators.h"
#include "relation/relation.h"
#include "relation/relation_view.h"
#include "relation/tuple_codec.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Overriding the global operator new lets the
// tests assert that a code path performs no (or boundedly many) heap
// allocations; counting is toggled so gtest's own bookkeeping is excluded.
// ---------------------------------------------------------------------------

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<int64_t> g_alloc_count{0};

void* CountedAlloc(size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* ptr = std::malloc(size == 0 ? 1 : size);
  if (ptr == nullptr) std::abort();  // repo builds with -fno-exceptions
  return ptr;
}

}  // namespace

// The nothrow variants must be replaced alongside the plain ones: the
// default nothrow new forwards to the plain new, but sanitizer runtimes
// intercept any variant left unreplaced, and an ASan-allocated pointer
// freed by the replaced delete is an alloc-dealloc mismatch
// (std::stable_sort's temporary buffer allocates via nothrow new).
void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace spcube {
namespace {

/// Runs `fn` with allocation counting on; returns the number of operator-new
/// calls it made.
template <typename Fn>
int64_t CountAllocations(Fn&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  fn();
  g_count_allocs.store(false, std::memory_order_relaxed);
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(AllocationTest, GroupKeyProjectIsAllocationFree) {
  // A full-width tuple: kMaxDims values, every mask subset arity possible.
  std::vector<int64_t> tuple(static_cast<size_t>(kMaxDims));
  for (int d = 0; d < kMaxDims; ++d) tuple[static_cast<size_t>(d)] = d * 11;

  int64_t checksum = 0;
  const int64_t allocs = CountAllocations([&] {
    for (CuboidMask mask = 0; mask < 4096; ++mask) {
      const GroupKey key = GroupKey::Project(mask, tuple);
      checksum += static_cast<int64_t>(key.Hash() & 0xff);
      checksum += key.values.empty() ? 0 : key.values.front();
    }
  });
  EXPECT_EQ(allocs, 0) << "Project must use GroupKey's inline storage";
  EXPECT_NE(checksum, 0);
}

TEST(AllocationTest, ProjectFromRelationRowIsAllocationFree) {
  Relation rel = GenUniform(/*rows=*/64, /*dims=*/6, /*card=*/4, 7);
  int64_t checksum = 0;
  const int64_t allocs = CountAllocations([&] {
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      const auto row = rel.row(r);
      for (CuboidMask mask = 0; mask < 64; ++mask) {
        checksum +=
            static_cast<int64_t>(GroupKey::Project(mask, row).Hash() & 0xff);
      }
    }
  });
  EXPECT_EQ(allocs, 0);
  EXPECT_NE(checksum, 0);
}

TEST(AllocationTest, BucEmissionAllocationsAreBoundedByAConstant) {
  // Thousands of distinct groups; the recursion's setup allocates a handful
  // of index/scratch vectors, but the per-group emission path must not
  // allocate, so the total stays a small constant independent of the
  // number of groups produced.
  Relation small = GenZipf(/*num_rows=*/200, /*num_zipf_dims=*/2,
                           /*num_uniform_dims=*/2, /*domain=*/8, 1.1, 11);
  Relation large = GenZipf(/*num_rows=*/2000, /*num_zipf_dims=*/2,
                           /*num_uniform_dims=*/2, /*domain=*/32, 1.1, 11);

  auto run = [](const Relation& rel, int64_t* groups) {
    BucCompute(RelationView(rel), /*base_mask=*/0,
               GetAggregator(AggregateKind::kCount), BucOptions{},
               [groups](const GroupKey&, const AggState&) { ++*groups; });
  };

  int64_t small_groups = 0;
  const int64_t small_allocs =
      CountAllocations([&] { run(small, &small_groups); });
  int64_t large_groups = 0;
  const int64_t large_allocs =
      CountAllocations([&] { run(large, &large_groups); });

  EXPECT_GT(large_groups, 1000);
  EXPECT_GT(large_groups, small_groups * 2);
  // Setup cost only: rows index, dim order, sampling scratch. Equal for both
  // sizes (same O(1) count of vectors), far below one-per-group.
  EXPECT_LE(small_allocs, 16);
  EXPECT_LE(large_allocs, 16);
  EXPECT_EQ(large_allocs, small_allocs)
      << "allocations must not scale with groups emitted";
}

// ---------------------------------------------------------------------------
// Seeded property tests: the columnar layout is observationally identical
// to the seed's row-major layout through every codec.
// ---------------------------------------------------------------------------

class LayoutPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LayoutPropertyTest, TupleCodecRoundTripsColumnarRows) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int dims = 1 + static_cast<int>(rng.NextBounded(6));
    const int64_t rows = 1 + static_cast<int64_t>(rng.NextBounded(50));
    Relation rel(MakeAnonymousSchema(dims));
    std::vector<std::vector<int64_t>> original;
    std::vector<int64_t> measures;
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<int64_t> tuple;
      for (int d = 0; d < dims; ++d) {
        tuple.push_back(static_cast<int64_t>(rng.Next()) % 1000);
      }
      const int64_t measure = static_cast<int64_t>(rng.Next()) % 1000;
      rel.AppendRow(tuple, measure);
      original.push_back(std::move(tuple));
      measures.push_back(measure);
    }

    for (int64_t r = 0; r < rows; ++r) {
      // Encoding a lazily-gathered RowRef must produce the same bytes as
      // encoding the materialized row-major tuple (the seed layout).
      const std::string from_view = EncodeTuple(rel.row(r), rel.measure(r));
      const std::string from_vector =
          EncodeTuple(original[static_cast<size_t>(r)],
                      measures[static_cast<size_t>(r)]);
      ASSERT_EQ(from_view, from_vector);

      std::vector<int64_t> decoded;
      int64_t decoded_measure = 0;
      ASSERT_TRUE(
          DecodeTuple(from_view, &decoded, &decoded_measure).ok());
      EXPECT_EQ(decoded, original[static_cast<size_t>(r)]);
      EXPECT_EQ(decoded_measure, measures[static_cast<size_t>(r)]);
    }
  }
}

TEST_P(LayoutPropertyTest, CsvRoundTripPreservesColumnarCells) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int dims = 1 + static_cast<int>(rng.NextBounded(4));
    const int64_t rows = 1 + static_cast<int64_t>(rng.NextBounded(30));
    std::string csv = "";
    for (int d = 0; d < dims; ++d) csv += "d" + std::to_string(d) + ",";
    csv += "m\n";
    Relation expected(MakeAnonymousSchema(dims));
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<int64_t> tuple;
      std::string line;
      for (int d = 0; d < dims; ++d) {
        const int64_t v = static_cast<int64_t>(rng.NextBounded(5));
        tuple.push_back(v);
        line += "v" + std::to_string(v) + ",";
      }
      const int64_t measure = static_cast<int64_t>(rng.NextBounded(100));
      line += std::to_string(measure) + "\n";
      csv += line;
      expected.AppendRow(tuple, measure);
    }

    auto loaded = LoadCsv(csv);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    const Relation& rel = loaded->relation;
    ASSERT_EQ(rel.num_rows(), expected.num_rows());
    ASSERT_EQ(rel.num_dims(), expected.num_dims());
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      EXPECT_EQ(rel.measure(r), expected.measure(r));
    }
    // Dictionary codes depend on interning order, so cells are compared
    // through a second CSV round-trip rather than against raw values.
    const std::string csv2 = ToCsv(*loaded);
    auto reloaded = LoadCsv(csv2);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(ToCsv(*reloaded), csv2);
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      for (int d = 0; d < rel.num_dims(); ++d) {
        EXPECT_EQ(reloaded->relation.dim(r, d), rel.dim(r, d));
      }
    }
  }
}

TEST_P(LayoutPropertyTest, BucOverIndirectedViewMatchesMaterializedSubset) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const int dims = 2 + static_cast<int>(rng.NextBounded(3));
    Relation rel =
        GenZipf(/*num_rows=*/300, /*num_zipf_dims=*/dims,
                /*num_uniform_dims=*/0, /*domain=*/6, 1.2,
                GetParam() * 31 + static_cast<uint64_t>(trial));

    // A shuffled strict subset of the rows, selected through indirection.
    std::vector<int64_t> subset;
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      if (rng.NextBernoulli(0.6)) subset.push_back(r);
    }
    if (subset.empty()) subset.push_back(0);
    for (size_t i = subset.size() - 1; i > 0; --i) {
      std::swap(subset[i], subset[rng.NextBounded(i + 1)]);
    }

    // Reference: materialize the subset into its own relation.
    Relation materialized(MakeAnonymousSchema(dims));
    for (const int64_t r : subset) {
      materialized.AppendRow(rel.row(r), rel.measure(r));
    }
    const CubeResult reference =
        ComputeCubeReference(materialized, AggregateKind::kSum);

    CubeResult via_view(dims);
    BucCompute(RelationView(rel, subset), /*base_mask=*/0,
               GetAggregator(AggregateKind::kSum), BucOptions{},
               [&](const GroupKey& key, const AggState& state) {
                 ASSERT_TRUE(
                     via_view
                         .AddGroup(key, GetAggregator(AggregateKind::kSum)
                                            .Finalize(state))
                         .ok());
               });

    std::string diff;
    EXPECT_TRUE(CubeResult::ApproxEqual(reference, via_view, 1e-9, &diff))
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPropertyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace spcube
