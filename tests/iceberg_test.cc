// Tests for the iceberg-cube extension: every algorithm, with
// iceberg_min_count = T, must output exactly the reference groups whose
// cardinality is >= T.

#include <gtest/gtest.h>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 5;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

CubeResult FilteredReference(const Relation& rel, int64_t min_count) {
  CubeResult full = ComputeCubeReference(rel, AggregateKind::kCount);
  CubeResult filtered(rel.num_dims());
  for (const auto& [key, value] : full.groups()) {
    if (value >= static_cast<double>(min_count)) {
      filtered.UpsertGroup(key, value);
    }
  }
  return filtered;
}

void ExpectIcebergMatches(CubeAlgorithm& algorithm, const Relation& rel,
                          int64_t min_count) {
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  CubeRunOptions options;
  options.iceberg_min_count = min_count;
  auto output = algorithm.Run(engine, rel, options);
  ASSERT_TRUE(output.ok()) << algorithm.name() << ": " << output.status();
  CubeResult expected = FilteredReference(rel, min_count);
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(expected, *output->cube, 1e-6, &diff))
      << algorithm.name() << " T=" << min_count << ":\n"
      << diff;
}

class IcebergTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(IcebergTest, SpCubeMatchesFilteredReference) {
  SpCubeAlgorithm algorithm;
  ExpectIcebergMatches(algorithm, GenBinomial(2000, 3, 0.4, 51), GetParam());
}

TEST_P(IcebergTest, NaiveMatchesFilteredReference) {
  NaiveCubeAlgorithm algorithm;
  ExpectIcebergMatches(algorithm, GenBinomial(2000, 3, 0.4, 51), GetParam());
}

TEST_P(IcebergTest, MrCubeMatchesFilteredReference) {
  MrCubeAlgorithm algorithm;
  ExpectIcebergMatches(algorithm, GenBinomial(2000, 3, 0.4, 51), GetParam());
}

TEST_P(IcebergTest, HiveMatchesFilteredReference) {
  HiveCubeAlgorithm algorithm;
  ExpectIcebergMatches(algorithm, GenBinomial(2000, 3, 0.4, 51), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, IcebergTest,
                         ::testing::Values(2, 5, 25, 200));

TEST(IcebergTest, ZipfWorkload) {
  Relation rel = GenZipfPaper(2500, 53);
  SpCubeAlgorithm sp;
  ExpectIcebergMatches(sp, rel, 10);
  NaiveCubeAlgorithm naive;
  ExpectIcebergMatches(naive, rel, 10);
}

TEST(IcebergTest, ThresholdOneIsFullCube) {
  Relation rel = GenUniform(1000, 3, 10, 55);
  SpCubeAlgorithm sp;
  ExpectIcebergMatches(sp, rel, 1);
}

TEST(IcebergTest, HugeThresholdKeepsOnlyApex) {
  Relation rel = GenUniform(1000, 3, 50, 57);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions options;
  options.iceberg_min_count = 1000;  // only the apex has 1000 tuples
  auto output = sp.Run(engine, rel, options);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->cube->num_groups(), 1);
  EXPECT_EQ(output->cube->Lookup(GroupKey(0, {})).value(), 1000.0);
}

TEST(IcebergTest, RejectedForNonCountAggregates) {
  Relation rel = GenUniform(100, 2, 5, 59);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions options;
  options.aggregate = AggregateKind::kSum;
  options.iceberg_min_count = 5;
  EXPECT_EQ(sp.Run(engine, rel, options).status().code(),
            StatusCode::kInvalidArgument);
  options.aggregate = AggregateKind::kCount;
  options.iceberg_min_count = 0;
  EXPECT_EQ(sp.Run(engine, rel, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IcebergTest, AblationVariantsAlsoFilter) {
  Relation rel = GenBinomial(1500, 3, 0.5, 61);
  SpCubeOptions no_factorization;
  no_factorization.tuning.emit_minimal_groups_only = false;
  SpCubeAlgorithm sp(no_factorization);
  ExpectIcebergMatches(sp, rel, 8);
}

TEST(IcebergTest, ReducesOutputSize) {
  Relation rel = GenZipfPaper(3000, 63);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions full;
  auto full_out = sp.Run(engine, rel, full);
  ASSERT_TRUE(full_out.ok());
  CubeRunOptions iceberg;
  iceberg.iceberg_min_count = 20;
  auto iceberg_out = sp.Run(engine, rel, iceberg);
  ASSERT_TRUE(iceberg_out.ok());
  EXPECT_LT(iceberg_out->cube->num_groups(),
            full_out->cube->num_groups() / 4);
}

}  // namespace
}  // namespace spcube
