// Randomized differential testing: for a swept grid of (distribution,
// dimensions, cluster size, memory budget, aggregate, seed) configurations,
// every distributed algorithm must reproduce the in-memory reference cube
// bit-for-bit (within fp tolerance for avg). This is the harness that keeps
// the whole stack honest as it evolves.

#include <gtest/gtest.h>

#include <string>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "baselines/topdown.h"
#include "common/random.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "mapreduce/fault.h"
#include "relation/generators.h"

namespace spcube {
namespace {

struct Config {
  int distribution;   // 0..5
  int num_dims;       // 1..5
  int workers;        // 1..8
  int budget_shift;   // memory budget = 1 << (10 + 2*shift)
  int aggregate;      // AggregateKind
  uint64_t seed;

  std::string Name() const {
    static const char* kDistributions[] = {"uniform", "binomial", "zipf",
                                           "planted", "monotonic",
                                           "independent"};
    static const char* kAggregates[] = {"count", "sum", "min", "max", "avg"};
    return std::string(kDistributions[distribution]) + "_d" +
           std::to_string(num_dims) + "_k" + std::to_string(workers) +
           "_b" + std::to_string(budget_shift) + "_" +
           kAggregates[aggregate] + "_s" + std::to_string(seed);
  }
};

Relation MakeRelation(const Config& config) {
  const int64_t n = 1200;
  switch (config.distribution) {
    case 0:
      return GenUniform(n, config.num_dims, 12, config.seed);
    case 1:
      return GenBinomial(n, config.num_dims, 0.45, config.seed);
    case 2:
      return GenZipf(n, std::min(2, config.num_dims),
                     config.num_dims - std::min(2, config.num_dims) == 0
                         ? 0
                         : config.num_dims - 2,
                     50, 1.1, config.seed);
    case 3:
      return GenPlantedSkew(
          n, config.num_dims, {0.35, 0.2},
          std::vector<int64_t>(static_cast<size_t>(config.num_dims), 9),
          config.seed);
    case 4:
      return GenMonotonicSkew(n, config.num_dims, 0.5, 40, config.seed);
    default:
      return GenIndependentSkew(n, config.num_dims, 0.35, 15, config.seed);
  }
}

/// Deterministically derives a pseudo-random configuration grid.
std::vector<Config> MakeGrid() {
  std::vector<Config> grid;
  Rng rng(0xD1FFEE);
  for (int i = 0; i < 36; ++i) {
    Config config;
    config.distribution = static_cast<int>(rng.NextBounded(6));
    config.num_dims = 1 + static_cast<int>(rng.NextBounded(5));
    config.workers = 1 + static_cast<int>(rng.NextBounded(8));
    config.budget_shift = static_cast<int>(rng.NextBounded(4));
    config.aggregate = static_cast<int>(rng.NextBounded(5));
    config.seed = 1000 + i;
    grid.push_back(config);
  }
  return grid;
}

class DifferentialTest : public ::testing::TestWithParam<Config> {};

TEST_P(DifferentialTest, AllAlgorithmsMatchReference) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  EngineConfig cluster;
  cluster.num_workers = config.workers;
  cluster.memory_budget_bytes = int64_t{1} << (10 + 2 * config.budget_shift);
  cluster.network_bandwidth_bytes_per_sec = 0;

  SpCubeAlgorithm sp;
  NaiveCubeAlgorithm naive;
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  TopDownCubeAlgorithm topdown;
  for (CubeAlgorithm* algorithm : std::initializer_list<CubeAlgorithm*>{
           &sp, &naive, &mrcube, &hive, &topdown}) {
    DistributedFileSystem dfs;
    Engine engine(cluster, &dfs);
    CubeRunOptions options;
    options.aggregate = kind;
    auto output = algorithm->Run(engine, rel, options);
    ASSERT_TRUE(output.ok())
        << config.Name() << " / " << algorithm->name() << ": "
        << output.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << config.Name() << " / " << algorithm->name() << ":\n"
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrid, DifferentialTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

/// The same grid under a deterministic chaos plan: task failures, one
/// forced worker crash, transient DFS read errors and in-flight payload
/// corruption. Recovery must be invisible — bit-exact cubes AND the same
/// per-round user counters as a fault-free run, proving failed attempts
/// leave no trace in either output or accounting.
class FaultedDifferentialTest : public ::testing::TestWithParam<Config> {};

TEST_P(FaultedDifferentialTest, RecoveryIsExactAndCounterInvisible) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  EngineConfig cluster;
  cluster.num_workers = config.workers;
  cluster.memory_budget_bytes = int64_t{1} << (10 + 2 * config.budget_shift);
  cluster.network_bandwidth_bytes_per_sec = 0;

  FaultConfig chaos;
  chaos.seed = config.seed;
  chaos.map_failure_rate = 0.25;
  chaos.reduce_failure_rate = 0.25;
  chaos.straggler_rate = 0.2;
  chaos.dfs_read_error_rate = 0.2;
  chaos.payload_corruption_rate = 0.25;
  chaos.forced_worker_crashes = 1;

  SpCubeAlgorithm sp_clean, sp_faulted;
  MrCubeAlgorithm mr_clean, mr_faulted;
  const std::pair<CubeAlgorithm*, CubeAlgorithm*> pairs[] = {
      {&sp_clean, &sp_faulted}, {&mr_clean, &mr_faulted}};
  for (const auto& [clean_algorithm, faulted_algorithm] : pairs) {
    CubeRunOptions options;
    options.aggregate = kind;

    DistributedFileSystem clean_dfs;
    Engine clean_engine(cluster, &clean_dfs);
    auto clean = clean_algorithm->Run(clean_engine, rel, options);
    ASSERT_TRUE(clean.ok()) << config.Name() << " / "
                            << clean_algorithm->name() << ": "
                            << clean.status();

    EngineConfig faulted_cluster = cluster;
    FaultPlan plan(chaos);
    faulted_cluster.fault_plan = &plan;
    faulted_cluster.min_task_attempts = 3;
    faulted_cluster.retry_backoff_seconds = 0.01;
    DistributedFileSystem faulted_dfs;
    Engine faulted_engine(faulted_cluster, &faulted_dfs);
    auto faulted = faulted_algorithm->Run(faulted_engine, rel, options);
    ASSERT_TRUE(faulted.ok()) << config.Name() << " / "
                              << faulted_algorithm->name() << ": "
                              << faulted.status();

    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *faulted->cube, 1e-6, &diff))
        << config.Name() << " / " << faulted_algorithm->name() << ":\n"
        << diff;

    // Counter invisibility: failed attempts and crash re-executions must
    // not leak into the per-round user counters.
    ASSERT_EQ(faulted->metrics.rounds.size(), clean->metrics.rounds.size())
        << config.Name() << " / " << faulted_algorithm->name();
    for (size_t r = 0; r < clean->metrics.rounds.size(); ++r) {
      EXPECT_EQ(faulted->metrics.rounds[r].custom_counters,
                clean->metrics.rounds[r].custom_counters)
          << config.Name() << " / " << faulted_algorithm->name()
          << " round " << r;
      EXPECT_EQ(faulted->metrics.rounds[r].output_records,
                clean->metrics.rounds[r].output_records)
          << config.Name() << " / " << faulted_algorithm->name()
          << " round " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrid, FaultedDifferentialTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

/// Compressed columnar storage (docs/INTERNALS.md §13) under the same grid:
/// dictionary-encoded reducer partitions plus compressed DFS blobs must be
/// bit-invisible — the cube matches the plain run exactly (tolerance 0) and
/// every modeled record/byte metric is unchanged, because Relation::ByteSize
/// is logical and wire bytes never see the encoding. The compressed/
/// uncompressed twin counters must stay ordered, never silently diverge.
class CompressedStorageDifferentialTest
    : public ::testing::TestWithParam<Config> {};

TEST_P(CompressedStorageDifferentialTest, EncodingIsExactAndMetricInvisible) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  EngineConfig cluster;
  cluster.num_workers = config.workers;
  cluster.memory_budget_bytes = int64_t{1} << (10 + 2 * config.budget_shift);
  cluster.network_bandwidth_bytes_per_sec = 0;

  CubeRunOptions options;
  options.aggregate = kind;

  SpCubeAlgorithm plain;
  DistributedFileSystem plain_dfs;
  Engine plain_engine(cluster, &plain_dfs);
  auto plain_output = plain.Run(plain_engine, rel, options);
  ASSERT_TRUE(plain_output.ok()) << config.Name() << ": "
                                 << plain_output.status();

  SpCubeOptions compressed_options;
  compressed_options.tuning.dictionary_encode_partitions = true;
  SpCubeAlgorithm compressed(compressed_options);
  EngineConfig compressed_cluster = cluster;
  compressed_cluster.compress_dfs_blobs = true;
  DistributedFileSystem compressed_dfs;
  Engine compressed_engine(compressed_cluster, &compressed_dfs);
  auto compressed_output = compressed.Run(compressed_engine, rel, options);
  ASSERT_TRUE(compressed_output.ok())
      << config.Name() << ": " << compressed_output.status();

  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(reference, *compressed_output->cube,
                                      1e-6, &diff))
      << config.Name() << " vs reference:\n" << diff;
  // Same arithmetic in the same order: bit-exact against the plain run,
  // even for avg.
  EXPECT_TRUE(CubeResult::ApproxEqual(*plain_output->cube,
                                      *compressed_output->cube,
                                      /*tolerance=*/0.0, &diff))
      << config.Name() << " vs plain run:\n" << diff;

  ASSERT_EQ(compressed_output->metrics.rounds.size(),
            plain_output->metrics.rounds.size());
  for (size_t r = 0; r < plain_output->metrics.rounds.size(); ++r) {
    const JobMetrics& p = plain_output->metrics.rounds[r];
    const JobMetrics& c = compressed_output->metrics.rounds[r];
    EXPECT_EQ(c.map_input_records, p.map_input_records) << config.Name();
    EXPECT_EQ(c.map_output_records, p.map_output_records) << config.Name();
    EXPECT_EQ(c.map_output_bytes, p.map_output_bytes) << config.Name();
    EXPECT_EQ(c.shuffle_records, p.shuffle_records) << config.Name();
    EXPECT_EQ(c.shuffle_bytes, p.shuffle_bytes) << config.Name();
    EXPECT_EQ(c.output_records, p.output_records) << config.Name();
    EXPECT_EQ(c.spill_bytes, p.spill_bytes) << config.Name();
    EXPECT_EQ(c.reducer_input_records, p.reducer_input_records)
        << config.Name();
    EXPECT_EQ(c.reducer_input_bytes, p.reducer_input_bytes) << config.Name();
    EXPECT_EQ(c.custom_counters, p.custom_counters) << config.Name();
    // Twin counters stay ordered (docs/INTERNALS.md §13): the compressed
    // side never exceeds its uncompressed twin, and spilling implies both
    // twins are populated — accounted, not silent.
    EXPECT_LE(c.spill_bytes, c.spill_bytes_uncompressed) << config.Name();
    EXPECT_LE(c.shuffle_bytes_compressed, c.shuffle_bytes_uncompressed)
        << config.Name();
    if (c.spill_bytes > 0) {
      EXPECT_GT(c.spill_bytes_uncompressed, 0) << config.Name();
    }
    // When nothing spilled, every reducer's wire bytes are plain segment
    // payloads and the twins collapse to equality.
    if (c.spill_bytes_uncompressed == 0) {
      EXPECT_EQ(c.shuffle_bytes_compressed, c.shuffle_bytes_uncompressed)
          << config.Name() << " round " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrid, CompressedStorageDifferentialTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

TEST(SketchDegradationTest, CorruptedBroadcastDegradesToExactHashFallback) {
  // Persistently corrupt the SP-Sketch broadcast: every fetch by every
  // reader is damaged, so no retry can recover it. SP-Cube must fall back
  // to an empty sketch + hash partitioning — exactness is unconditional on
  // sketch quality (docs/INTERNALS.md §2) — and count the degradation.
  const Relation rel = GenZipf(1500, 2, 0, 40, 1.2, 321);
  const CubeResult reference =
      ComputeCubeReference(rel, AggregateKind::kCount);

  EngineConfig cluster;
  cluster.num_workers = 4;
  cluster.memory_budget_bytes = 1 << 20;
  cluster.network_bandwidth_bytes_per_sec = 0;

  FaultConfig chaos;
  chaos.seed = 1;
  chaos.corrupt_sketch_broadcast = true;
  FaultPlan plan(chaos);
  cluster.fault_plan = &plan;

  SpCubeAlgorithm sp;
  DistributedFileSystem dfs;
  Engine engine(cluster, &dfs);
  CubeRunOptions options;
  options.aggregate = AggregateKind::kCount;
  auto output = sp.Run(engine, rel, options);
  ASSERT_TRUE(output.ok()) << output.status();
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << diff;
  // Every round-2 task (4 mappers, 5 reducers) noticed and degraded.
  EXPECT_GT(
      output->metrics.CustomCounter("spcube.sketch_degraded_fallbacks"), 0);
}

}  // namespace
}  // namespace spcube
