// Randomized differential testing: for a swept grid of (distribution,
// dimensions, cluster size, memory budget, aggregate, seed) configurations,
// every distributed algorithm must reproduce the in-memory reference cube
// bit-for-bit (within fp tolerance for avg). This is the harness that keeps
// the whole stack honest as it evolves.

#include <gtest/gtest.h>

#include <string>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "baselines/topdown.h"
#include "common/random.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

struct Config {
  int distribution;   // 0..5
  int num_dims;       // 1..5
  int workers;        // 1..8
  int budget_shift;   // memory budget = 1 << (10 + 2*shift)
  int aggregate;      // AggregateKind
  uint64_t seed;

  std::string Name() const {
    static const char* kDistributions[] = {"uniform", "binomial", "zipf",
                                           "planted", "monotonic",
                                           "independent"};
    static const char* kAggregates[] = {"count", "sum", "min", "max", "avg"};
    return std::string(kDistributions[distribution]) + "_d" +
           std::to_string(num_dims) + "_k" + std::to_string(workers) +
           "_b" + std::to_string(budget_shift) + "_" +
           kAggregates[aggregate] + "_s" + std::to_string(seed);
  }
};

Relation MakeRelation(const Config& config) {
  const int64_t n = 1200;
  switch (config.distribution) {
    case 0:
      return GenUniform(n, config.num_dims, 12, config.seed);
    case 1:
      return GenBinomial(n, config.num_dims, 0.45, config.seed);
    case 2:
      return GenZipf(n, std::min(2, config.num_dims),
                     config.num_dims - std::min(2, config.num_dims) == 0
                         ? 0
                         : config.num_dims - 2,
                     50, 1.1, config.seed);
    case 3:
      return GenPlantedSkew(
          n, config.num_dims, {0.35, 0.2},
          std::vector<int64_t>(static_cast<size_t>(config.num_dims), 9),
          config.seed);
    case 4:
      return GenMonotonicSkew(n, config.num_dims, 0.5, 40, config.seed);
    default:
      return GenIndependentSkew(n, config.num_dims, 0.35, 15, config.seed);
  }
}

/// Deterministically derives a pseudo-random configuration grid.
std::vector<Config> MakeGrid() {
  std::vector<Config> grid;
  Rng rng(0xD1FFEE);
  for (int i = 0; i < 36; ++i) {
    Config config;
    config.distribution = static_cast<int>(rng.NextBounded(6));
    config.num_dims = 1 + static_cast<int>(rng.NextBounded(5));
    config.workers = 1 + static_cast<int>(rng.NextBounded(8));
    config.budget_shift = static_cast<int>(rng.NextBounded(4));
    config.aggregate = static_cast<int>(rng.NextBounded(5));
    config.seed = 1000 + i;
    grid.push_back(config);
  }
  return grid;
}

class DifferentialTest : public ::testing::TestWithParam<Config> {};

TEST_P(DifferentialTest, AllAlgorithmsMatchReference) {
  const Config& config = GetParam();
  const Relation rel = MakeRelation(config);
  const AggregateKind kind = static_cast<AggregateKind>(config.aggregate);
  const CubeResult reference = ComputeCubeReference(rel, kind);

  EngineConfig cluster;
  cluster.num_workers = config.workers;
  cluster.memory_budget_bytes = int64_t{1} << (10 + 2 * config.budget_shift);
  cluster.network_bandwidth_bytes_per_sec = 0;

  SpCubeAlgorithm sp;
  NaiveCubeAlgorithm naive;
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  TopDownCubeAlgorithm topdown;
  for (CubeAlgorithm* algorithm : std::initializer_list<CubeAlgorithm*>{
           &sp, &naive, &mrcube, &hive, &topdown}) {
    DistributedFileSystem dfs;
    Engine engine(cluster, &dfs);
    CubeRunOptions options;
    options.aggregate = kind;
    auto output = algorithm->Run(engine, rel, options);
    ASSERT_TRUE(output.ok())
        << config.Name() << " / " << algorithm->name() << ": "
        << output.status();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << config.Name() << " / " << algorithm->name() << ":\n"
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGrid, DifferentialTest,
                         ::testing::ValuesIn(MakeGrid()),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           return info.param.Name();
                         });

}  // namespace
}  // namespace spcube
