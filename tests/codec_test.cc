// Property tests for the compression codecs of docs/INTERNALS.md §13:
// varint/zigzag primitives at integer extremes, the delta spill-record
// codec over adversarial key sequences, and the BlockCodec LZ format
// (round-trip, stored fallback, determinism, corruption rejection).
// All randomness flows through seeded spcube::Rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/block_codec.h"
#include "common/bytes.h"
#include "common/random.h"
#include "mapreduce/shuffle.h"

namespace spcube {
namespace {

// ---------------------------------------------------------------------------
// Varint / zigzag primitives.
// ---------------------------------------------------------------------------

TEST(VarintTest, UnsignedExtremesRoundTrip) {
  const std::vector<uint64_t> extremes = {
      0,
      1,
      127,
      128,
      (1ull << 14) - 1,
      1ull << 14,
      (1ull << 21) - 1,
      (1ull << 32) - 1,
      1ull << 32,
      (1ull << 63) - 1,
      1ull << 63,
      std::numeric_limits<uint64_t>::max()};
  for (const uint64_t v : extremes) {
    ByteWriter writer;
    writer.PutVarint(v);
    EXPECT_LE(writer.size(), 10u) << v;
    ByteReader reader(writer.data());
    uint64_t back = 0;
    ASSERT_TRUE(reader.GetVarint(&back).ok()) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(VarintTest, SignedExtremesAndSignFlipsRoundTrip) {
  const std::vector<int64_t> extremes = {
      0,
      1,
      -1,
      63,
      64,
      -64,
      -65,
      std::numeric_limits<int32_t>::max(),
      std::numeric_limits<int32_t>::min(),
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1};
  for (const int64_t v : extremes) {
    ByteWriter writer;
    writer.PutVarintSigned(v);
    ByteReader reader(writer.data());
    int64_t back = 0;
    ASSERT_TRUE(reader.GetVarintSigned(&back).ok()) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(VarintTest, ZigzagKeepsSmallMagnitudesShort) {
  // Zigzag's point: values near zero of either sign stay 1 byte, so a
  // sign-flipping stream costs no more than its magnitudes warrant.
  for (int64_t v = -64; v < 64; ++v) {
    ByteWriter writer;
    writer.PutVarintSigned(v);
    EXPECT_EQ(writer.size(), 1u) << v;
  }
}

TEST(VarintTest, RandomSignFlipStreamRoundTrips) {
  Rng rng(20260808);
  std::vector<int64_t> values;
  ByteWriter writer;
  for (int i = 0; i < 5000; ++i) {
    // Mix magnitudes across the whole range, flipping signs, with the two
    // extreme values planted periodically.
    int64_t v;
    switch (rng.NextBounded(5)) {
      case 0:
        v = std::numeric_limits<int64_t>::min();
        break;
      case 1:
        v = std::numeric_limits<int64_t>::max();
        break;
      default:
        v = rng.NextInRange(-1000000, 1000000);
        break;
    }
    if (rng.NextBernoulli(0.5) && v != std::numeric_limits<int64_t>::min()) {
      v = -v;
    }
    values.push_back(v);
    writer.PutVarintSigned(v);
  }
  ByteReader reader(writer.data());
  for (const int64_t expected : values) {
    int64_t back = 0;
    ASSERT_TRUE(reader.GetVarintSigned(&back).ok());
    EXPECT_EQ(back, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, TruncatedVarintIsCorruptionNotCrash) {
  ByteWriter writer;
  writer.PutVarint(std::numeric_limits<uint64_t>::max());
  const std::string full = writer.data();
  for (size_t len = 0; len < full.size(); ++len) {
    ByteReader reader(std::string_view(full).substr(0, len));
    uint64_t out = 0;
    EXPECT_FALSE(reader.GetVarint(&out).ok()) << "prefix " << len;
  }
}

// ---------------------------------------------------------------------------
// Delta spill-record codec (docs/INTERNALS.md §13).
// ---------------------------------------------------------------------------

std::string RandomKey(Rng& rng, size_t max_len) {
  std::string out(rng.NextBounded(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBounded(256));
  return out;
}

TEST(DeltaCodecTest, RunsOfEqualKeysRoundTripAndStayTiny) {
  // A hot group's spill run: the same key thousands of times. Every record
  // after the first must cost O(value) bytes, independent of key length.
  Rng rng(71);
  const std::string key = RandomKey(rng, 64) + std::string(64, 'K');
  SpillRecordEncoder encoder;
  SpillRecordDecoder decoder;
  ByteWriter out;
  for (int i = 0; i < 2000; ++i) {
    const std::string value = std::to_string(i);
    out.Clear();
    encoder.Append(key, value, &out);
    if (i > 0) {
      EXPECT_LE(out.size(), 4 + value.size()) << "record " << i;
    }
    std::string_view k;
    std::string_view v;
    ASSERT_TRUE(decoder.Parse(out.data(), &k, &v).ok());
    EXPECT_EQ(k, key);
    EXPECT_EQ(v, value);
  }
}

TEST(DeltaCodecTest, SortedExtremeIntegerKeysRoundTrip) {
  // Keys built from varint-signed extremes — INT64_MIN/MAX neighbours and
  // sign flips — sorted bytewise, as a real run would be.
  Rng rng(72);
  std::vector<std::pair<std::string, std::string>> records;
  const std::vector<int64_t> pool = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1,
      -1,
      0,
      1,
      std::numeric_limits<int64_t>::max() - 1,
      std::numeric_limits<int64_t>::max()};
  for (int i = 0; i < 500; ++i) {
    ByteWriter key;
    for (int d = 0; d < 4; ++d) {
      key.PutVarintSigned(pool[rng.NextBounded(pool.size())]);
    }
    records.emplace_back(key.TakeData(), RandomKey(rng, 16));
  }
  std::sort(records.begin(), records.end());

  SpillRecordEncoder encoder;
  SpillRecordDecoder decoder;
  ByteWriter out;
  for (const auto& [key, value] : records) {
    out.Clear();
    encoder.Append(key, value, &out);
    std::string_view k;
    std::string_view v;
    ASSERT_TRUE(decoder.Parse(out.data(), &k, &v).ok());
    EXPECT_EQ(k, key);
    EXPECT_EQ(v, value);
  }
}

TEST(DeltaCodecTest, UnsortedRandomRecordsRoundTrip) {
  // The codec must be correct for ANY sequence, not just sorted ones (the
  // merge path replays runs in run order, but nothing in the contract
  // requires monotone keys).
  Rng rng(73);
  SpillRecordEncoder encoder;
  SpillRecordDecoder decoder;
  ByteWriter out;
  for (int i = 0; i < 3000; ++i) {
    const std::string key = RandomKey(rng, 40);
    const std::string value = RandomKey(rng, 40);
    out.Clear();
    encoder.Append(key, value, &out);
    std::string_view k;
    std::string_view v;
    ASSERT_TRUE(decoder.Parse(out.data(), &k, &v).ok());
    EXPECT_EQ(k, key);
    EXPECT_EQ(v, value);
  }
}

TEST(DeltaCodecTest, FileBytesNeverExceedLegacyTwin) {
  // LegacySpillRecordFileBytes is the uncompressed-twin denominator the
  // engine reports; the §13 guarantee is compressed <= uncompressed for
  // every record, so totals can never cross.
  Rng rng(74);
  SpillRecordEncoder encoder;
  ByteWriter out;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = RandomKey(rng, 100);
    const std::string value = RandomKey(rng, 100);
    out.Clear();
    encoder.Append(key, value, &out);
    // Actual frame: varint(len) + u32 crc + payload.
    int64_t frame = 1 + 4 + static_cast<int64_t>(out.size());
    if (out.size() >= 128) frame += 1;
    EXPECT_LE(frame, LegacySpillRecordFileBytes(key.size(), value.size()));
  }
}

// ---------------------------------------------------------------------------
// BlockCodec (LZ with stored fallback).
// ---------------------------------------------------------------------------

TEST(BlockCodecTest, RoundTripsRepresentativeInputs) {
  Rng rng(81);
  std::vector<std::string> inputs;
  inputs.push_back("");                          // empty
  inputs.push_back("abc");                       // below kMinMatch
  inputs.push_back(std::string(100000, 'z'));    // max-RLE
  {
    // Sorted cube-output-like bytes: repeated prefixes, varint tails.
    ByteWriter writer;
    for (int i = 0; i < 20000; ++i) {
      writer.PutBytes("group_key_prefix|" + std::to_string(i / 16));
      writer.PutVarintSigned(rng.NextInRange(-1000, 1000));
    }
    inputs.push_back(writer.TakeData());
  }
  {
    // Incompressible: uniform random bytes must survive via stored blocks.
    std::string noise(65536, '\0');
    for (char& c : noise) c = static_cast<char>(rng.NextBounded(256));
    inputs.push_back(std::move(noise));
  }
  for (const std::string& input : inputs) {
    std::string compressed;
    BlockCodec::Compress(input, &compressed);
    // Never more than the stored header over the raw size.
    EXPECT_LE(compressed.size(), input.size() + 11);
    auto decoded_size = BlockCodec::DecodedSize(compressed);
    ASSERT_TRUE(decoded_size.ok());
    EXPECT_EQ(static_cast<size_t>(*decoded_size), input.size());
    std::string back;
    ASSERT_TRUE(BlockCodec::Decompress(compressed, &back).ok());
    EXPECT_EQ(back, input);
  }
}

TEST(BlockCodecTest, CompressesRedundantStreamsWell) {
  // The honesty gate behind BENCH_compression's DFS rows: sorted, highly
  // repetitive streams must shrink at least 2x.
  ByteWriter writer;
  for (int i = 0; i < 50000; ++i) {
    writer.PutBytes("hot_group_key_" + std::to_string(i % 50));
    writer.PutVarintSigned(i % 100);
  }
  const std::string input = writer.TakeData();
  std::string compressed;
  BlockCodec::Compress(input, &compressed);
  EXPECT_LT(compressed.size() * 2, input.size());
}

TEST(BlockCodecTest, DeterministicAcrossCalls) {
  // The simulation's byte metrics must be reproducible: same input, same
  // compressed bytes, every time.
  Rng rng(82);
  ByteWriter writer;
  for (int i = 0; i < 10000; ++i) {
    writer.PutVarintSigned(rng.NextInRange(-500, 500));
  }
  const std::string input = writer.TakeData();
  std::string first;
  std::string second;
  BlockCodec::Compress(input, &first);
  BlockCodec::Compress(input, &second);
  EXPECT_EQ(first, second);
}

TEST(BlockCodecTest, RejectsTruncationAndGarbage) {
  ByteWriter writer;
  for (int i = 0; i < 5000; ++i) {
    writer.PutBytes("payload_" + std::to_string(i % 7));
  }
  const std::string input = writer.TakeData();
  std::string compressed;
  BlockCodec::Compress(input, &compressed);
  ASSERT_GT(compressed.size(), 2u);

  std::string out;
  // Every strict prefix must be rejected, not crash or return short data.
  for (size_t len = 0; len < compressed.size(); len += 7) {
    EXPECT_FALSE(
        BlockCodec::Decompress(compressed.substr(0, len), &out).ok())
        << "prefix " << len;
  }
  // Unknown method byte.
  std::string bogus = compressed;
  bogus[0] = '\x7f';
  EXPECT_FALSE(BlockCodec::Decompress(bogus, &out).ok());
  EXPECT_FALSE(BlockCodec::DecodedSize(bogus).ok());
  // Trailing garbage after a valid stream.
  std::string padded = compressed;
  padded.push_back('\0');
  EXPECT_FALSE(BlockCodec::Decompress(padded, &out).ok());
}

TEST(BlockCodecTest, SeededFuzzRoundTrip) {
  // Structured random inputs across sizes: mixtures of runs, copies of
  // earlier windows, and noise — the shapes real blobs are made of.
  Rng rng(83);
  for (int trial = 0; trial < 60; ++trial) {
    std::string input;
    const int pieces = 1 + static_cast<int>(rng.NextBounded(20));
    for (int p = 0; p < pieces; ++p) {
      switch (rng.NextBounded(3)) {
        case 0:  // run
          input.append(rng.NextBounded(500),
                       static_cast<char>(rng.NextBounded(256)));
          break;
        case 1: {  // copy an earlier slice (self-similarity)
          if (input.empty()) break;
          const size_t start = rng.NextBounded(input.size());
          const size_t len =
              std::min(input.size() - start,
                       static_cast<size_t>(rng.NextBounded(500)));
          input.append(input, start, len);
          break;
        }
        default:  // noise
          for (uint64_t i = rng.NextBounded(200); i > 0; --i) {
            input.push_back(static_cast<char>(rng.NextBounded(256)));
          }
          break;
      }
    }
    std::string compressed;
    BlockCodec::Compress(input, &compressed);
    std::string back;
    ASSERT_TRUE(BlockCodec::Decompress(compressed, &back).ok())
        << "trial " << trial;
    ASSERT_EQ(back, input) << "trial " << trial;
  }
}

}  // namespace
}  // namespace spcube
