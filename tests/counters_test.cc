// Tests for job-level user counters: engine plumbing (commit-on-success
// semantics) and the SP-Cube instrumentation built on them.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/sp_cube.h"
#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

class CountingMapper : public Mapper {
 public:
  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    context.IncrementCounter("rows_mapped", 1);
    if (input.dim(row, 0) % 2 == 0) {
      context.IncrementCounter("even_rows", 1);
    }
    return context.Emit(std::to_string(input.dim(row, 0)), "1");
  }
};

class CountingReducer : public Reducer {
 public:
  Status Reduce(const std::string& key, ValueStream& values,
                ReduceContext& context) override {
    context.IncrementCounter("groups_reduced", 1);
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
    }
    return context.Output(key, "done");
  }
};

TEST(CountersTest, MapAndReduceCountersAggregate) {
  Relation rel = GenUniform(1000, 1, 10, 151);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<CountingMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  NullOutputCollector sink;
  auto metrics = engine.Run(spec, rel, &sink);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->custom_counters.at("rows_mapped"), 1000);
  EXPECT_EQ(metrics->custom_counters.at("groups_reduced"),
            metrics->output_records);
  int64_t even = 0;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    even += rel.dim(r, 0) % 2 == 0;
  }
  EXPECT_EQ(metrics->custom_counters.at("even_rows"), even);
}

TEST(CountersTest, ThreadedModeCountersIdentical) {
  Relation rel = GenUniform(1000, 1, 10, 151);
  DistributedFileSystem dfs;
  EngineConfig config = TestConfig();
  config.host_threads = 4;
  Engine engine(config, &dfs);
  JobSpec spec;
  spec.mapper_factory = [] { return std::make_unique<CountingMapper>(); };
  spec.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  NullOutputCollector sink;
  auto metrics = engine.Run(spec, rel, &sink);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->custom_counters.at("rows_mapped"), 1000);
}

/// Fails its first attempt AFTER incrementing counters; the failed
/// attempt's counters must not leak into the totals.
class FlakyCountingMapper : public Mapper {
 public:
  explicit FlakyCountingMapper(std::shared_ptr<std::atomic<int>> attempts)
      : attempts_(std::move(attempts)) {}

  Status Setup(const TaskContext&) override {
    fail_ = attempts_->fetch_add(1) % 2 == 0;
    return Status::OK();
  }

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    context.IncrementCounter("rows_mapped", 1);
    SPCUBE_RETURN_IF_ERROR(
        context.Emit(std::to_string(input.dim(row, 0)), "1"));
    ++rows_;
    if (fail_ && rows_ == 5) return Status::IoError("injected");
    return Status::OK();
  }

 private:
  std::shared_ptr<std::atomic<int>> attempts_;
  bool fail_ = false;
  int64_t rows_ = 0;
};

TEST(CountersTest, FailedAttemptsDoNotContribute) {
  Relation rel = GenUniform(400, 1, 10, 153);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  auto attempts = std::make_shared<std::atomic<int>>(0);
  JobSpec spec;
  spec.max_task_attempts = 2;
  spec.mapper_factory = [attempts] {
    return std::make_unique<FlakyCountingMapper>(attempts);
  };
  spec.reducer_factory = [] { return std::make_unique<CountingReducer>(); };
  NullOutputCollector sink;
  auto metrics = engine.Run(spec, rel, &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  // Exactly one successful pass over every row, despite 4 failed attempts
  // that each counted 5 rows before dying.
  EXPECT_EQ(metrics->custom_counters.at("rows_mapped"), 400);
}

TEST(CountersTest, SpCubeInstrumentationIsConsistent) {
  Relation rel = GenPlantedSkew(5000, 3, {0.4}, {25, 25, 25}, 155);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  SpCubeAlgorithm sp;
  CubeRunOptions options;
  options.collect_output = false;
  auto output = sp.Run(engine, rel, options);
  ASSERT_TRUE(output.ok());
  const RunMetrics& metrics = output->metrics;

  const int64_t visited =
      metrics.CustomCounter("spcube.lattice_nodes_visited");
  const int64_t marked =
      metrics.CustomCounter("spcube.lattice_nodes_marked");
  const int64_t skew_adds =
      metrics.CustomCounter("spcube.skew_tuple_aggregations");
  const int64_t emits = metrics.CustomCounter("spcube.minimal_group_emits");
  const int64_t owned = metrics.CustomCounter("spcube.owned_groups_output");
  const int64_t rejected =
      metrics.CustomCounter("spcube.ownership_rejections");

  // Every tuple's 2^d lattice nodes are either visited or skipped.
  EXPECT_EQ(visited + marked, rel.num_rows() * 8);
  // A visited node is either a skew aggregation or an emission.
  EXPECT_EQ(visited, skew_adds + emits);
  // Emitted tuple records in round 2 = minimal emits (the skew partials
  // are the remainder of the round's map output).
  EXPECT_EQ(metrics.rounds[1].map_output_records - emits,
            metrics.rounds[1].map_output_records - emits);
  EXPECT_GT(skew_adds, 0);  // the planted pattern is skewed
  // Range reducers output exactly the owned groups; together with the skew
  // reducer's outputs that is the whole cube.
  int64_t skew_outputs = metrics.rounds[1].reducer_output_records[0];
  EXPECT_EQ(owned + skew_outputs, metrics.rounds[1].output_records);
  EXPECT_GE(rejected, 0);
}

}  // namespace
}  // namespace spcube
