// Tests for the PipeSort sequential cube algorithm and its pipeline plan.

#include <gtest/gtest.h>

#include <set>

#include "cube/cube_result.h"
#include "cube/pipesort.h"
#include "relation/generators.h"

namespace spcube {
namespace {

TEST(PipelinePlanTest, CoversEveryCuboidExactlyOnce) {
  for (int d = 1; d <= 8; ++d) {
    std::multiset<CuboidMask> claimed;
    for (const Pipeline& pipeline : PlanPipelines(d)) {
      // Order is a permutation of all dims.
      std::set<int> dims(pipeline.order.begin(), pipeline.order.end());
      EXPECT_EQ(static_cast<int>(dims.size()), d);
      // Every claimed mask is a prefix of the order.
      CuboidMask prefix = 0;
      std::set<CuboidMask> prefixes = {prefix};
      for (int dim : pipeline.order) {
        prefix |= CuboidMask{1} << dim;
        prefixes.insert(prefix);
      }
      for (CuboidMask mask : pipeline.covered) {
        EXPECT_TRUE(prefixes.count(mask)) << "d=" << d;
        claimed.insert(mask);
      }
    }
    for (CuboidMask mask = 0;
         mask < static_cast<CuboidMask>(NumCuboids(d)); ++mask) {
      EXPECT_EQ(claimed.count(mask), 1u) << "d=" << d << " mask=" << mask;
    }
  }
}

TEST(PipelinePlanTest, PipelineCountStaysNearOptimal) {
  // Optimal chain cover size is C(d, floor(d/2)); the greedy plan should
  // stay within a small factor.
  const int optimal[] = {1, 1, 2, 3, 6, 10, 20, 35, 70};
  for (int d = 1; d <= 8; ++d) {
    const auto plan = PlanPipelines(d);
    EXPECT_GE(static_cast<int>(plan.size()), optimal[d]);
    EXPECT_LE(static_cast<int>(plan.size()), 2 * optimal[d]) << "d=" << d;
  }
}

class PipeSortVsReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PipeSortVsReferenceTest, MatchesReference) {
  const auto [d, seed] = GetParam();
  Relation rel = GenUniform(400, d, 5, seed);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kAvg}) {
    const Aggregator& agg = GetAggregator(kind);
    CubeResult cube(d);
    PipeSortComputeFull(rel, agg,
                        [&](const GroupKey& key, const AggState& state) {
                          EXPECT_TRUE(
                              cube.AddGroup(key, agg.Finalize(state)).ok())
                              << "duplicate " << key.ToString(d);
                        });
    CubeResult reference = ComputeCubeReference(rel, kind);
    std::string diff;
    EXPECT_TRUE(CubeResult::ApproxEqual(reference, cube, 1e-9, &diff))
        << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, PipeSortVsReferenceTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(7u, 77u)));

TEST(PipeSortTest, SkewedDataMatchesReference) {
  Relation rel = GenBinomial(500, 4, 0.6, 11);
  const Aggregator& agg = GetAggregator(AggregateKind::kCount);
  CubeResult cube(4);
  PipeSortComputeFull(rel, agg,
                      [&](const GroupKey& key, const AggState& state) {
                        cube.UpsertGroup(key, agg.Finalize(state));
                      });
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(reference, cube, 1e-9, &diff))
      << diff;
}

TEST(PipeSortTest, EmptyAndSingleRow) {
  Relation empty(MakeAnonymousSchema(3));
  int calls = 0;
  PipeSortComputeFull(empty, GetAggregator(AggregateKind::kCount),
                      [&](const GroupKey&, const AggState&) { ++calls; });
  EXPECT_EQ(calls, 0);

  Relation one(MakeAnonymousSchema(3));
  one.AppendRow(std::vector<int64_t>{1, 2, 3}, 5);
  CubeResult cube(3);
  const Aggregator& agg = GetAggregator(AggregateKind::kSum);
  PipeSortComputeFull(one, agg,
                      [&](const GroupKey& key, const AggState& state) {
                        cube.UpsertGroup(key, agg.Finalize(state));
                      });
  EXPECT_EQ(cube.num_groups(), 8);
  EXPECT_EQ(cube.Lookup(GroupKey(0, {})).value(), 5.0);
}

}  // namespace
}  // namespace spcube
