// Tests for the aggregate functions: semantics, merge algebra, and the
// distributive/algebraic classification the paper relies on for mapper-side
// partial aggregation (§7).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/random.h"
#include "cube/aggregate.h"

namespace spcube {
namespace {

AggState FoldAll(const Aggregator& agg, const std::vector<int64_t>& values) {
  AggState state = agg.Empty();
  for (int64_t v : values) agg.Add(state, v);
  return state;
}

TEST(AggregateTest, CountSemantics) {
  const Aggregator& agg = GetAggregator(AggregateKind::kCount);
  EXPECT_STREQ(agg.name(), "count");
  EXPECT_FALSE(agg.is_algebraic());
  AggState state = FoldAll(agg, {5, -2, 7});
  EXPECT_EQ(agg.Finalize(state), 3.0);
  EXPECT_EQ(agg.Finalize(agg.Empty()), 0.0);
}

TEST(AggregateTest, SumSemantics) {
  const Aggregator& agg = GetAggregator(AggregateKind::kSum);
  AggState state = FoldAll(agg, {5, -2, 7});
  EXPECT_EQ(agg.Finalize(state), 10.0);
}

TEST(AggregateTest, MinSemantics) {
  const Aggregator& agg = GetAggregator(AggregateKind::kMin);
  AggState state = FoldAll(agg, {5, -2, 7});
  EXPECT_EQ(agg.Finalize(state), -2.0);
}

TEST(AggregateTest, MaxSemantics) {
  const Aggregator& agg = GetAggregator(AggregateKind::kMax);
  AggState state = FoldAll(agg, {5, -2, 7});
  EXPECT_EQ(agg.Finalize(state), 7.0);
}

TEST(AggregateTest, AvgSemantics) {
  const Aggregator& agg = GetAggregator(AggregateKind::kAvg);
  EXPECT_TRUE(agg.is_algebraic());
  AggState state = FoldAll(agg, {2, 4, 6});
  EXPECT_EQ(agg.Finalize(state), 4.0);
  EXPECT_EQ(agg.Finalize(agg.Empty()), 0.0);
}

TEST(AggregateTest, MinMaxEmptyMergeIsIdentity) {
  for (AggregateKind kind : {AggregateKind::kMin, AggregateKind::kMax}) {
    const Aggregator& agg = GetAggregator(kind);
    AggState state = FoldAll(agg, {3});
    AggState empty = agg.Empty();
    agg.Merge(state, empty);
    EXPECT_EQ(agg.Finalize(state), 3.0);
    AggState target = agg.Empty();
    agg.Merge(target, state);
    EXPECT_EQ(agg.Finalize(target), 3.0);
  }
}

TEST(AggregateTest, MinMaxNegativeOnlyValues) {
  // Regression guard: a zero-initialized lane must not leak a spurious 0.
  const Aggregator& min_agg = GetAggregator(AggregateKind::kMin);
  const Aggregator& max_agg = GetAggregator(AggregateKind::kMax);
  EXPECT_EQ(min_agg.Finalize(FoldAll(min_agg, {-5, -9, -1})), -9.0);
  EXPECT_EQ(max_agg.Finalize(FoldAll(max_agg, {-5, -9, -1})), -1.0);
}

TEST(AggregateTest, StateSerializationRoundTrip) {
  AggState state{-123456789, 42};
  ByteWriter writer;
  state.EncodeTo(writer);
  ByteReader reader(writer.data());
  AggState decoded;
  ASSERT_TRUE(AggState::DecodeFrom(reader, &decoded).ok());
  EXPECT_EQ(decoded, state);
}

TEST(AggregateTest, NameParsing) {
  EXPECT_EQ(AggregateKindFromName("count").value(), AggregateKind::kCount);
  EXPECT_EQ(AggregateKindFromName("sum").value(), AggregateKind::kSum);
  EXPECT_EQ(AggregateKindFromName("min").value(), AggregateKind::kMin);
  EXPECT_EQ(AggregateKindFromName("max").value(), AggregateKind::kMax);
  EXPECT_EQ(AggregateKindFromName("avg").value(), AggregateKind::kAvg);
  EXPECT_FALSE(AggregateKindFromName("median").ok());
}

struct MergeCase {
  AggregateKind kind;
  uint64_t seed;
};

class MergePropertyTest : public ::testing::TestWithParam<MergeCase> {};

// The key algebraic property SP-Cube relies on: folding a multiset in one
// pass equals folding arbitrary sub-multisets on different machines and
// merging the partial states (mapper-side skew aggregation + skew-reducer
// merge must be exact).
TEST_P(MergePropertyTest, ArbitrarySplitsMergeExactly) {
  const Aggregator& agg = GetAggregator(GetParam().kind);
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(100));
    std::vector<int64_t> values;
    for (int i = 0; i < n; ++i) {
      values.push_back(rng.NextInRange(-1000, 1000));
    }
    const double direct = agg.Finalize(FoldAll(agg, values));

    // Split into up to 8 random chunks, fold each, merge in random order.
    const int chunks = 1 + static_cast<int>(rng.NextBounded(8));
    std::vector<AggState> partials(static_cast<size_t>(chunks));
    for (auto& p : partials) p = agg.Empty();
    for (int64_t v : values) {
      agg.Add(partials[rng.NextBounded(static_cast<uint64_t>(chunks))], v);
    }
    AggState merged = agg.Empty();
    for (const AggState& partial : partials) agg.Merge(merged, partial);
    EXPECT_DOUBLE_EQ(agg.Finalize(merged), direct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, MergePropertyTest,
    ::testing::Values(MergeCase{AggregateKind::kCount, 1},
                      MergeCase{AggregateKind::kCount, 2},
                      MergeCase{AggregateKind::kSum, 1},
                      MergeCase{AggregateKind::kSum, 2},
                      MergeCase{AggregateKind::kMin, 1},
                      MergeCase{AggregateKind::kMin, 2},
                      MergeCase{AggregateKind::kMax, 1},
                      MergeCase{AggregateKind::kMax, 2},
                      MergeCase{AggregateKind::kAvg, 1},
                      MergeCase{AggregateKind::kAvg, 2}));

TEST(AggregateTest, MergeIsAssociative) {
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    const Aggregator& agg = GetAggregator(kind);
    AggState a = FoldAll(agg, {1, 2});
    AggState b = FoldAll(agg, {30});
    AggState c = FoldAll(agg, {-4, 7});

    AggState ab = agg.Empty();
    agg.Merge(ab, a);
    agg.Merge(ab, b);
    agg.Merge(ab, c);

    AggState bc = agg.Empty();
    agg.Merge(bc, b);
    agg.Merge(bc, c);
    AggState a_bc = agg.Empty();
    agg.Merge(a_bc, a);
    agg.Merge(a_bc, bc);

    EXPECT_DOUBLE_EQ(agg.Finalize(ab), agg.Finalize(a_bc)) << agg.name();
  }
}

}  // namespace
}  // namespace spcube
