// Tests for the engine's zero-copy input splits: every mapper must see a
// RelationView borrowing the job's input relation (pointer-identical column
// storage, no materialized sub-relations), with the splits together covering
// each input row exactly once.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "relation/generators.h"
#include "relation/relation_view.h"

namespace spcube {
namespace {

/// What one Map call observed about its split.
struct SplitObservation {
  const Relation* base;             // identity of the view's base relation
  const int64_t* column0_data;      // storage identity of dimension 0
  int64_t begin;                    // first base row of the split
  int64_t num_rows;                 // split length
  int64_t materialized_byte_size;   // what a copying split would have cost
  int64_t global_row;               // base row of the mapped row
};

/// Records every Map call's view into shared state (sequential engine).
class SplitRecordingMapper : public Mapper {
 public:
  explicit SplitRecordingMapper(std::vector<SplitObservation>* observations)
      : observations_(observations) {}

  Status Map(const RelationView& input, int64_t row,
             MapContext& context) override {
    observations_->push_back(SplitObservation{
        &input.base(), input.base().column(0).data(),
        input.num_rows() > 0 ? input.base_row(0) : 0, input.num_rows(),
        input.MaterializedByteSize(), input.base_row(row)});
    return context.Emit("rows", "1");
  }

 private:
  std::vector<SplitObservation>* observations_;
};

class NullReducer : public Reducer {
 public:
  Status Reduce(const std::string& /*key*/, ValueStream& values,
                ReduceContext& /*context*/) override {
    std::string value;
    for (;;) {
      SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
      if (!more) break;
    }
    return Status::OK();
  }
};

EngineConfig SequentialConfig(int workers) {
  EngineConfig config;
  config.num_workers = workers;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

JobSpec RecordingJob(std::vector<SplitObservation>* observations) {
  JobSpec spec;
  spec.name = "split-audit";
  spec.mapper_factory = [observations] {
    return std::make_unique<SplitRecordingMapper>(observations);
  };
  spec.reducer_factory = [] { return std::make_unique<NullReducer>(); };
  return spec;
}

TEST(EngineSplitTest, MapperViewsBorrowTheInputRelation) {
  const Relation rel = GenUniform(/*rows=*/100, /*dims=*/3, /*card=*/7, 1);
  const int64_t byte_size_before = rel.ByteSize();

  DistributedFileSystem dfs;
  Engine engine(SequentialConfig(8), &dfs);
  std::vector<SplitObservation> observations;
  NullOutputCollector sink;
  auto metrics = engine.Run(RecordingJob(&observations), rel, &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  ASSERT_EQ(observations.size(), 100u);
  for (const SplitObservation& obs : observations) {
    // The view's base IS the job input — same object, same column storage —
    // so constructing the split duplicated no tuple data.
    EXPECT_EQ(obs.base, &rel);
    EXPECT_EQ(obs.column0_data, rel.column(0).data());
  }
  // Nothing was appended to (or copied into) the input during the run.
  EXPECT_EQ(rel.ByteSize(), byte_size_before);
}

TEST(EngineSplitTest, SplitsPartitionTheInputExactlyOnce) {
  const Relation rel = GenUniform(/*rows=*/101, /*dims=*/2, /*card=*/5, 2);

  DistributedFileSystem dfs;
  Engine engine(SequentialConfig(7), &dfs);
  std::vector<SplitObservation> observations;
  NullOutputCollector sink;
  auto metrics = engine.Run(RecordingJob(&observations), rel, &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  // Every global row mapped exactly once.
  std::set<int64_t> seen;
  for (const SplitObservation& obs : observations) {
    EXPECT_TRUE(seen.insert(obs.global_row).second)
        << "row " << obs.global_row << " mapped twice";
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), rel.num_rows());

  // ByteSize accounting: had the engine materialized its splits (the old
  // Relation::Slice path), it would have copied the whole relation once per
  // round. The distinct splits' materialized sizes sum to exactly that.
  std::set<std::pair<int64_t, int64_t>> splits;
  int64_t would_have_copied = 0;
  for (const SplitObservation& obs : observations) {
    if (splits.insert({obs.begin, obs.num_rows}).second) {
      would_have_copied += obs.materialized_byte_size;
    }
  }
  EXPECT_EQ(would_have_copied, rel.ByteSize());
}

TEST(EngineSplitTest, UnevenSplitsCoverShortInputs) {
  // Fewer rows than workers: some splits are empty, none overlap.
  const Relation rel = GenUniform(/*rows=*/3, /*dims=*/1, /*card=*/2, 3);
  DistributedFileSystem dfs;
  Engine engine(SequentialConfig(8), &dfs);
  std::vector<SplitObservation> observations;
  NullOutputCollector sink;
  auto metrics = engine.Run(RecordingJob(&observations), rel, &sink);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  std::set<int64_t> seen;
  for (const SplitObservation& obs : observations) {
    EXPECT_TRUE(seen.insert(obs.global_row).second);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), rel.num_rows());
}

}  // namespace
}  // namespace spcube
