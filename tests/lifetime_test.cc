// Dynamic half of the lifetime & borrow contracts (docs/INTERNALS.md §10):
// this target is compiled with SPCUBE_LIFETIME_CHECKS=1 (see
// tests/CMakeLists.txt), so Arena::Reset() poisons retained chunks and
// ShuffleSegment / RelationView verify their generation/epoch stamps on
// access. Reading poisoned bytes is NOT undefined behavior here — the
// chunks stay allocated across Reset — which is what makes the poison
// pattern deterministically observable.

#include <cstring>
#include <string>
#include <string_view>

#include "common/arena.h"
#include "common/lifetime.h"
#include "gtest/gtest.h"
#include "mapreduce/shuffle.h"
#include "relation/relation.h"
#include "relation/relation_view.h"

namespace spcube {
namespace {

static_assert(SPCUBE_LIFETIME_CHECKS == 1,
              "lifetime_test must build with the checks enabled");

TEST(ArenaLifetimeTest, ResetPoisonsRetainedChunks) {
  Arena arena;
  const std::string payload = "cube|group|17";
  const char* data = arena.Append(payload);
  ASSERT_EQ(payload, std::string_view(data, payload.size()));

  arena.Reset();
  for (size_t i = 0; i < payload.size(); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(data[i]), kLifetimePoisonByte)
        << "byte " << i << " not poisoned after Reset";
  }
}

TEST(ArenaLifetimeTest, ResetPoisonsEveryChunkWrittenThisCycle) {
  Arena arena(/*chunk_bytes=*/64);
  // Spans several chunks, including a dedicated oversize chunk.
  const char* small = arena.Append(std::string(48, 'a'));
  const char* oversize = arena.Append(std::string(300, 'b'));
  const char* tail = arena.Append(std::string(48, 'c'));

  arena.Reset();
  EXPECT_EQ(static_cast<unsigned char>(small[0]), kLifetimePoisonByte);
  EXPECT_EQ(static_cast<unsigned char>(oversize[299]), kLifetimePoisonByte);
  EXPECT_EQ(static_cast<unsigned char>(tail[47]), kLifetimePoisonByte);
}

TEST(ArenaLifetimeTest, GenerationBumpsOnResetAndTravelsWithMove) {
  Arena arena;
  const uint64_t g0 = arena.generation();
  arena.Reset();
  EXPECT_EQ(arena.generation(), g0 + 1);

  arena.Append("payload");
  Arena moved = std::move(arena);
  // The destination carries the generation its addresses were stamped
  // with; the hollow source can no longer satisfy a stale comparison.
  EXPECT_EQ(moved.generation(), g0 + 1);
  EXPECT_NE(arena.generation(), moved.generation());
}

// The dynamic twin of the seeded static fixture
// (tests/analyzer/fixtures/src/dangling_segment_view.cc): derive a group
// key from an arena, Reset, and observe that the stale borrow now reads
// poison instead of plausible stale payload.
TEST(ArenaLifetimeTest, PoisonCatchesTheSeededDanglingViewFixture) {
  Arena arena;
  const char* key = arena.Append("cube|group|42");
  arena.Reset();  // the take/compact cycle rewinds the partition arena
  const std::string_view stale(key, 13);
  for (char c : stale) {
    EXPECT_EQ(static_cast<unsigned char>(c), kLifetimePoisonByte);
  }
}

ShuffleSegment TakeOneRecordSegment(ShuffleCounters* counters) {
  ShuffleBuffer buffer(/*num_partitions=*/1,
                       /*memory_budget_bytes=*/int64_t{1} << 30,
                       /*combiner=*/nullptr, /*temp_files=*/nullptr,
                       counters);
  EXPECT_TRUE(buffer.Add(0, "key", "value").ok());
  EXPECT_TRUE(buffer.FinalizeMapOutput().ok());
  return buffer.TakeMemorySegment(0);
}

TEST(ShuffleSegmentLifetimeTest, FreshSegmentReadsFine) {
  ShuffleCounters counters;
  ShuffleSegment segment = TakeOneRecordSegment(&counters);
  ASSERT_EQ(segment.num_records(), 1);
  EXPECT_EQ(segment.refs()[0].key(), "key");
  EXPECT_EQ(segment.refs()[0].value(), "value");
}

TEST(ShuffleSegmentLifetimeDeathTest, StaleSegmentReadAborts) {
  ShuffleCounters counters;
  ShuffleSegment segment = TakeOneRecordSegment(&counters);
  // Correct code cannot make a segment stale (it owns its arena), so the
  // test seam manufactures the state the generation check guards against.
  internal::DebugExpireSegment(&segment);
  EXPECT_DEATH((void)segment.refs(), "stale ShuffleSegment");
}

TEST(RelationViewLifetimeTest, StableViewReadsFine) {
  Relation rel(Schema::Make({"d0", "d1"}, "m").value());
  rel.AppendRow(std::vector<int64_t>{1, 2}, 10);
  rel.AppendRow(std::vector<int64_t>{3, 4}, 20);
  const RelationView view(rel);
  EXPECT_EQ(view.dim(1, 0), 3);
  EXPECT_EQ(view.measure(0), 10);
}

TEST(RelationViewLifetimeDeathTest, AppendAfterViewTakenAborts) {
  Relation rel(Schema::Make({"d0", "d1"}, "m").value());
  rel.AppendRow(std::vector<int64_t>{1, 2}, 10);
  const RelationView view(rel);
  rel.AppendRow(std::vector<int64_t>{3, 4}, 20);  // may reallocate columns
  EXPECT_DEATH((void)view.dim(0, 0), "stale RelationView");
}

}  // namespace
}  // namespace spcube
