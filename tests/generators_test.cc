// Tests for the workload generators: determinism and the distributional
// properties the paper's experiments rely on.

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "common/hash.h"
#include "relation/generators.h"

namespace spcube {
namespace {

int64_t CountRowsEqualTo(const Relation& rel, int64_t value) {
  int64_t count = 0;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    bool all = true;
    for (int d = 0; d < rel.num_dims(); ++d) {
      if (rel.dim(r, d) != value) {
        all = false;
        break;
      }
    }
    if (all) ++count;
  }
  return count;
}

bool RelationsEqual(const Relation& a, const Relation& b) {
  if (a.num_rows() != b.num_rows() || a.num_dims() != b.num_dims()) {
    return false;
  }
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (a.measure(r) != b.measure(r)) return false;
    for (int d = 0; d < a.num_dims(); ++d) {
      if (a.dim(r, d) != b.dim(r, d)) return false;
    }
  }
  return true;
}

TEST(GenUniformTest, ShapeAndDomain) {
  Relation rel = GenUniform(1000, 3, 50, 1);
  EXPECT_EQ(rel.num_rows(), 1000);
  EXPECT_EQ(rel.num_dims(), 3);
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(rel.dim(r, d), 0);
      EXPECT_LT(rel.dim(r, d), 50);
    }
    EXPECT_GE(rel.measure(r), 0);
    EXPECT_LT(rel.measure(r), 100);
  }
}

TEST(GenUniformTest, Deterministic) {
  EXPECT_TRUE(RelationsEqual(GenUniform(500, 2, 10, 7),
                             GenUniform(500, 2, 10, 7)));
  EXPECT_FALSE(RelationsEqual(GenUniform(500, 2, 10, 7),
                              GenUniform(500, 2, 10, 8)));
}

TEST(GenBinomialTest, SkewFractionMatchesP) {
  const int64_t n = 20000;
  Relation rel = GenBinomial(n, 4, 0.4, 3);
  // Heavy tuples have all attributes equal to some i in 1..20.
  int64_t heavy = 0;
  for (int64_t v = 1; v <= 20; ++v) heavy += CountRowsEqualTo(rel, v);
  EXPECT_NEAR(static_cast<double>(heavy) / static_cast<double>(n), 0.4,
              0.02);
}

TEST(GenBinomialTest, ZeroAndFullP) {
  Relation none = GenBinomial(5000, 3, 0.0, 5);
  int64_t heavy = 0;
  for (int64_t v = 1; v <= 20; ++v) heavy += CountRowsEqualTo(none, v);
  // Uniform 32-bit collisions into the heavy pattern are essentially
  // impossible.
  EXPECT_EQ(heavy, 0);

  Relation all = GenBinomial(5000, 3, 1.0, 5);
  heavy = 0;
  for (int64_t v = 1; v <= 20; ++v) heavy += CountRowsEqualTo(all, v);
  EXPECT_EQ(heavy, 5000);
}

TEST(GenBinomialTest, HeavyValuesWithinRange) {
  Relation rel = GenBinomial(2000, 2, 1.0, 9);
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    EXPECT_GE(rel.dim(r, 0), 1);
    EXPECT_LE(rel.dim(r, 0), 20);
    EXPECT_EQ(rel.dim(r, 0), rel.dim(r, 1));
  }
}

TEST(GenZipfTest, PaperConfiguration) {
  Relation rel = GenZipfPaper(10000, 11);
  EXPECT_EQ(rel.num_dims(), 4);
  // First two dims are zipfian: value 0 should dominate.
  std::unordered_map<int64_t, int64_t> histogram;
  for (int64_t r = 0; r < rel.num_rows(); ++r) ++histogram[rel.dim(r, 0)];
  int64_t max_count = 0;
  for (const auto& [value, count] : histogram) {
    max_count = std::max(max_count, count);
  }
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(max_count, histogram[0]);
  EXPECT_GT(histogram[0], rel.num_rows() / 20);  // heavy head

  // Last two dims are uniform over 1000 values: the mode should be small.
  std::unordered_map<int64_t, int64_t> uniform_histogram;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    ++uniform_histogram[rel.dim(r, 3)];
  }
  int64_t uniform_max = 0;
  for (const auto& [value, count] : uniform_histogram) {
    uniform_max = std::max(uniform_max, count);
  }
  EXPECT_LT(uniform_max, histogram[0] / 3);
}

TEST(GenPlantedSkewTest, ExactPatternValues) {
  Relation rel = GenPlantedSkew(10000, 3, {0.2, 0.1}, {100, 100, 100}, 13);
  const int64_t first = CountRowsEqualTo(rel, -1);
  const int64_t second = CountRowsEqualTo(rel, -2);
  EXPECT_NEAR(static_cast<double>(first) / 10000.0, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(second) / 10000.0, 0.1, 0.02);
  // Background values never collide with the planted (negative) values.
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    const int64_t v = rel.dim(r, 0);
    if (v >= 0) {
      EXPECT_LT(v, 100);
    } else {
      EXPECT_TRUE(v == -1 || v == -2);
    }
  }
}

TEST(GenWikiLikeTest, Fingerprint) {
  const int64_t n = 20000;
  Relation rel = GenWikiLike(n, 17);
  EXPECT_EQ(rel.num_dims(), 4);
  EXPECT_EQ(rel.num_rows(), n);
  // Three planted patterns at ~30%/10%/5%.
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, -1)) / n, 0.30, 0.02);
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, -2)) / n, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, -3)) / n, 0.05, 0.02);
}

TEST(GenUsaGovLikeTest, Fingerprint) {
  const int64_t n = 10000;
  Relation rel = GenUsaGovLike(n, 19);
  EXPECT_EQ(rel.num_dims(), 15);
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, -1)) / n, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, -2)) / n, 0.08, 0.02);
}

TEST(ProjectDimsTest, KeepsValuesAndMeasure) {
  Relation rel = GenUsaGovLike(100, 23);
  Relation projected = ProjectDims(rel, {0, 1, 2, 3});
  EXPECT_EQ(projected.num_dims(), 4);
  EXPECT_EQ(projected.num_rows(), 100);
  for (int64_t r = 0; r < 100; ++r) {
    for (int d = 0; d < 4; ++d) {
      EXPECT_EQ(projected.dim(r, d), rel.dim(r, d));
    }
    EXPECT_EQ(projected.measure(r), rel.measure(r));
  }
  EXPECT_EQ(projected.schema().dimension_name(2),
            rel.schema().dimension_name(2));
}

TEST(ProjectDimsTest, Reorders) {
  Relation rel = GenUniform(50, 3, 10, 29);
  Relation projected = ProjectDims(rel, {2, 0});
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(projected.dim(r, 0), rel.dim(r, 2));
    EXPECT_EQ(projected.dim(r, 1), rel.dim(r, 0));
  }
}

TEST(GenWorstCaseTrafficTest, Theorem53Construction) {
  const int d = 4;
  const int64_t w = 5;
  Relation rel = GenWorstCaseTraffic(d, w);
  // C(4,2) = 6 subsets, each with w identical tuples.
  EXPECT_EQ(rel.num_rows(), 6 * w);
  // Every tuple has exactly d/2 ones and d/2 zeros.
  std::map<std::vector<int64_t>, int64_t> groups;
  for (int64_t r = 0; r < rel.num_rows(); ++r) {
    int ones = 0;
    std::vector<int64_t> row;
    for (int dd = 0; dd < d; ++dd) {
      ones += rel.dim(r, dd) == 1;
      row.push_back(rel.dim(r, dd));
    }
    EXPECT_EQ(ones, d / 2);
    ++groups[row];
  }
  EXPECT_EQ(groups.size(), 6u);
  for (const auto& [row, count] : groups) EXPECT_EQ(count, w);
}

TEST(GenMonotonicSkewTest, AllZeroFraction) {
  const int64_t n = 10000;
  Relation rel = GenMonotonicSkew(n, 3, 0.3, 1000, 31);
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, 0)) / n, 0.3, 0.02);
  // Background values are strictly positive, so they never extend the
  // all-zero group.
  for (int64_t r = 0; r < n; ++r) {
    const bool zero_row = rel.dim(r, 0) == 0;
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(rel.dim(r, d) == 0, zero_row);
    }
  }
}

TEST(GenIndependentSkewTest, PerAttributeRate) {
  const int64_t n = 20000;
  Relation rel = GenIndependentSkew(n, 4, 0.2, 1000, 37);
  for (int d = 0; d < 4; ++d) {
    int64_t zeros = 0;
    for (int64_t r = 0; r < n; ++r) zeros += rel.dim(r, d) == 0;
    EXPECT_NEAR(static_cast<double>(zeros) / n, 0.2, 0.02);
  }
  // Attribute skews are independent: the all-zero row rate is ~ q^4.
  EXPECT_NEAR(static_cast<double>(CountRowsEqualTo(rel, 0)) / n, 0.0016,
              0.002);
}

}  // namespace
}  // namespace spcube
