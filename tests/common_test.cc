// Unit tests for src/common: Status/Result, byte codec, PRNG, hashing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"

namespace spcube {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 10; ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

Status FailIfNegative(int value) {
  if (value < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int value) {
  SPCUBE_RETURN_IF_ERROR(FailIfNegative(value));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int value) {
  if (value <= 0) return Status::InvalidArgument("not positive");
  return value;
}

Result<int> DoublePositive(int value) {
  SPCUBE_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = ParsePositive(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 21);
  EXPECT_EQ(*result, 21);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = ParsePositive(0);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ResultTest, AssignOrReturnThreadsValues) {
  EXPECT_EQ(DoublePositive(4).value(), 8);
  EXPECT_FALSE(DoublePositive(-4).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutI64(-42);
  writer.PutDouble(3.25);

  ByteReader reader(writer.data());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetI64(&i64).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, VarintBoundaries) {
  const uint64_t cases[] = {0,       1,          127,        128,
                            16383,   16384,      (1ull << 32) - 1,
                            1ull << 32, UINT64_MAX};
  for (uint64_t value : cases) {
    ByteWriter writer;
    writer.PutVarint(value);
    ByteReader reader(writer.data());
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.GetVarint(&decoded).ok()) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(BytesTest, SignedVarintBoundaries) {
  const int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX, -123456};
  for (int64_t value : cases) {
    ByteWriter writer;
    writer.PutVarintSigned(value);
    ByteReader reader(writer.data());
    int64_t decoded = 0;
    ASSERT_TRUE(reader.GetVarintSigned(&decoded).ok()) << value;
    EXPECT_EQ(decoded, value);
  }
}

TEST(BytesTest, BytesAndVectors) {
  ByteWriter writer;
  writer.PutBytes("hello");
  writer.PutBytes("");
  writer.PutI64Vector({1, -2, 3000000000LL});
  ByteReader reader(writer.data());
  std::string_view a;
  std::string_view b;
  std::vector<int64_t> v;
  ASSERT_TRUE(reader.GetBytes(&a).ok());
  ASSERT_TRUE(reader.GetBytes(&b).ok());
  ASSERT_TRUE(reader.GetI64Vector(&v).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(v, (std::vector<int64_t>{1, -2, 3000000000LL}));
}

TEST(BytesTest, TruncationIsCorruption) {
  ByteWriter writer;
  writer.PutU64(1);
  ByteReader reader(std::string_view(writer.data()).substr(0, 3));
  uint64_t out = 0;
  EXPECT_EQ(reader.GetU64(&out).code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringIsCorruption) {
  ByteWriter writer;
  writer.PutBytes("abcdef");
  std::string data = writer.TakeData();
  data.resize(data.size() - 2);
  ByteReader reader(data);
  std::string_view out;
  EXPECT_EQ(reader.GetBytes(&out).code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintIsCorruption) {
  std::string bad(11, static_cast<char>(0x80));
  ByteReader reader(bad);
  uint64_t out = 0;
  EXPECT_EQ(reader.GetVarint(&out).code(), StatusCode::kCorruption);
}

class BytesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  ByteWriter writer;
  std::vector<int64_t> signed_values;
  std::vector<uint64_t> unsigned_values;
  for (int i = 0; i < 200; ++i) {
    const int64_t sv = static_cast<int64_t>(rng.Next());
    const uint64_t uv = rng.Next() >> static_cast<int>(rng.NextBounded(64));
    signed_values.push_back(sv);
    unsigned_values.push_back(uv);
    writer.PutVarintSigned(sv);
    writer.PutVarint(uv);
  }
  ByteReader reader(writer.data());
  for (int i = 0; i < 200; ++i) {
    int64_t sv = 0;
    uint64_t uv = 0;
    ASSERT_TRUE(reader.GetVarintSigned(&sv).ok());
    ASSERT_TRUE(reader.GetVarint(&uv).ok());
    EXPECT_EQ(sv, signed_values[static_cast<size_t>(i)]);
    EXPECT_EQ(uv, unsigned_values[static_cast<size_t>(i)]);
  }
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1234567));

TEST(RngTest, DeterministicForSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> histogram(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++histogram[rng.NextBounded(10)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, trials / 10, trials / 100);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int successes = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.3)) ++successes;
  }
  EXPECT_NEAR(static_cast<double>(successes) / trials, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(23);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(ZipfTest, FirstElementIsMostFrequent) {
  Rng rng(29);
  ZipfDistribution zipf(1000, 1.1);
  std::vector<int> histogram(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++histogram[static_cast<size_t>(zipf.Sample(rng))];
  }
  EXPECT_GT(histogram[0], histogram[1]);
  EXPECT_GT(histogram[0], histogram[10]);
  EXPECT_GT(histogram[0], 100000 / 50);  // heavy head
}

TEST(ZipfTest, TheoreticalHeadMass) {
  // P(first element) = 1 / H_{1000, 1.1}; the generalized harmonic number
  // H_{1000,1.1} is about 5.58, so the head mass is about 0.179.
  Rng rng(31);
  ZipfDistribution zipf(1000, 1.1);
  int head = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    if (zipf.Sample(rng) == 0) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / trials, 0.179, 0.01);
}

TEST(ZipfTest, SamplesWithinDomain) {
  Rng rng(37);
  ZipfDistribution zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = zipf.Sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip many output bits on average.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t a = Mix64(0x1234567890abcdefULL);
    const uint64_t b = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  EXPECT_GT(total_flips / 64, 20);
}

TEST(HashTest, HashBytesDistinguishes) {
  std::unordered_set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(HashBytes("key" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(HashTest, HashSpanOrderSensitive) {
  const int64_t ab[] = {1, 2};
  const int64_t ba[] = {2, 1};
  EXPECT_NE(HashSpan(ab, 2), HashSpan(ba, 2));
}

TEST(HashTest, EmptySpanIsStable) {
  EXPECT_EQ(HashSpan(nullptr, 0), HashSpan(nullptr, 0));
}

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

}  // namespace
}  // namespace spcube
