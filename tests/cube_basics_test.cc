// Tests for cuboid masks, lattices, group keys and the cube-result
// container.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cube/cube_result.h"
#include "cube/cuboid.h"
#include "cube/group_key.h"
#include "relation/generators.h"

namespace spcube {
namespace {

TEST(CuboidTest, PopCountAndCuboidCount) {
  EXPECT_EQ(MaskPopCount(0b0000), 0);
  EXPECT_EQ(MaskPopCount(0b1011), 3);
  EXPECT_EQ(NumCuboids(0), 1);
  EXPECT_EQ(NumCuboids(4), 16);
  EXPECT_EQ(NumCuboids(10), 1024);
}

TEST(CuboidTest, SubsetMask) {
  EXPECT_TRUE(IsSubsetMask(0b001, 0b011));
  EXPECT_TRUE(IsSubsetMask(0b011, 0b011));
  EXPECT_TRUE(IsSubsetMask(0, 0b111));
  EXPECT_FALSE(IsSubsetMask(0b100, 0b011));
}

TEST(CuboidTest, ImmediateDescendants) {
  // Descendants of (A0, A2) are (A0) and (A2) — one attribute removed
  // (paper Def. 2.3).
  std::vector<CuboidMask> descendants = ImmediateDescendants(0b101);
  std::sort(descendants.begin(), descendants.end());
  EXPECT_EQ(descendants, (std::vector<CuboidMask>{0b001, 0b100}));
  EXPECT_TRUE(ImmediateDescendants(0).empty());
}

TEST(CuboidTest, ImmediateAncestors) {
  std::vector<CuboidMask> ancestors = ImmediateAncestors(0b001, 3);
  std::sort(ancestors.begin(), ancestors.end());
  EXPECT_EQ(ancestors, (std::vector<CuboidMask>{0b011, 0b101}));
  EXPECT_TRUE(ImmediateAncestors(0b111, 3).empty());
}

TEST(CuboidTest, AncestorsAndDescendantsAreInverse) {
  const int d = 5;
  for (CuboidMask mask = 0; mask < (CuboidMask{1} << d); ++mask) {
    for (CuboidMask ancestor : ImmediateAncestors(mask, d)) {
      const auto descendants = ImmediateDescendants(ancestor);
      EXPECT_NE(std::find(descendants.begin(), descendants.end(), mask),
                descendants.end());
    }
  }
}

TEST(CuboidTest, BfsOrderIsLevelByLevel) {
  const std::vector<CuboidMask> order = MasksInBfsOrder(4);
  ASSERT_EQ(order.size(), 16u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 0b1111u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_TRUE(BfsLess(order[i - 1], order[i]));
  }
  // Every strict descendant precedes its ancestor — the property the
  // mapper's marking rule and the reducer's ownership rule both rely on.
  for (size_t i = 0; i < order.size(); ++i) {
    for (size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_FALSE(IsSubsetMask(order[j], order[i]) && order[i] != order[j]);
    }
  }
}

TEST(CuboidTest, MaskToString) {
  EXPECT_EQ(MaskToString(0b101, 3), "(A0, *, A2)");
  EXPECT_EQ(MaskToString(0, 2), "(*, *)");
}

TEST(GroupKeyTest, ProjectSelectsMaskedDims) {
  const std::vector<int64_t> tuple = {7, 8, 9};
  GroupKey key = GroupKey::Project(0b101, tuple);
  EXPECT_EQ(key.mask, 0b101u);
  EXPECT_EQ(key.values, (GroupValues{7, 9}));
  EXPECT_EQ(key.ToString(3), "(7, *, 9)");
  GroupKey apex = GroupKey::Project(0, tuple);
  EXPECT_TRUE(apex.values.empty());
  EXPECT_EQ(apex.ToString(3), "(*, *, *)");
}

TEST(GroupKeyTest, EqualityAndOrder) {
  const std::vector<int64_t> t1 = {1, 2};
  const std::vector<int64_t> t2 = {1, 3};
  EXPECT_EQ(GroupKey::Project(0b01, t1), GroupKey::Project(0b01, t2));
  EXPECT_FALSE(GroupKey::Project(0b11, t1) == GroupKey::Project(0b11, t2));
  EXPECT_LT(GroupKey::Project(0b01, t1), GroupKey::Project(0b11, t1));
  EXPECT_LT(GroupKey::Project(0b11, t1), GroupKey::Project(0b11, t2));
}

TEST(GroupKeyTest, HashConsistentWithEquality) {
  const std::vector<int64_t> tuple = {4, 5, 6};
  GroupKey a = GroupKey::Project(0b110, tuple);
  GroupKey b = GroupKey::Project(0b110, tuple);
  EXPECT_EQ(a.Hash(), b.Hash());
  GroupKey c = GroupKey::Project(0b011, tuple);
  EXPECT_NE(a.Hash(), c.Hash());
}

TEST(GroupKeyTest, EncodeDecodeRoundTrip) {
  GroupKey key(0b1010, {42, -7});
  ByteWriter writer;
  key.EncodeTo(writer);
  ByteReader reader(writer.data());
  GroupKey decoded;
  ASSERT_TRUE(GroupKey::DecodeFrom(reader, &decoded).ok());
  EXPECT_EQ(decoded, key);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(GroupKeyTest, DecodeRejectsArityMismatch) {
  ByteWriter writer;
  writer.PutVarint(0b11);             // mask with two attributes
  writer.PutI64Vector({1});           // but only one value
  ByteReader reader(writer.data());
  GroupKey decoded;
  EXPECT_EQ(GroupKey::DecodeFrom(reader, &decoded).code(),
            StatusCode::kCorruption);
}

TEST(GroupKeyTest, CompareOnCuboid) {
  const std::vector<int64_t> a = {1, 5, 9};
  const std::vector<int64_t> b = {1, 7, 3};
  EXPECT_EQ(CompareOnCuboid(0b001, a, b), 0);
  EXPECT_LT(CompareOnCuboid(0b010, a, b), 0);
  EXPECT_GT(CompareOnCuboid(0b100, a, b), 0);
  EXPECT_LT(CompareOnCuboid(0b110, a, b), 0);  // dim1 decides first
  EXPECT_EQ(CompareOnCuboid(0, a, b), 0);
}

TEST(GroupKeyTest, CompareTupleToKey) {
  const std::vector<int64_t> tuple = {5, 6, 7};
  GroupKey key(0b101, {5, 7});
  EXPECT_EQ(CompareTupleToKey(0b101, tuple, key), 0);
  GroupKey smaller(0b101, {5, 6});
  EXPECT_GT(CompareTupleToKey(0b101, tuple, smaller), 0);
  GroupKey larger(0b101, {6, 0});
  EXPECT_LT(CompareTupleToKey(0b101, tuple, larger), 0);
}

TEST(CubeResultTest, AddAndLookup) {
  CubeResult cube(2);
  ASSERT_TRUE(cube.AddGroup(GroupKey(0b01, {5}), 2.0).ok());
  EXPECT_EQ(cube.num_groups(), 1);
  EXPECT_EQ(cube.Lookup(GroupKey(0b01, {5})).value(), 2.0);
  EXPECT_FALSE(cube.Lookup(GroupKey(0b01, {6})).ok());
}

TEST(CubeResultTest, DuplicateGroupRejected) {
  CubeResult cube(2);
  ASSERT_TRUE(cube.AddGroup(GroupKey(0, {}), 1.0).ok());
  EXPECT_EQ(cube.AddGroup(GroupKey(0, {}), 2.0).code(),
            StatusCode::kAlreadyExists);
}

TEST(CubeResultTest, ApproxEqualDetectsDifferences) {
  CubeResult a(1);
  CubeResult b(1);
  ASSERT_TRUE(a.AddGroup(GroupKey(0b1, {1}), 1.0).ok());
  ASSERT_TRUE(b.AddGroup(GroupKey(0b1, {1}), 1.0).ok());
  EXPECT_TRUE(CubeResult::ApproxEqual(a, b, 1e-9, nullptr));

  ASSERT_TRUE(a.AddGroup(GroupKey(0b1, {2}), 5.0).ok());
  std::string diff;
  EXPECT_FALSE(CubeResult::ApproxEqual(a, b, 1e-9, &diff));
  EXPECT_FALSE(diff.empty());

  ASSERT_TRUE(b.AddGroup(GroupKey(0b1, {2}), 5.5).ok());
  EXPECT_FALSE(CubeResult::ApproxEqual(a, b, 1e-9, nullptr));
  EXPECT_TRUE(CubeResult::ApproxEqual(a, b, 1.0, nullptr));
}

TEST(ReferenceCubeTest, TinyRelationByHand) {
  // R = {(laptop=0, rome=0), (laptop=0, paris=1), (printer=1, rome=0)},
  // count aggregate.
  Relation rel(MakeAnonymousSchema(2));
  rel.AppendRow(std::vector<int64_t>{0, 0}, 1);
  rel.AppendRow(std::vector<int64_t>{0, 1}, 1);
  rel.AppendRow(std::vector<int64_t>{1, 0}, 1);
  CubeResult cube = ComputeCubeReference(rel, AggregateKind::kCount);

  // Cuboid (*,*): 1 group; (A0,*): 2; (*,A1): 2; (A0,A1): 3.
  EXPECT_EQ(cube.num_groups(), 1 + 2 + 2 + 3);
  EXPECT_EQ(cube.Lookup(GroupKey(0, {})).value(), 3.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b01, {0})).value(), 2.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b01, {1})).value(), 1.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b10, {0})).value(), 2.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b11, {0, 0})).value(), 1.0);
  EXPECT_EQ(cube.CuboidGroupCount(0b11), 3);
}

TEST(ReferenceCubeTest, SumAggregate) {
  Relation rel(MakeAnonymousSchema(1));
  rel.AppendRow(std::vector<int64_t>{7}, 10);
  rel.AppendRow(std::vector<int64_t>{7}, 5);
  rel.AppendRow(std::vector<int64_t>{8}, 1);
  CubeResult cube = ComputeCubeReference(rel, AggregateKind::kSum);
  EXPECT_EQ(cube.Lookup(GroupKey(0, {})).value(), 16.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b1, {7})).value(), 15.0);
  EXPECT_EQ(cube.Lookup(GroupKey(0b1, {8})).value(), 1.0);
}

// Observation 2.6: for every c-group g and descendant g',
// set(g) ⊆ set(g'). With count, the descendant's value is >= the group's.
TEST(LatticeInvariantTest, DescendantCountsDominate) {
  Relation rel = GenUniform(500, 3, 4, 41);
  CubeResult cube = ComputeCubeReference(rel, AggregateKind::kCount);
  for (const auto& [key, value] : cube.groups()) {
    for (CuboidMask descendant_mask : ImmediateDescendants(key.mask)) {
      // Build the descendant's key by dropping the removed attribute.
      std::vector<int64_t> expanded(3, 0);
      size_t vi = 0;
      for (int d = 0; d < 3; ++d) {
        if ((key.mask >> d) & 1) expanded[static_cast<size_t>(d)] = key.values[vi++];
      }
      GroupKey descendant = GroupKey::Project(descendant_mask, expanded);
      auto descendant_value = cube.Lookup(descendant);
      ASSERT_TRUE(descendant_value.ok());
      EXPECT_GE(descendant_value.value(), value);
    }
  }
}

}  // namespace
}  // namespace spcube
