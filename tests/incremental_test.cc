// Tests for incremental cube maintenance: cube(R ∪ Δ) must equal
// MergeCubes(cube(R), cube(Δ)) for every distributive aggregate, including
// when the delta-cube is produced by a different distributed algorithm
// than the base.

#include <gtest/gtest.h>

#include "baselines/naive.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "query/incremental.h"
#include "relation/generators.h"

namespace spcube {
namespace {

Relation Concat(const Relation& a, const Relation& b) {
  Relation out(MakeAnonymousSchema(a.num_dims()));
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    out.AppendRow(a.row(r), a.measure(r));
  }
  for (int64_t r = 0; r < b.num_rows(); ++r) {
    out.AppendRow(b.row(r), b.measure(r));
  }
  return out;
}

class MergeCubesTest : public ::testing::TestWithParam<AggregateKind> {};

TEST_P(MergeCubesTest, EqualsCubeOfUnion) {
  const AggregateKind kind = GetParam();
  Relation base = GenBinomial(1500, 3, 0.3, 161);
  Relation delta = GenBinomial(600, 3, 0.6, 162);

  CubeResult merged_input =
      ComputeCubeReference(Concat(base, delta), kind);
  auto merged = MergeCubes(ComputeCubeReference(base, kind),
                           ComputeCubeReference(delta, kind), kind);
  ASSERT_TRUE(merged.ok());
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(merged_input, *merged, 1e-6, &diff))
      << diff;
}

INSTANTIATE_TEST_SUITE_P(DistributiveKinds, MergeCubesTest,
                         ::testing::Values(AggregateKind::kCount,
                                           AggregateKind::kSum,
                                           AggregateKind::kMin,
                                           AggregateKind::kMax));

TEST(MergeCubesTest, AvgRejected) {
  CubeResult a(2);
  CubeResult b(2);
  EXPECT_EQ(MergeCubes(a, b, AggregateKind::kAvg).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MergeCubesTest, DimensionMismatchRejected) {
  CubeResult a(2);
  CubeResult b(3);
  EXPECT_FALSE(MergeCubes(a, b, AggregateKind::kCount).ok());
}

TEST(MergeCubesTest, DisjointGroupsPassThrough) {
  CubeResult a(1);
  CubeResult b(1);
  a.UpsertGroup(GroupKey(0b1, {1}), 5.0);
  b.UpsertGroup(GroupKey(0b1, {2}), 7.0);
  b.UpsertGroup(GroupKey(0b1, {1}), 3.0);
  auto merged = MergeCubes(a, b, AggregateKind::kSum);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_groups(), 2);
  EXPECT_EQ(merged->Lookup(GroupKey(0b1, {1})).value(), 8.0);
  EXPECT_EQ(merged->Lookup(GroupKey(0b1, {2})).value(), 7.0);
}

TEST(MergeCubesTest, CrossAlgorithmIncrementalUpdate) {
  // Nightly batch with SP-Cube, hourly delta with naive, merged cube must
  // equal a full recompute — the sketch reuse + append-only pattern.
  Relation base = GenWikiLike(3000, 163);
  Relation delta = GenWikiLike(500, 164);

  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;

  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  SpCubeAlgorithm sp;
  auto base_out = sp.Run(engine, base, {});
  ASSERT_TRUE(base_out.ok());
  NaiveCubeAlgorithm naive;
  auto delta_out = naive.Run(engine, delta, {});
  ASSERT_TRUE(delta_out.ok());

  auto merged = MergeCubes(*base_out->cube, *delta_out->cube,
                           AggregateKind::kCount);
  ASSERT_TRUE(merged.ok());
  CubeResult recomputed =
      ComputeCubeReference(Concat(base, delta), AggregateKind::kCount);
  std::string diff;
  EXPECT_TRUE(CubeResult::ApproxEqual(recomputed, *merged, 1e-6, &diff))
      << diff;
}

TEST(MergeCubesTest, MinMaxWithNegativeValues) {
  Relation base(MakeAnonymousSchema(1));
  base.AppendRow(std::vector<int64_t>{1}, -5);
  Relation delta(MakeAnonymousSchema(1));
  delta.AppendRow(std::vector<int64_t>{1}, -9);

  auto merged_min =
      MergeCubes(ComputeCubeReference(base, AggregateKind::kMin),
                 ComputeCubeReference(delta, AggregateKind::kMin),
                 AggregateKind::kMin);
  ASSERT_TRUE(merged_min.ok());
  EXPECT_EQ(merged_min->Lookup(GroupKey(0b1, {1})).value(), -9.0);

  auto merged_max =
      MergeCubes(ComputeCubeReference(base, AggregateKind::kMax),
                 ComputeCubeReference(delta, AggregateKind::kMax),
                 AggregateKind::kMax);
  ASSERT_TRUE(merged_max.ok());
  EXPECT_EQ(merged_max->Lookup(GroupKey(0b1, {1})).value(), -5.0);
}

}  // namespace
}  // namespace spcube
