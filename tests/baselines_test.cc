// Tests for the baseline algorithms: naive (Algorithm 1), MR-Cube (Pig)
// and the Hive surrogate. All must agree exactly with the reference cube;
// their characteristic behaviours (2^d blowup, cuboid-granularity skew
// detection, strict-memory failures) are asserted on top.

#include <gtest/gtest.h>

#include "baselines/hive.h"
#include "baselines/mrcube.h"
#include "baselines/naive.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig(int workers = 5) {
  EngineConfig config;
  config.num_workers = workers;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

void ExpectMatchesReference(CubeAlgorithm& algorithm, const Relation& rel,
                            AggregateKind kind) {
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  CubeRunOptions options;
  options.aggregate = kind;
  auto output = algorithm.Run(engine, rel, options);
  ASSERT_TRUE(output.ok()) << algorithm.name() << ": " << output.status();
  ASSERT_NE(output->cube, nullptr);
  CubeResult reference = ComputeCubeReference(rel, kind);
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << algorithm.name() << ":\n"
      << diff;
}

TEST(NaiveTest, MatchesReferenceOnUniform) {
  NaiveCubeAlgorithm naive;
  ExpectMatchesReference(naive, GenUniform(2000, 3, 20, 1),
                         AggregateKind::kCount);
}

TEST(NaiveTest, MatchesReferenceOnSkewed) {
  NaiveCubeAlgorithm naive;
  ExpectMatchesReference(naive, GenBinomial(2000, 4, 0.6, 3),
                         AggregateKind::kCount);
}

TEST(NaiveTest, MatchesReferenceForAllAggregates) {
  Relation rel = GenZipfPaper(1200, 5);
  for (AggregateKind kind :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAvg}) {
    NaiveCubeAlgorithm naive;
    ExpectMatchesReference(naive, rel, kind);
  }
}

TEST(NaiveTest, EmitsExactly2ToTheDPairsPerTuple) {
  Relation rel = GenUniform(1000, 4, 100, 7);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  NaiveCubeAlgorithm naive;
  auto output = naive.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->metrics.rounds[0].map_output_records, 1000 * 16);
  EXPECT_EQ(output->metrics.rounds[0].shuffle_records, 1000 * 16);
}

TEST(NaiveTest, CombinerVariantMatchesAndShrinksTraffic) {
  Relation rel = GenBinomial(2000, 3, 0.7, 9);
  NaiveCubeAlgorithm with_combiner(NaiveCubeOptions{true});
  ExpectMatchesReference(with_combiner, rel, AggregateKind::kCount);

  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  NaiveCubeAlgorithm plain;
  auto plain_out = plain.Run(engine, rel, {});
  auto combined_out = with_combiner.Run(engine, rel, {});
  ASSERT_TRUE(plain_out.ok());
  ASSERT_TRUE(combined_out.ok());
  EXPECT_LT(combined_out->metrics.ShuffleBytes(),
            plain_out->metrics.ShuffleBytes());
}

TEST(MrCubeTest, MatchesReferenceOnUniform) {
  MrCubeAlgorithm mrcube;
  ExpectMatchesReference(mrcube, GenUniform(2000, 3, 20, 11),
                         AggregateKind::kCount);
}

TEST(MrCubeTest, MatchesReferenceOnHeavySkew) {
  MrCubeAlgorithm mrcube;
  ExpectMatchesReference(mrcube, GenBinomial(3000, 4, 0.7, 13),
                         AggregateKind::kCount);
}

TEST(MrCubeTest, MatchesReferenceOnPlantedSkew) {
  MrCubeAlgorithm mrcube;
  ExpectMatchesReference(mrcube,
                         GenPlantedSkew(3000, 3, {0.5}, {15, 15, 15}, 15),
                         AggregateKind::kSum);
}

TEST(MrCubeTest, MatchesReferenceForAvg) {
  MrCubeAlgorithm mrcube;
  ExpectMatchesReference(mrcube, GenZipfPaper(1500, 17),
                         AggregateKind::kAvg);
}

TEST(MrCubeTest, FriendlyDataNeedsNoThirdRound) {
  Relation rel = GenUniform(2000, 3, 5000, 19);  // no big groups
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  MrCubeAlgorithm mrcube;
  auto output = mrcube.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  // Only apex-ish cuboids can be unfriendly; with uniform data the apex
  // still is (n > m), so allow 2 or 3 rounds but verify the detection
  // count matches the rounds run.
  if (mrcube.last_unfriendly_cuboids() == 0) {
    EXPECT_EQ(output->metrics.rounds.size(), 2u);
  } else {
    EXPECT_EQ(output->metrics.rounds.size(), 3u);
  }
}

TEST(MrCubeTest, SkewTriggersValuePartitioningAndPostAggregation) {
  Relation rel = GenPlantedSkew(4000, 3, {0.6}, {20, 20, 20}, 21);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);
  MrCubeAlgorithm mrcube;
  auto output = mrcube.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  EXPECT_GT(mrcube.last_unfriendly_cuboids(), 0);
  ASSERT_EQ(output->metrics.rounds.size(), 3u);
  EXPECT_EQ(output->metrics.rounds[2].job_name, "mrcube-postagg");
}

TEST(MrCubeTest, CuboidGranularityIsCoarserThanGroupGranularity) {
  // One planted heavy group makes its whole cuboid unfriendly, so MR-Cube
  // value-partitions *all* groups of that cuboid — the inefficiency the
  // paper contrasts SP-Cube against (§1).
  Relation rel = GenPlantedSkew(4000, 2, {0.5}, {50, 50}, 23);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);
  MrCubeAlgorithm mrcube;
  auto output = mrcube.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  // All four cuboids contain the planted group's projection with 50% mass,
  // so every cuboid is unfriendly.
  EXPECT_EQ(mrcube.last_unfriendly_cuboids(), 4);
}

TEST(MrCubeTest, AnnotationsSerializationRoundTrip) {
  MrCubeAnnotations annotations;
  annotations.num_dims = 3;
  annotations.partition_factor = {1, 2, 1, 4, 1, 1, 8, 1};
  auto decoded = MrCubeAnnotations::Deserialize(annotations.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_dims, 3);
  EXPECT_EQ(decoded->partition_factor, annotations.partition_factor);
  EXPECT_FALSE(MrCubeAnnotations::Deserialize("junk").ok());
}

TEST(HiveTest, MatchesReferenceOnUniform) {
  HiveCubeAlgorithm hive;
  ExpectMatchesReference(hive, GenUniform(2000, 3, 20, 25),
                         AggregateKind::kCount);
}

TEST(HiveTest, MatchesReferenceOnSkewed) {
  HiveCubeAlgorithm hive;
  ExpectMatchesReference(hive, GenBinomial(2500, 4, 0.5, 27),
                         AggregateKind::kCount);
}

TEST(HiveTest, MatchesReferenceForSumAndAvg) {
  Relation rel = GenZipfPaper(1500, 29);
  for (AggregateKind kind : {AggregateKind::kSum, AggregateKind::kAvg}) {
    HiveCubeAlgorithm hive;
    ExpectMatchesReference(hive, rel, kind);
  }
}

TEST(HiveTest, MapHashCollapsesDuplicateHeavyRows) {
  // All rows identical: the map hash should collapse nearly everything.
  Relation rel(MakeAnonymousSchema(3));
  for (int i = 0; i < 4000; ++i) {
    rel.AppendRow(std::vector<int64_t>{1, 2, 3}, 1);
  }
  DistributedFileSystem dfs;
  Engine engine(TestConfig(4), &dfs);
  HiveCubeAlgorithm hive;
  auto output = hive.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  // 4 mappers x 8 groups (plus a few flush boundaries) — far below n*2^d.
  EXPECT_LT(output->metrics.rounds[0].shuffle_records, 200);
}

TEST(HiveTest, UniformDataChurnsTheMapHash) {
  // Distinct-heavy input defeats map-side aggregation: emitted records are
  // a large fraction of n * 2^d (the paper's "Hive map output largest").
  Relation rel = GenUniform(3000, 4, 1 << 30, 31);
  EngineConfig config = TestConfig(4);
  config.memory_budget_bytes = 64 << 10;  // small hash -> heavy churn
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  HiveCubeAlgorithm hive;
  auto output = hive.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->metrics.rounds[0].shuffle_records, 3000 * 16 / 2);
}

TEST(HiveTest, StrictMemoryFailsUnderHeavySkewAndSmallMemory) {
  // The configuration the paper reports for gen-binomial p >= 0.4: with
  // strict reducer memory and budgets sized to the skew, the job dies with
  // ResourceExhausted instead of finishing.
  Relation rel = GenUniform(4000, 4, 1 << 30, 33);
  EngineConfig config = TestConfig(4);
  config.memory_budget_bytes = 32 << 10;
  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  HiveCubeOptions options;
  options.strict_reducer_memory = true;
  HiveCubeAlgorithm hive(options);
  auto output = hive.Run(engine, rel, {});
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kResourceExhausted);
}

TEST(AllBaselinesTest, AgreeWithEachOtherOnMixedWorkload) {
  Relation rel = GenIndependentSkew(2500, 4, 0.3, 50, 35);
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);

  NaiveCubeAlgorithm naive;
  MrCubeAlgorithm mrcube;
  HiveCubeAlgorithm hive;
  for (CubeAlgorithm* algorithm :
       std::initializer_list<CubeAlgorithm*>{&naive, &mrcube, &hive}) {
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    auto output = algorithm->Run(engine, rel, {});
    ASSERT_TRUE(output.ok()) << algorithm->name();
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << algorithm->name() << ":\n"
        << diff;
  }
}

}  // namespace
}  // namespace spcube
