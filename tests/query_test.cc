// Tests for the OLAP query layer (CubeStore): lookups, slices, top-k,
// roll-up / drill-down navigation, checked against the reference cube.

#include <gtest/gtest.h>

#include <map>

#include "cube/cube_result.h"
#include "query/cube_store.h"
#include "relation/generators.h"

namespace spcube {
namespace {

/// Small hand-checkable relation: (product, city) -> sales.
Relation SalesRelation() {
  Relation rel(MakeAnonymousSchema(2));
  // product 0 = laptop, 1 = printer; city 0 = rome, 1 = paris.
  rel.AppendRow(std::vector<int64_t>{0, 0}, 10);
  rel.AppendRow(std::vector<int64_t>{0, 0}, 20);
  rel.AppendRow(std::vector<int64_t>{0, 1}, 5);
  rel.AppendRow(std::vector<int64_t>{1, 0}, 7);
  rel.AppendRow(std::vector<int64_t>{1, 1}, 3);
  return rel;
}

TEST(CubeStoreTest, PointLookups) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  EXPECT_EQ(store.num_dims(), 2);
  EXPECT_EQ(store.Value(GroupKey(0, {})).value(), 45.0);
  EXPECT_EQ(store.Value(GroupKey(0b01, {0})).value(), 35.0);
  EXPECT_EQ(store.Value(GroupKey(0b10, {1})).value(), 8.0);
  EXPECT_EQ(store.Value(GroupKey(0b11, {0, 0})).value(), 30.0);
  EXPECT_FALSE(store.Value(GroupKey(0b01, {9})).ok());
}

TEST(CubeStoreTest, CuboidsAreSortedAndComplete) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kCount));
  EXPECT_EQ(store.Cuboid(0).size(), 1u);
  EXPECT_EQ(store.Cuboid(0b01).size(), 2u);
  EXPECT_EQ(store.Cuboid(0b10).size(), 2u);
  EXPECT_EQ(store.Cuboid(0b11).size(), 4u);
  EXPECT_EQ(store.num_cells(), 9);
  const auto& base = store.Cuboid(0b11);
  for (size_t i = 1; i < base.size(); ++i) {
    EXPECT_LT(base[i - 1].key.values, base[i].key.values);
  }
}

TEST(CubeStoreTest, SlicePrefixPath) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  // Fix product=laptop (dim 0), group by city (dim 1): prefix range scan.
  auto slice = store.Slice(GroupKey(0b01, {0}), 0b10);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 2u);
  EXPECT_EQ((*slice)[0].key, GroupKey(0b11, {0, 0}));
  EXPECT_EQ((*slice)[0].value, 30.0);
  EXPECT_EQ((*slice)[1].key, GroupKey(0b11, {0, 1}));
  EXPECT_EQ((*slice)[1].value, 5.0);
}

TEST(CubeStoreTest, SliceGeneralPath) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  // Fix city=rome (dim 1), group by product (dim 0): fixed dim comes
  // after the group-by dim, so the store must filter.
  auto slice = store.Slice(GroupKey(0b10, {0}), 0b01);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 2u);
  std::map<GroupKey, double> by_key;
  for (const CubeCell& cell : *slice) by_key[cell.key] = cell.value;
  EXPECT_EQ(by_key[GroupKey(0b11, {0, 0})], 30.0);
  EXPECT_EQ(by_key[GroupKey(0b11, {1, 0})], 7.0);
}

TEST(CubeStoreTest, SliceWithEmptyGroupByIsPointQuery) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  auto slice = store.Slice(GroupKey(0b01, {1}), 0);
  ASSERT_TRUE(slice.ok());
  ASSERT_EQ(slice->size(), 1u);
  EXPECT_EQ((*slice)[0].value, 10.0);
}

TEST(CubeStoreTest, SliceWithApexFixedReturnsWholeCuboid) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  auto slice = store.Slice(GroupKey(0, {}), 0b11);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->size(), 4u);
}

TEST(CubeStoreTest, SliceRejectsOverlap) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  EXPECT_FALSE(store.Slice(GroupKey(0b01, {0}), 0b01).ok());
}

TEST(CubeStoreTest, TopK) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  auto top = store.TopK(0b11, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, GroupKey(0b11, {0, 0}));  // 30
  EXPECT_EQ(top[1].key, GroupKey(0b11, {1, 0}));  // 7
  auto bottom = store.TopK(0b11, 1, /*largest=*/false);
  ASSERT_EQ(bottom.size(), 1u);
  EXPECT_EQ(bottom[0].key, GroupKey(0b11, {1, 1}));  // 3
  // k larger than the cuboid returns everything, sorted.
  EXPECT_EQ(store.TopK(0b01, 10).size(), 2u);
}

TEST(CubeStoreTest, RollUp) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  auto coarser = store.RollUp(GroupKey(0b11, {0, 1}));
  ASSERT_TRUE(coarser.ok());
  ASSERT_EQ(coarser->size(), 2u);
  // Dropping dim 0 -> (*, paris) = 8; dropping dim 1 -> (laptop, *) = 35.
  std::map<GroupKey, double> by_key;
  for (const CubeCell& cell : *coarser) by_key[cell.key] = cell.value;
  EXPECT_EQ(by_key[GroupKey(0b10, {1})], 8.0);
  EXPECT_EQ(by_key[GroupKey(0b01, {0})], 35.0);
  EXPECT_FALSE(store.RollUp(GroupKey(0, {})).ok());
}

TEST(CubeStoreTest, DrillDown) {
  CubeStore store(ComputeCubeReference(SalesRelation(),
                                       AggregateKind::kSum));
  auto refined = store.DrillDown(GroupKey(0b01, {0}), 1);
  ASSERT_TRUE(refined.ok());
  ASSERT_EQ(refined->size(), 2u);
  EXPECT_EQ((*refined)[0].key, GroupKey(0b11, {0, 0}));
  EXPECT_EQ((*refined)[1].key, GroupKey(0b11, {0, 1}));
  EXPECT_FALSE(store.DrillDown(GroupKey(0b01, {0}), 0).ok());
  EXPECT_FALSE(store.DrillDown(GroupKey(0b01, {0}), 7).ok());
}

TEST(CubeStoreTest, CuboidTotalsEqualApexForSum) {
  Relation rel = GenZipfPaper(2000, 81);
  CubeStore store(ComputeCubeReference(rel, AggregateKind::kSum));
  const double apex = store.Value(GroupKey(0, {})).value();
  for (CuboidMask mask = 0; mask < 16; ++mask) {
    EXPECT_NEAR(store.CuboidTotal(mask), apex, 1e-6) << mask;
  }
}

// Randomized consistency: every slice result must agree with filtering the
// full cuboid by hand, and every drill-down must sum to its parent cell
// (for sum cubes of disjoint refinements).
TEST(CubeStoreTest, RandomizedSliceAndDrillDownConsistency) {
  Relation rel = GenUniform(1500, 3, 6, 83);
  CubeStore store(ComputeCubeReference(rel, AggregateKind::kSum));
  for (const CubeCell& cell : store.Cuboid(0b011)) {
    auto drilled = store.DrillDown(cell.key, 2);
    ASSERT_TRUE(drilled.ok());
    double sum = 0.0;
    for (const CubeCell& refined : *drilled) sum += refined.value;
    EXPECT_NEAR(sum, cell.value, 1e-6) << cell.key.ToString(3);
  }
  for (const CubeCell& cell : store.Cuboid(0b100)) {
    auto slice = store.Slice(cell.key, 0b011);
    ASSERT_TRUE(slice.ok());
    double sum = 0.0;
    for (const CubeCell& c : *slice) sum += c.value;
    EXPECT_NEAR(sum, cell.value, 1e-6);
  }
}

}  // namespace
}  // namespace spcube
