// Tests for the simulated distributed file system and local spill files.

#include <gtest/gtest.h>

#include <filesystem>

#include "io/dfs.h"
#include "io/spill.h"
#include "mapreduce/fault.h"

namespace spcube {
namespace {

TEST(DfsTest, WriteReadDelete) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("a/b", "hello").ok());
  EXPECT_TRUE(dfs.Exists("a/b"));
  EXPECT_EQ(dfs.Read("a/b").value(), "hello");
  ASSERT_TRUE(dfs.Delete("a/b").ok());
  EXPECT_FALSE(dfs.Exists("a/b"));
  EXPECT_FALSE(dfs.Read("a/b").ok());
  EXPECT_EQ(dfs.Delete("a/b").code(), StatusCode::kNotFound);
}

TEST(DfsTest, WriteRefusesOverwrite) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("x", "1").ok());
  EXPECT_EQ(dfs.Write("x", "2").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(dfs.Overwrite("x", "2").ok());
  EXPECT_EQ(dfs.Read("x").value(), "2");
}

TEST(DfsTest, AppendCreatesAndExtends) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Append("log", "a").ok());
  ASSERT_TRUE(dfs.Append("log", "b").ok());
  EXPECT_EQ(dfs.Read("log").value(), "ab");
}

TEST(DfsTest, ListAndTotalsByPrefix) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("out/part-0", "aa").ok());
  ASSERT_TRUE(dfs.Write("out/part-1", "bbb").ok());
  ASSERT_TRUE(dfs.Write("other", "c").ok());
  EXPECT_EQ(dfs.List("out/"),
            (std::vector<std::string>{"out/part-0", "out/part-1"}));
  EXPECT_EQ(dfs.TotalBytes("out/"), 5);
  EXPECT_EQ(dfs.TotalBytes(""), 6);
  EXPECT_EQ(dfs.file_count(), 3);
  EXPECT_EQ(dfs.DeletePrefix("out/"), 2);
  EXPECT_EQ(dfs.file_count(), 1);
}

// ---------------------------------------------------------------------------
// Blob compression (docs/INTERNALS.md §13): under CRC32C, above fault
// injection.
// ---------------------------------------------------------------------------

std::string RedundantBlob() {
  std::string blob;
  for (int i = 0; i < 4000; ++i) {
    blob += "part-file-record-" + std::to_string(i % 40) + "|";
  }
  return blob;
}

TEST(DfsCompressionTest, CompressedBlobsRoundTripAndShrink) {
  DistributedFileSystem dfs;
  dfs.SetCompression(true);
  const std::string blob = RedundantBlob();
  ASSERT_TRUE(dfs.Write("out/part-0", blob).ok());
  EXPECT_EQ(dfs.Read("out/part-0").value(), blob);
  // Stored (modeled-cost) bytes shrink; logical bytes report the payload.
  EXPECT_LT(dfs.TotalBytes(""), static_cast<int64_t>(blob.size()));
  EXPECT_EQ(dfs.TotalLogicalBytes(""), static_cast<int64_t>(blob.size()));
}

TEST(DfsCompressionTest, TotalsAgreeWhenCompressionOff) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("x", "abcdef").ok());
  EXPECT_EQ(dfs.TotalBytes(""), 6);
  EXPECT_EQ(dfs.TotalLogicalBytes(""), 6);
}

TEST(DfsCompressionTest, AppendRecompressesAcrossSettingChanges) {
  DistributedFileSystem dfs;
  dfs.SetCompression(true);
  const std::string half = RedundantBlob();
  ASSERT_TRUE(dfs.Append("log", half).ok());
  ASSERT_TRUE(dfs.Append("log", half).ok());
  EXPECT_EQ(dfs.Read("log").value(), half + half);
  // Turning compression off re-encodes the touched blob as plain bytes.
  dfs.SetCompression(false);
  ASSERT_TRUE(dfs.Append("log", "!").ok());
  EXPECT_EQ(dfs.Read("log").value(), half + half + "!");
  EXPECT_EQ(dfs.TotalBytes(""), dfs.TotalLogicalBytes(""));
}

TEST(DfsCompressionTest, VerifyChecksumSeesStoredBytes) {
  DistributedFileSystem dfs;
  ASSERT_TRUE(dfs.Write("plain", "payload").ok());
  dfs.SetCompression(true);
  ASSERT_TRUE(dfs.Write("packed", RedundantBlob()).ok());
  EXPECT_TRUE(dfs.VerifyChecksum("plain").ok());
  EXPECT_TRUE(dfs.VerifyChecksum("packed").ok());
  EXPECT_EQ(dfs.VerifyChecksum("missing").code(), StatusCode::kNotFound);
}

TEST(DfsCompressionTest, InFlightCorruptionIsReFetchedBeforeDecoding) {
  // Compression sits above fault injection: corruption strikes the stored
  // (compressed) bytes in flight, the checksum catches it, and the blob
  // decodes only after an accepted fetch — so reads stay exact.
  FaultConfig config;
  config.seed = 99;
  config.payload_corruption_rate = 0.6;
  FaultPlan injector(config);
  DistributedFileSystem dfs;
  dfs.SetCompression(true);
  const std::string blob = RedundantBlob();
  // Injection decisions are pure functions of the path, so spread reads
  // over many blobs to guarantee some first fetches corrupt.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(dfs.Write("out/blob-" + std::to_string(i), blob).ok());
  }
  dfs.SetFaultInjector(&injector);
  for (int i = 0; i < 40; ++i) {
    auto read = dfs.Read("out/blob-" + std::to_string(i));
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_EQ(*read, blob);
  }
  EXPECT_GT(dfs.checksum_mismatches(), 0);
  EXPECT_GT(dfs.reads_recovered(), 0);
  dfs.SetFaultInjector(nullptr);
}

TEST(TempFileManagerTest, CreatesAndCleansUp) {
  std::string dir;
  {
    TempFileManager manager("test");
    dir = manager.dir();
    EXPECT_TRUE(std::filesystem::exists(dir));
    const std::string p1 = manager.NextPath();
    const std::string p2 = manager.NextPath();
    EXPECT_NE(p1, p2);
    EXPECT_EQ(p1.rfind(dir, 0), 0u);  // paths live under the managed dir
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(SpillTest, WriteReadRoundTrip) {
  TempFileManager manager("spill");
  const std::string path = manager.NextPath();
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("one").ok());
    ASSERT_TRUE(writer.Append("").ok());
    ASSERT_TRUE(writer.Append(std::string(100000, 'x')).ok());
    EXPECT_EQ(writer.record_count(), 3);
    ASSERT_TRUE(writer.Close().ok());
  }
  SpillReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  std::string record;
  ASSERT_TRUE(reader.Next(&record).value());
  EXPECT_EQ(record, "one");
  ASSERT_TRUE(reader.Next(&record).value());
  EXPECT_EQ(record, "");
  ASSERT_TRUE(reader.Next(&record).value());
  EXPECT_EQ(record.size(), 100000u);
  EXPECT_FALSE(reader.Next(&record).value());  // end of file
  ASSERT_TRUE(reader.Close().ok());
}

TEST(SpillTest, BinaryRecordsSurvive) {
  TempFileManager manager("spill");
  const std::string path = manager.NextPath();
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append(binary).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  SpillReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  std::string record;
  ASSERT_TRUE(reader.Next(&record).value());
  EXPECT_EQ(record, binary);
}

TEST(SpillTest, MissingFileIsIoError) {
  SpillReader reader("/nonexistent/path/file.bin");
  EXPECT_EQ(reader.Open().code(), StatusCode::kIoError);
  SpillWriter writer("/nonexistent/path/file.bin");
  EXPECT_EQ(writer.Open().code(), StatusCode::kIoError);
}

TEST(SpillTest, AppendBeforeOpenFails) {
  TempFileManager manager("spill");
  SpillWriter writer(manager.NextPath());
  EXPECT_EQ(writer.Append("x").code(), StatusCode::kFailedPrecondition);
}

TEST(SpillTest, TruncatedFileIsCorruption) {
  TempFileManager manager("spill");
  const std::string path = manager.NextPath();
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Append("hello world").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Chop the payload.
  std::filesystem::resize_file(path, 12);
  SpillReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  std::string record;
  auto result = reader.Next(&record);
  EXPECT_FALSE(result.ok());
}

TEST(SpillTest, RemoveFileIfExistsIsIdempotent) {
  TempFileManager manager("spill");
  const std::string path = manager.NextPath();
  {
    SpillWriter writer(path);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  RemoveFileIfExists(path);
  EXPECT_FALSE(std::filesystem::exists(path));
  RemoveFileIfExists(path);  // no crash on missing
}

}  // namespace
}  // namespace spcube
