// Direct unit tests for the shuffle machinery: map-side buffers (combine /
// spill behaviour) and reduce-side grouped streams (in-memory, absorbed
// runs, external merge).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "common/bytes.h"
#include "common/random.h"
#include "io/dfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/fault.h"
#include "mapreduce/shuffle.h"
#include "relation/generators.h"

namespace spcube {
namespace {

/// Sums decimal-string values.
class SumCombiner : public Combiner {
 public:
  Status Combine(const std::string& /*key*/,
                 const std::vector<std::string>& values,
                 std::vector<std::string>* combined) const override {
    int64_t total = 0;
    for (const std::string& value : values) total += std::stoll(value);
    combined->assign(1, std::to_string(total));
    return Status::OK();
  }
};

std::map<std::string, std::vector<std::string>> DrainStream(
    GroupedRecordStream& stream) {
  std::map<std::string, std::vector<std::string>> groups;
  std::string key;
  std::string value;
  for (;;) {
    auto more = stream.NextGroup(&key);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !more.value()) break;
    auto& values = groups[key];
    for (;;) {
      auto has_value = stream.NextValue(&value);
      EXPECT_TRUE(has_value.ok());
      if (!has_value.ok() || !has_value.value()) break;
      values.push_back(value);
    }
  }
  return groups;
}

TEST(ShuffleBufferTest, RoutesToPartitionsAndCounts) {
  TempFileManager temp("shuffle");
  ShuffleCounters counters;
  ShuffleBuffer buffer(3, 1 << 20, nullptr, &temp, &counters);
  ASSERT_TRUE(buffer.Add(0, "a", "1").ok());
  ASSERT_TRUE(buffer.Add(2, "b", "22").ok());
  ASSERT_TRUE(buffer.Add(0, "c", "333").ok());
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());

  EXPECT_EQ(counters.map_output_records, 3);
  EXPECT_EQ(counters.map_output_bytes, 2 + 3 + 4);
  EXPECT_EQ(counters.spill_bytes, 0);

  EXPECT_EQ(buffer.TakeMemoryRecords(0).size(), 2u);
  EXPECT_EQ(buffer.TakeMemoryRecords(1).size(), 0u);
  EXPECT_EQ(buffer.TakeMemoryRecords(2).size(), 1u);
}

TEST(ShuffleBufferTest, CombinerCollapsesDuplicates) {
  TempFileManager temp("shuffle");
  ShuffleCounters counters;
  SumCombiner combiner;
  ShuffleBuffer buffer(1, 1 << 20, &combiner, &temp, &counters);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(buffer.Add(0, "k" + std::to_string(i % 4), "1").ok());
  }
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
  std::vector<Record> records = buffer.TakeMemoryRecords(0);
  ASSERT_EQ(records.size(), 4u);
  int64_t total = 0;
  for (const Record& record : records) total += std::stoll(record.value);
  EXPECT_EQ(total, 100);
  EXPECT_EQ(counters.combine_input_records, 100);
  EXPECT_EQ(counters.combine_output_records, 4);
}

TEST(ShuffleBufferTest, OverflowSpillsSortedRuns) {
  TempFileManager temp("shuffle");
  ShuffleCounters counters;
  ShuffleBuffer buffer(2, /*memory_budget_bytes=*/64, nullptr, &temp,
                       &counters);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(buffer
                    .Add(i % 2, "key" + std::to_string(99 - i),
                         "v" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
  EXPECT_GT(counters.spill_bytes, 0);
  // The on-disk delta/varint bytes never exceed what the legacy fixed-frame
  // format would have written for the same records (§13's twin invariant).
  EXPECT_GT(counters.spill_bytes_uncompressed, 0);
  EXPECT_LE(counters.spill_bytes, counters.spill_bytes_uncompressed);

  int64_t spilled_records = 0;
  for (int p = 0; p < 2; ++p) {
    for (const RunInfo& run : buffer.TakeSpillRuns(p)) {
      EXPECT_GT(run.records, 0);
      EXPECT_GT(run.file_bytes, 0);
      EXPECT_LE(run.file_bytes, run.uncompressed_file_bytes);
      spilled_records += run.records;
      // Each run is sorted by key (delta-encoded records in CRC-framed
      // blocks, §13).
      SpillReader reader(run.path);
      ASSERT_TRUE(reader.Open().ok());
      SpillBlockDecoder decoder;
      std::string raw;
      std::string last_key;
      int64_t decoded = 0;
      for (;;) {
        auto more = reader.Next(&raw);
        ASSERT_TRUE(more.ok());
        if (!more.value()) break;
        decoder.SetBlock(raw);
        for (;;) {
          std::string_view key;
          std::string_view value;
          auto record = decoder.Next(&key, &value);
          ASSERT_TRUE(record.ok());
          if (!record.value()) break;
          EXPECT_GE(std::string(key), last_key);
          last_key = std::string(key);
          ++decoded;
        }
      }
      EXPECT_EQ(decoded, run.records);
    }
  }
  int64_t memory_records =
      static_cast<int64_t>(buffer.TakeMemoryRecords(0).size()) +
      static_cast<int64_t>(buffer.TakeMemoryRecords(1).size());
  EXPECT_EQ(spilled_records + memory_records, 50);
}

TEST(ShuffleBufferTest, CombineThenSpillWhenStillOverBudget) {
  TempFileManager temp("shuffle");
  ShuffleCounters counters;
  SumCombiner combiner;
  // Distinct keys: combining frees nothing, so the buffer must spill.
  ShuffleBuffer buffer(1, 128, &combiner, &temp, &counters);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(
        buffer.Add(0, "unique_key_" + std::to_string(i), "1").ok());
  }
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
  EXPECT_GT(counters.spill_bytes, 0);
  EXPECT_GT(counters.combine_input_records, 0);
}

ReduceInput MakeInput(std::vector<Record> records) {
  ReduceInput input;
  for (const Record& record : records) {
    input.total_bytes += RecordBytes(record.key, record.value);
    ++input.total_records;
  }
  input.memory_records = std::move(records);
  return input;
}

TEST(GroupedStreamTest, InMemoryGroupsSortedKeysOrderedValues) {
  TempFileManager temp("stream");
  ShuffleCounters counters;
  auto stream = MakeGroupedStream(
      MakeInput({{"b", "1"}, {"a", "x"}, {"b", "2"}, {"a", "y"}}),
      1 << 20, MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(stream.ok());
  // Keys must arrive sorted.
  std::string key;
  ASSERT_TRUE((*stream)->NextGroup(&key).value());
  EXPECT_EQ(key, "a");
  std::string value;
  ASSERT_TRUE((*stream)->NextValue(&value).value());
  EXPECT_EQ(value, "x");  // stable: first-emitted first
  ASSERT_TRUE((*stream)->NextValue(&value).value());
  EXPECT_EQ(value, "y");
  EXPECT_FALSE((*stream)->NextValue(&value).value());
  ASSERT_TRUE((*stream)->NextGroup(&key).value());
  EXPECT_EQ(key, "b");
}

TEST(GroupedStreamTest, NextGroupSkipsUnreadValues) {
  TempFileManager temp("stream");
  ShuffleCounters counters;
  auto stream = MakeGroupedStream(
      MakeInput({{"a", "1"}, {"a", "2"}, {"a", "3"}, {"b", "9"}}),
      1 << 20, MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(stream.ok());
  std::string key;
  ASSERT_TRUE((*stream)->NextGroup(&key).value());
  // Read nothing from group "a"; jump straight to the next group.
  ASSERT_TRUE((*stream)->NextGroup(&key).value());
  EXPECT_EQ(key, "b");
  std::string value;
  ASSERT_TRUE((*stream)->NextValue(&value).value());
  EXPECT_EQ(value, "9");
  EXPECT_FALSE((*stream)->NextGroup(&key).value());
}

TEST(GroupedStreamTest, ExternalMergeEqualsInMemory) {
  // Build the same logical input twice: once within budget, once with a
  // tiny budget forcing mapper spills + external merge; results must agree.
  auto build_records = []() {
    std::vector<Record> records;
    for (int i = 0; i < 200; ++i) {
      records.push_back(Record{"key" + std::to_string(i % 17),
                               "v" + std::to_string(i)});
    }
    return records;
  };

  TempFileManager temp("stream");
  ShuffleCounters counters;

  auto in_memory =
      MakeGroupedStream(MakeInput(build_records()), 1 << 20,
                        MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(in_memory.ok());
  auto expected = DrainStream(**in_memory);

  // External: pre-spill half the records as two sorted runs.
  ShuffleBuffer buffer(1, 64, nullptr, &temp, &counters);
  for (const Record& record : build_records()) {
    ASSERT_TRUE(buffer.Add(0, record.key, record.value).ok());
  }
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
  ReduceInput external_input;
  external_input.memory_records = buffer.TakeMemoryRecords(0);
  for (const Record& record : external_input.memory_records) {
    external_input.total_bytes += RecordBytes(record.key, record.value);
    ++external_input.total_records;
  }
  for (RunInfo& run : buffer.TakeSpillRuns(0)) {
    external_input.total_bytes += run.payload_bytes;
    external_input.total_records += run.records;
    external_input.spill_runs.push_back(std::move(run));
  }
  auto merged =
      MakeGroupedStream(std::move(external_input), /*budget=*/256,
                        MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(merged.ok());
  auto actual = DrainStream(**merged);

  ASSERT_EQ(actual.size(), expected.size());
  for (auto& [key, values] : expected) {
    auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << key;
    // Multisets of values must match (merge order may differ).
    std::multiset<std::string> a(values.begin(), values.end());
    std::multiset<std::string> b(it->second.begin(), it->second.end());
    EXPECT_EQ(a, b) << key;
  }
}

TEST(GroupedStreamTest, AbsorbsRunsWhenTheyFit) {
  TempFileManager temp("stream");
  ShuffleCounters counters;
  ShuffleBuffer buffer(1, 64, nullptr, &temp, &counters);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(buffer.Add(0, "k" + std::to_string(i % 5), "1").ok());
  }
  ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
  ReduceInput input;
  input.memory_records = buffer.TakeMemoryRecords(0);
  for (RunInfo& run : buffer.TakeSpillRuns(0)) {
    input.spill_runs.push_back(std::move(run));
  }
  input.total_bytes = 0;  // definitely fits in a 1MB budget
  auto stream = MakeGroupedStream(std::move(input), 1 << 20,
                                  MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(stream.ok());
  auto groups = DrainStream(**stream);
  EXPECT_EQ(groups.size(), 5u);
  int64_t total = 0;
  for (auto& [key, values] : groups) {
    total += static_cast<int64_t>(values.size());
  }
  EXPECT_EQ(total, 40);
}

TEST(GroupedStreamTest, StrictPolicyRejectsOverBudget) {
  TempFileManager temp("stream");
  ShuffleCounters counters;
  auto stream = MakeGroupedStream(MakeInput({{"a", std::string(1000, 'x')}}),
                                  /*budget=*/16, MemoryPolicy::kStrict,
                                  &temp, &counters);
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsResourceExhausted());
}

TEST(GroupedStreamTest, EmptyInput) {
  TempFileManager temp("stream");
  ShuffleCounters counters;
  auto stream = MakeGroupedStream(MakeInput({}), 1 << 20,
                                  MemoryPolicy::kSpill, &temp, &counters);
  ASSERT_TRUE(stream.ok());
  std::string key;
  EXPECT_FALSE((*stream)->NextGroup(&key).value());
}

// ---- Checksums and attempt-private file lifetime ---------------------------

int64_t CountFilesIn(const std::string& dir) {
  int64_t count = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) ++count;
  }
  return count;
}

TEST(SpillChecksumTest, OnDiskCorruptionIsDetected) {
  TempFileManager temp("crc");
  const std::string path = temp.NextPath();
  SpillWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.Append("record one, long enough to land a flip").ok());
  ASSERT_TRUE(writer.Append("record two").ok());
  ASSERT_TRUE(writer.Close().ok());

  // Flip one payload byte on disk: [varint len][u32 crc] precede the
  // payload — 5 header bytes for a record shorter than 128.
  {
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(5 + 4);
    char byte = 0;
    file.seekg(5 + 4);
    file.get(byte);
    file.seekp(5 + 4);
    file.put(static_cast<char>(byte ^ 0x20));
  }

  SpillReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  std::string record;
  auto read = reader.Next(&record);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

TEST(ShuffleBufferTest, DestructorRemovesUntakenSpillRuns) {
  TempFileManager temp("cleanup");
  std::vector<RunInfo> taken;
  {
    ShuffleCounters counters;
    ShuffleBuffer buffer(2, /*memory_budget_bytes=*/64, nullptr, &temp,
                         &counters);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(buffer
                      .Add(i % 2, "key" + std::to_string(i),
                           "value" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE(buffer.FinalizeMapOutput().ok());
    // Take partition 0's runs (ownership moves to us); leave partition 1's
    // with the buffer, as happens when a map attempt fails mid-shuffle.
    taken = buffer.TakeSpillRuns(0);
    ASSERT_GT(taken.size(), 0u);
    // Partition 1's runs are still owned by the buffer: more files on disk
    // than we took.
    ASSERT_GT(CountFilesIn(temp.dir()), static_cast<int64_t>(taken.size()));
  }
  // Destructor ran: only the taken runs' files may remain.
  for (const RunInfo& run : taken) {
    EXPECT_TRUE(std::filesystem::exists(run.path)) << run.path;
    RemoveFileIfExists(run.path);
  }
  EXPECT_EQ(CountFilesIn(temp.dir()), 0);
}

TEST(ShuffleLifetimeTest, RetriedChaosJobLeavesNoTempFiles) {
  // A job whose map and reduce attempts fail, spill heavily, and corrupt
  // fetches in flight must still reclaim every attempt-private temp file by
  // the time it returns — failed attempts' spills eagerly, survivors via
  // stream destruction.
  Relation rel = GenUniform(3000, 2, 30, 83);
  EngineConfig config;
  config.num_workers = 4;
  config.memory_budget_bytes = 1 << 10;  // force spills everywhere
  config.network_bandwidth_bytes_per_sec = 0;
  config.min_task_attempts = 3;

  FaultConfig chaos;
  chaos.seed = 21;
  chaos.map_failure_rate = 1.0;
  chaos.reduce_failure_rate = 1.0;
  chaos.payload_corruption_rate = 0.5;
  chaos.forced_worker_crashes = 1;
  FaultPlan plan(chaos);
  config.fault_plan = &plan;

  DistributedFileSystem dfs;
  Engine engine(config, &dfs);
  JobSpec spec;
  spec.name = "cleanup-check";
  spec.mapper_factory = [] {
    class TokenMapper : public Mapper {
      Status Map(const RelationView& input, int64_t row,
                 MapContext& context) override {
        return context.Emit(std::to_string(input.dim(row, 0)), "1");
      }
    };
    return std::make_unique<TokenMapper>();
  };
  spec.reducer_factory = [] {
    class CountReducer : public Reducer {
      Status Reduce(const std::string& key, ValueStream& values,
                    ReduceContext& context) override {
        int64_t count = 0;
        std::string value;
        for (;;) {
          SPCUBE_ASSIGN_OR_RETURN(bool more, values.Next(&value));
          if (!more) break;
          count += std::stoll(value);
        }
        return context.Output(key, std::to_string(count));
      }
    };
    return std::make_unique<CountReducer>();
  };
  VectorOutputCollector collector;
  auto metrics = engine.Run(spec, rel, &collector);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_GT(metrics->task_retries, 0);
  EXPECT_GT(metrics->spill_bytes, 0);
  EXPECT_EQ(CountFilesIn(engine.temp_dir()), 0);
}

// ---------------------------------------------------------------------------
// Spill-record codec: the wire contract of run files.
// ---------------------------------------------------------------------------

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out(rng.NextBounded(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBounded(256));
  return out;
}

TEST(SpillCodecTest, DeltaCodecRoundTripsSortedRuns) {
  // Property: a SpillRecordDecoder fed a SpillRecordEncoder's payloads in
  // order reproduces every (key, value) exactly — including runs of equal
  // keys (shared prefix = whole key, empty suffix) and arbitrary binary
  // values (docs/INTERNALS.md §13).
  Rng rng(191);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::pair<std::string, std::string>> records;
    for (int i = 0; i < 40; ++i) {
      std::string key = RandomBytes(rng, 48);
      // Duplicate the previous key every third record: sorted runs of a
      // skewed workload are mostly repeated keys.
      if (!records.empty() && i % 3 == 0) key = records.back().first;
      records.emplace_back(std::move(key), RandomBytes(rng, 160));
    }
    std::sort(records.begin(), records.end());

    SpillRecordEncoder encoder;
    std::vector<std::string> payloads;
    ByteWriter out;
    for (const auto& [key, value] : records) {
      out.Clear();
      encoder.Append(key, value, &out);
      payloads.emplace_back(out.data());
    }

    SpillRecordDecoder decoder;
    for (size_t i = 0; i < payloads.size(); ++i) {
      std::string_view key;
      std::string_view value;
      ASSERT_TRUE(decoder.Parse(payloads[i], &key, &value).ok());
      EXPECT_EQ(key, records[i].first);
      EXPECT_EQ(value, records[i].second);
    }
  }
}

TEST(SpillCodecTest, DeltaNeverExceedsLegacyFileBytes) {
  // The uncompressed-twin invariant: frame (varint length + u32 crc) plus
  // delta payload never exceeds LegacySpillRecordFileBytes — the 12-byte
  // fixed frame plus PutBytes(key)+PutBytes(value) the seed wrote — for any
  // record sequence, sorted or not.
  Rng rng(193);
  for (int trial = 0; trial < 50; ++trial) {
    SpillRecordEncoder encoder;
    ByteWriter out;
    std::string prev;
    for (int i = 0; i < 20; ++i) {
      const std::string key = RandomBytes(rng, 64);
      const std::string value = RandomBytes(rng, 64);
      out.Clear();
      encoder.Append(key, value, &out);
      // Frame: <= 2 varint bytes for any payload this size, + 4 crc bytes.
      const int64_t framed =
          static_cast<int64_t>((out.size() < 128 ? 1 : 2) + 4 + out.size());
      EXPECT_LE(framed, LegacySpillRecordFileBytes(key.size(), value.size()))
          << "key_len=" << key.size() << " value_len=" << value.size();
      prev = key;
    }
  }
}

TEST(SpillCodecTest, EqualKeysEncodeToEmptySuffix) {
  // The payoff case: a repeated key costs 2 varint bytes (shared=len,
  // suffix=0) regardless of key length.
  const std::string key(40, 'k');
  SpillRecordEncoder encoder;
  ByteWriter first;
  encoder.Append(key, "v", &first);
  ByteWriter second;
  encoder.Append(key, "v", &second);
  EXPECT_GT(first.size(), key.size());  // first record carries the full key
  EXPECT_EQ(second.size(), 2 + 1 + 1);  // shared, suffix_len=0, value_len, v

  SpillRecordDecoder decoder;
  std::string_view k;
  std::string_view v;
  ASSERT_TRUE(decoder.Parse(first.data(), &k, &v).ok());
  EXPECT_EQ(k, key);
  ASSERT_TRUE(decoder.Parse(second.data(), &k, &v).ok());
  EXPECT_EQ(k, key);
  EXPECT_EQ(v, "v");
}

TEST(SpillCodecTest, ResetRestartsTheDeltaChain) {
  // Run boundaries: after Reset, the next record must carry its whole key
  // (a fresh decoder has no prior-key state to resolve a shared prefix
  // against).
  SpillRecordEncoder encoder;
  ByteWriter first;
  encoder.Append("shared_prefix_key", "1", &first);
  encoder.Reset();
  ByteWriter second;
  encoder.Append("shared_prefix_key", "2", &second);
  // Identical framing and full key both times; only the value byte differs.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first.data().substr(0, first.size() - 1),
            second.data().substr(0, second.size() - 1));

  SpillRecordDecoder decoder;  // fresh, as a new run's reader would be
  std::string_view k;
  std::string_view v;
  ASSERT_TRUE(decoder.Parse(second.data(), &k, &v).ok());
  EXPECT_EQ(k, "shared_prefix_key");
  EXPECT_EQ(v, "2");
}

TEST(SpillCodecTest, BlockCodecRoundTripsAndSelfContains) {
  // Property: SpillBlockEncoder's blocks, decoded in order, reproduce every
  // record; and each block decodes with a *fresh* decoder too — blocks are
  // self-contained (the delta chain resets per block), which is what lets a
  // re-fetched block re-parse without cross-block state (§13).
  Rng rng(197);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::string, std::string>> records;
    const int n = 1 + static_cast<int>(rng.NextBounded(3 * kSpillBlockRecords));
    for (int i = 0; i < n; ++i) {
      std::string key = RandomBytes(rng, 32);
      if (!records.empty() && i % 2 == 0) key = records.back().first;
      records.emplace_back(std::move(key), RandomBytes(rng, 64));
    }
    std::sort(records.begin(), records.end());

    SpillBlockEncoder encoder;
    std::vector<std::string> blocks;
    for (const auto& [key, value] : records) {
      encoder.Add(key, value);
      if (encoder.BlockFull()) {
        blocks.emplace_back(encoder.block());
        encoder.NextBlock();
      }
    }
    if (!encoder.BlockEmpty()) {
      blocks.emplace_back(encoder.block());
      encoder.NextBlock();
    }
    EXPECT_EQ(blocks.size(),
              (records.size() + kSpillBlockRecords - 1) / kSpillBlockRecords);

    // Sequential decode with one decoder, and per-block decode with a fresh
    // decoder, must both reproduce the stream exactly.
    for (const bool fresh_decoder_per_block : {false, true}) {
      SpillBlockDecoder decoder;
      size_t i = 0;
      for (const std::string& block : blocks) {
        if (fresh_decoder_per_block) decoder = SpillBlockDecoder();
        decoder.SetBlock(block);
        for (;;) {
          std::string_view key;
          std::string_view value;
          auto record = decoder.Next(&key, &value);
          ASSERT_TRUE(record.ok());
          if (!record.value()) break;
          ASSERT_LT(i, records.size());
          EXPECT_EQ(key, records[i].first);
          EXPECT_EQ(value, records[i].second);
          ++i;
        }
      }
      EXPECT_EQ(i, records.size());
    }
  }
}

TEST(SpillCodecTest, RejectsTruncationAndBogusSharedPrefix) {
  SpillRecordEncoder encoder;
  ByteWriter out;
  encoder.Append("some_key", "some_value", &out);
  const std::string raw(out.data());

  for (size_t len = 0; len < raw.size(); ++len) {
    SpillRecordDecoder decoder;
    std::string_view key;
    std::string_view value;
    EXPECT_FALSE(decoder.Parse(raw.substr(0, len), &key, &value).ok())
        << "prefix of length " << len << " parsed as a whole record";
  }
  {
    // Trailing garbage is corruption, not silently ignored.
    SpillRecordDecoder decoder;
    std::string padded(raw);
    padded.push_back('\0');
    std::string_view key;
    std::string_view value;
    EXPECT_FALSE(decoder.Parse(padded, &key, &value).ok());
  }
  {
    // A shared-prefix length exceeding the decoder's current key state is
    // corruption: a fresh decoder has no bytes to share.
    ByteWriter bogus;
    bogus.PutVarint(5);   // shared prefix of 5 against an empty prior key
    bogus.PutVarint(0);   // no suffix
    bogus.PutBytes("v");
    SpillRecordDecoder decoder;
    std::string_view key;
    std::string_view value;
    EXPECT_FALSE(decoder.Parse(bogus.data(), &key, &value).ok());
  }
}

// ---------------------------------------------------------------------------
// Spill-forcing equivalence grid: the reduce input must be independent of
// whether records travelled via the in-memory arena, combined survivors, or
// checksummed spill runs — with and without in-flight corruption.
// ---------------------------------------------------------------------------

/// Runs `records` through a ShuffleBuffer + MakeGroupedStream round trip and
/// returns the reduce-side groups, summing each group's values so the result
/// is invariant under map-side combining.
std::map<std::string, int64_t> RoundTrip(
    const std::vector<Record>& records, bool use_combiner,
    int64_t map_budget_bytes, IoFaultInjector* injector,
    ShuffleCounters* counters) {
  TempFileManager temp("shuffle_equiv");
  SumCombiner combiner;
  ShuffleBuffer buffer(1, map_budget_bytes,
                       use_combiner ? &combiner : nullptr, &temp, counters);
  buffer.SetSpillResourcePrefix("equiv/m0/a0");
  for (const Record& record : records) {
    EXPECT_TRUE(buffer.Add(0, record.key, record.value).ok());
  }
  EXPECT_TRUE(buffer.FinalizeMapOutput().ok());

  ReduceInput input;
  ShuffleSegment segment = buffer.TakeMemorySegment(0);
  input.total_bytes += segment.payload_bytes();
  input.total_records += segment.num_records();
  if (!segment.empty()) input.memory_segments.push_back(std::move(segment));
  for (RunInfo& run : buffer.TakeSpillRuns(0)) {
    input.total_bytes += run.payload_bytes;
    input.total_records += run.records;
    input.spill_runs.push_back(std::move(run));
  }
  std::vector<std::string> run_paths;
  for (const RunInfo& run : input.spill_runs) run_paths.push_back(run.path);

  auto stream =
      MakeGroupedStream(std::move(input), int64_t{1} << 30,
                        MemoryPolicy::kSpill, &temp, counters, injector,
                        "equiv/r0");
  EXPECT_TRUE(stream.ok()) << stream.status();
  std::map<std::string, int64_t> sums;
  if (stream.ok()) {
    for (auto& [key, values] : DrainStream(**stream)) {
      int64_t total = 0;
      for (const std::string& value : values) total += std::stoll(value);
      sums[key] = total;
    }
  }
  for (const std::string& path : run_paths) {
    std::filesystem::remove(path);  // runs taken out of the buffer are ours
  }
  return sums;
}

TEST(ShuffleEquivalenceTest, SpillsCombinerAndCorruptionPreserveReduceInput) {
  // Seeded skewed key distribution so some keys combine heavily and others
  // are singletons.
  Rng rng(404);
  std::vector<Record> records;
  std::map<std::string, int64_t> expected;
  for (int i = 0; i < 400; ++i) {
    const int64_t hot = rng.NextBounded(3);
    const std::string key =
        rng.NextBernoulli(0.5)
            ? "hot_key_" + std::to_string(hot)
            : "cold_key_" + std::to_string(rng.NextBounded(1000));
    const std::string value = std::to_string(rng.NextInRange(-50, 50));
    expected[key] += std::stoll(value);
    records.push_back(Record{key, value});
  }

  for (const bool use_combiner : {false, true}) {
    for (const bool tiny_budget : {false, true}) {
      for (const double corruption_rate : {0.0, 0.5}) {
        SCOPED_TRACE("combiner=" + std::to_string(use_combiner) +
                     " tiny=" + std::to_string(tiny_budget) +
                     " corruption=" + std::to_string(corruption_rate));
        FaultConfig config;
        config.seed = 77;
        config.payload_corruption_rate = corruption_rate;
        FaultPlan plan(config);
        ShuffleCounters counters;
        const int64_t budget = tiny_budget ? 256 : (int64_t{1} << 30);
        const auto sums =
            RoundTrip(records, use_combiner, budget,
                      corruption_rate > 0 ? &plan : nullptr, &counters);
        EXPECT_EQ(sums, expected);
        if (tiny_budget) {
          EXPECT_GT(counters.spill_bytes, 0) << "budget did not force spills";
        } else {
          EXPECT_EQ(counters.spill_bytes, 0);
        }
        if (corruption_rate > 0 && tiny_budget) {
          // Spilled fetches were corrupted in flight; the checksummed reader
          // must have detected and re-fetched every one of them.
          EXPECT_GT(counters.checksum_mismatches, 0);
          EXPECT_GT(plan.injected_corruptions(), 0);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TakeMemorySegment / TakeMemoryRecords equivalence.
// ---------------------------------------------------------------------------

TEST(ShuffleBufferTest, SegmentAndRecordAccessorsAgree) {
  Rng rng(88);
  std::vector<Record> records;
  for (int i = 0; i < 120; ++i) {
    records.push_back(Record{"key_" + std::to_string(rng.NextBounded(20)),
                             std::to_string(rng.NextBounded(100))});
  }
  for (const bool use_combiner : {false, true}) {
    SCOPED_TRACE("combiner=" + std::to_string(use_combiner));
    TempFileManager temp("shuffle_seg");
    SumCombiner combiner;
    ShuffleCounters seg_counters;
    ShuffleCounters rec_counters;
    ShuffleBuffer seg_buffer(2, int64_t{1} << 30,
                             use_combiner ? &combiner : nullptr, &temp,
                             &seg_counters);
    ShuffleBuffer rec_buffer(2, int64_t{1} << 30,
                             use_combiner ? &combiner : nullptr, &temp,
                             &rec_counters);
    for (const Record& record : records) {
      const int partition = static_cast<int>(record.key.size() % 2);
      ASSERT_TRUE(seg_buffer.Add(partition, record.key, record.value).ok());
      ASSERT_TRUE(rec_buffer.Add(partition, record.key, record.value).ok());
    }
    ASSERT_TRUE(seg_buffer.FinalizeMapOutput().ok());
    ASSERT_TRUE(rec_buffer.FinalizeMapOutput().ok());

    for (int p = 0; p < 2; ++p) {
      ShuffleSegment segment = seg_buffer.TakeMemorySegment(p);
      const std::vector<Record> taken = rec_buffer.TakeMemoryRecords(p);
      ASSERT_EQ(segment.num_records(),
                static_cast<int64_t>(taken.size()));
      int64_t payload = 0;
      for (size_t i = 0; i < taken.size(); ++i) {
        EXPECT_EQ(segment.refs()[i].key(), taken[i].key);
        EXPECT_EQ(segment.refs()[i].value(), taken[i].value);
        payload += RecordBytes(taken[i].key, taken[i].value);
      }
      EXPECT_EQ(segment.payload_bytes(), payload);
      // A second take yields nothing: each call empties the partition.
      EXPECT_TRUE(seg_buffer.TakeMemorySegment(p).empty());
      EXPECT_TRUE(rec_buffer.TakeMemoryRecords(p).empty());
    }
  }
}

}  // namespace
}  // namespace spcube
