// Golden fixture: emitting a view of a buffer that was mutated after the
// view was bound — the emit reads reused bytes.
#include <string>
#include <string_view>

namespace fixture {

class ByteWriter {
 public:
  void Clear();
  void PutVarint(unsigned long v);
  std::string_view data() const;
};

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
  void EmitToPartition(int partition, std::string_view key,
                       std::string_view value);
};

void EmitAfterClear(MapContext& context, ByteWriter& writer) {
  writer.PutVarint(7);
  std::string_view key = writer.data();
  writer.Clear();  // invalidates `key`'s bytes
  writer.PutVarint(8);
  context.Emit(key, "1");  // emit-borrow: key views the cleared buffer
}

void EmitAfterAppend(MapContext& context, std::string& buffer) {
  buffer.assign("group");
  std::string_view key = buffer.data();
  buffer.append("|suffix");  // may reallocate out from under `key`
  context.EmitToPartition(0, key, "1");  // emit-borrow
}

}  // namespace fixture
