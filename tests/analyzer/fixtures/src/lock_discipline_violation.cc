// Golden fixture: SPCUBE_GUARDED_BY fields touched without their mutex.
// The macros are defined away so the libclang backend parses this file
// without the repo's include paths; both backends re-read the annotations
// textually from the declaration lines, so the spellings below are what
// matters. Expected findings are pinned by spcube_analyzer_test.py.
#define SPCUBE_GUARDED_BY(x)
#define SPCUBE_REQUIRES(x)
#define SPCUBE_NO_THREAD_SAFETY_ANALYSIS

namespace fixture {

class Mutex {
 public:
  void Lock() {}
  void Unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

class Accumulator {
 public:
  void Add(long delta) {
    total_ += delta;  // lock-discipline: no mu_ acquisition in scope
  }

  long PeekUnsynchronized() const {
    return total_;  // lock-discipline: unlocked read, no annotation
  }

  long Drain() {
    MutexLock lock(&mu_);
    const long out = total_;
    total_ = 0;
    return out;
  }

  long DrainLocked() SPCUBE_REQUIRES(mu_) {
    const long out = total_;
    total_ = 0;
    return out;
  }

  long PeekAfterJoin() const SPCUBE_NO_THREAD_SAFETY_ANALYSIS {
    return total_;  // sanctioned: annotated read-after-join accessor
  }

 private:
  Mutex mu_;
  long total_ SPCUBE_GUARDED_BY(mu_);
};

}  // namespace fixture
