// Golden fixture: the three view-escape shapes. Self-contained stubs so the
// libclang backend can parse it without the repo's include paths; the
// internal backend only needs the spellings. Expected findings are pinned
// by tests/analyzer/spcube_analyzer_test.py.
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace fixture {

// (a) A borrowed view stored as a data member of a long-lived object.
class CachedHeader {
 public:
  explicit CachedHeader(std::string_view header) : header_(header) {}

 private:
  std::string_view header_;  // view-escape: outlives the caller's buffer
};

// (b) Returning a view rooted at a function-local owner.
std::string_view RenderGroupKey(int cuboid) {
  std::string key = "cuboid|" + std::to_string(cuboid);
  return std::string_view(key);  // view-escape: key dies at return
}

// (c) A by-reference capture stored into a deferred callback slot.
struct Job {
  std::function<std::unique_ptr<int>()> mapper_factory;
};

void Configure(Job* job, const std::string& name) {
  int arity = static_cast<int>(name.size());
  job->mapper_factory = [&]() {  // view-escape: deferred [&] capture
    return std::make_unique<int>(arity);
  };
}

}  // namespace fixture
