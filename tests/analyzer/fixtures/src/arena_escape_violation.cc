// Golden fixture: pointers derived from an Arena used after its Reset().
#include <cstring>
#include <string_view>

namespace fixture {

// Minimal stand-in with the real Arena's derive/Reset surface.
class Arena {
 public:
  const char* Append(std::string_view bytes);
  const char* AppendPair(std::string_view a, std::string_view b);
  void Reset();
};

unsigned long StaleRead(Arena& arena) {
  const char* key = arena.Append("cube|group|17");
  arena.Reset();
  return std::strlen(key);  // arena-escape: key died at Reset()
}

std::string_view StalePair(Arena& arena) {
  const char* pair = arena.AppendPair("k", "v");
  const char* fresh = arena.Append("other");
  arena.Reset();
  (void)fresh;  // arena-escape: fresh died at Reset() too
  return std::string_view(pair, 2);  // arena-escape: and so did pair
}

}  // namespace fixture
