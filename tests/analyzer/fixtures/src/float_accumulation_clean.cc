// Golden fixture (clean): the sanctioned FP-reduction shapes. Index-order
// accumulation over a vector is canonical, and the staged per-partition
// pattern (each worker writes its own slot, the merge runs after the
// join, in index order) keeps modeled seconds schedule-independent.
#include <thread>
#include <vector>

namespace fixture {

struct Metrics {
  double shuffle_seconds = 0.0;
};

// Index order: the vector's order is the canonical one.
double SumInIndexOrder(const std::vector<double>& per_round) {
  double total = 0.0;
  for (double cost : per_round) {
    total += cost;
  }
  return total;
}

// Staged per-partition slots, merged after the join.
void StagedAccumulate(Metrics* metrics, int workers) {
  std::vector<double> slot(static_cast<unsigned>(workers), 0.0);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([w, out = &slot[static_cast<unsigned>(w)]]() {
      *out = 0.125 * w;  // disjoint per-worker slot, plain store
    });
  }
  for (auto& t : threads) t.join();
  for (double s : slot) {
    metrics->shuffle_seconds += s;  // after the join, index order
  }
}

}  // namespace fixture
