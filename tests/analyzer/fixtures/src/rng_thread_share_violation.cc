// Golden fixture: one seeded Rng reachable from worker lambdas. Shared
// draws depend on thread interleaving, so same-seed runs stop being
// reproducible — the determinism contract (CLAUDE.md) silently breaks.
// Self-contained Rng stub; expected findings pinned by
// spcube_analyzer_test.py.
#include <thread>
#include <vector>

namespace fixture {

class Rng {
 public:
  explicit Rng(unsigned long long seed) : state_(seed) {}
  unsigned long long Next() { return state_ *= 6364136223846793005ULL; }

 private:
  unsigned long long state_;
};

// (a) One stream handed to every worker through an init-capture: the
// capture list itself references the outside Rng.
void SampleInWorkers(int workers) {
  Rng rng(42);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([w, &gen = rng]() {  // rng-thread-share
      (void)w;
      (void)gen.Next();
    });
  }
  for (auto& t : threads) t.join();
}

// (b) Blanket capture smuggles the outside Rng into the worker body: the
// draw inside the lambda is the shared use (and the [&] itself is a
// thread-capture-escape).
void DrawInsideWorker(unsigned long long* out) {
  Rng shared(7);
  std::thread worker([&]() {
    *out = shared.Next();  // rng-thread-share: declared outside the lambda
  });
  worker.join();
}

}  // namespace fixture
