// Golden fixture (clean): hashing that never escapes the process. A
// std::hash value used only for transient in-memory routing is fine, and
// anything persisted should flow through the repo's seeded, stable
// HashBytes/Mix64 (common/hash.h) — stubbed here.
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace fixture {

class ByteWriter {
 public:
  void PutU64(unsigned long long v);
};

// Seeded, stable repo hash (common/hash.h stand-in).
unsigned long long HashBytes(std::string_view bytes, unsigned long long seed);

// Transient routing: the hash value picks an in-memory bucket and dies
// there; no wire bytes or metrics observe it.
int RouteToShard(const std::string& key, int num_shards) {
  unsigned long long digest = std::hash<std::string>{}(key);
  return static_cast<int>(digest % static_cast<unsigned>(num_shards));
}

// Persisted digests use the stable hash, which is deterministic across
// processes and standard libraries.
void WriteStableDigest(const std::string& key, ByteWriter& writer) {
  writer.PutU64(HashBytes(key, 0x5eed5eedULL));
}

}  // namespace fixture
