// Golden fixture: an allow pragma with no reason suppresses the finding
// but is itself reported, mirroring spcube_lint's pragma contract.
#include <string_view>

namespace fixture {

class Header {
 private:
  // spcube-analyzer: allow(view-escape)
  std::string_view name_;
};

}  // namespace fixture
