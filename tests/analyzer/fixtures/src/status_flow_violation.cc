// Golden fixture: Result<T> unwrapped before any ok() check — an error
// value here aborts the process at the unwrap.
#include <string>

namespace fixture {

template <typename T>
class Result {
 public:
  bool ok() const;
  T& value();
  T* operator->();
  T& operator*();
};

Result<std::string> ReadShard(int shard);

unsigned long UnwrapWithoutCheck(int shard) {
  Result<std::string> blob = ReadShard(shard);
  return blob.value().size();  // status-flow: no ok() check dominates this
}

unsigned long DerefWithoutCheck(int shard) {
  Result<std::string> blob = ReadShard(shard);
  return blob->size();  // status-flow: unchecked operator->
}

}  // namespace fixture
