// Golden fixture: the unordered container arrives as a parameter — its
// type is only visible in the signature, and the loop body still hands
// records to the collector in hash-table order.
#include <string>
#include <string_view>
#include <unordered_map>

namespace fixture {

class OutputCollector {
 public:
  void Collect(std::string_view key, std::string_view value);
};

void DrainToCollector(const std::unordered_map<std::string, long>& groups,
                      OutputCollector& collector) {
  for (const auto& entry : groups) {  // unordered-iteration-escape
    collector.Collect(entry.first, "1");
  }
}

}  // namespace fixture
