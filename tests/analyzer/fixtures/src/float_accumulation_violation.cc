// Golden fixture: floating-point += reductions whose order is decided by
// a hash table or by thread completion. FP addition is not associative,
// so the resulting double (and any modeled metric built from it) differs
// between same-seed runs.
#include <string>
#include <thread>
#include <unordered_map>

namespace fixture {

struct Metrics {
  double shuffle_seconds = 0.0;
};

// (a) FP total accumulated in hash-table iteration order.
double SumCosts(const std::unordered_map<std::string, double>& costs) {
  double total = 0.0;
  for (const auto& entry : costs) {
    total += entry.second;  // float-accumulation-order
  }
  return total;
}

// (b) A worker accumulates straight into the modeled metric: the final
// double depends on completion order against other writers.
void AccumulateInWorker(Metrics* metrics) {
  std::thread worker([m = metrics]() {
    m->shuffle_seconds += 0.125;  // float-accumulation-order
  });
  worker.join();
}

}  // namespace fixture
