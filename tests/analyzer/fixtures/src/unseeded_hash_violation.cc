// Golden fixture: std::hash values escaping into the model. std::hash is
// unseeded and implementation-defined, so bytes or metrics built from it
// differ across standard libraries and (for strings, on some platforms)
// across processes.
#include <functional>
#include <string>
#include <string_view>

namespace fixture {

class ByteWriter {
 public:
  void PutU64(unsigned long long v);
};

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
};

// (a) Hash persisted straight into a wire encoding.
void WriteKeyDigest(const std::string& key, ByteWriter& writer) {
  writer.PutU64(std::hash<std::string>{}(key));  // unseeded-hash-in-model
}

// (b) Hash flows through a local (and one mixing hop) into an emitted
// record's partition key.
void EmitByHash(const std::string& key, MapContext& context) {
  unsigned long long digest = std::hash<std::string>{}(key);
  unsigned long long mixed = digest ^ 0x9e3779b97f4a7c15ULL;
  context.Emit(std::to_string(mixed), "1");  // unseeded-hash-in-model
}

}  // namespace fixture
