// Golden fixture: range-fors over unordered containers whose bodies reach
// model sinks — the emitted records, wire bytes, and surviving metric
// value then follow hash-table iteration order instead of key order.
// Self-contained stubs; expected findings pinned by
// spcube_analyzer_test.py.
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class ByteWriter {
 public:
  void PutVarint(unsigned long v);
  void PutBytes(std::string_view bytes);
};

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
};

struct Metrics {
  double shuffle_seconds = 0.0;
};

class Tally {
 public:
  // (a) Emitted records in hash-table order.
  void FlushAll(MapContext& context) {
    for (const auto& entry : counts_) {  // unordered-iteration-escape
      context.Emit(entry.first, "1");
    }
  }

  // (b) Wire bytes in hash-table order; a brace-less body keeps the sink
  // in the loop-head statement and must still be seen.
  void SerializeTo(ByteWriter& writer) const {
    for (const auto& e : counts_) writer.PutBytes(e.first);  // escape
  }

 private:
  std::unordered_map<std::string, long> counts_;
};

// (c) Last-write-wins into a modeled metric: the surviving value is
// whichever element the hash table happens to iterate last.
void RecordLast(const std::unordered_set<std::string>& keys,
                Metrics* metrics) {
  for (const std::string& key : keys) {  // unordered-iteration-escape
    metrics->shuffle_seconds = static_cast<double>(key.size());
  }
}

}  // namespace fixture
