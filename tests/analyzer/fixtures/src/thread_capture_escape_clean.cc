// Golden fixture: the sanctioned spawn shapes — explicit init-captures name
// everything crossing the thread boundary, and `[&]` into a non-thread
// container (a same-scope callable) is not a spawn. Must produce zero
// findings under every backend.
#include <functional>
#include <thread>
#include <vector>

namespace fixture {

void RunWorkers(int workers) {
  std::vector<int> results(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    // Each capture is named: w by value, the results slot disjoint per w.
    threads.emplace_back([w, &out = results]() {
      out[static_cast<size_t>(w)] = w;
    });
  }
  for (auto& t : threads) t.join();
}

// `[&]` into a vector of closures invoked before scope exit: same-thread,
// same-scope — the capture-escape rule must not fire on non-thread
// containers.
int SameScopeClosures(int n) {
  int acc = 0;
  std::vector<std::function<void()>> steps;
  for (int i = 0; i < n; ++i) {
    steps.push_back([&]() { acc += 1; });
  }
  for (const auto& step : steps) step();
  return acc;
}

}  // namespace fixture
