// Golden fixture: blanket by-reference captures crossing a thread spawn.
// Self-contained stubs so the libclang backend can parse it without the
// repo's include paths; the internal backend only needs the spellings.
// Expected findings are pinned by tests/analyzer/spcube_analyzer_test.py.
#include <thread>
#include <vector>

namespace fixture {

// (a) Worker lambda enqueued onto a declared thread container with `[&]`.
void RunWorkers(int workers) {
  std::vector<int> results(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&]() {  // thread-capture-escape: blanket [&]
      results[static_cast<size_t>(w)] = w;
    });
  }
  for (auto& t : threads) t.join();
}

// (b) Direct std::thread construction with `[&, ...]` default capture.
void DetachedSum(const std::vector<int>& values, long* out) {
  std::thread worker([&, out]() {  // thread-capture-escape: [&, out]
    long sum = 0;
    for (int v : values) sum += v;
    *out = sum;
  });
  worker.join();
}

}  // namespace fixture
