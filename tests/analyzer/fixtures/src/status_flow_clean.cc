// Golden fixture: Result<T> flows the analyzer must NOT flag — every
// unwrap is dominated by an ok() (or status()) check.
#include <string>

namespace fixture {

template <typename T>
class Result {
 public:
  bool ok() const;
  T& value();
  T* operator->();
  T& operator*();
};

Result<std::string> ReadShard(int shard);

unsigned long CheckedUnwrap(int shard) {
  Result<std::string> blob = ReadShard(shard);
  if (!blob.ok()) return 0;
  return blob.value().size();
}

unsigned long CheckedDeref(int shard) {
  Result<std::string> blob = ReadShard(shard);
  if (blob.ok()) {
    return blob->size();
  }
  return 0;
}

}  // namespace fixture
