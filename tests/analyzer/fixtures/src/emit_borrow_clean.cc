// Golden fixture: the sanctioned encode-then-emit shapes the analyzer must
// NOT flag — mutate first and bind the view afterwards, take the view
// inline at the call site, or re-bind after the mutation.
#include <string>
#include <string_view>

namespace fixture {

class ByteWriter {
 public:
  void Clear();
  void PutVarint(unsigned long v);
  std::string_view data() const;
};

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
};

// The repo's standard mapper shape: clear, encode, then view and emit.
void ClearEncodeEmit(MapContext& context, ByteWriter& writer) {
  writer.Clear();
  writer.PutVarint(7);
  std::string_view key = writer.data();
  context.Emit(key, "1");
}

// Inline views are taken at the call, after every mutation.
void InlineEmit(MapContext& context, ByteWriter& writer) {
  writer.Clear();
  writer.PutVarint(7);
  context.Emit(writer.data(), "1");
}

// Re-binding after the mutation refreshes the borrow.
void RebindAfterMutate(MapContext& context, ByteWriter& writer) {
  std::string_view key = writer.data();
  writer.Clear();
  writer.PutVarint(9);
  key = writer.data();
  context.Emit(key, "1");
}

}  // namespace fixture
