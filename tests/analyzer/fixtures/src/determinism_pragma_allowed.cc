// Golden fixture (clean): a documented, reviewed opt-out of the §14
// family. The pragma carries a reason, so neither the determinism rule
// nor allow-without-reason fires.
#include <string>
#include <string_view>
#include <unordered_map>

namespace fixture {

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
};

class Probe {
 public:
  void DumpUnordered(MapContext& context) {
    // spcube-analyzer: allow(unordered-iteration-escape): debug-only dump
    for (const auto& entry : table_) {
      context.Emit(entry.first, "1");
    }
  }

 private:
  std::unordered_map<std::string, long> table_;
};

}  // namespace fixture
