// Golden fixture (clean): the value-keyed shapes that replace pointer
// order. Keying containers by the pointee's stable id and comparing
// pointees (not pointers) in sort comparators are both reproducible.
#include <algorithm>
#include <map>
#include <vector>

namespace fixture {

struct Task {
  int id;
};

class Scheduler {
 public:
  void Track(Task* task) { by_id_[task->id] = task; }

 private:
  std::map<int, Task*> by_id_;  // pointer as mapped value: fine
};

void OrderById(std::vector<Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end(), [](const Task* a, const Task* b) {
    return a->id < b->id;  // compares the pointees' stable keys
  });
}

}  // namespace fixture
