// Golden fixture: orders derived from raw pointer values. Addresses
// differ run to run (ASLR, arena placement), so pointer-keyed containers,
// pointer hash/less functors, and sort-by-address comparators all make
// iteration order irreproducible.
#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Task {
  int id;
};

class Scheduler {
 public:
  void Track(Task* task) { by_addr_.insert(task); }

 private:
  std::set<Task*> by_addr_;  // pointer-order-dependence
};

unsigned long CountDistinct(const std::vector<Task*>& tasks) {
  std::map<Task*, int> seen;  // pointer-order-dependence
  for (Task* task : tasks) seen[task] = 1;
  return seen.size();
}

unsigned long HashOfPointer(Task* task) {
  return std::hash<Task*>{}(task);  // pointer-order-dependence
}

void OrderByAddress(std::vector<Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end(), [](const Task* a, const Task* b) {
    return a < b;  // pointer-order-dependence
  });
}

}  // namespace fixture
