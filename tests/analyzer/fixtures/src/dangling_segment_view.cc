// Seeded dangling-view bug (acceptance fixture): a group key is borrowed
// from a shuffle partition's arena, the arena is reset by the take/compact
// cycle, and the stale borrow is then returned to the caller. The static
// analyzer reports both escapes below; the SPCUBE_LIFETIME_CHECKS build
// catches the same sequence dynamically — tests/lifetime_test.cc's
// PoisonCatchesTheSeededDanglingViewFixture replays it against the real
// Arena and observes 0xCD poison where the key bytes used to be.
#include <string_view>

namespace fixture {

class Arena {
 public:
  const char* Append(std::string_view bytes);
  void Reset();
};

std::string_view TakeThenReadGroupKey(Arena& arena) {
  const char* key = arena.Append("cube|group|42");
  arena.Reset();  // the take/compact cycle rewinds the partition arena
  return std::string_view(key, 13);  // arena-escape: stale borrow escapes
}

}  // namespace fixture
