// Golden fixture: every guarded-field access holds the declared mutex —
// in-line methods, out-of-line method definitions (the header-annotation /
// .cc-definition split), SPCUBE_REQUIRES preludes, and constructors (which
// run before any sharing). Must produce zero findings under every backend.
#define SPCUBE_GUARDED_BY(x)
#define SPCUBE_REQUIRES(x)
#define SPCUBE_NO_THREAD_SAFETY_ANALYSIS

namespace fixture {

class Mutex {
 public:
  void Lock() {}
  void Unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

class Tally {
 public:
  explicit Tally(long start) : value_(start) {}

  void Bump(long delta);
  long Total();

  long TotalLocked() SPCUBE_REQUIRES(mu_) { return value_; }

  long TotalAfterJoin() const SPCUBE_NO_THREAD_SAFETY_ANALYSIS {
    return value_;
  }

 private:
  Mutex mu_;
  long value_ SPCUBE_GUARDED_BY(mu_);
};

void Tally::Bump(long delta) {
  MutexLock lock(&mu_);
  value_ += delta;
}

long Tally::Total() {
  MutexLock lock(&mu_);
  return value_;
}

}  // namespace fixture
