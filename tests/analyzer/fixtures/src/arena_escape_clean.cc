// Golden fixture: arena usage the analyzer must NOT flag — uses before the
// Reset, re-derivation after it, the combine pass's swap-then-Reset
// rotation, and Reset followed only by fresh appends.
#include <cstring>
#include <string_view>
#include <utility>

namespace fixture {

class Arena {
 public:
  const char* Append(std::string_view bytes);
  const char* AppendPair(std::string_view a, std::string_view b);
  void Reset();
};

unsigned long UseBeforeReset(Arena& arena) {
  const char* key = arena.Append("cube|group|17");
  unsigned long n = std::strlen(key);  // fine: arena still live
  arena.Reset();
  return n;
}

unsigned long RederiveAfterReset(Arena& arena) {
  const char* key = arena.Append("first");
  (void)key;
  arena.Reset();
  key = arena.Append("second");  // rebinding revives the variable
  return std::strlen(key);
}

// The shuffle combine rotation: survivors are copied into the spare arena,
// the arenas swap, and only the (now-spare) source is Reset. Addresses
// derived from the spare side before the swap stay valid.
const char* CombineRotation(Arena& arena, Arena& spare) {
  const char* survivor = spare.Append("survivor");
  std::swap(arena, spare);
  spare.Reset();
  return survivor;  // fine: survivor's chunks now live in `arena`
}

}  // namespace fixture
