// Golden fixture: view handling the analyzer must NOT flag — views as
// parameters and locals, a documented co-owning member, a value-capture
// factory, and returning a container of views by value.
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fixture {

// Trimming a parameter view and returning it borrows nothing new.
std::string_view Trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  return s;
}

// Returning a container of views by value moves the container; the views
// inside it point at the caller-owned argument.
std::vector<std::string_view> Split(std::string_view line) {
  std::vector<std::string_view> fields;
  fields.push_back(line);
  return fields;
}

// A view member whose co-ownership is documented is sanctioned.
class Segment {
 public:
  explicit Segment(std::string bytes) : bytes_(std::move(bytes)) {
    view_ = bytes_;
  }

 private:
  std::string bytes_;
  // spcube-analyzer: allow(view-escape): view_ points into bytes_, owned by this same object
  std::string_view view_;
};

struct Job {
  std::function<std::unique_ptr<int>()> mapper_factory;
};

// Explicit value captures cannot dangle.
void Configure(Job* job, const std::string& name) {
  int arity = static_cast<int>(name.size());
  job->mapper_factory = [arity]() { return std::make_unique<int>(arity); };
}

}  // namespace fixture
