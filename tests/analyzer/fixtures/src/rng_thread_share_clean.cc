// Golden fixture: the sanctioned RNG shapes — a per-worker Rng constructed
// inside the worker lambda from stable coordinates (seed, worker index),
// and serial single-thread use. Must produce zero findings under every
// backend.
#include <thread>
#include <vector>

namespace fixture {

class Rng {
 public:
  explicit Rng(unsigned long long seed) : state_(seed) {}
  unsigned long long Next() { return state_ *= 6364136223846793005ULL; }

 private:
  unsigned long long state_;
};

// Per-worker stream derived from (seed, w): deterministic regardless of
// scheduling, no sharing.
void SampleInWorkers(int workers, unsigned long long seed) {
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([w, seed]() {
      Rng rng(seed + static_cast<unsigned long long>(w) * 1000003ULL);
      (void)rng.Next();
    });
  }
  for (auto& t : threads) t.join();
}

// Serial draws: no spawn in scope, an outside-the-lambda Rng is fine.
unsigned long long SerialDraws(int n, unsigned long long seed) {
  Rng rng(seed);
  unsigned long long acc = 0;
  for (int i = 0; i < n; ++i) acc += rng.Next();
  return acc;
}

}  // namespace fixture
