// Golden fixture (clean): the sanctioned shapes around unordered
// containers. Iterating to build an order-independent intermediate
// (counts, a vector that is sorted before any sink) is fine; only loop
// bodies that reach a model sink directly are order leaks.
#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fixture {

class MapContext {
 public:
  void Emit(std::string_view key, std::string_view value);
};

class Tally {
 public:
  // Sort-then-emit: the unordered loop only collects; the sink loop runs
  // over the sorted vector, so the emitted sequence is canonical.
  void FlushSorted(MapContext& context) {
    std::vector<std::string> keys;
    keys.reserve(counts_.size());
    for (const auto& entry : counts_) {
      keys.push_back(entry.first);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) {
      context.Emit(key, "1");
    }
  }

  // Commutative reduction: integer += cannot observe iteration order.
  long Total() const {
    long total = 0;
    for (const auto& entry : counts_) {
      total += entry.second;
    }
    return total;
  }

 private:
  std::unordered_map<std::string, long> counts_;
};

}  // namespace fixture
