#!/usr/bin/env python3
"""Golden tests for tools/analyzer/spcube_analyzer.py.

Each lifetime rule has a violating fixture and a clean fixture under
tests/analyzer/fixtures/src/; the test asserts the exact (line, rule-id)
set per fixture, so an analyzer that fires the right rule on the wrong
line — or a neighboring rule — fails here. The fixtures run against every
backend available on this machine (the internal backend always; libclang
when clang.cindex and a libclang shared library are importable), pinning
the two backends to identical findings.

The acceptance gates beyond the fixtures:
  * the real src/ tree produces zero findings (the per-PR gate), and
  * the seeded dangling-view bug (dangling_segment_view.cc) is reported by
    the static analyzer — its dynamic twin lives in tests/lifetime_test.cc,
    which replays the same sequence under SPCUBE_LIFETIME_CHECKS.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.normpath(os.path.join(HERE, "..", ".."))
ANALYZER = os.path.join(REPO, "tools", "analyzer", "spcube_analyzer.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file (relative to fixtures/) -> expected [(line, rule-id)].
EXPECTATIONS = {
    "src/view_escape_violation.cc": [
        (18, "view-escape"),
        (24, "view-escape"),
        (34, "view-escape"),
    ],
    "src/view_escape_clean.cc": [],
    "src/arena_escape_violation.cc": [
        (18, "arena-escape"),
        (25, "arena-escape"),
        (26, "arena-escape"),
    ],
    "src/arena_escape_clean.cc": [],
    "src/emit_borrow_violation.cc": [
        (27, "emit-borrow"),
        (34, "emit-borrow"),
    ],
    "src/emit_borrow_clean.cc": [],
    "src/status_flow_violation.cc": [
        (20, "status-flow"),
        (25, "status-flow"),
    ],
    "src/status_flow_clean.cc": [],
    # The seeded dangling-view bug of the acceptance criteria; its dynamic
    # twin is lifetime_test.cc's PoisonCatchesTheSeededDanglingViewFixture.
    "src/dangling_segment_view.cc": [
        (21, "arena-escape"),
    ],
    "src/pragma_without_reason.cc": [
        (9, "allow-without-reason"),
    ],
    # Concurrency-contract rules (docs/INTERNALS.md §12).
    "src/thread_capture_escape_violation.cc": [
        (15, "thread-capture-escape"),
        (24, "thread-capture-escape"),
    ],
    "src/thread_capture_escape_clean.cc": [],
    "src/lock_discipline_violation.cc": [
        (30, "lock-discipline"),
        (34, "lock-discipline"),
    ],
    "src/lock_discipline_clean.cc": [],
    "src/rng_thread_share_violation.cc": [
        (26, "rng-thread-share"),
        (39, "thread-capture-escape"),
        (40, "rng-thread-share"),
    ],
    "src/rng_thread_share_clean.cc": [],
    # Determinism & model-purity rules (docs/INTERNALS.md §14).
    "src/unordered_iteration_escape_violation.cc": [
        (32, "unordered-iteration-escape"),
        (40, "unordered-iteration-escape"),
        (51, "unordered-iteration-escape"),
    ],
    "src/unordered_iteration_escape_clean.cc": [],
    "src/unordered_iteration_param_violation.cc": [
        (17, "unordered-iteration-escape"),
    ],
    "src/pointer_order_violation.cc": [
        (22, "pointer-order-dependence"),
        (26, "pointer-order-dependence"),
        (32, "pointer-order-dependence"),
        (37, "pointer-order-dependence"),
    ],
    "src/pointer_order_clean.cc": [],
    "src/unseeded_hash_violation.cc": [
        (23, "unseeded-hash-in-model"),
        (31, "unseeded-hash-in-model"),
    ],
    "src/unseeded_hash_clean.cc": [],
    "src/float_accumulation_violation.cc": [
        (19, "float-accumulation-order"),
        (28, "float-accumulation-order"),
    ],
    "src/float_accumulation_clean.cc": [],
    "src/determinism_pragma_allowed.cc": [],
}


def available_backends():
    backends = ["internal"]
    probe = subprocess.run(
        [sys.executable, ANALYZER, "--backend=libclang", "--root", FIXTURES,
         os.path.join(FIXTURES, "src", "view_escape_clean.cc")],
        capture_output=True, text=True)
    # Exit 2 + stderr notice = backend unavailable on this machine; any
    # other outcome means libclang loaded and must then agree on goldens.
    if probe.returncode != 2:
        backends.append("libclang")
    return backends


def run_analyzer(paths, root, backend):
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", root,
         "--backend=%s" % backend] + paths,
        capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        # path:line: [rule] message
        parts = line.split(":", 2)
        if len(parts) < 3 or "[" not in parts[2]:
            continue
        rule = parts[2].split("[", 1)[1].split("]", 1)[0]
        findings.append((parts[0], int(parts[1]), rule))
    return proc, findings


def main():
    failures = []
    backends = available_backends()

    for backend in backends:
        for rel, expected in sorted(EXPECTATIONS.items()):
            path = os.path.join(FIXTURES, rel)
            proc, findings = run_analyzer([path], FIXTURES, backend)
            got = [(line, rule) for (_, line, rule) in findings]
            want = sorted(expected)
            if sorted(got) != want:
                failures.append(
                    "[%s] %s:\n  expected %s\n  got      %s\n  stdout: %s"
                    "\n  stderr: %s"
                    % (backend, rel, want, sorted(got), proc.stdout.strip(),
                       proc.stderr.strip()))
                continue
            want_exit = 1 if expected else 0
            if proc.returncode != want_exit:
                failures.append("[%s] %s: exit code %d, expected %d"
                                % (backend, rel, proc.returncode, want_exit))

    # Reported paths must be relative to --root so goldens are stable
    # across checkouts.
    proc, findings = run_analyzer(
        [os.path.join(FIXTURES, "src", "dangling_segment_view.cc")],
        FIXTURES, "internal")
    if findings and findings[0][0] != os.path.join(
            "src", "dangling_segment_view.cc"):
        failures.append("paths not reported relative to --root: %s"
                        % findings[0][0])

    proc = subprocess.run(
        [sys.executable, ANALYZER, "--list-rules"],
        capture_output=True, text=True)
    rules = proc.stdout.split()
    for rule in ("view-escape", "arena-escape", "emit-borrow",
                 "status-flow", "thread-capture-escape", "lock-discipline",
                 "rng-thread-share", "unordered-iteration-escape",
                 "pointer-order-dependence", "unseeded-hash-in-model",
                 "float-accumulation-order"):
        if rule not in rules:
            failures.append("--list-rules missing %s" % rule)

    # --rules filters reporting to the named family (the CI determinism
    # leg runs just the §14 rules this way): the pointer fixture's
    # findings survive, everything else is dropped, and unknown names are
    # a usage error (exit 2).
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--root", FIXTURES, "--backend=internal",
         "--rules=unseeded-hash-in-model",
         os.path.join(FIXTURES, "src", "pointer_order_violation.cc")],
        capture_output=True, text=True)
    if proc.returncode != 0 or proc.stdout.strip():
        failures.append("--rules did not filter out other rules: %s"
                        % proc.stdout)
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--rules=no-such-rule"],
        capture_output=True, text=True)
    if proc.returncode != 2:
        failures.append("--rules with an unknown rule should exit 2, got %d"
                        % proc.returncode)

    # --emit-sarif writes a SARIF 2.1.0 run whose results mirror the
    # plain-text findings, rule IDs included.
    import json
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "out.sarif")
        proc = subprocess.run(
            [sys.executable, ANALYZER, "--root", FIXTURES,
             "--backend=internal", "--emit-sarif=%s" % sarif_path,
             os.path.join(FIXTURES, "src", "pointer_order_violation.cc")],
            capture_output=True, text=True)
        with open(sarif_path, "r", encoding="utf-8") as f:
            sarif = json.load(f)
        results = sarif["runs"][0]["results"]
        got = sorted((r["locations"][0]["physicalLocation"]["region"]
                      ["startLine"], r["ruleId"]) for r in results)
        if sarif["version"] != "2.1.0" or got != sorted(
                EXPECTATIONS["src/pointer_order_violation.cc"]):
            failures.append("SARIF results do not mirror findings: %s"
                            % got)

    # Exit-2 paths (backend unavailable / bad path) still render the
    # --summary table so callers that parse it always see one.
    proc = subprocess.run(
        [sys.executable, ANALYZER, "--summary", "--root", FIXTURES,
         os.path.join(FIXTURES, "no", "such", "file.cc")],
        capture_output=True, text=True)
    if proc.returncode != 2 or "per-rule summary" not in proc.stderr:
        failures.append("exit-2 path skipped the --summary table: rc=%d "
                        "stderr=%s" % (proc.returncode, proc.stderr))

    # --fast must behave like the internal backend (clean-tree-only mode
    # for check_all.sh --fast): same findings, no TU parsing.
    proc, findings = run_analyzer(
        ["--fast", os.path.join(FIXTURES, "src", "arena_escape_clean.cc")],
        FIXTURES, "auto")
    if proc.returncode != 0 or findings:
        failures.append("--fast not clean on a clean fixture: %s %s"
                        % (proc.returncode, findings))

    # The real src/ tree must be clean: the acceptance gate for every PR.
    for backend in backends:
        proc, findings = run_analyzer([], REPO, backend)
        if proc.returncode != 0:
            failures.append("[%s] repo-wide analyzer run not clean:\n%s"
                            % (backend, proc.stdout))

    if failures:
        print("spcube_analyzer_test: %d failure(s)" % len(failures))
        for failure in failures:
            print("---\n" + failure)
        return 1
    print("spcube_analyzer_test: all %d fixtures behaved under backend(s): "
          "%s" % (len(EXPECTATIONS), ", ".join(backends)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
