// Tests for the top-down multi-round baseline (Lee et al., the paper's
// reference [25]): exactness, round count = d+1, parent-plan coverage, and
// the per-round traffic profile the paper criticizes.

#include <gtest/gtest.h>

#include <set>

#include "baselines/topdown.h"
#include "core/sp_cube.h"
#include "cube/cube_result.h"
#include "relation/generators.h"

namespace spcube {
namespace {

EngineConfig TestConfig(int workers = 5) {
  EngineConfig config;
  config.num_workers = workers;
  config.memory_budget_bytes = 4 << 20;
  config.network_bandwidth_bytes_per_sec = 0;
  return config;
}

TEST(TopDownParentTest, CoversEveryCuboidExactlyOnce) {
  // Every non-base cuboid has exactly one parent; collecting children over
  // all parents yields each cuboid once.
  for (int d = 1; d <= 6; ++d) {
    std::multiset<CuboidMask> produced;
    const CuboidMask base = static_cast<CuboidMask>(NumCuboids(d) - 1);
    for (CuboidMask parent = 0; parent <= base; ++parent) {
      if (MaskPopCount(parent) == 0) continue;
      for (CuboidMask child : ImmediateDescendants(parent)) {
        if (TopDownParent(child, d) == parent) produced.insert(child);
      }
    }
    for (CuboidMask mask = 0; mask < base; ++mask) {
      EXPECT_EQ(produced.count(mask), 1u) << "d=" << d << " mask=" << mask;
    }
    EXPECT_EQ(TopDownParent(base, d), base);
  }
}

TEST(TopDownTest, MatchesReferenceOnUniform) {
  Relation rel = GenUniform(2000, 3, 15, 91);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  TopDownCubeAlgorithm topdown;
  auto output = topdown.Run(engine, rel, {});
  ASSERT_TRUE(output.ok()) << output.status();
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << diff;
}

TEST(TopDownTest, MatchesReferenceOnSkewAndZipf) {
  for (Relation rel : {GenBinomial(2000, 4, 0.6, 93),
                       GenZipfPaper(2000, 94)}) {
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    TopDownCubeAlgorithm topdown;
    auto output = topdown.Run(engine, rel, {});
    ASSERT_TRUE(output.ok()) << output.status();
    CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
    std::string diff;
    EXPECT_TRUE(
        CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
        << diff;
  }
}

TEST(TopDownTest, AlgebraicAggregateAcrossRounds) {
  // avg must survive d+1 rounds of partial-state merging.
  Relation rel = GenUniform(1500, 3, 8, 95);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  TopDownCubeAlgorithm topdown;
  CubeRunOptions options;
  options.aggregate = AggregateKind::kAvg;
  auto output = topdown.Run(engine, rel, options);
  ASSERT_TRUE(output.ok());
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kAvg);
  std::string diff;
  EXPECT_TRUE(
      CubeResult::ApproxEqual(reference, *output->cube, 1e-6, &diff))
      << diff;
}

TEST(TopDownTest, RunsDPlusOneRounds) {
  for (int d : {2, 4}) {
    Relation rel = GenUniform(500, d, 6, 97);
    DistributedFileSystem dfs;
    Engine engine(TestConfig(), &dfs);
    TopDownCubeAlgorithm topdown;
    auto output = topdown.Run(engine, rel, {});
    ASSERT_TRUE(output.ok());
    EXPECT_EQ(output->metrics.rounds.size(), static_cast<size_t>(d + 1));
  }
}

TEST(TopDownTest, MoreRoundsThanSpCubeMoreOverhead) {
  // The round-latency argument of §7: with per-round overhead, d+1 rounds
  // cost strictly more fixed time than SP-Cube's two.
  Relation rel = GenUniform(2000, 5, 10, 99);
  EngineConfig config = TestConfig();
  config.round_overhead_seconds = 0.1;
  {
    DistributedFileSystem dfs;
    Engine engine(config, &dfs);
    TopDownCubeAlgorithm topdown;
    auto td = topdown.Run(engine, rel, {});
    ASSERT_TRUE(td.ok());
    DistributedFileSystem dfs2;
    Engine engine2(config, &dfs2);
    SpCubeAlgorithm sp;
    auto sp_out = sp.Run(engine2, rel, {});
    ASSERT_TRUE(sp_out.ok());
    double td_overhead = 0;
    for (const auto& r : td->metrics.rounds) {
      td_overhead += r.round_overhead_seconds;
    }
    double sp_overhead = 0;
    for (const auto& r : sp_out->metrics.rounds) {
      sp_overhead += r.round_overhead_seconds;
    }
    EXPECT_EQ(td_overhead, 0.6);  // 6 rounds
    EXPECT_EQ(sp_overhead, 0.2);  // 2 rounds
  }
}

TEST(TopDownTest, IcebergFilters) {
  Relation rel = GenBinomial(1500, 3, 0.5, 101);
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  TopDownCubeAlgorithm topdown;
  CubeRunOptions options;
  options.iceberg_min_count = 10;
  auto output = topdown.Run(engine, rel, options);
  ASSERT_TRUE(output.ok());
  CubeResult reference = ComputeCubeReference(rel, AggregateKind::kCount);
  int64_t expected = 0;
  for (const auto& [key, value] : reference.groups()) {
    if (value >= 10) ++expected;
  }
  EXPECT_EQ(output->cube->num_groups(), expected);
}

TEST(TopDownTest, EmptyRelation) {
  Relation rel(MakeAnonymousSchema(3));
  DistributedFileSystem dfs;
  Engine engine(TestConfig(), &dfs);
  TopDownCubeAlgorithm topdown;
  auto output = topdown.Run(engine, rel, {});
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->cube->num_groups(), 0);
}

}  // namespace
}  // namespace spcube
