// The work-stealing TaskPool's own contracts (docs/INTERNALS.md §12): the
// steal-victim policy is a pure function of (seed, num_threads); a batch
// never loses or duplicates a task however it is scheduled; failing tasks
// surface their Status without stopping the batch or throwing; and nested
// fork-join sub-batches complete on a fixed-size pool (the help loop).
// These tests name "TaskPool" so tools/check_all.sh's tsan-threaded-grid
// stage (ctest -R 'Threaded|TaskPool') reruns them under -fsanitize=thread.

#include "common/task_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <vector>

#include "common/status.h"

namespace spcube {
namespace {

TEST(TaskPoolTest, VictimOrderIsSeededAndDeterministic) {
  TaskPool a(6, /*seed=*/0xFEEDu);
  TaskPool b(6, /*seed=*/0xFEEDu);
  TaskPool c(6, /*seed=*/0xBEEFu);
  bool any_differs = false;
  for (int w = 0; w < 6; ++w) {
    // Same seed ⇒ same permutation, for every worker.
    EXPECT_EQ(a.victim_order(w), b.victim_order(w)) << "worker " << w;
    // Each order is a permutation of the other workers.
    std::vector<int> sorted = a.victim_order(w);
    EXPECT_EQ(sorted.size(), 5u);
    std::sort(sorted.begin(), sorted.end());
    std::vector<int> expected;
    for (int v = 0; v < 6; ++v) {
      if (v != w) expected.push_back(v);
    }
    EXPECT_EQ(sorted, expected) << "worker " << w;
    if (a.victim_order(w) != c.victim_order(w)) any_differs = true;
  }
  // A different seed steers at least one worker differently (the point of
  // seeding instead of hardcoding round-robin).
  EXPECT_TRUE(any_differs);
}

TEST(TaskPoolTest, NoTaskIsLostOrDuplicated) {
  // Under TSan this is also the data-race gate for the deques: many more
  // tasks than threads, every task bumps its own once-only slot.
  const int kTasks = 512;
  TaskPool pool(4, /*seed=*/1);
  std::vector<std::atomic<int>> executed(kTasks);
  for (auto& e : executed) e.store(0);
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([i, &slots = executed]() {
      slots[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  }
  std::vector<Status> statuses = pool.Run(std::move(tasks));
  ASSERT_EQ(statuses.size(), static_cast<size_t>(kTasks));
  for (const Status& status : statuses) EXPECT_TRUE(status.ok());
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(executed[static_cast<size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(TaskPoolTest, StatusFailuresSurfaceInSlotOrderWithoutStoppingTheBatch) {
  const int kTasks = 64;
  TaskPool pool(3, /*seed=*/2);
  std::atomic<int> ran(0);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.emplace_back([i, &ran]() -> Status {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 5 == 0) {
        return Status::IoError("task " + std::to_string(i) + " failed");
      }
      return Status::OK();
    });
  }
  std::vector<Status> statuses = pool.Run(std::move(tasks));
  // A failing task stops nothing: every task still runs exactly once, and
  // each failure lands in its own slot (no exceptions anywhere).
  EXPECT_EQ(ran.load(), kTasks);
  for (int i = 0; i < kTasks; ++i) {
    const Status& status = statuses[static_cast<size_t>(i)];
    if (i % 5 == 0) {
      EXPECT_TRUE(status.IsIoError()) << i;
      EXPECT_EQ(status.message(), "task " + std::to_string(i) + " failed");
    } else {
      EXPECT_TRUE(status.ok()) << i << ": " << status;
    }
  }
}

TEST(TaskPoolTest, SerialPoolRunsInlineInIndexOrder) {
  TaskPool pool(1, /*seed=*/3);
  std::vector<int> order;
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.emplace_back([i, &order]() {
      order.push_back(i);
      return Status::OK();
    });
  }
  std::vector<Status> statuses = pool.Run(std::move(tasks));
  for (const Status& status : statuses) EXPECT_TRUE(status.ok());
  std::vector<int> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  // The serial pool is the behavior reference: strict index order, no
  // threads, so unsynchronized side effects (order) are safe here.
  EXPECT_EQ(order, expected);
}

TEST(TaskPoolTest, NestedForkJoinCompletesAndAggregates) {
  // Fewer threads than outer tasks, and every outer task forks a sub-batch:
  // without the help-while-waiting loop this deadlocks a fixed-size pool.
  const int kOuter = 8;
  const int kInner = 16;
  TaskPool pool(2, /*seed=*/4);
  std::vector<std::atomic<int64_t>> sums(kOuter);
  for (auto& s : sums) s.store(0);
  std::vector<std::function<Status()>> outer;
  for (int o = 0; o < kOuter; ++o) {
    outer.emplace_back([o, &sums, &pool]() -> Status {
      std::vector<std::function<Status()>> inner;
      for (int i = 0; i < kInner; ++i) {
        inner.emplace_back([o, i, &sums]() {
          sums[static_cast<size_t>(o)].fetch_add(i + 1,
                                                 std::memory_order_relaxed);
          return Status::OK();
        });
      }
      for (const Status& status : pool.RunNested(std::move(inner))) {
        SPCUBE_RETURN_IF_ERROR(status);
      }
      return Status::OK();
    });
  }
  for (const Status& status : pool.Run(std::move(outer))) {
    EXPECT_TRUE(status.ok()) << status;
  }
  for (int o = 0; o < kOuter; ++o) {
    EXPECT_EQ(sums[static_cast<size_t>(o)].load(), kInner * (kInner + 1) / 2)
        << "outer " << o;
  }
}

TEST(TaskPoolTest, NestedOutsideAWorkerRunsInline) {
  TaskPool pool(4, /*seed=*/5);
  std::vector<int> order;
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back([i, &order]() {
      order.push_back(i);
      return Status::OK();
    });
  }
  // Not called from a pool task ⇒ inline, index order, no threads.
  for (const Status& status : pool.RunNested(std::move(tasks))) {
    EXPECT_TRUE(status.ok());
  }
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(TaskPoolTest, HostThreadsIsAtLeastOne) {
  EXPECT_GE(TaskPool::HostThreads(), 1);
}

TEST(TaskPoolTest, EmptyBatchIsANoOp) {
  TaskPool pool(4, /*seed=*/6);
  EXPECT_TRUE(pool.Run({}).empty());
  EXPECT_TRUE(pool.RunNested({}).empty());
}

}  // namespace
}  // namespace spcube
